package distcolor

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestFacadeEdgeColorStar(t *testing.T) {
	g, err := gen.NearRegular(200, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EdgeColorStar(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	if res.Palette > int64(4*g.MaxDegree()) {
		t.Fatalf("palette %d exceeds 4Δ", res.Palette)
	}
	if res.Algorithm != "star-partition/x=1" {
		t.Fatalf("algorithm label %q", res.Algorithm)
	}
	if res.Stats.Rounds <= 0 || res.Stats.Messages <= 0 {
		t.Fatal("missing stats")
	}
}

func TestFacadeEdgeColorGreedy(t *testing.T) {
	g := gen.GNP(60, 0.2, 2)
	res, err := EdgeColorGreedy(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	if res.Palette != int64(2*g.MaxDegree()-1) {
		t.Fatalf("palette %d", res.Palette)
	}
}

func TestFacadeEdgeColorSparse(t *testing.T) {
	g, err := gen.ForestUnionHub(400, 2, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EdgeColorSparse(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	if res.Algorithm == "" {
		t.Fatal("missing plan name")
	}
}

func TestFacadeEdgeColorSparseWith(t *testing.T) {
	g, err := gen.ForestUnionHub(300, 2, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []SparseAlgorithm{SparseHPartition, SparseSqrt, SparseRecursive2, SparseRecursive3} {
		res, err := EdgeColorSparseWith(g, 3, alg, Options{})
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		if err := CheckEdgeColoring(g, res.Colors, res.Palette); err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
	}
	if _, err := EdgeColorSparseWith(g, 3, SparseAlgorithm(99), Options{}); err == nil {
		t.Fatal("expected unknown algorithm error")
	}
}

func TestFacadeVertexColor(t *testing.T) {
	g := gen.GNP(100, 0.1, 4)
	res, err := VertexColor(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckVertexColoring(g, res.Colors, int64(g.MaxDegree())+1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeVertexColorCD(t *testing.T) {
	base := gen.GNP(30, 0.25, 5)
	lg, cov, edgeOf, err := LineCover(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(edgeOf) != base.M() {
		t.Fatal("edgeOf length wrong")
	}
	res, err := VertexColorCD(lg, cov, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckVertexColoring(lg, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	d, s := cov.Diversity(), cov.MaxCliqueSize()
	if res.Palette > int64(d*d*s) {
		t.Fatalf("palette %d exceeds D²S", res.Palette)
	}
	// A CD vertex coloring of the line graph is an edge coloring of base.
	edgeColors := make([]int64, base.M())
	for lv, e := range edgeOf {
		edgeColors[e] = res.Colors[lv]
	}
	if err := CheckEdgeColoring(base, edgeColors, res.Palette); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHypergraph(t *testing.T) {
	h, err := NewHypergraph(5, 3, [][]int{{0, 1, 2}, {1, 2, 3}, {2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	lg, cov, err := HypergraphLineCover(h)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Diversity() > 3 {
		t.Fatalf("diversity %d > rank", cov.Diversity())
	}
	res, err := VertexColorCD(lg, cov, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckVertexColoring(lg, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeIO(t *testing.T) {
	g := gen.GNP(20, 0.3, 8)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("round trip mismatch")
	}
}

func TestFacadeParallelEngineAgrees(t *testing.T) {
	g, err := gen.NearRegular(120, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := EdgeColorStar(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := EdgeColorStar(g, 1, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for e := range seqRes.Colors {
		if seqRes.Colors[e] != parRes.Colors[e] {
			t.Fatal("engines disagree through the façade")
		}
	}
	if seqRes.Stats != parRes.Stats {
		t.Fatal("stats disagree through the façade")
	}
}

func TestFacadeHelpers(t *testing.T) {
	g := gen.Grid(10, 10)
	if a := ArboricityUpperBound(g); a < 1 || a > 3 {
		t.Fatalf("grid arboricity estimate %d", a)
	}
	plans := SparsePlans(1000, 2)
	if len(plans) < 3 {
		t.Fatal("expected multiple sparse plans")
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	gg, err := b.Build()
	if err != nil || gg.M() != 1 {
		t.Fatal("builder re-export broken")
	}
	if _, err := NewCliqueCover(gg, [][]int32{{0, 1}}); err != nil {
		t.Fatal(err)
	}
}
