package distcolor

// Chunked request streaming: the binary codec's answer to graphs whose
// admission cost exceeds the server's in-flight byte bound. Instead of one
// Request frame the client writes
//
//	[stream header]  the request minus its edges, plus the declared edge
//	                 count — everything the server needs to validate size
//	                 limits and reserve a queue slot before reading bulk data
//	[edge chunk]*    consecutive slices of the edge list, each a
//	                 self-contained frame the server admits individually
//	[stream end]     the total edge count again, as an end-to-end tally
//
// Every frame uses the codecbin.go grammar (magic, version, kind, flags,
// CRC), so corruption is caught per chunk, and the server charges
// admission per chunk as it reads — it never has to buy the whole graph's
// bytes in one admission decision. See DESIGN.md §11 for the protocol and
// internal/service for the admission half.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// DefaultChunkEdges is the edge-chunk size used when a caller passes
// chunkEdges <= 0: at the admission charge of 96 bytes/edge one chunk
// charges ~3MB, comfortably under any production in-flight bound while
// keeping per-chunk framing overhead negligible.
const DefaultChunkEdges = 32768

// WriteRequestStream encodes req as a chunked binary frame stream on w,
// slicing the edge list into chunks of at most chunkEdges edges
// (DefaultChunkEdges when <= 0). The stream decodes back to exactly req —
// edge order included, since edge identifiers index the response's colors.
func WriteRequestStream(w io.Writer, req *Request, chunkEdges int) error {
	if chunkEdges <= 0 {
		chunkEdges = DefaultChunkEdges
	}
	edges := req.Graph.Edges
	h := newBinEnc(kindStreamHeader, 96+16*len(req.Graph.Cliques))
	h.uv(uint64(len(edges)))
	h.str(req.Algorithm)
	h.zig(int64(req.Graph.N))
	h.cliques(req.Graph.Cliques)
	h.params(req.Params)
	h.zig(int64(req.X))
	h.zig(int64(req.Arboricity))
	h.f64(req.Q)
	h.boolb(req.Parallel)
	if req.DeadlineMS != 0 {
		h.flags |= flagDeadlineMS
		h.zig(req.DeadlineMS)
	}
	if _, err := w.Write(h.frame()); err != nil {
		return err
	}
	for off := 0; off < len(edges); off += chunkEdges {
		end := off + chunkEdges
		if end > len(edges) {
			end = len(edges)
		}
		c := newBinEnc(kindEdgeChunk, 16+10*(end-off))
		c.edges(req.Graph.N, edges[off:end])
		if _, err := w.Write(c.frame()); err != nil {
			return err
		}
	}
	e := newBinEnc(kindStreamEnd, 16)
	e.uv(uint64(len(edges)))
	_, err := w.Write(e.frame())
	return err
}

// RequestStreamLen returns the exact byte length WriteRequestStream will
// produce for req — what a client sets as Content-Length. It runs the
// encoder against a counting sink, so it is always in agreement with the
// writer (at the price of one extra encoding pass).
func RequestStreamLen(req *Request, chunkEdges int) int64 {
	var cw countingWriter
	// The counting sink never fails, and encoding itself cannot.
	_ = WriteRequestStream(&cw, req, chunkEdges)
	return cw.n
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// RequestReader reads a binary-encoded Request from a stream of frames:
// either one self-contained Request frame, or the chunked form above. The
// service's submit handler drives it — Begin, then (when Chunked) ReadChunk
// until done, admitting each chunk's bytes before reading the next.
type RequestReader struct {
	r        io.Reader
	began    bool
	chunked  bool
	declared int
	n        int // header vertex count, governs chunk edge decoding
	read     int // edges consumed so far across chunks
}

// NewRequestReader wraps r; nothing is read until Begin.
func NewRequestReader(r io.Reader) *RequestReader {
	return &RequestReader{r: r}
}

// Begin reads the first frame. For a single Request frame the returned
// request is complete and Chunked reports false. For a chunked stream the
// returned request skeleton has no edges yet — Declared reports how many
// the header promises — and the caller collects them via ReadChunk.
func (rr *RequestReader) Begin() (*Request, error) {
	if rr.began {
		return nil, errors.New("distcolor: RequestReader.Begin called twice")
	}
	rr.began = true
	kind, body, flags, err := readFrame(rr.r)
	if err != nil {
		return nil, err
	}
	d := &binDec{buf: body, flags: flags}
	switch kind {
	case kindRequest:
		req := d.request()
		if err := d.finish(); err != nil {
			return nil, err
		}
		return &req, nil
	case kindStreamHeader:
		declared := d.uv()
		req := &Request{Algorithm: d.str()}
		req.Graph.N = d.intv()
		req.Graph.Cliques = d.cliques()
		req.Params = d.params()
		req.X = d.intv()
		req.Arboricity = d.intv()
		req.Q = d.f64()
		req.Parallel = d.boolb()
		if d.flags&flagDeadlineMS != 0 {
			req.DeadlineMS = d.zig()
		}
		if err := d.finish(); err != nil {
			return nil, err
		}
		if declared > uint64(frameMaxBytes) {
			return nil, fmt.Errorf("distcolor: stream declares %d edges, beyond any acceptable frame", declared)
		}
		rr.chunked = true
		rr.declared = int(declared)
		rr.n = req.Graph.N
		return req, nil
	default:
		return nil, fmt.Errorf("distcolor: stream opens with frame kind %d, want a request or stream header", kind)
	}
}

// Chunked reports whether Begin found a chunked stream.
func (rr *RequestReader) Chunked() bool { return rr.chunked }

// Declared is the edge count the stream header promised.
func (rr *RequestReader) Declared() int { return rr.declared }

// ReadChunk returns the next chunk of edges, in stream order. done is true
// once the end frame has been consumed and verified (the chunk is nil
// then). A stream whose chunks exceed the declared edge count, or whose
// end tally disagrees with the edges delivered, is an error.
func (rr *RequestReader) ReadChunk() ([][2]int, bool, error) {
	if !rr.chunked {
		return nil, false, errors.New("distcolor: ReadChunk on a non-chunked stream")
	}
	kind, body, flags, err := readFrame(rr.r)
	if err != nil {
		return nil, false, err
	}
	d := &binDec{buf: body, flags: flags}
	switch kind {
	case kindEdgeChunk:
		edges := d.edges(rr.n)
		if err := d.finish(); err != nil {
			return nil, false, err
		}
		rr.read += len(edges)
		if rr.read > rr.declared {
			return nil, false, fmt.Errorf("distcolor: stream chunks carry %d edges, header declared %d", rr.read, rr.declared)
		}
		return edges, false, nil
	case kindStreamEnd:
		total := d.uv()
		if err := d.finish(); err != nil {
			return nil, false, err
		}
		if total != uint64(rr.read) || rr.read != rr.declared {
			return nil, false, fmt.Errorf("distcolor: stream end tally %d, read %d, declared %d", total, rr.read, rr.declared)
		}
		return nil, true, nil
	default:
		return nil, false, fmt.Errorf("distcolor: unexpected frame kind %d mid-stream", kind)
	}
}

// readFrame reads one frame off r, validating the prefix, CRC, and payload
// header, and returns its kind, body, and feature flags. io.EOF surfaces
// untouched only at a clean frame boundary.
func readFrame(r io.Reader) (byte, []byte, uint16, error) {
	var prefix [framePrefixLen]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, fmt.Errorf("distcolor: reading frame prefix: %w", err)
	}
	n := binary.LittleEndian.Uint32(prefix[0:4])
	if n < frameMinPayload || n > frameMaxBytes {
		return 0, nil, 0, fmt.Errorf("distcolor: frame payload length %d out of range", n)
	}
	// Grow the payload buffer only as bytes actually arrive: the declared
	// length is attacker-controlled (up to frameMaxBytes), and allocating it
	// up front would let a short, corrupt prefix demand a gigabyte.
	var body bytes.Buffer
	if n < 1<<20 {
		body.Grow(int(n))
	}
	if _, err := io.CopyN(&body, r, int64(n)); err != nil {
		return 0, nil, 0, fmt.Errorf("distcolor: reading %d-byte frame payload: %w", n, err)
	}
	payload := body.Bytes()
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(prefix[4:8]); got != want {
		return 0, nil, 0, errors.New("distcolor: frame CRC mismatch (corrupt or torn record)")
	}
	kind := payload[2]
	_, flags, err := checkPayloadHeader(payload, kind)
	if err != nil {
		return 0, nil, 0, err
	}
	return kind, payload[frameHeaderLen:], flags, nil
}
