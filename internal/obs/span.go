package obs

// Trace spans: the per-job timeline primitive. A span records one named
// stage of a larger operation — for colord, the lifecycle stages of a job
// (admit, queue, execute, verify, serve) under a root span covering the
// whole job. Spans are deliberately minimal: no global collector, no
// sampling, no clock reads of their own. The *owner* of the traced
// operation (the service's job struct) holds the span slice under its own
// lock and stamps times from a monotonic base it controls, which keeps the
// span path allocation-bounded (one slice, pre-sized) and makes the
// exported timeline reproducible in tests that fake the clock.
//
// Times are expressed as offsets from the trace's own start rather than
// wall-clock instants: offsets come from the monotonic clock, so spans
// order correctly even across wall-clock steps, and the NDJSON export is
// self-contained — a reader reconstructs the tree from (name, parent,
// start, duration) alone.

// A Span is one stage of a traced operation. StartUS/DurUS are microseconds
// relative to the trace's monotonic origin; DurUS is -1 while the span is
// open. Parent is the index of the parent span in the trace's span slice,
// or -1 for the root. Spans serialize into the job trace NDJSON stream, so
// the field names are part of the service API.
type Span struct {
	Name    string `json:"name"`
	Parent  int    `json:"parent"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// A Trace is an append-only span list for one operation. It is NOT
// goroutine-safe: the owner serializes access (colord uses the job mutex).
type Trace struct {
	spans []Span
}

// NewTrace returns a trace pre-sized for n spans, so tracing a bounded
// lifecycle appends without reallocation.
func NewTrace(n int) *Trace {
	return &Trace{spans: make([]Span, 0, n)}
}

// Start opens a span and returns its index (use it as Parent for children
// and as the handle for End). startUS is the offset from the trace origin.
func (t *Trace) Start(name string, parent int, startUS int64) int {
	t.spans = append(t.spans, Span{Name: name, Parent: parent, StartUS: startUS, DurUS: -1})
	return len(t.spans) - 1
}

// End closes span i at offset endUS. Ending an already-closed span or
// ending before the start clamps the duration at 0 rather than going
// negative — spans are diagnostics, not invariants worth crashing for.
func (t *Trace) End(i int, endUS int64) {
	if i < 0 || i >= len(t.spans) {
		return
	}
	d := endUS - t.spans[i].StartUS
	if d < 0 {
		d = 0
	}
	t.spans[i].DurUS = d
}

// Add appends an already-complete span (for stages measured externally).
func (t *Trace) Add(s Span) int {
	t.spans = append(t.spans, s)
	return len(t.spans) - 1
}

// Spans returns the span list. The returned slice aliases the trace's
// storage; callers that outlive the owner's lock must copy.
func (t *Trace) Spans() []Span { return t.spans }

// Len reports the number of spans recorded.
func (t *Trace) Len() int { return len(t.spans) }
