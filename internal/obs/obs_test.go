package obs

import (
	"strings"
	"testing"
)

// The golden exposition test: families sorted by name, series within a
// family sorted by label signature, one HELP/TYPE header per family,
// histograms rendered as cumulative buckets plus _sum/_count. The service
// layer golden-tests its full /metrics page on top of this; here the
// format itself is pinned.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	// Registration order is deliberately scrambled relative to the expected
	// output to prove ordering comes from sorting, not insertion.
	q := r.NewGauge("test_queue_depth", "Jobs waiting to run.")
	h := r.NewHistogram("test_latency_us", "Stage latency.", []int64{10, 100, 1000}, Label{"stage", "admit"})
	c2 := r.NewCounter("test_jobs_total", "Jobs by state.", Label{"state", "failed"})
	c1 := r.NewCounter("test_jobs_total", "Jobs by state.", Label{"state", "done"})
	r.NewGaugeFunc("test_workers", "Configured workers.", func() int64 { return 4 })

	c1.Add(7)
	c2.Inc()
	q.Set(3)
	for _, v := range []int64{5, 10, 11, 250, 9999} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	want := `# HELP test_jobs_total Jobs by state.
# TYPE test_jobs_total counter
test_jobs_total{state="done"} 7
test_jobs_total{state="failed"} 1
# HELP test_latency_us Stage latency.
# TYPE test_latency_us histogram
test_latency_us_bucket{stage="admit",le="10"} 2
test_latency_us_bucket{stage="admit",le="100"} 3
test_latency_us_bucket{stage="admit",le="1000"} 4
test_latency_us_bucket{stage="admit",le="+Inf"} 5
test_latency_us_sum{stage="admit"} 10275
test_latency_us_count{stage="admit"} 5
# HELP test_queue_depth Jobs waiting to run.
# TYPE test_queue_depth gauge
test_queue_depth 3
# HELP test_workers Configured workers.
# TYPE test_workers gauge
test_workers 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// Rendering twice must produce identical bytes — the determinism the
// service's golden test relies on.
func TestWriteTextDeterministic(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "A.", Label{"x", "2"})
	r.NewCounter("a_total", "A.", Label{"x", "1"})
	r.NewGauge("b", "B.")
	var b1, b2 strings.Builder
	if err := r.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("two scrapes differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("esc_total", "Line one\nline two with \\ backslash.",
		Label{"path", `C:\dir`}, Label{"quote", `say "hi"`}, Label{"nl", "a\nb"})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`# HELP esc_total Line one\nline two with \\ backslash.`,
		`nl="a\nb"`,
		`path="C:\\dir"`,
		`quote="say \"hi\""`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "\n") != 3 { // HELP + TYPE + one series; raw newlines stayed escaped
		t.Errorf("raw newline leaked into exposition:\n%q", got)
	}
}

// The tentpole contract: observation is allocation-free. The scrape path
// may allocate; Add/Set/Observe must not.
func TestObserveAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	g := r.NewGauge("g", "g")
	h := r.NewHistogram("h", "h", Pow2Buckets(3, 10))
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(2)
		c.Inc()
		g.Set(17)
		g.Add(-3)
		h.Observe(5)
		h.Observe(64)
		h.Observe(1 << 20) // +Inf bucket
	}); n != 0 {
		t.Errorf("hot-path observation allocates: %.1f allocs/op, want 0", n)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q", "q", []int64{1, 2, 4, 8, 16})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
	// 10 observations: 5 in le=1, 3 in le=4, 2 in le=16.
	for i := 0; i < 5; i++ {
		h.Observe(1)
	}
	for i := 0; i < 3; i++ {
		h.Observe(3)
	}
	h.Observe(9)
	h.Observe(12)
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := h.Quantile(0.95); got != 16 {
		t.Errorf("p95 = %d, want 16", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %d, want 1 (clamped to first observation)", got)
	}
	if got, want := h.Count(), int64(10); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), int64(5+9+9+12); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	// Everything in +Inf clamps to the last finite bound.
	r2 := NewRegistry()
	h2 := r2.NewHistogram("q2", "q", []int64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("+Inf quantile = %d, want last bound 2", got)
	}
}

func TestBucketHelpers(t *testing.T) {
	got := Pow2Buckets(0, 4)
	want := []int64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pow2Buckets(0,4) = %v, want %v", got, want)
		}
	}
	exp := ExpBuckets(100, 10, 4)
	wantExp := []int64{100, 1000, 10000, 100000}
	for i := range wantExp {
		if exp[i] != wantExp[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, wantExp)
		}
	}
	// Integer rounding must keep bounds strictly ascending.
	tight := ExpBuckets(1, 1.1, 5)
	for i := 1; i < len(tight); i++ {
		if tight[i] <= tight[i-1] {
			t.Fatalf("ExpBuckets(1, 1.1, 5) not ascending: %v", tight)
		}
	}
}

func TestRegistryConflicts(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "d", Label{"a", "1"})
	expectPanic("duplicate series", func() { r.NewCounter("dup_total", "d", Label{"a", "1"}) })
	expectPanic("kind conflict", func() { r.NewGauge("dup_total", "d") })
	expectPanic("empty name", func() { r.NewCounter("", "d") })
	expectPanic("empty histogram bounds", func() { r.NewHistogram("h", "h", nil) })
	expectPanic("non-ascending bounds", func() { r.NewHistogram("h2", "h", []int64{4, 2}) })
	// Same name with different labels is one family, not a conflict.
	r.NewCounter("dup_total", "d", Label{"a", "2"})
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace(6)
	root := tr.Start("job", -1, 0)
	admit := tr.Start("admit", root, 0)
	tr.End(admit, 120)
	queue := tr.Start("queue", root, 120)
	tr.End(queue, 500)
	tr.Add(Span{Name: "execute", Parent: root, StartUS: 500, DurUS: 4000})
	tr.End(root, 4700)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Name != "job" || spans[0].Parent != -1 || spans[0].DurUS != 4700 {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Name != "admit" || spans[1].Parent != root || spans[1].DurUS != 120 {
		t.Errorf("admit span = %+v", spans[1])
	}
	if spans[2].StartUS != 120 || spans[2].DurUS != 380 {
		t.Errorf("queue span = %+v", spans[2])
	}
	// Closing out of range or backwards must not corrupt anything.
	tr.End(99, 1)
	tr.End(-1, 1)
	open := tr.Start("open", root, 5000)
	if tr.Spans()[open].DurUS != -1 {
		t.Errorf("open span should have DurUS -1")
	}
	tr.End(open, 4000) // end before start clamps to 0
	if d := tr.Spans()[open].DurUS; d != 0 {
		t.Errorf("backwards End gave DurUS %d, want 0", d)
	}
	if tr.Len() != 5 {
		t.Errorf("Len = %d, want 5", tr.Len())
	}
}
