// Package obs is the dependency-free observability core of the repository:
// atomic counters and gauges, fixed-bucket histograms, and a registry that
// renders every registered instrument in the Prometheus text exposition
// format (version 0.0.4, the format every Prometheus-compatible scraper
// reads).
//
// The package exists because the serving layer (internal/service) and the
// simulator perf suite (internal/bench) both need instrumentation that is
// *allocation-free on the hot path*: the simulator's round loop and the
// colord job lifecycle are gated at zero steady-state heap allocations
// (BENCH_simcore.json pins allocs/round at 0), so an instrument that
// allocates per observation would regress the PR 3–4 contract the moment it
// was wired in. Every mutating operation here — Counter.Add, Gauge.Set,
// Histogram.Observe — is a fixed number of atomic operations on storage
// pre-sized at registration time; the allocation-regression tests pin this
// with testing.AllocsPerRun.
//
// Concurrency model: instruments are safe for concurrent use (atomics).
// Individual series are exact, but a scrape taken while writers are active
// may observe counters from slightly different instants — the same
// guarantee Prometheus client libraries give. Callers that need a coherent
// multi-series snapshot (the colord /v1/metrics JSON view) take their own
// lock around both the writes and the reads; see internal/service.
//
// Exposition: Registry.WriteText renders families sorted by name, series
// within a family sorted by label signature, with one HELP/TYPE header per
// family and label values escaped per the format spec (backslash, quote,
// newline). The output is deterministic for a fixed set of registered
// instruments and values, which is what lets the service golden-test its
// /metrics page byte for byte.
//
// See DESIGN.md §9 for the metric naming scheme and bucket conventions.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Label is one key="value" pair attached to a series at registration.
// Labels are fixed for the lifetime of the instrument: this is a
// static-cardinality core (every series is declared up front), which is
// what keeps observation allocation-free and exposition deterministic.
type Label struct {
	Key   string
	Value string
}

// metricKind is the TYPE line of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is the registry's view of one registered instrument.
type series struct {
	name   string
	help   string
	kind   metricKind
	labels []Label
	sig    string // rendered label block, the within-family sort key

	c    *Counter
	g    *Gauge
	gf   func() int64
	hist *Histogram
}

// Registry holds a fixed set of instruments and renders them as Prometheus
// text. Registration normally happens at startup; it is nevertheless
// mutex-guarded so late registration (tests, optional subsystems) is safe.
type Registry struct {
	mu     sync.Mutex
	series []*series
	names  map[string]metricKind // family name → kind, for conflict checks
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]metricKind)}
}

// register adds one series, panicking on a name/kind conflict or a
// duplicate (name, labels) series — registration is programmer intent, not
// input, exactly like distcolor.RegisterAlgorithm.
func (r *Registry) register(s *series) {
	if s.name == "" {
		panic("obs: register: empty metric name")
	}
	s.sig = labelBlock(s.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.names[s.name]; ok && k != s.kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", s.name, k, s.kind))
	}
	r.names[s.name] = s.kind
	for _, prev := range r.series {
		if prev.name == s.name && prev.sig == s.sig {
			panic(fmt.Sprintf("obs: duplicate series %s%s", s.name, s.sig))
		}
	}
	r.series = append(r.series, s)
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative; this is not
// checked on the hot path).
//
//distcolor:noalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//distcolor:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
//
//distcolor:noalloc
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
//
//distcolor:noalloc
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewCounter registers a counter series. By Prometheus convention the name
// ends in _total.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&series{name: name, help: help, kind: kindCounter, labels: labels, c: c})
	return c
}

// NewGauge registers a gauge series.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&series{name: name, help: help, kind: kindGauge, labels: labels, g: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is sampled by fn at scrape
// time — for values that already live behind someone else's lock (queue
// depth, cache entries) where mirroring into an atomic would either tear or
// double the bookkeeping. fn runs on the scrape goroutine; it may take
// locks but must not call back into this registry.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&series{name: name, help: help, kind: kindGauge, labels: labels, gf: fn})
}

// NewCounterFunc registers a counter whose value is sampled by fn at
// scrape time — for monotone counts another subsystem already maintains
// (the WAL's append/fsync tallies). fn must be monotonically
// non-decreasing; the same scrape-goroutine rules as NewGaugeFunc apply.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&series{name: name, help: help, kind: kindCounter, labels: labels, gf: fn})
}

// Histogram is a fixed-bucket histogram: bucket upper bounds are declared
// at registration and never change, so Observe is a bounded scan plus two
// atomic adds — no allocation, no resizing, no locks.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, ascending; an
	// implicit +Inf bucket catches everything above the last bound.
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, non-cumulative; +Inf last
	sum    atomic.Int64
}

// Observe records one value.
//
//distcolor:noalloc
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// attributing every observation in a bucket to its upper bound — the same
// upper-bound estimate a Prometheus histogram_quantile gives without
// interpolation. Returns 0 when the histogram is empty; observations in
// the +Inf bucket report the last finite bound.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp to last finite bound
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// NewHistogram registers a histogram with the given ascending bucket upper
// bounds (an implicit +Inf bucket is always appended). It panics on empty
// or non-ascending bounds.
func (r *Registry) NewHistogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(&series{name: name, help: help, kind: kindHistogram, labels: labels, hist: h})
	return h
}

// ExpBuckets returns count ascending bounds starting at start and
// multiplying by factor — the standard way to size latency and byte-size
// buckets. It panics on a non-positive start or a factor ≤ 1.
func ExpBuckets(start int64, factor float64, count int) []int64 {
	if start <= 0 || factor <= 1 || count <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count > 0")
	}
	out := make([]int64, count)
	v := float64(start)
	for i := range out {
		b := int64(v)
		if i > 0 && b <= out[i-1] {
			b = out[i-1] + 1 // integer rounding must not break ascent
		}
		out[i] = b
		v *= factor
	}
	return out
}

// Pow2Buckets returns bounds 2^lo .. 2^hi — the bucket convention for
// message-size (bits) histograms, where the CONGEST yardstick is "how many
// words, roughly" rather than fine-grained bytes.
func Pow2Buckets(lo, hi int) []int64 {
	if lo < 0 || hi < lo || hi > 62 {
		panic("obs: Pow2Buckets needs 0 <= lo <= hi <= 62")
	}
	out := make([]int64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, int64(1)<<e)
	}
	return out
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line: backslash and newline (quotes are legal).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labelBlock renders a sorted {k="v",...} block, or "" without labels.
func labelBlock(labels []Label) string {
	return labelBlockExtra(labels, "", "")
}

// labelBlockExtra renders the label block with one extra pair appended
// (the histogram le label); extraKey == "" appends nothing.
func labelBlockExtra(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(sorted) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders every registered series in the Prometheus text format:
// families sorted by name (one HELP/TYPE header each), series within a
// family sorted by label signature. Gauge funcs are sampled on the calling
// goroutine. The scrape path allocates; only observation is allocation-free.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ordered := append([]*series(nil), r.series...)
	r.mu.Unlock()
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].name != ordered[j].name {
			return ordered[i].name < ordered[j].name
		}
		return ordered[i].sig < ordered[j].sig
	})
	var b strings.Builder
	prevFamily := ""
	for _, s := range ordered {
		if s.name != prevFamily {
			prevFamily = s.name
			fmt.Fprintf(&b, "# HELP %s %s\n", s.name, escapeHelp(s.help))
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
		}
		switch {
		case s.c != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.sig, s.c.Value())
		case s.g != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.sig, s.g.Value())
		case s.gf != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.sig, s.gf())
		case s.hist != nil:
			writeHistogram(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count. Counts are read non-atomically across buckets; per the package
// concurrency model a scrape racing writers may be off by in-flight
// observations, never corrupt.
func writeHistogram(b *strings.Builder, s *series) {
	h := s.hist
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, labelBlockExtra(s.labels, "le", formatBound(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, labelBlockExtra(s.labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %d\n", s.name, s.sig, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", s.name, s.sig, cum)
}

// formatBound renders an integer bucket bound as the exposition format's
// float (no trailing .0 needed; Prometheus accepts plain integers).
func formatBound(v int64) string { return strconv.FormatInt(v, 10) }
