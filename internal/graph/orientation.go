package graph

import "fmt"

// Orientation assigns a direction to every edge of a graph. Section 5 of the
// paper builds its connectors on acyclic orientations with bounded
// out-degree obtained from H-partitions.
type Orientation struct {
	g    *Graph
	head []int32 // head[e] = vertex the edge points to
}

// NewOrientation creates an orientation of g where head[e] names the head
// (target) of edge e. head[e] must be one of e's endpoints.
func NewOrientation(g *Graph, head []int32) (*Orientation, error) {
	if len(head) != g.M() {
		return nil, fmt.Errorf("graph: orientation has %d heads for %d edges", len(head), g.M())
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if int(head[e]) != u && int(head[e]) != v {
			return nil, fmt.Errorf("graph: head %d is not an endpoint of edge %d={%d,%d}", head[e], e, u, v)
		}
	}
	h := make([]int32, len(head))
	copy(h, head)
	return &Orientation{g: g, head: h}, nil
}

// OrientByOrder orients every edge toward the endpoint with the larger rank.
// Vertices with equal rank tiebreak by vertex index. The result is always
// acyclic. This is exactly how [4] turns an H-partition into an acyclic
// orientation (toward higher H-index, ties toward higher ID).
func OrientByOrder(g *Graph, rank []int) *Orientation {
	head := make([]int32, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if rank[u] > rank[v] || (rank[u] == rank[v] && u > v) {
			head[e] = int32(u)
		} else {
			head[e] = int32(v)
		}
	}
	return &Orientation{g: g, head: head}
}

// Graph returns the underlying undirected graph.
func (o *Orientation) Graph() *Graph { return o.g }

// Head returns the head (target) vertex of edge e.
func (o *Orientation) Head(e int) int { return int(o.head[e]) }

// Tail returns the tail (source) vertex of edge e.
func (o *Orientation) Tail(e int) int { return o.g.Other(e, int(o.head[e])) }

// OutEdges returns the identifiers of edges oriented out of v.
func (o *Orientation) OutEdges(v int) []int {
	var out []int
	for _, a := range o.g.Adj(v) {
		if int(o.head[a.Edge]) != v {
			out = append(out, int(a.Edge))
		}
	}
	return out
}

// InEdges returns the identifiers of edges oriented into v.
func (o *Orientation) InEdges(v int) []int {
	var in []int
	for _, a := range o.g.Adj(v) {
		if int(o.head[a.Edge]) == v {
			in = append(in, int(a.Edge))
		}
	}
	return in
}

// OutDegree returns the out-degree of v.
func (o *Orientation) OutDegree(v int) int {
	d := 0
	for _, a := range o.g.Adj(v) {
		if int(o.head[a.Edge]) != v {
			d++
		}
	}
	return d
}

// MaxOutDegree returns the maximum out-degree over all vertices.
func (o *Orientation) MaxOutDegree() int {
	max := 0
	for v := 0; v < o.g.N(); v++ {
		if d := o.OutDegree(v); d > max {
			max = d
		}
	}
	return max
}

// IsAcyclic reports whether the orientation contains no directed cycle,
// using Kahn's algorithm.
func (o *Orientation) IsAcyclic() bool {
	n := o.g.N()
	indeg := make([]int, n)
	for e := 0; e < o.g.M(); e++ {
		indeg[o.head[e]]++
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	processed := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for _, e := range o.OutEdges(v) {
			h := int(o.head[e])
			indeg[h]--
			if indeg[h] == 0 {
				queue = append(queue, h)
			}
		}
	}
	return processed == n
}
