package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrientByOrderIsAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphRNG(rng, 40, 0.15)
		rank := rng.Perm(g.N())
		o := OrientByOrder(g, rank)
		return o.IsAcyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOrientationDegrees(t *testing.T) {
	g := Complete(5)
	rank := []int{0, 1, 2, 3, 4}
	o := OrientByOrder(g, rank)
	// With distinct ranks on K5, orientation is the total order: vertex i
	// has out-degree 4-i.
	for v := 0; v < 5; v++ {
		if got := o.OutDegree(v); got != 4-v {
			t.Fatalf("out-degree of %d = %d, want %d", v, got, 4-v)
		}
		if len(o.InEdges(v))+len(o.OutEdges(v)) != g.Degree(v) {
			t.Fatal("in+out != degree")
		}
	}
	if o.MaxOutDegree() != 4 {
		t.Fatalf("max out-degree %d", o.MaxOutDegree())
	}
}

func TestOrientationHeadTail(t *testing.T) {
	g := Path(3)
	o := OrientByOrder(g, []int{0, 1, 2})
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if o.Head(e) != v || o.Tail(e) != u {
			t.Fatalf("edge %d: head=%d tail=%d, want %d,%d", e, o.Head(e), o.Tail(e), v, u)
		}
	}
}

func TestNewOrientationValidates(t *testing.T) {
	g := Path(3)
	if _, err := NewOrientation(g, []int32{0}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := NewOrientation(g, []int32{2, 0}); err == nil {
		t.Fatal("expected endpoint error (vertex 2 not on edge 0)")
	}
	o, err := NewOrientation(g, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// 0<-1->... wait: edge 0 = {0,1} head 0, edge 1 = {1,2} head 1: both
	// point into the middle-left; graph is 0 <- 1 <- 2? No: edge1={1,2},
	// head=1 means 2 -> 1. So directed edges are 1->0 and 2->1: acyclic.
	if !o.IsAcyclic() {
		t.Fatal("expected acyclic")
	}
}

func TestCycleOrientationDetection(t *testing.T) {
	g := Cycle(3)
	// Orient each edge u->v cyclically: edges are {0,1},{0,2},{1,2}.
	// 0->1, 1->2, 2->0 gives heads: edge{0,1}:1, edge{0,2}:0, edge{1,2}:2.
	o, err := NewOrientation(g, []int32{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if o.IsAcyclic() {
		t.Fatal("directed triangle should be cyclic")
	}
}

func TestDegeneracyOrder(t *testing.T) {
	// A tree has degeneracy 1.
	if _, d := DegeneracyOrder(Path(10)); d != 1 {
		t.Fatalf("path degeneracy %d, want 1", d)
	}
	// K_n has degeneracy n-1.
	if _, d := DegeneracyOrder(Complete(6)); d != 5 {
		t.Fatalf("K6 degeneracy %d, want 5", d)
	}
	// Cycle has degeneracy 2.
	if _, d := DegeneracyOrder(Cycle(8)); d != 2 {
		t.Fatalf("cycle degeneracy %d, want 2", d)
	}
	// Empty graph.
	if _, d := DegeneracyOrder(NewBuilder(5).MustBuild()); d != 0 {
		t.Fatalf("empty degeneracy %d, want 0", d)
	}
}

func TestDegeneracyOrderIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphRNG(rng, 50, 0.1)
		order, d := DegeneracyOrder(g)
		if len(order) != g.N() {
			return false
		}
		pos := make([]int, g.N())
		seen := make([]bool, g.N())
		for i, v := range order {
			if seen[v] {
				return false
			}
			seen[v] = true
			pos[v] = i
		}
		// Defining property: each vertex has ≤ d neighbors later in order.
		for v := 0; v < g.N(); v++ {
			later := 0
			for _, a := range g.Adj(v) {
				if pos[a.To] > pos[v] {
					later++
				}
			}
			if later > d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestArboricityUpperBound(t *testing.T) {
	if a := ArboricityUpperBound(Path(10)); a != 1 {
		t.Fatalf("path arboricity bound %d", a)
	}
	if a := ArboricityUpperBound(NewBuilder(3).MustBuild()); a != 0 {
		t.Fatalf("empty arboricity bound %d", a)
	}
	// Bound must be ≥ m/(n-1) (Nash-Williams lower bound).
	g := Complete(10)
	if a := ArboricityUpperBound(g); a < 5 {
		t.Fatalf("K10 arboricity bound %d too small", a)
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(Path(5)) || !IsConnected(NewBuilder(0).MustBuild()) {
		t.Fatal("connected graphs misreported")
	}
	if IsConnected(NewBuilder(2).MustBuild()) {
		t.Fatal("two isolated vertices are not connected")
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(Star(5))
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("star histogram wrong: %v", h)
	}
}
