package graph

import "sync"

// CSR is the flat compressed-sparse-row view of a Graph: the arcs of vertex
// v occupy the index range [Off[v], Off[v+1]) of the parallel arrays To and
// Edge, in exactly the order of Adj(v) (so an index into the range is the
// vertex's port number). Mate closes the view under edge reversal: for the
// arc at index j (v → To[j] over edge Edge[j]), Mate[j] is the index of the
// opposite arc (To[j] → v over the same edge), which is precisely the inbox
// slot of To[j] fed by v. Mate is an involution: Mate[Mate[j]] == j.
//
// The view is built once per Graph and cached; all four slices are shared
// across callers and must be treated as read-only. The simulator's message
// plane (internal/sim) is laid out directly over these offsets: one flat
// message slab indexed by arc, with Mate as the delivery permutation.
type CSR struct {
	Off  []int32 // len N()+1; arcs of v are [Off[v], Off[v+1])
	To   []int32 // len 2·M(); neighbor endpoint of each arc
	Edge []int32 // len 2·M(); undirected edge identifier of each arc
	Mate []int32 // len 2·M(); index of the reverse arc
}

// NumArcs returns the number of directed arcs (2·M()).
func (c *CSR) NumArcs() int { return len(c.To) }

// Degree returns the degree of v (the width of its arc range).
func (c *CSR) Degree(v int) int { return int(c.Off[v+1] - c.Off[v]) }

// Range returns the arc index range of v: arcs [lo, hi).
func (c *CSR) Range(v int) (lo, hi int32) { return c.Off[v], c.Off[v+1] }

// csrCache holds the lazily built view. It lives in its own struct so that
// Graph construction sites never need to initialize it: the zero value is
// ready for use.
type csrCache struct {
	once sync.Once
	view *CSR
}

// CSR returns the flat view of g, building it on first use. The result is
// cached on the graph (graphs are immutable), so repeated calls return the
// same arrays; concurrent callers are safe.
func (g *Graph) CSR() *CSR {
	g.csr.once.Do(func() { g.csr.view = buildCSR(g) })
	return g.csr.view
}

func buildCSR(g *Graph) *CSR {
	n := g.N()
	arcs := 2 * g.M()
	c := &CSR{
		Off:  make([]int32, n+1),
		To:   make([]int32, arcs),
		Edge: make([]int32, arcs),
		Mate: make([]int32, arcs),
	}
	idx := int32(0)
	for v := 0; v < n; v++ {
		c.Off[v] = idx
		for _, a := range g.adj[v] {
			c.To[idx] = a.To
			c.Edge[idx] = a.Edge
			idx++
		}
	}
	c.Off[n] = idx
	// Each undirected edge appears as exactly two arcs; pair them up.
	first := make([]int32, g.M())
	for e := range first {
		first[e] = -1
	}
	for j := int32(0); j < idx; j++ {
		e := c.Edge[j]
		if first[e] < 0 {
			first[e] = j
		} else {
			c.Mate[j] = first[e]
			c.Mate[first[e]] = j
		}
	}
	return c
}
