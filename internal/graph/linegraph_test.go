package graph

import (
	"math/rand"
	"testing"
)

func TestLineGraphOfPath(t *testing.T) {
	// L(P4) = P3.
	lg := LineGraph(Path(4))
	if lg.L.N() != 3 || lg.L.M() != 2 {
		t.Fatalf("L(P4): n=%d m=%d, want 3,2", lg.L.N(), lg.L.M())
	}
}

func TestLineGraphOfStar(t *testing.T) {
	// L(K_{1,k}) = K_k.
	lg := LineGraph(Star(6))
	if lg.L.N() != 5 || lg.L.M() != 10 {
		t.Fatalf("L(star): n=%d m=%d, want 5,10", lg.L.N(), lg.L.M())
	}
}

func TestLineGraphOfTriangle(t *testing.T) {
	// L(K3) = K3; edges meet pairwise at distinct vertices, so no duplicate
	// L-edges may be generated.
	lg := LineGraph(Cycle(3))
	if lg.L.N() != 3 || lg.L.M() != 3 {
		t.Fatalf("L(K3): n=%d m=%d, want 3,3", lg.L.N(), lg.L.M())
	}
}

func TestLineGraphAdjacencyDefinition(t *testing.T) {
	g := randomGraph(t, 25, 0.25, 11)
	lg := LineGraph(g)
	if lg.L.N() != g.M() {
		t.Fatalf("L-vertices %d != edges %d", lg.L.N(), g.M())
	}
	// Two L-vertices adjacent iff underlying edges share an endpoint.
	for e1 := 0; e1 < g.M(); e1++ {
		for e2 := e1 + 1; e2 < g.M(); e2++ {
			u1, v1 := g.Endpoints(e1)
			u2, v2 := g.Endpoints(e2)
			share := u1 == u2 || u1 == v2 || v1 == u2 || v1 == v2
			if lg.L.HasEdge(e1, e2) != share {
				t.Fatalf("L adjacency wrong for edges %d,%d", e1, e2)
			}
		}
	}
}

func TestLineGraphCliqueCoverIsDiversity2(t *testing.T) {
	g := randomGraph(t, 30, 0.2, 3)
	lg := LineGraph(g)
	// Each L-vertex (edge of g) appears in exactly the two cliques of its
	// endpoints.
	count := make([]int, lg.L.N())
	for _, c := range lg.Cliques {
		for _, x := range c {
			count[x]++
		}
	}
	for e, cnt := range count {
		if cnt != 2 {
			t.Fatalf("edge %d appears in %d cliques, want 2", e, cnt)
		}
	}
	// Each clique is indeed a clique in L(g).
	for v, c := range lg.Cliques {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !lg.L.HasEdge(int(c[i]), int(c[j])) {
					t.Fatalf("clique of vertex %d not complete in L(G)", v)
				}
			}
		}
	}
	// Cover property: every L-edge lies inside some clique.
	covered := make([]bool, lg.L.M())
	for _, c := range lg.Cliques {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if id, ok := lg.L.EdgeID(int(c[i]), int(c[j])); ok {
					covered[id] = true
				}
			}
		}
	}
	for e, ok := range covered {
		if !ok {
			t.Fatalf("L-edge %d not covered by any clique", e)
		}
	}
}

func TestHypergraphValidation(t *testing.T) {
	if _, err := NewHypergraph(5, 3, [][]int{{0, 1}}); err == nil {
		t.Fatal("expected rank mismatch error")
	}
	if _, err := NewHypergraph(5, 3, [][]int{{0, 1, 1}}); err == nil {
		t.Fatal("expected repeated-vertex error")
	}
	if _, err := NewHypergraph(5, 3, [][]int{{0, 1, 7}}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := NewHypergraph(5, 1, nil); err == nil {
		t.Fatal("expected rank error")
	}
	h, err := NewHypergraph(5, 3, [][]int{{4, 2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if h.Edges[0][0] != 0 || h.Edges[0][2] != 4 {
		t.Fatal("hyperedge not sorted")
	}
}

func TestHypergraphLineGraphDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nv, rank, ne := 40, 3, 60
	var edges [][]int
	for len(edges) < ne {
		perm := rng.Perm(nv)[:rank]
		edges = append(edges, perm)
	}
	h, err := NewHypergraph(nv, rank, edges)
	if err != nil {
		t.Fatal(err)
	}
	lg := h.LineGraph()
	if lg.L.N() != ne {
		t.Fatalf("line graph has %d vertices, want %d", lg.L.N(), ne)
	}
	// Diversity bound: every L-vertex is in at most rank cliques.
	count := make([]int, ne)
	for _, c := range lg.Cliques {
		for _, x := range c {
			count[x]++
		}
	}
	for id, cnt := range count {
		if cnt != rank {
			t.Fatalf("hyperedge %d in %d cliques, want %d (one per vertex)", id, cnt, rank)
		}
	}
	// Adjacency: two hyperedges adjacent iff they intersect.
	for i := 0; i < ne; i++ {
		for j := i + 1; j < ne; j++ {
			intersect := false
			for _, a := range h.Edges[i] {
				for _, b := range h.Edges[j] {
					if a == b {
						intersect = true
					}
				}
			}
			if lg.L.HasEdge(i, j) != intersect {
				t.Fatalf("hypergraph line adjacency wrong for %d,%d", i, j)
			}
		}
	}
}
