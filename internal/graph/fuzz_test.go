package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// FuzzReadEdgeList drives the edge-list parser with arbitrary input (run
// via `make fuzz`). Invariants on accepted input: the graph is well-formed
// (non-negative n, endpoints in range — the parser, not the int32-narrowing
// Builder, must enforce this) and WriteEdgeList∘ReadEdgeList is the
// identity on the edge multiset.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("n 5\n# comment\n0 1\n")
	f.Add("")
	f.Add("n -1\n")
	f.Add("n 3\n0 99\n")
	f.Add("4294967299 1\n")
	f.Add("0 1\n0 1\n1 0\n")
	f.Fuzz(func(t *testing.T, s string) {
		// Bound the memory a single input can demand: a tiny input can
		// declare a huge vertex count, which is legal but allocates O(n).
		for _, field := range strings.Fields(s) {
			if v, err := strconv.Atoi(field); err == nil && (v > 1<<20 || v < -(1<<20)) {
				t.Skip("declared size out of fuzz bounds")
			}
		}
		g, err := ReadEdgeList(strings.NewReader(s))
		if err != nil {
			return // rejected input is fine; crashing or wrapping is not
		}
		if g.N() < 0 {
			t.Fatalf("accepted graph with negative vertex count %d", g.N())
		}
		for _, e := range g.Edges() {
			if e.U < 0 || e.V < 0 || int(e.U) >= g.N() || int(e.V) >= g.N() {
				t.Fatalf("accepted out-of-range edge {%d,%d} with n=%d", e.U, e.V, g.N())
			}
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("WriteEdgeList on accepted graph: %v", err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written edge list: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: n %d→%d, m %d→%d", g.N(), g2.N(), g.M(), g2.M())
		}
		for e := 0; e < g.M(); e++ {
			u1, v1 := g.Endpoints(e)
			u2, v2 := g2.Endpoints(e)
			if u1 != u2 || v1 != v2 {
				t.Fatalf("round trip changed edge %d: {%d,%d}→{%d,%d}", e, u1, v1, u2, v2)
			}
		}
	})
}
