package graph_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// relabel returns the isomorphic copy of g with vertex v renamed perm[v].
func relabel(g *graph.Graph, perm []int) *graph.Graph {
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(perm[e.U], perm[e.V])
	}
	return b.MustBuild()
}

// canonicalFamilies is the relabeling-invariance corpus: random families
// plus highly symmetric structured ones (where WL refinement alone cannot
// discretize and the individualization path is exercised).
func canonicalFamilies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":         gen.GNP(40, 0.15, 7),
		"gnp-dense":   gen.GNP(24, 0.5, 11),
		"forestunion": gen.ForestUnion(60, 3, 5),
		"geometric":   gen.Geometric(50, 0.25, 3),
		"grid":        gen.Grid(5, 7),
		"complete":    graph.Complete(9),
		"cycle":       graph.Cycle(12),
		"path":        graph.Path(12),
		"star":        graph.Star(11),
		"bipartite":   graph.CompleteBipartite(4, 6),
		"empty":       graph.NewBuilder(8).MustBuild(),
	}
}

func TestCanonicalLabelingIsPermutation(t *testing.T) {
	for name, g := range canonicalFamilies() {
		perm := graph.CanonicalLabeling(g)
		if len(perm) != g.N() {
			t.Fatalf("%s: labeling has %d entries for %d vertices", name, len(perm), g.N())
		}
		seen := make([]bool, g.N())
		for v, p := range perm {
			if p < 0 || int(p) >= g.N() || seen[p] {
				t.Fatalf("%s: perm[%d]=%d is not a bijection", name, v, p)
			}
			seen[p] = true
		}
	}
}

func TestCanonicalHashInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, g := range canonicalFamilies() {
		want := graph.CanonicalHash(g)
		for trial := 0; trial < 4; trial++ {
			perm := rng.Perm(g.N())
			h := relabel(g, perm)
			if got := graph.CanonicalHash(h); got != want {
				t.Fatalf("%s trial %d: relabeled copy hashes %s, original %s", name, trial, got, want)
			}
		}
	}
}

// TestCanonicalHashDistinct is the property-style collision sweep: a corpus
// of pairwise non-isomorphic graphs must produce pairwise distinct hashes.
func TestCanonicalHashDistinct(t *testing.T) {
	corpus := map[string]*graph.Graph{}
	// The structured families skip their few cross-family isomorphisms:
	// C3 = K3, star-3 = path-3, and the 2×2 grid = C4.
	for n := 3; n <= 12; n++ {
		corpus[fmt.Sprintf("path-%d", n)] = graph.Path(n)
		corpus[fmt.Sprintf("complete-%d", n)] = graph.Complete(n)
		if n >= 4 {
			corpus[fmt.Sprintf("cycle-%d", n)] = graph.Cycle(n)
			corpus[fmt.Sprintf("star-%d", n)] = graph.Star(n)
		}
	}
	for rows := 2; rows <= 4; rows++ {
		for cols := rows; cols <= 5; cols++ {
			if rows == 2 && cols == 2 {
				continue
			}
			corpus[fmt.Sprintf("grid-%dx%d", rows, cols)] = gen.Grid(rows, cols)
		}
	}
	// Random sweep: distinct seeds give structurally distinct samples (an
	// accidental isomorphism between two G(24, 0.2) samples has negligible
	// probability and would be a legitimate finding anyway).
	for seed := int64(0); seed < 60; seed++ {
		corpus[fmt.Sprintf("gnp-%d", seed)] = gen.GNP(24, 0.2, seed)
	}
	for seed := int64(0); seed < 20; seed++ {
		corpus[fmt.Sprintf("forest-%d", seed)] = gen.ForestUnion(30, 2, seed)
	}
	hashes := map[string]string{}
	for name, g := range corpus {
		h := graph.CanonicalHash(g)
		if prev, ok := hashes[h]; ok {
			t.Fatalf("hash collision between %s and %s (%s)", prev, name, h)
		}
		hashes[h] = name
	}
}

// TestCanonicalEdgeOrderTransfersColorings is the property the service
// cache relies on: a proper edge coloring transferred between isomorphic
// copies via their canonical edge orders stays proper.
func TestCanonicalEdgeOrderTransfersColorings(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, g := range canonicalFamilies() {
		if g.M() == 0 {
			continue
		}
		// A greedy (2Δ−1) proper edge coloring of g.
		colors := greedyEdgeColors(g)
		palette := int64(2*g.MaxDegree() - 1)
		if err := verify.EdgeColoring(g, colors, palette); err != nil {
			t.Fatalf("%s: greedy coloring invalid: %v", name, err)
		}
		permG := graph.CanonicalLabeling(g)
		ordG := graph.CanonicalEdgeOrder(g, permG)

		vperm := rng.Perm(g.N())
		h := relabel(g, vperm)
		permH := graph.CanonicalLabeling(h)
		ordH := graph.CanonicalEdgeOrder(h, permH)

		transferred := make([]int64, h.M())
		for i := range ordG {
			transferred[ordH[i]] = colors[ordG[i]]
		}
		if err := verify.EdgeColoring(h, transferred, palette); err != nil {
			t.Fatalf("%s: transferred coloring invalid: %v", name, err)
		}
	}
}

// greedyEdgeColors produces a proper (2Δ−1)-edge-coloring sequentially.
func greedyEdgeColors(g *graph.Graph) []int64 {
	colors := make([]int64, g.M())
	for e := range colors {
		colors[e] = -1
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		used := map[int64]bool{}
		for _, a := range g.Adj(u) {
			if colors[a.Edge] >= 0 {
				used[colors[a.Edge]] = true
			}
		}
		for _, a := range g.Adj(v) {
			if colors[a.Edge] >= 0 {
				used[colors[a.Edge]] = true
			}
		}
		for c := int64(0); ; c++ {
			if !used[c] {
				colors[e] = c
				break
			}
		}
	}
	return colors
}
