package graph

import "testing"

func TestDenseIndexBasics(t *testing.T) {
	d := AcquireDenseIndex(8)
	defer d.Release()
	if d.Has(3) {
		t.Fatal("fresh index reports a key")
	}
	d.Put(3, 7)
	if v, ok := d.Get(3); !ok || v != 7 {
		t.Fatalf("Get(3) = %d,%v", v, ok)
	}
	d.Reset(8)
	if d.Has(3) {
		t.Fatal("Reset did not forget key 3")
	}
}

func TestDenseIndexDoubleReleasePanics(t *testing.T) {
	d := AcquireDenseIndex(4)
	d.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	d.Release()
}

// TestInducedSubgraphDoesNotLeakDenseIndex audits the pooled-index
// discipline of InducedSubgraph on its success path and on every
// early-return error path (out-of-range vertex, duplicate vertex) — the
// paths a defer-less Release would leak on.
func TestInducedSubgraphDoesNotLeakDenseIndex(t *testing.T) {
	g := Cycle(8)
	if leaked := LeakCheckDenseIndexes(func() {
		if _, err := InducedSubgraph(g, []int{0, 1, 2, 3}); err != nil {
			t.Errorf("valid induced subgraph failed: %v", err)
		}
		if _, err := InducedSubgraph(g, []int{0, 99}); err == nil {
			t.Error("out-of-range vertex accepted")
		}
		if _, err := InducedSubgraph(g, []int{0, 1, 1}); err == nil {
			t.Error("duplicate vertex accepted")
		}
	}); leaked != 0 {
		t.Fatalf("InducedSubgraph leaked %d pooled dense indexes", leaked)
	}
}
