package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(t, 20, 0.3, 99)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %d,%d vs %d,%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if !g2.HasEdge(u, v) {
			t.Fatalf("edge {%d,%d} lost in round trip", u, v)
		}
	}
}

func TestReadEdgeListWithoutHeader(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n# comment\n\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{
		"0\n",        // one field
		"0 x\n",      // non-numeric
		"n\n",        // malformed header
		"n 2\n0 5\n", // out of range via header
		"0 0\n",      // self loop
	} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q: expected error", bad)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, Path(3), "p3", []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "p3"`, `0 [label="a"]`, "0 -- 1", "1 -- 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
