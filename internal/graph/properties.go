package graph

// DegeneracyOrder computes a degeneracy ordering of g by repeatedly removing
// a minimum-degree vertex (bucket queue, O(n+m)). It returns the order
// (first-removed first) and the degeneracy d: the largest degree seen at
// removal time.
//
// Degeneracy bounds arboricity: a(G) ≤ d(G) ≤ 2a(G) − 1, so d is the
// arboricity estimate we hand to Section 5 when the caller does not know a
// exactly. Orienting each edge from earlier to later in the order gives an
// acyclic orientation with out-degree ≤ d.
func DegeneracyOrder(g *Graph) (order []int, degeneracy int) {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// buckets[d] holds vertices of current degree d.
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		// The minimum current degree can drop by at most 1 per removal, so a
		// moving pointer with a single step back keeps this linear overall.
		if cur > 0 {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		// Pop a vertex with the (lazily maintained) minimum degree.
		var v int
		for {
			b := buckets[cur]
			v = b[len(b)-1]
			buckets[cur] = b[:len(b)-1]
			if !removed[v] && deg[v] == cur {
				break
			}
			// Stale entry; find the next candidate, advancing buckets as
			// they drain.
			for cur <= maxDeg && len(buckets[cur]) == 0 {
				cur++
			}
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, a := range g.Adj(v) {
			u := int(a.To)
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
			}
		}
	}
	return order, degeneracy
}

// ArboricityUpperBound returns an upper bound on the arboricity of g derived
// from its degeneracy (a ≤ degeneracy always, and degeneracy ≤ 2a−1, so the
// bound is within a factor 2 of the truth).
func ArboricityUpperBound(g *Graph) int {
	if g.M() == 0 {
		return 0
	}
	_, d := DegeneracyOrder(g)
	if d == 0 {
		d = 1
	}
	return d
}

// IsConnected reports whether g is connected (the empty graph is connected).
func IsConnected(g *Graph) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.Adj(v) {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, int(a.To))
			}
		}
	}
	return count == n
}

// DegreeHistogram returns hist where hist[d] counts vertices of degree d.
func DegreeHistogram(g *Graph) []int {
	hist := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		hist[g.Degree(v)]++
	}
	return hist
}
