package graph

import (
	"sync"
	"sync/atomic"
)

// DenseIndex is a reusable vertex→index translation table: the
// allocation-free replacement for the `map[int]int` (and `map[int32]int32`)
// tables the recursive decompositions used to rebuild at every level of
// every run. It is an epoch-stamped dense array — Reset is O(1), Put/Get
// are branch-and-load — and instances are pooled (AcquireDenseIndex /
// Release), so a deep recursion reuses one table's backing storage across
// all its levels instead of allocating a fresh map per subgraph.
//
// A DenseIndex is single-goroutine state; concurrent recursions each
// acquire their own.
type DenseIndex struct {
	stamp []uint32
	val   []int32
	cur   uint32
	// released guards the pool discipline: Release on an already-released
	// index panics instead of double-pooling it (two later acquirers would
	// share "distinct" tables and silently corrupt each other's entries).
	released bool
}

// Reset prepares the table for keys in [0, n), forgetting all entries in
// O(1) (amortized: storage growth and the once-per-4-billion-resets stamp
// wraparound are the only non-constant paths).
func (d *DenseIndex) Reset(n int) {
	if n > len(d.stamp) {
		d.stamp = make([]uint32, n+n/2)
		d.val = make([]int32, len(d.stamp))
		d.cur = 0
	}
	d.cur++
	if d.cur == 0 { // stamp wrapped: old entries would look current
		for i := range d.stamp {
			d.stamp[i] = 0
		}
		d.cur = 1
	}
}

// Put records key → v. The key must be below the Reset bound.
func (d *DenseIndex) Put(key int, v int32) {
	d.stamp[key] = d.cur
	d.val[key] = v
}

// Get returns the value recorded for key since the last Reset.
func (d *DenseIndex) Get(key int) (int32, bool) {
	if d.stamp[key] != d.cur {
		return 0, false
	}
	return d.val[key], true
}

// Has reports whether key was Put since the last Reset.
func (d *DenseIndex) Has(key int) bool { return d.stamp[key] == d.cur }

var denseIndexPool = sync.Pool{New: func() any { return new(DenseIndex) }}

// denseIndexLive counts acquired-but-unreleased pooled indexes; see
// LiveDenseIndexes.
var denseIndexLive atomic.Int64

// AcquireDenseIndex returns a pooled table Reset for keys in [0, n).
// Balance every acquisition with exactly one Release — `defer d.Release()`
// immediately after acquiring, so error returns cannot leak the index.
func AcquireDenseIndex(n int) *DenseIndex {
	d := denseIndexPool.Get().(*DenseIndex)
	d.released = false
	denseIndexLive.Add(1)
	d.Reset(n)
	return d
}

// Release returns the table to the pool. The caller must not use it
// afterwards; releasing twice panics (a double-pooled table would be
// handed to two acquirers at once and corrupt both).
func (d *DenseIndex) Release() {
	if d.released {
		panic("graph: DenseIndex released twice")
	}
	d.released = true
	denseIndexLive.Add(-1)
	denseIndexPool.Put(d)
}

// LiveDenseIndexes reports the number of acquired-but-unreleased pooled
// indexes. It is a leak detector for tests: wrap an operation with
// LeakCheckDenseIndexes (or diff this counter around it) and require zero
// growth — including on the operation's error paths, which is where the
// defer-less call sites historically leaked.
func LiveDenseIndexes() int64 { return denseIndexLive.Load() }

// LeakCheckDenseIndexes runs fn and returns how many pooled indexes it
// acquired without releasing (negative would mean an over-release, which
// the double-release panic makes unreachable). Tests assert a zero return.
// The counter is process-global: do not run it concurrently with other
// acquirers.
func LeakCheckDenseIndexes(fn func()) int64 {
	before := denseIndexLive.Load()
	fn()
	return denseIndexLive.Load() - before
}
