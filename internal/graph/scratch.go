package graph

import "sync"

// DenseIndex is a reusable vertex→index translation table: the
// allocation-free replacement for the `map[int]int` (and `map[int32]int32`)
// tables the recursive decompositions used to rebuild at every level of
// every run. It is an epoch-stamped dense array — Reset is O(1), Put/Get
// are branch-and-load — and instances are pooled (AcquireDenseIndex /
// Release), so a deep recursion reuses one table's backing storage across
// all its levels instead of allocating a fresh map per subgraph.
//
// A DenseIndex is single-goroutine state; concurrent recursions each
// acquire their own.
type DenseIndex struct {
	stamp []uint32
	val   []int32
	cur   uint32
}

// Reset prepares the table for keys in [0, n), forgetting all entries in
// O(1) (amortized: storage growth and the once-per-4-billion-resets stamp
// wraparound are the only non-constant paths).
func (d *DenseIndex) Reset(n int) {
	if n > len(d.stamp) {
		d.stamp = make([]uint32, n+n/2)
		d.val = make([]int32, len(d.stamp))
		d.cur = 0
	}
	d.cur++
	if d.cur == 0 { // stamp wrapped: old entries would look current
		for i := range d.stamp {
			d.stamp[i] = 0
		}
		d.cur = 1
	}
}

// Put records key → v. The key must be below the Reset bound.
func (d *DenseIndex) Put(key int, v int32) {
	d.stamp[key] = d.cur
	d.val[key] = v
}

// Get returns the value recorded for key since the last Reset.
func (d *DenseIndex) Get(key int) (int32, bool) {
	if d.stamp[key] != d.cur {
		return 0, false
	}
	return d.val[key], true
}

// Has reports whether key was Put since the last Reset.
func (d *DenseIndex) Has(key int) bool { return d.stamp[key] == d.cur }

var denseIndexPool = sync.Pool{New: func() any { return new(DenseIndex) }}

// AcquireDenseIndex returns a pooled table Reset for keys in [0, n).
func AcquireDenseIndex(n int) *DenseIndex {
	d := denseIndexPool.Get().(*DenseIndex)
	d.Reset(n)
	return d
}

// Release returns the table to the pool. The caller must not use it
// afterwards.
func (d *DenseIndex) Release() { denseIndexPool.Put(d) }
