package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(3))
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("maxdeg = %d", g.MaxDegree())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) || g.HasEdge(1, 3) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestBuilderRejectsDuplicate(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 3)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected range error")
	}
}

func TestEdgeIdentifiers(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 {
		t.Fatalf("K5 has %d edges", g.M())
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if u >= v {
			t.Fatalf("endpoints not ordered: %d %d", u, v)
		}
		id, ok := g.EdgeID(u, v)
		if !ok || id != e {
			t.Fatalf("EdgeID(%d,%d) = %d,%v want %d", u, v, id, ok, e)
		}
		if g.Other(e, u) != v || g.Other(e, v) != u {
			t.Fatal("Other wrong")
		}
	}
	if _, ok := g.EdgeID(0, 0); ok {
		t.Fatal("self EdgeID should not exist")
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	g := randomGraph(t, 60, 0.15, 7)
	// Every arc corresponds to the edge's endpoints.
	for v := 0; v < g.N(); v++ {
		for _, a := range g.Adj(v) {
			u1, u2 := g.Endpoints(int(a.Edge))
			if u1 != v && u2 != v {
				t.Fatalf("arc edge %d not incident on %d", a.Edge, v)
			}
			if int(a.To) != g.Other(int(a.Edge), v) {
				t.Fatal("arc.To inconsistent")
			}
		}
	}
	// Degree sum = 2m.
	total := 0
	for v := 0; v < g.N(); v++ {
		total += g.Degree(v)
	}
	if total != 2*g.M() {
		t.Fatalf("degree sum %d != 2m %d", total, 2*g.M())
	}
}

func TestStandardGraphs(t *testing.T) {
	if g := Path(5); g.M() != 4 || g.MaxDegree() != 2 {
		t.Fatal("Path wrong")
	}
	if g := Cycle(5); g.M() != 5 || g.MaxDegree() != 2 {
		t.Fatal("Cycle wrong")
	}
	if g := Star(6); g.M() != 5 || g.MaxDegree() != 5 || g.Degree(1) != 1 {
		t.Fatal("Star wrong")
	}
	if g := CompleteBipartite(3, 4); g.M() != 12 || g.MaxDegree() != 4 {
		t.Fatal("CompleteBipartite wrong")
	}
	if g := Complete(1); g.M() != 0 {
		t.Fatal("K1 wrong")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(6)
	sub, err := InducedSubgraph(g, []int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if sub.G.N() != 3 || sub.G.M() != 3 {
		t.Fatalf("induced K3 expected, got n=%d m=%d", sub.G.N(), sub.G.M())
	}
	for v := 0; v < 3; v++ {
		want := []int{1, 3, 5}[v]
		if sub.OrigVertex(v) != want {
			t.Fatalf("OrigVertex(%d) = %d want %d", v, sub.OrigVertex(v), want)
		}
	}
	// Edge mapping: each sub edge maps to the parent edge on the original endpoints.
	for e := 0; e < sub.G.M(); e++ {
		u, v := sub.G.Endpoints(e)
		ou, ov := sub.OrigVertex(u), sub.OrigVertex(v)
		id, ok := g.EdgeID(ou, ov)
		if !ok || id != sub.OrigEdge(e) {
			t.Fatalf("edge map wrong: sub edge %d -> %d, want %d", e, sub.OrigEdge(e), id)
		}
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := Complete(4)
	if _, err := InducedSubgraph(g, []int{0, 0}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, err := InducedSubgraph(g, []int{0, 9}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestSpanningSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, err := SpanningSubgraph(g, func(e int) bool { return e%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if sub.G.N() != 6 || sub.G.M() != 3 {
		t.Fatalf("got n=%d m=%d", sub.G.N(), sub.G.M())
	}
	if sub.OrigVertex(4) != 4 {
		t.Fatal("spanning subgraph should keep vertex identity")
	}
	for e := 0; e < sub.G.M(); e++ {
		if sub.OrigEdge(e)%2 != 0 {
			t.Fatalf("kept odd edge %d", sub.OrigEdge(e))
		}
		u, v := sub.G.Endpoints(e)
		ou, ov := g.Endpoints(sub.OrigEdge(e))
		if u != ou || v != ov {
			t.Fatal("edge endpoints changed in spanning subgraph")
		}
	}
}

func TestSpanningFromEdges(t *testing.T) {
	g := Complete(5)
	sub, err := SpanningFromEdges(g, []int{0, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if sub.G.M() != 3 {
		t.Fatalf("want 3 edges, got %d", sub.G.M())
	}
	if _, err := SpanningFromEdges(g, []int{99}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestSubgraphEdgeMapQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphRNG(rng, 30, 0.2)
		var verts []int
		for v := 0; v < g.N(); v++ {
			if rng.Intn(2) == 0 {
				verts = append(verts, v)
			}
		}
		sub, err := InducedSubgraph(g, verts)
		if err != nil {
			return false
		}
		for e := 0; e < sub.G.M(); e++ {
			u, v := sub.G.Endpoints(e)
			id, ok := g.EdgeID(sub.OrigVertex(u), sub.OrigVertex(v))
			if !ok || id != sub.OrigEdge(e) {
				return false
			}
		}
		// Completeness: every parent edge between chosen vertices appears.
		chosen := make(map[int]bool)
		for _, v := range verts {
			chosen[v] = true
		}
		wantEdges := 0
		for e := 0; e < g.M(); e++ {
			u, v := g.Endpoints(e)
			if chosen[u] && chosen[v] {
				wantEdges++
			}
		}
		return wantEdges == sub.G.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// randomGraph builds a G(n,p) sample for tests inside this package (the gen
// package would be a circular import here).
func randomGraph(t *testing.T, n int, p float64, seed int64) *Graph {
	t.Helper()
	return randomGraphRNG(rand.New(rand.NewSource(seed)), n, p)
}

func randomGraphRNG(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}
