package graph

import (
	"fmt"
	"sort"
)

// Sub is a subgraph together with its embedding into a parent graph. It is
// the unit of recursion in the paper's decompositions: CD-Coloring recurses
// on vertex-induced color classes, the star-partition on spanning
// edge-classes; both need to translate results back to the parent.
type Sub struct {
	G *Graph
	// VOrig maps a subgraph vertex to its parent vertex. nil means the
	// identity map (the subgraph is spanning: same vertex set).
	VOrig []int32
	// EOrig maps a subgraph edge to its parent edge identifier. nil means
	// the identity map.
	EOrig []int32
}

// OrigVertex translates subgraph vertex v to the parent graph.
func (s *Sub) OrigVertex(v int) int {
	if s.VOrig == nil {
		return v
	}
	return int(s.VOrig[v])
}

// OrigEdge translates subgraph edge e to the parent graph.
func (s *Sub) OrigEdge(e int) int {
	if s.EOrig == nil {
		return e
	}
	return int(s.EOrig[e])
}

// Identity wraps g as a Sub embedding g into itself.
func Identity(g *Graph) *Sub { return &Sub{G: g} }

// InducedSubgraph returns the subgraph of g induced by the given vertices
// (which must be distinct). Vertex i of the result corresponds to
// vertices[i] in g. The vertex translation runs over a pooled DenseIndex,
// so recursion levels (CD-Coloring extracts one subgraph per color class
// per level) reuse index space instead of rebuilding a map each time.
func InducedSubgraph(g *Graph, vertices []int) (*Sub, error) {
	idx := AcquireDenseIndex(g.N())
	defer idx.Release()
	vorig := make([]int32, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("graph: induced vertex %d out of range", v)
		}
		if idx.Has(v) {
			return nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		idx.Put(v, int32(i))
		vorig[i] = int32(v)
	}
	b := NewBuilder(len(vertices))
	var eorig []int32
	for i, v := range vertices {
		for _, a := range g.Adj(v) {
			j, ok := idx.Get(int(a.To))
			if !ok {
				continue
			}
			lo, hi := int32(i), j
			if lo > hi {
				lo, hi = hi, lo
			}
			if int32(i) != lo {
				continue // keep each edge once, from its lower new index
			}
			b.AddEdge(int(lo), int(hi))
			eorig = append(eorig, a.Edge)
		}
	}
	sg, perm, err := BuildWithEdgeOrder(b)
	if err != nil {
		return nil, err
	}
	return &Sub{G: sg, VOrig: vorig, EOrig: applyPerm(eorig, perm)}, nil
}

// SpanningSubgraph returns the subgraph of g on the full vertex set
// containing exactly the edges for which keep reports true.
func SpanningSubgraph(g *Graph, keep func(e int) bool) (*Sub, error) {
	kept := 0
	for e := 0; e < g.M(); e++ {
		if keep(e) {
			kept++
		}
	}
	b := NewBuilder(g.N())
	b.Grow(kept)
	eorig := make([]int32, 0, kept)
	for e := 0; e < g.M(); e++ {
		if keep(e) {
			u, v := g.Endpoints(e)
			b.AddEdge(u, v)
			eorig = append(eorig, int32(e))
		}
	}
	sg, perm, err := BuildWithEdgeOrder(b)
	if err != nil {
		return nil, err
	}
	return &Sub{G: sg, EOrig: applyPerm(eorig, perm)}, nil
}

// SpanningFromEdges is SpanningSubgraph for an explicit edge-ID list.
func SpanningFromEdges(g *Graph, edges []int) (*Sub, error) {
	in := make([]bool, g.M())
	for _, e := range edges {
		if e < 0 || e >= g.M() {
			return nil, fmt.Errorf("graph: edge %d out of range", e)
		}
		in[e] = true
	}
	return SpanningSubgraph(g, func(e int) bool { return in[e] })
}

// BuildWithEdgeOrder builds the graph and returns the permutation mapping
// each edge's insertion index (order of AddEdge calls) to its final edge
// identifier. Builder.Build assigns IDs in sorted-(U,V) order, so the
// permutation is recovered by sorting insertion indices by the same key.
// Exposed for packages (connector) that construct derived graphs and must
// track which original edge each derived edge represents.
func BuildWithEdgeOrder(b *Builder) (*Graph, []int32, error) {
	keys := make([]Edge, len(b.edges))
	copy(keys, b.edges)
	order := make([]int32, len(keys))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, c := keys[order[x]], keys[order[y]]
		if a.U != c.U {
			return a.U < c.U
		}
		return a.V < c.V
	})
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	perm := make([]int32, len(order))
	for finalID, insPos := range order {
		perm[insPos] = int32(finalID)
	}
	return g, perm, nil
}

// applyPerm reindexes an insertion-ordered slice by the edge permutation.
func applyPerm(eorig []int32, perm []int32) []int32 {
	if eorig == nil {
		return nil
	}
	out := make([]int32, len(eorig))
	for ins, orig := range eorig {
		out[perm[ins]] = orig
	}
	return out
}
