// Package graph provides the static graph representation used throughout
// distcolor: immutable adjacency lists with stable edge identifiers, induced
// and spanning subgraphs that remember their embedding into the parent graph,
// line graphs (of graphs and of uniform hypergraphs), and edge orientations.
//
// Vertices of a Graph are the integers 0..N()-1. Every undirected edge has a
// stable identifier 0..M()-1; adjacency lists expose, for each incident edge,
// both the neighbor and that edge identifier, which is what lets the
// edge-coloring algorithms of the paper run without re-discovering edges.
package graph

import (
	"fmt"
	"sort"
)

// Arc is one directed half of an undirected edge as seen from a vertex's
// adjacency list.
type Arc struct {
	To   int32 // neighbor vertex
	Edge int32 // identifier of the undirected edge
}

// Edge records the endpoints of an undirected edge with U < V.
type Edge struct {
	U, V int32
}

// Graph is an immutable simple undirected graph.
type Graph struct {
	adj    [][]Arc
	edges  []Edge
	maxDeg int
	// csr lazily caches the flat CSR view (see csr.go). Because of the
	// sync.Once inside, a Graph must not be copied after first use; all
	// code passes *Graph.
	csr csrCache
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self-loops are rejected at Build time with an error, because every
// algorithm in this repository assumes a simple graph.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph on n vertices (n ≥ 0).
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Grow pre-sizes the edge accumulator for at least m additional edges.
// Derived-graph constructors (line graphs, subgraphs, connectors) know
// their edge counts up front; pre-sizing avoids the append regrowth churn
// on multi-million-edge builds.
func (b *Builder) Grow(m int) {
	if need := len(b.edges) + m; need > cap(b.edges) {
		next := make([]Edge, len(b.edges), need)
		copy(next, b.edges)
		b.edges = next
	}
}

// AddEdge records the undirected edge {u, v}. Order of u and v is irrelevant.
func (b *Builder) AddEdge(u, v int) {
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{int32(u), int32(v)})
}

// Build validates the accumulated edges and returns the immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	for _, e := range b.edges {
		if e.U < 0 || int(e.V) >= b.n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", e.U, e.V, b.n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e.U)
		}
	}
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for i := 1; i < len(edges); i++ {
		if edges[i] == edges[i-1] {
			return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", edges[i].U, edges[i].V)
		}
	}
	g := &Graph{
		adj:   make([][]Arc, b.n),
		edges: edges,
	}
	// All adjacency lists are carved from one flat arena (two header
	// allocations for the whole graph instead of one per vertex — the
	// recursive decompositions build thousands of subgraphs, and line
	// graphs have hundreds of thousands of vertices). Iterating the sorted
	// edge list fills every vertex's range in increasing neighbor order:
	// for vertex v, the arcs with To < v come from edges (u,v) in
	// increasing u, followed by edges (v,w) in increasing w — so the
	// sortedness HasEdge/EdgeID rely on is preserved.
	deg := make([]int32, b.n+1)
	for _, e := range edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for v := 1; v <= b.n; v++ {
		if d := int(deg[v]); d > g.maxDeg {
			g.maxDeg = d
		}
		deg[v] += deg[v-1] // deg becomes the offset array
	}
	arena := make([]Arc, 2*len(edges))
	for v := 0; v < b.n; v++ {
		g.adj[v] = arena[deg[v]:deg[v]:deg[v+1]]
	}
	for id, e := range edges {
		g.adj[e.U] = append(g.adj[e.U], Arc{To: e.V, Edge: int32(id)})
		g.adj[e.V] = append(g.adj[e.V], Arc{To: e.U, Edge: int32(id)})
	}
	return g, nil
}

// MustBuild is Build for static graphs known to be valid; it panics on error.
// Intended for tests and generators that construct edges programmatically.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns Δ(G).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Adj returns the adjacency list of v. The returned slice must not be
// modified; it is shared with the graph.
func (g *Graph) Adj(v int) []Arc { return g.adj[v] }

// Endpoints returns the endpoints (u < v) of edge e.
func (g *Graph) Endpoints(e int) (int, int) {
	ed := g.edges[e]
	return int(ed.U), int(ed.V)
}

// Edges returns the edge list. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Other returns the endpoint of edge e different from v.
func (g *Graph) Other(e, v int) int {
	ed := g.edges[e]
	if int(ed.U) == v {
		return int(ed.V)
	}
	if int(ed.V) == v {
		return int(ed.U)
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %d", v, e))
}

// HasEdge reports whether {u,v} is an edge, in O(log deg) time.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a = g.adj[v]
		u, v = v, u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i].To >= int32(v) })
	return i < len(a) && a[i].To == int32(v)
}

// EdgeID returns the identifier of edge {u,v} and whether it exists.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	if u == v {
		return 0, false
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a = g.adj[v]
		u, v = v, u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i].To >= int32(v) })
	if i < len(a) && a[i].To == int32(v) {
		return int(a[i].Edge), true
	}
	return 0, false
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// Path returns the path graph on n vertices.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph on n ≥ 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph.Cycle: need n >= 3")
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.MustBuild()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.MustBuild()
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on one side,
// a..a+b-1 on the other.
func CompleteBipartite(a, b int) *Graph {
	bl := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bl.AddEdge(u, a+v)
		}
	}
	return bl.MustBuild()
}
