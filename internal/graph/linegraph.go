package graph

import "fmt"

// LineGraphResult bundles the line graph L(G) of a graph G with the natural
// structures the paper uses on it: the map from L(G)-vertices back to
// G-edges, and the canonical clique cover in which each G-vertex of degree
// ≥ 1 contributes the clique of its incident edges. With this cover every
// L(G)-vertex lies in exactly two cliques, i.e. diversity D(L(G)) ≤ 2 (§1.2).
type LineGraphResult struct {
	L *Graph
	// EdgeOf maps an L-vertex to the G-edge it represents (the identity,
	// kept explicit for symmetry with hypergraph line graphs).
	EdgeOf []int32
	// Cliques is the canonical cover: Cliques[i] lists the L-vertices whose
	// G-edges are incident on G-vertex i. Entries for isolated G-vertices
	// are empty.
	Cliques [][]int32
}

// LineGraph constructs L(G): one vertex per edge of g, with two vertices
// adjacent iff the corresponding edges share an endpoint.
func LineGraph(g *Graph) *LineGraphResult {
	m := g.M()
	// |E(L(G))| = Σ_v deg(v)·(deg(v)−1)/2 exactly; pre-size the builder so
	// multi-million-arc line graphs build without append regrowth.
	lm := 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		lm += d * (d - 1) / 2
	}
	b := NewBuilder(m)
	b.Grow(lm)
	// Every pair of edges incident on the same vertex is adjacent in L(G).
	for v := 0; v < g.N(); v++ {
		adj := g.Adj(v)
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				e1, e2 := int(adj[i].Edge), int(adj[j].Edge)
				// Edges sharing two vertices are impossible in a simple
				// graph, but edges of a triangle meet pairwise at distinct
				// vertices, so the same L-edge is generated only once: the
				// shared endpoint of two edges is unique.
				b.AddEdge(e1, e2)
			}
		}
	}
	lg := b.MustBuild()
	edgeOf := make([]int32, m)
	cliques := make([][]int32, g.N())
	for e := 0; e < m; e++ {
		edgeOf[e] = int32(e)
	}
	// The canonical cover's vertex lists are carved from one flat arena
	// (2m entries total) rather than allocated per original vertex.
	arena := make([]int32, 0, 2*m)
	for v := 0; v < g.N(); v++ {
		adj := g.Adj(v)
		start := len(arena)
		for _, a := range adj {
			arena = append(arena, a.Edge)
		}
		cliques[v] = arena[start:len(arena):len(arena)]
	}
	return &LineGraphResult{L: lg, EdgeOf: edgeOf, Cliques: cliques}
}

// Hypergraph is a c-uniform hypergraph: every hyperedge has exactly Rank
// vertices. The paper uses line graphs of c-uniform hypergraphs as the
// canonical family of diversity-c graphs (§1.2).
type Hypergraph struct {
	NVert int
	Rank  int
	Edges [][]int32 // each of length Rank, sorted, distinct vertices
}

// NewHypergraph validates and constructs a c-uniform hypergraph.
func NewHypergraph(nVert, rank int, edges [][]int) (*Hypergraph, error) {
	if rank < 2 {
		return nil, fmt.Errorf("graph: hypergraph rank %d < 2", rank)
	}
	h := &Hypergraph{NVert: nVert, Rank: rank}
	for _, e := range edges {
		if len(e) != rank {
			return nil, fmt.Errorf("graph: hyperedge %v has %d vertices, want %d", e, len(e), rank)
		}
		sortedCopy := make([]int32, rank)
		seen := make(map[int]bool, rank)
		for i, v := range e {
			if v < 0 || v >= nVert {
				return nil, fmt.Errorf("graph: hyperedge vertex %d out of range", v)
			}
			if seen[v] {
				return nil, fmt.Errorf("graph: repeated vertex %d in hyperedge %v", v, e)
			}
			seen[v] = true
			sortedCopy[i] = int32(v)
		}
		for i := 1; i < rank; i++ {
			for j := i; j > 0 && sortedCopy[j] < sortedCopy[j-1]; j-- {
				sortedCopy[j], sortedCopy[j-1] = sortedCopy[j-1], sortedCopy[j]
			}
		}
		h.Edges = append(h.Edges, sortedCopy)
	}
	return h, nil
}

// LineGraph constructs the line graph of h: one vertex per hyperedge, two
// adjacent iff the hyperedges intersect. The returned clique cover has one
// clique per hypergraph vertex (the hyperedges containing it), so every
// line-graph vertex lies in at most Rank cliques: diversity ≤ Rank.
func (h *Hypergraph) LineGraph() *LineGraphResult {
	m := len(h.Edges)
	byVertex := make([][]int32, h.NVert)
	for id, e := range h.Edges {
		for _, v := range e {
			byVertex[v] = append(byVertex[v], int32(id))
		}
	}
	b := NewBuilder(m)
	// Two hyperedges may share several vertices; dedupe pairs.
	seen := make(map[int64]bool)
	for _, group := range byVertex {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, c := group[i], group[j]
				if a > c {
					a, c = c, a
				}
				key := int64(a)<<32 | int64(c)
				if seen[key] {
					continue
				}
				seen[key] = true
				b.AddEdge(int(a), int(c))
			}
		}
	}
	lg := b.MustBuild()
	edgeOf := make([]int32, m)
	for e := 0; e < m; e++ {
		edgeOf[e] = int32(e)
	}
	return &LineGraphResult{L: lg, EdgeOf: edgeOf, Cliques: byVertex}
}
