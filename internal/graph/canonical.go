package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Canonical labeling and content hashing.
//
// CanonicalLabeling computes a vertex relabeling that depends only on the
// isomorphism class of the graph for the vast majority of inputs, by
// 1-dimensional Weisfeiler–Leman color refinement followed by greedy
// minimal-certificate individualization. Isomorphic relabelings of a graph
// therefore map to the same canonical form and hash equal; distinct graphs
// hash differently up to 64/256-bit hash collisions.
//
// The individualization step is greedy (no backtracking): when a stable
// partition still has a non-singleton class, one vertex of the first such
// class is split off — the vertex whose refined quotient certificate is
// minimal. For vertices that are genuinely symmetric (automorphic) every
// choice yields the same canonical form, so the greedy step is exact on all
// vertex-transitive ties. Only WL-indistinguishable yet non-automorphic
// vertices (e.g. in some strongly regular graphs) can make two isomorphic
// copies disagree; callers that use the hash as a cache key must therefore
// treat it as a fingerprint — verify on hit — not as a proof of isomorphism.
// A false *negative* (isomorphic graphs hashing differently) only costs a
// cache miss; a false *positive* is caught by post-remap verification.

const fnvPrime = 1099511628211

func mix(h, x uint64) uint64 {
	h ^= x
	h *= fnvPrime
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// refineStable iterates WL color refinement from the given class ids until
// the number of classes stops growing. Class ids are canonical ranks: they
// are assigned by sorting signature values, so they are invariant under
// vertex relabeling. It returns the stable class ids and the class count.
func refineStable(g *Graph, classes []int, count int) ([]int, int) {
	n := g.N()
	sigs := make([]uint64, n)
	nbr := make([]uint64, 0, g.maxDeg)
	for {
		for v := 0; v < n; v++ {
			nbr = nbr[:0]
			for _, a := range g.adj[v] {
				nbr = append(nbr, uint64(classes[a.To])+1)
			}
			sort.Slice(nbr, func(i, j int) bool { return nbr[i] < nbr[j] })
			h := mix(14695981039346656037, uint64(classes[v])+1)
			for _, x := range nbr {
				h = mix(h, x)
			}
			sigs[v] = h
		}
		uniq := make([]uint64, n)
		copy(uniq, sigs)
		sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
		k := 0
		for i, s := range uniq {
			if i == 0 || s != uniq[i-1] {
				uniq[k] = s
				k++
			}
		}
		uniq = uniq[:k]
		next := make([]int, n)
		for v := 0; v < n; v++ {
			next[v] = sort.Search(k, func(i int) bool { return uniq[i] >= sigs[v] })
		}
		if k == count {
			return next, k
		}
		classes, count = next, k
	}
}

// certificate hashes the quotient structure of a stable partition: the class
// size histogram plus the multiset of edge class-pairs. It is invariant
// under vertex relabeling, and when the partition is discrete it determines
// the canonically relabeled edge list exactly.
func certificate(g *Graph, classes []int, count int) uint64 {
	sizes := make([]int, count)
	for _, c := range classes {
		sizes[c]++
	}
	h := mix(14695981039346656037, uint64(g.N()))
	h = mix(h, uint64(g.M()))
	for _, s := range sizes {
		h = mix(h, uint64(s))
	}
	pairs := make([]uint64, 0, g.M())
	for _, e := range g.edges {
		a, b := classes[e.U], classes[e.V]
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, uint64(a)<<32|uint64(b))
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	for _, p := range pairs {
		h = mix(h, p)
	}
	return h
}

// initialClasses ranks vertices by degree, the WL base case.
func initialClasses(g *Graph) ([]int, int) {
	n := g.N()
	degs := make([]int, 0, n)
	for v := 0; v < n; v++ {
		degs = append(degs, len(g.adj[v]))
	}
	sort.Ints(degs)
	k := 0
	for i, d := range degs {
		if i == 0 || d != degs[i-1] {
			degs[k] = d
			k++
		}
	}
	degs = degs[:k]
	classes := make([]int, n)
	for v := 0; v < n; v++ {
		classes[v] = sort.Search(k, func(i int) bool { return degs[i] >= len(g.adj[v]) })
	}
	return classes, k
}

// canonScanCap bounds how many candidates of a target cell each
// individualization step refines. Scanning the whole cell makes symmetric
// families (cycles, complete graphs: one big WL class) cost O(n) refines
// per step — cubic overall. All vertices of a cell are WL-equivalent, and
// for automorphic ties (the overwhelmingly common kind) every candidate
// yields the same certificate, so a bounded prefix loses nothing there; for
// WL-equivalent non-automorphic ties it can only cost hash stability, which
// cache users already tolerate (verify-on-hit).
const canonScanCap = 16

// CanonicalLabeling returns perm with perm[v] = the canonical index of
// vertex v (a bijection onto 0..n-1). See the package comments above for the
// exact invariance guarantee.
func CanonicalLabeling(g *Graph) []int32 {
	n := g.N()
	classes, count := initialClasses(g)
	classes, count = refineStable(g, classes, count)
	for count < n {
		// Target cell: the non-singleton class with the smallest id. Class
		// ids are canonical ranks, so this choice is relabeling-invariant.
		sizes := make([]int, count)
		for _, c := range classes {
			sizes[c]++
		}
		target := -1
		for c := 0; c < count; c++ {
			if sizes[c] > 1 {
				target = c
				break
			}
		}
		var (
			bestClasses []int
			bestCount   int
			bestCert    uint64
			have        bool
			scanned     int
		)
		for v := 0; v < n && scanned < canonScanCap; v++ {
			if classes[v] != target {
				continue
			}
			scanned++
			// Individualize v: give it a fresh class above all others, then
			// re-refine to a stable partition.
			cand := make([]int, n)
			copy(cand, classes)
			cand[v] = count
			cc, ck := refineStable(g, cand, count+1)
			cert := certificate(g, cc, ck)
			if !have || cert < bestCert {
				bestClasses, bestCount, bestCert, have = cc, ck, cert, true
			}
		}
		classes, count = bestClasses, bestCount
	}
	perm := make([]int32, n)
	for v := 0; v < n; v++ {
		perm[v] = int32(classes[v])
	}
	return perm
}

// CanonicalHash returns a hex-encoded SHA-256 of the canonically relabeled
// edge list (preceded by the vertex and edge counts): a content address for
// the graph's structure. Isomorphic relabelings of the same graph hash
// equal whenever CanonicalLabeling canonizes them (always, except for
// WL-hard symmetric ties — see the caveat above CanonicalLabeling).
func CanonicalHash(g *Graph) string {
	return CanonicalHashWithLabeling(g, CanonicalLabeling(g))
}

// CanonicalHashWithLabeling is CanonicalHash for callers that already hold
// the canonical labeling (avoids recomputing it).
func CanonicalHashWithLabeling(g *Graph, perm []int32) string {
	_, hash := canonicalForm(g, canonicalPairs(g, perm), false)
	return hash
}

// CanonicalForm returns the canonical edge order together with the
// canonical hash, sharing one pair build+sort (the cache's submission path
// needs both).
func CanonicalForm(g *Graph, perm []int32) (ord []int32, hash string) {
	return canonicalForm(g, canonicalPairs(g, perm), true)
}

func canonicalForm(g *Graph, pairs []canonPair, wantOrd bool) (ord []int32, hash string) {
	h := sha256.New()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(g.N()))
	put(uint64(g.M()))
	if wantOrd {
		ord = make([]int32, len(pairs))
	}
	for i, p := range pairs {
		put(p.key)
		if wantOrd {
			ord[i] = p.edge
		}
	}
	return ord, hex.EncodeToString(h.Sum(nil))
}

type canonPair struct {
	key  uint64 // canonical (min,max) endpoint pair, packed
	edge int32  // original edge identifier
}

func canonicalPairs(g *Graph, perm []int32) []canonPair {
	pairs := make([]canonPair, g.M())
	for e, ed := range g.edges {
		a, b := perm[ed.U], perm[ed.V]
		if a > b {
			a, b = b, a
		}
		pairs[e] = canonPair{key: uint64(a)<<32 | uint64(b), edge: int32(e)}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	return pairs
}

// CanonicalEdgeOrder returns ord with ord[i] = the original edge identifier
// of the i-th edge in canonical order (edges sorted by their canonically
// relabeled endpoint pairs). Two isomorphic graphs canonized to the same
// form produce position-wise corresponding edges, which is what lets a
// cached edge coloring be transferred between them: colors[ord[i]] in one
// graph corresponds to colors[ord'[i]] in the other.
func CanonicalEdgeOrder(g *Graph, perm []int32) []int32 {
	pairs := canonicalPairs(g, perm)
	ord := make([]int32, len(pairs))
	for i, p := range pairs {
		ord[i] = p.edge
	}
	return ord
}
