package graph

import (
	"math/rand"
	"sync"
	"testing"
)

func csrRandomGraph(t *testing.T, seed int64, n int, p float64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkCSR asserts every structural invariant of the flat view against the
// adjacency-list ground truth: offsets partition the arc array, each
// vertex's arc range reproduces Adj(v) in port order, and Mate is the
// edge-reversal involution.
func checkCSR(t *testing.T, g *Graph) {
	t.Helper()
	c := g.CSR()
	if got, want := c.NumArcs(), 2*g.M(); got != want {
		t.Fatalf("NumArcs = %d, want %d", got, want)
	}
	if len(c.Off) != g.N()+1 {
		t.Fatalf("len(Off) = %d, want %d", len(c.Off), g.N()+1)
	}
	if c.Off[0] != 0 || int(c.Off[g.N()]) != c.NumArcs() {
		t.Fatalf("offset bounds wrong: Off[0]=%d Off[n]=%d", c.Off[0], c.Off[g.N()])
	}
	for v := 0; v < g.N(); v++ {
		adj := g.Adj(v)
		lo, hi := c.Range(v)
		if c.Degree(v) != len(adj) || int(hi-lo) != len(adj) {
			t.Fatalf("vertex %d: CSR degree %d, Adj %d", v, c.Degree(v), len(adj))
		}
		for p, a := range adj {
			j := lo + int32(p)
			if c.To[j] != a.To || c.Edge[j] != a.Edge {
				t.Fatalf("vertex %d port %d: CSR arc (%d,%d), Adj arc (%d,%d)",
					v, p, c.To[j], c.Edge[j], a.To, a.Edge)
			}
			m := c.Mate[j]
			if c.Mate[m] != j {
				t.Fatalf("Mate not an involution at arc %d", j)
			}
			if c.Edge[m] != a.Edge {
				t.Fatalf("arc %d: mate crosses edges (%d vs %d)", j, c.Edge[m], a.Edge)
			}
			if int(c.To[m]) != v {
				t.Fatalf("arc %d: mate points at %d, want owner %d", j, c.To[m], v)
			}
			// The mate must live in the arc range of the neighbor.
			nlo, nhi := c.Range(int(a.To))
			if m < nlo || m >= nhi {
				t.Fatalf("arc %d: mate %d outside neighbor %d's range [%d,%d)", j, m, a.To, nlo, nhi)
			}
		}
	}
}

func TestCSRRoundTripRandom(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		n    int
		p    float64
	}{{1, 50, 0.1}, {2, 120, 0.05}, {3, 40, 0.5}, {4, 200, 0.02}} {
		checkCSR(t, csrRandomGraph(t, tc.seed, tc.n, tc.p))
	}
}

func TestCSREdgeCases(t *testing.T) {
	empty := NewBuilder(0).MustBuild()
	checkCSR(t, empty)
	if empty.CSR().NumArcs() != 0 || len(empty.CSR().Off) != 1 {
		t.Fatal("empty graph CSR malformed")
	}
	isolated := NewBuilder(7).MustBuild() // vertices, no edges
	checkCSR(t, isolated)
	for v := 0; v < 7; v++ {
		if isolated.CSR().Degree(v) != 0 {
			t.Fatalf("isolated vertex %d has CSR degree %d", v, isolated.CSR().Degree(v))
		}
	}
	checkCSR(t, Star(20))
	checkCSR(t, Complete(25))
	checkCSR(t, Path(2))
	checkCSR(t, Cycle(3))
}

// TestCSRCachedView pins the caching contract: every call returns the same
// view (same backing arrays, built once), and building it does not disturb
// the adjacency lists.
func TestCSRCachedView(t *testing.T) {
	g := csrRandomGraph(t, 9, 80, 0.1)
	before := make([][]Arc, g.N())
	for v := range before {
		before[v] = append([]Arc(nil), g.Adj(v)...)
	}
	c1 := g.CSR()
	c2 := g.CSR()
	if c1 != c2 {
		t.Fatal("CSR() returned distinct views for the same graph")
	}
	if &c1.Off[0] != &c2.Off[0] || &c1.To[0] != &c2.To[0] {
		t.Fatal("CSR() views share identity but not storage")
	}
	for v := range before {
		adj := g.Adj(v)
		if len(adj) != len(before[v]) {
			t.Fatalf("Adj(%d) changed length after CSR build", v)
		}
		for p := range adj {
			if adj[p] != before[v][p] {
				t.Fatalf("Adj(%d)[%d] changed after CSR build", v, p)
			}
		}
	}
}

// TestCSRConcurrentBuild hammers first use from many goroutines; the
// sync.Once build must hand every caller the identical view (the race
// detector pass covers this package).
func TestCSRConcurrentBuild(t *testing.T) {
	g := csrRandomGraph(t, 11, 150, 0.05)
	views := make([]*CSR, 16)
	var wg sync.WaitGroup
	for i := range views {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = g.CSR()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(views); i++ {
		if views[i] != views[0] {
			t.Fatal("concurrent CSR() calls produced distinct views")
		}
	}
	checkCSR(t, g)
}
