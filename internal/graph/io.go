package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// maxVertexID bounds vertex identifiers accepted from edge-list input: the
// Builder stores endpoints as int32, so anything larger would silently wrap.
const maxVertexID = 1<<31 - 2

// ReadEdgeList parses the simple whitespace edge-list format:
//
//	# comment
//	n <numVertices>
//	<u> <v>
//	...
//
// The "n" header is optional; without it the vertex count is one more than
// the largest endpoint mentioned.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := -1
	var pairs [][2]int
	maxV := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed n header", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if v < 0 || v > maxVertexID+1 {
				return nil, fmt.Errorf("graph: line %d: vertex count %d outside [0, %d]", line, v, maxVertexID+1)
			}
			n = v
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want two endpoints, got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		// Range-check here, before the Builder narrows endpoints to int32,
		// so hostile inputs fail instead of silently wrapping onto a
		// different vertex.
		if u < 0 || u > maxVertexID || v < 0 || v > maxVertexID {
			return nil, fmt.Errorf("graph: line %d: endpoint outside [0, %d]", line, maxVertexID)
		}
		pairs = append(pairs, [2]int{u, v})
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if n < 0 {
		n = maxV + 1
	}
	b := NewBuilder(n)
	for _, p := range pairs {
		b.AddEdge(p[0], p[1])
	}
	return b.Build()
}

// WriteEdgeList writes g in the format understood by ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteDOT writes g in Graphviz DOT format. labels may be nil; when present
// it supplies a display label per vertex.
func WriteDOT(w io.Writer, g *Graph, name string, labels []string) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		label := strconv.Itoa(v)
		if labels != nil && v < len(labels) && labels[v] != "" {
			label = labels[v]
		}
		if _, err := fmt.Fprintf(bw, "  %d [label=%q];\n", v, label); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
