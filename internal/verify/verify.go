// Package verify contains the correctness oracles every test and benchmark
// in this repository runs against: proper-coloring checks with palette
// bounds for vertices and edges, plus validators for the structural objects
// of the paper (H-partitions, orientations). Benchmarks call these too — a
// benchmark that produces an improper coloring fails rather than reporting
// a meaningless number.
package verify

import (
	"fmt"

	"repro/internal/graph"
)

// VertexColoring checks that colors is a proper vertex coloring of g using
// colors in [0, palette).
func VertexColoring(g *graph.Graph, colors []int64, palette int64) error {
	if len(colors) != g.N() {
		return fmt.Errorf("verify: %d colors for %d vertices", len(colors), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 || colors[v] >= palette {
			return fmt.Errorf("verify: vertex %d color %d outside [0,%d)", v, colors[v], palette)
		}
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if colors[u] == colors[v] {
			return fmt.Errorf("verify: adjacent vertices %d,%d share color %d", u, v, colors[u])
		}
	}
	return nil
}

// EdgeColoring checks that colors is a proper edge coloring of g (one color
// per edge identifier; edges sharing an endpoint get distinct colors) using
// colors in [0, palette).
func EdgeColoring(g *graph.Graph, colors []int64, palette int64) error {
	if len(colors) != g.M() {
		return fmt.Errorf("verify: %d colors for %d edges", len(colors), g.M())
	}
	for e := 0; e < g.M(); e++ {
		if colors[e] < 0 || colors[e] >= palette {
			return fmt.Errorf("verify: edge %d color %d outside [0,%d)", e, colors[e], palette)
		}
	}
	for v := 0; v < g.N(); v++ {
		seen := make(map[int64]int32, g.Degree(v))
		for _, a := range g.Adj(v) {
			c := colors[a.Edge]
			if prev, dup := seen[c]; dup {
				return fmt.Errorf("verify: edges %d,%d at vertex %d share color %d", prev, a.Edge, v, c)
			}
			seen[c] = a.Edge
		}
	}
	return nil
}

// PaletteUsed returns the number of distinct colors appearing in colors.
func PaletteUsed(colors []int64) int {
	seen := make(map[int64]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// MaxColor returns the largest color value, or -1 for an empty slice.
func MaxColor(colors []int64) int64 {
	max := int64(-1)
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	return max
}

// HPartition checks the defining property of an H-partition with degree
// bound d: every vertex in part i has at most d neighbors in parts ≥ i.
// part[v] values must lie in [0, numParts).
func HPartition(g *graph.Graph, part []int, numParts, d int) error {
	if len(part) != g.N() {
		return fmt.Errorf("verify: %d part labels for %d vertices", len(part), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if part[v] < 0 || part[v] >= numParts {
			return fmt.Errorf("verify: vertex %d part %d outside [0,%d)", v, part[v], numParts)
		}
		later := 0
		for _, a := range g.Adj(v) {
			if part[a.To] >= part[v] {
				later++
			}
		}
		if later > d {
			return fmt.Errorf("verify: vertex %d (part %d) has %d ≥-part neighbors, bound %d", v, part[v], later, d)
		}
	}
	return nil
}

// AcyclicOrientation checks acyclicity and the out-degree bound of o.
func AcyclicOrientation(o *graph.Orientation, maxOut int) error {
	if !o.IsAcyclic() {
		return fmt.Errorf("verify: orientation has a directed cycle")
	}
	if d := o.MaxOutDegree(); d > maxOut {
		return fmt.Errorf("verify: orientation out-degree %d exceeds bound %d", d, maxOut)
	}
	return nil
}
