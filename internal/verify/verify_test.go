package verify

import (
	"testing"

	"repro/internal/graph"
)

func TestVertexColoring(t *testing.T) {
	g := graph.Path(3)
	if err := VertexColoring(g, []int64{0, 1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	if err := VertexColoring(g, []int64{0, 0, 1}, 2); err == nil {
		t.Fatal("expected improper error")
	}
	if err := VertexColoring(g, []int64{0, 2, 0}, 2); err == nil {
		t.Fatal("expected palette error")
	}
	if err := VertexColoring(g, []int64{0, 1}, 2); err == nil {
		t.Fatal("expected length error")
	}
	if err := VertexColoring(g, []int64{0, -1, 0}, 2); err == nil {
		t.Fatal("expected negative color error")
	}
}

func TestEdgeColoring(t *testing.T) {
	g := graph.Path(3) // edges {0,1}=0, {1,2}=1
	if err := EdgeColoring(g, []int64{0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if err := EdgeColoring(g, []int64{1, 1}, 2); err == nil {
		t.Fatal("expected shared-endpoint conflict")
	}
	if err := EdgeColoring(g, []int64{0, 5}, 2); err == nil {
		t.Fatal("expected palette error")
	}
	if err := EdgeColoring(g, []int64{0}, 2); err == nil {
		t.Fatal("expected length error")
	}
}

func TestPaletteHelpers(t *testing.T) {
	if PaletteUsed([]int64{3, 3, 1, 0, 1}) != 3 {
		t.Fatal("PaletteUsed wrong")
	}
	if MaxColor([]int64{3, 9, 1}) != 9 || MaxColor(nil) != -1 {
		t.Fatal("MaxColor wrong")
	}
}

func TestHPartitionCheck(t *testing.T) {
	g := graph.Star(5) // center 0 degree 4
	// Put center in the last part alone: center has 0 ≥-part neighbors...
	// actually neighbors of leaves in parts ≥ theirs include the center.
	part := []int{1, 0, 0, 0, 0}
	if err := HPartition(g, part, 2, 1); err != nil {
		t.Fatal(err)
	}
	// Center in part 0: it has 4 neighbors in parts ≥ 0 → bound 1 fails.
	part = []int{0, 1, 1, 1, 1}
	if err := HPartition(g, part, 2, 1); err == nil {
		t.Fatal("expected degree-bound violation")
	}
	if err := HPartition(g, []int{0}, 2, 1); err == nil {
		t.Fatal("expected length error")
	}
	if err := HPartition(g, []int{5, 0, 0, 0, 0}, 2, 4); err == nil {
		t.Fatal("expected range error")
	}
}

func TestAcyclicOrientationCheck(t *testing.T) {
	g := graph.Cycle(3)
	ranks := []int{0, 1, 2}
	o := graph.OrientByOrder(g, ranks)
	if err := AcyclicOrientation(o, 2); err != nil {
		t.Fatal(err)
	}
	if err := AcyclicOrientation(o, 1); err == nil {
		t.Fatal("expected out-degree violation")
	}
	cyc, err := graph.NewOrientation(g, []int32{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := AcyclicOrientation(cyc, 3); err == nil {
		t.Fatal("expected cycle detection")
	}
}
