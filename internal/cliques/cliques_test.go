package cliques

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func rg(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestNewCoverValidates(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	// Valid cover: the three edges as 2-cliques.
	c, err := NewCover(g, [][]int32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Diversity() != 2 || c.MaxCliqueSize() != 2 {
		t.Fatalf("D=%d S=%d", c.Diversity(), c.MaxCliqueSize())
	}
	// Non-clique rejected.
	if _, err := NewCover(g, [][]int32{{0, 1, 2}, {2, 3}}); err == nil {
		t.Fatal("expected non-clique error: {0,2} not an edge")
	}
	// Uncovered edge rejected.
	if _, err := NewCover(g, [][]int32{{0, 1}, {1, 2}}); err == nil {
		t.Fatal("expected cover error: edge {2,3} uncovered")
	}
	// Repeated vertex rejected.
	if _, err := NewCover(g, [][]int32{{0, 0}}); err == nil {
		t.Fatal("expected repeat error")
	}
	// Out of range rejected.
	if _, err := NewCover(g, [][]int32{{0, 9}}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestLineGraphCover(t *testing.T) {
	g := rg(7, 20, 0.3)
	lg := graph.LineGraph(g)
	c, err := FromLineGraph(lg)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Diversity(); d > 2 {
		t.Fatalf("line graph cover diversity %d > 2", d)
	}
	if s := c.MaxCliqueSize(); s != g.MaxDegree() {
		t.Fatalf("line graph cover S=%d, want Δ(G)=%d", s, g.MaxDegree())
	}
}

func TestRestrictPreservesInvariants(t *testing.T) {
	g := rg(3, 24, 0.35)
	lg := graph.LineGraph(g)
	c, err := FromLineGraph(lg)
	if err != nil {
		t.Fatal(err)
	}
	// Take an arbitrary induced subgraph of L(G) (odd-indexed vertices).
	var verts []int
	for v := 0; v < lg.L.N(); v += 2 {
		verts = append(verts, v)
	}
	sub, err := graph.InducedSubgraph(lg.L, verts)
	if err != nil {
		t.Fatal(err)
	}
	rc := c.Restrict(sub)
	if err := rc.Validate(sub.G); err != nil {
		t.Fatalf("restricted cover invalid: %v", err)
	}
	if rc.Diversity() > c.Diversity() {
		t.Fatalf("diversity grew: %d > %d", rc.Diversity(), c.Diversity())
	}
	if rc.MaxCliqueSize() > c.MaxCliqueSize() {
		t.Fatalf("clique size grew: %d > %d", rc.MaxCliqueSize(), c.MaxCliqueSize())
	}
}

func TestRestrictQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := rg(seed, 18, 0.4)
		cov, err := CoverFromMaximalCliques(g)
		if err != nil {
			return false
		}
		var verts []int
		for v := 0; v < g.N(); v++ {
			if rng.Intn(2) == 0 {
				verts = append(verts, v)
			}
		}
		if len(verts) == 0 {
			return true
		}
		sub, err := graph.InducedSubgraph(g, verts)
		if err != nil {
			return false
		}
		rc := cov.Restrict(sub)
		return rc.Validate(sub.G) == nil && rc.Diversity() <= cov.Diversity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaximalCliquesTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 2.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	cls := MaximalCliques(g)
	if len(cls) != 2 {
		t.Fatalf("want 2 maximal cliques, got %d: %v", len(cls), cls)
	}
	sizes := map[int]int{}
	for _, cl := range cls {
		sizes[len(cl)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 {
		t.Fatalf("wrong maximal cliques: %v", cls)
	}
}

func TestMaximalCliquesComplete(t *testing.T) {
	cls := MaximalCliques(graph.Complete(5))
	if len(cls) != 1 || len(cls[0]) != 5 {
		t.Fatalf("K5 maximal cliques wrong: %v", cls)
	}
}

func TestMaximalCliquesCountOnMoonMoser(t *testing.T) {
	// K_{3×2} (complete tripartite with parts of size 2, i.e. the
	// cocktail-party-ish Moon–Moser graph for n=6) has 2^3 = 8 maximal
	// cliques — wait, K_{2,2,2} has 2*2*2 = 8 maximal cliques (one vertex
	// per part).
	b := graph.NewBuilder(6)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			if u/2 != v/2 { // different parts
				b.AddEdge(u, v)
			}
		}
	}
	cls := MaximalCliques(b.MustBuild())
	if len(cls) != 8 {
		t.Fatalf("K_{2,2,2} should have 8 maximal cliques, got %d", len(cls))
	}
	for _, cl := range cls {
		if len(cl) != 3 {
			t.Fatalf("clique size %d, want 3", len(cl))
		}
	}
}

func TestTrueDiversityLineGraph(t *testing.T) {
	// Line graphs (identified via maximal cliques) can exceed diversity 2 in
	// pathological small cases (footnote 5), but for a star line graph the
	// diversity is 1 (it is a complete graph).
	if d := TrueDiversity(graph.Complete(4)); d != 1 {
		t.Fatalf("K4 diversity %d, want 1", d)
	}
	// Path P4's line graph is P3: each vertex in ≤ 2 maximal cliques.
	lg := graph.LineGraph(graph.Path(4))
	if d := TrueDiversity(lg.L); d != 2 {
		t.Fatalf("L(P4) diversity %d, want 2", d)
	}
}

func TestCoverFromMaximalCliques(t *testing.T) {
	g := rg(11, 15, 0.4)
	if g.M() == 0 {
		t.Skip("degenerate sample")
	}
	c, err := CoverFromMaximalCliques(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestRestrictDoesNotLeakDenseIndex audits Cover.Restrict's pooled-index
// discipline: one recursion's worth of restrictions must leave the pool
// balanced (Restrict runs once per CD-Coloring level, so a leak here grows
// with recursion depth).
func TestRestrictDoesNotLeakDenseIndex(t *testing.T) {
	g := rg(16, 30, 0.5)
	c, err := CoverFromMaximalCliques(g)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := graph.InducedSubgraph(g, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if leaked := graph.LeakCheckDenseIndexes(func() {
		for i := 0; i < 8; i++ {
			c.Restrict(sub)
		}
	}); leaked != 0 {
		t.Fatalf("Cover.Restrict leaked %d pooled dense indexes", leaked)
	}
}
