// Package cliques implements the clique-cover machinery of Section 2 of the
// paper: consistent clique identification (footnote 3), the diversity
// parameter D (the maximum number of identified cliques any vertex belongs
// to), the maximal clique size S, and restriction of covers to induced
// subgraphs — the operation performed at every level of the CD-Coloring
// recursion.
//
// A Cover need not consist of maximal cliques; what the algorithms require
// is exactly the footnote-3 property: every clique is complete in G, and the
// cliques containing a vertex contain all its neighbors (equivalently, every
// edge of G lies inside at least one clique of the cover).
package cliques

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Cover is a consistent clique identification of a graph.
type Cover struct {
	// Cliques lists the identified cliques as vertex sets (sorted).
	Cliques [][]int32
	// MemberOf[v] lists the indices of the cliques containing v (sorted).
	MemberOf [][]int32
}

// NewCover builds a Cover from clique vertex lists and validates it against
// g: every listed clique must be complete in g and every edge of g must be
// inside some clique.
func NewCover(g *graph.Graph, cliqueLists [][]int32) (*Cover, error) {
	c := &Cover{
		Cliques:  make([][]int32, len(cliqueLists)),
		MemberOf: make([][]int32, g.N()),
	}
	for i, cl := range cliqueLists {
		cp := make([]int32, len(cl))
		copy(cp, cl)
		sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
		for j := 1; j < len(cp); j++ {
			if cp[j] == cp[j-1] {
				return nil, fmt.Errorf("cliques: clique %d repeats vertex %d", i, cp[j])
			}
		}
		c.Cliques[i] = cp
		for _, v := range cp {
			if v < 0 || int(v) >= g.N() {
				return nil, fmt.Errorf("cliques: clique %d vertex %d out of range", i, v)
			}
			c.MemberOf[v] = append(c.MemberOf[v], int32(i))
		}
	}
	if err := c.Validate(g); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate checks the footnote-3 consistency conditions against g.
func (c *Cover) Validate(g *graph.Graph) error {
	for i, cl := range c.Cliques {
		for a := 0; a < len(cl); a++ {
			for b := a + 1; b < len(cl); b++ {
				if !g.HasEdge(int(cl[a]), int(cl[b])) {
					return fmt.Errorf("cliques: clique %d contains non-adjacent pair {%d,%d}", i, cl[a], cl[b])
				}
			}
		}
	}
	// Edge cover: every edge inside some clique. Check via shared clique
	// membership of the endpoints.
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if !sharesClique(c.MemberOf[u], c.MemberOf[v]) {
			return fmt.Errorf("cliques: edge {%d,%d} not covered by any clique", u, v)
		}
	}
	return nil
}

func sharesClique(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Diversity returns D: the maximum number of cover cliques any vertex
// belongs to. An isolated vertex contributes 0.
func (c *Cover) Diversity() int {
	d := 0
	for _, m := range c.MemberOf {
		if len(m) > d {
			d = len(m)
		}
	}
	return d
}

// MaxCliqueSize returns S: the size of the largest clique in the cover.
func (c *Cover) MaxCliqueSize() int {
	s := 0
	for _, cl := range c.Cliques {
		if len(cl) > s {
			s = len(cl)
		}
	}
	return s
}

// Restrict produces the cover induced on a vertex-induced subgraph: each
// clique is intersected with the subgraph's vertex set and re-indexed;
// cliques that shrink below two vertices are dropped (they cover no edge).
// Restriction never increases a vertex's membership count, so diversity does
// not grow (cf. Lemma 2.3(ii)).
func (c *Cover) Restrict(sub *graph.Sub) *Cover {
	// Map original vertex -> subgraph vertex through a pooled dense table:
	// Restrict runs once per recursion level of CD-Coloring, and the map it
	// used to build here dominated the decomposition's allocation profile.
	inv := graph.AcquireDenseIndex(len(c.MemberOf))
	defer inv.Release()
	for v := 0; v < sub.G.N(); v++ {
		inv.Put(sub.OrigVertex(v), int32(v))
	}
	out := &Cover{MemberOf: make([][]int32, sub.G.N())}
	for _, cl := range c.Cliques {
		var restricted []int32
		for _, v := range cl {
			if nv, ok := inv.Get(int(v)); ok {
				restricted = append(restricted, nv)
			}
		}
		if len(restricted) < 2 {
			continue
		}
		sort.Slice(restricted, func(a, b int) bool { return restricted[a] < restricted[b] })
		idx := int32(len(out.Cliques))
		out.Cliques = append(out.Cliques, restricted)
		for _, v := range restricted {
			out.MemberOf[v] = append(out.MemberOf[v], idx)
		}
	}
	return out
}

// FromLineGraph adapts the canonical cover attached to a LineGraphResult,
// dropping the empty/singleton entries of low-degree original vertices.
func FromLineGraph(lg *graph.LineGraphResult) (*Cover, error) {
	var lists [][]int32
	for _, cl := range lg.Cliques {
		if len(cl) >= 2 {
			lists = append(lists, cl)
		}
	}
	return NewCover(lg.L, lists)
}

// MaximalCliques enumerates all maximal cliques of g using Bron–Kerbosch
// with pivoting. Exponential in the worst case; intended for validating
// small graphs and computing true diversity in tests.
func MaximalCliques(g *graph.Graph) [][]int32 {
	var out [][]int32
	n := g.N()
	all := make([]int32, n)
	for v := range all {
		all[v] = int32(v)
	}
	var bk func(r, p, x []int32)
	bk = func(r, p, x []int32) {
		if len(p) == 0 && len(x) == 0 {
			cl := make([]int32, len(r))
			copy(cl, r)
			out = append(out, cl)
			return
		}
		// Pivot: vertex of P∪X with most neighbors in P.
		pivot := int32(-1)
		best := -1
		for _, set := range [][]int32{p, x} {
			for _, u := range set {
				cnt := 0
				for _, w := range p {
					if g.HasEdge(int(u), int(w)) {
						cnt++
					}
				}
				if cnt > best {
					best, pivot = cnt, u
				}
			}
		}
		var candidates []int32
		for _, v := range p {
			if pivot < 0 || !g.HasEdge(int(pivot), int(v)) {
				candidates = append(candidates, v)
			}
		}
		for _, v := range candidates {
			var np, nx []int32
			for _, w := range p {
				if g.HasEdge(int(v), int(w)) {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if g.HasEdge(int(v), int(w)) {
					nx = append(nx, w)
				}
			}
			bk(append(r, v), np, nx)
			// Move v from P to X.
			for i, w := range p {
				if w == v {
					p = append(p[:i:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
	}
	bk(nil, all, nil)
	return out
}

// TrueDiversity computes the diversity of g with respect to all maximal
// cliques (the paper's default identification when no family-specific cover
// is available). Exponential in the worst case; for tests and small inputs.
func TrueDiversity(g *graph.Graph) int {
	count := make([]int, g.N())
	for _, cl := range MaximalCliques(g) {
		for _, v := range cl {
			count[v]++
		}
	}
	d := 0
	for _, c := range count {
		if c > d {
			d = c
		}
	}
	return d
}

// CoverFromMaximalCliques builds a Cover from the full maximal-clique
// enumeration. Exponential in the worst case; for small graphs.
func CoverFromMaximalCliques(g *graph.Graph) (*Cover, error) {
	all := MaximalCliques(g)
	var lists [][]int32
	for _, cl := range all {
		if len(cl) >= 2 {
			lists = append(lists, cl)
		}
	}
	return NewCover(g, lists)
}
