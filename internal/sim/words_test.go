package sim_test

// Equivalence matrix for the packed word plane (sim/words.go): word
// programs must be observationally identical to their any-payload
// counterparts — same per-vertex results, same Stats (messages, bits,
// max bits), on every graph and engine of the plane grid, and also when
// forced through the pre-CSR reference plane (where WrapWord's bridge
// carries the words over the []Message contract). The allocation tests
// pin the packed plane's steady state at zero heap allocations per round.

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// refExec adapts the reference engine kept in plane_test.go to sim.Exec,
// so whole algorithm pipelines can be replayed on the unoptimized
// any-payload plane (see the algorithm equivalence tests in the algorithm
// packages and plane_test.go).
type refExec struct{}

func (refExec) Run(ctx context.Context, t *sim.Topology, f sim.Factory, maxRounds int) (sim.Stats, error) {
	return runReference(t, f, maxRounds)
}

// --- word twins of the plane programs --------------------------------------

// wordSumProgram is sumProgram on the packed plane.
func wordSumProgram(results []int64) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		return sim.WrapWord(sim.WordFunc(func(round int, in, out []sim.Word) bool {
			if round == 0 {
				sim.SendAllWords(out, info.ID)
				return info.Degree == 0
			}
			var sum int64
			for _, w := range in {
				sum += w
			}
			results[info.V] = sum
			return true
		}))
	}
}

// wordFloodProgram is floodProgram on the packed plane.
func wordFloodProgram(results []int64) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		reached := info.ID == 0
		return sim.WrapWord(sim.WordFunc(func(round int, in, out []sim.Word) bool {
			if reached {
				sim.SendAllWords(out, 1)
				results[info.V] = int64(round)
				return true
			}
			for _, w := range in {
				if w != sim.NoWord {
					reached = true
					break
				}
			}
			return false
		}))
	}
}

// sizedPayloadBits is the common bit schedule of the sized program pair.
func sizedPayloadBits(v int64) int64 { return v%13 + 14 }

// sizedAnyProgram staggers halting, sends Sizer payloads on a rotating
// subset of ports, and folds everything received into an accumulator.
func sizedAnyProgram(results []int64) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		stop := int(info.ID%5) + 1
		return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
			acc := results[info.V]
			for p, m := range in {
				if m == nil {
					acc = acc*31 + 7
				} else {
					acc = acc*31 + int64(m.(sizedMsg)) + int64(p)
				}
			}
			results[info.V] = acc
			for p := range out {
				if (p+round+int(info.ID))%3 != 2 {
					out[p] = sizedMsg(info.ID + int64(p))
				}
			}
			return round >= stop-1
		})
	}
}

// wordSizedMachine is sizedAnyProgram as a word machine with a WordSizer
// reporting the identical bit schedule.
type wordSizedMachine struct {
	info    sim.NodeInfo
	results []int64
}

func (m *wordSizedMachine) StepWord(round int, in, out []sim.Word) bool {
	acc := m.results[m.info.V]
	for p, w := range in {
		if w == sim.NoWord {
			acc = acc*31 + 7
		} else {
			acc = acc*31 + w + int64(p)
		}
	}
	m.results[m.info.V] = acc
	for p := range out {
		if (p+round+int(m.info.ID))%3 != 2 {
			out[p] = m.info.ID + int64(p)
		}
	}
	return round >= int(m.info.ID%5)
}

func (m *wordSizedMachine) WordBits(w sim.Word) int64 { return sizedPayloadBits(w) }

func wordSizedProgram(results []int64) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		return sim.WrapWord(&wordSizedMachine{info: info, results: results})
	}
}

// TestWordPlaneEquivalenceMatrix runs each word program and its
// any-payload twin over the plane grid: per-vertex results and Stats must
// be identical between (a) the twin on the reference plane, (b) the word
// program on every engine (packed plane), and (c) the word program forced
// through the reference plane, where WrapWord's bridge carries it over
// the []Message contract.
func TestWordPlaneEquivalenceMatrix(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-small", planeRandomGraph(1, 60, 0.15)},
		{"gnp-sparse", planeRandomGraph(2, 250, 0.015)},
		{"gnp-dense", planeRandomGraph(3, 50, 0.6)},
		{"star", graph.Star(40)},
		{"path", graph.Path(30)},
		{"complete", graph.Complete(24)},
		{"cycle", graph.Cycle(17)},
		{"isolated", graph.NewBuilder(12).MustBuild()},
		{"single", graph.NewBuilder(1).MustBuild()},
		{"empty", graph.NewBuilder(0).MustBuild()},
	}
	programs := []struct {
		name string
		any  func([]int64) sim.Factory
		word func([]int64) sim.Factory
	}{
		{"sum", sumProgram, wordSumProgram},
		{"flood", floodProgram, wordFloodProgram},
		{"sized", sizedAnyProgram, wordSizedProgram},
	}
	engines := []struct {
		name string
		eng  sim.Engine
	}{
		{"sequential", sim.Sequential},
		{"reverse", sim.ReverseSequential},
		{"parallel", sim.Parallel},
	}
	const maxRounds = 64
	for _, gc := range graphs {
		for _, pc := range programs {
			t.Run(gc.name+"/"+pc.name, func(t *testing.T) {
				topo := sim.NewTopology(gc.g)
				wantRes := make([]int64, gc.g.N())
				wantStats, wantErr := runReference(topo, pc.any(wantRes), maxRounds)
				check := func(label string, gotRes []int64, gotStats sim.Stats, gotErr error) {
					t.Helper()
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s: error mismatch: reference %v, got %v", label, wantErr, gotErr)
					}
					if gotStats != wantStats {
						t.Fatalf("%s: stats %+v, reference %+v", label, gotStats, wantStats)
					}
					for v := range wantRes {
						if gotRes[v] != wantRes[v] {
							t.Fatalf("%s: vertex %d result %d, reference %d", label, v, gotRes[v], wantRes[v])
						}
					}
				}
				for _, ec := range engines {
					gotRes := make([]int64, gc.g.N())
					gotStats, gotErr := ec.eng.Run(context.Background(), topo, pc.word(gotRes), maxRounds)
					check("word/"+ec.name, gotRes, gotStats, gotErr)
				}
				// The word program through the reference plane (bridge path).
				gotRes := make([]int64, gc.g.N())
				gotStats, gotErr := runReference(topo, pc.word(gotRes), maxRounds)
				check("word/reference-bridge", gotRes, gotStats, gotErr)
			})
		}
	}
}

// TestMixedProgramFallsBackToAnyPlane pins the per-program representation
// choice: one non-word machine demotes the whole run to the any plane,
// where WrapWord's bridge keeps the word machines correct.
func TestMixedProgramFallsBackToAnyPlane(t *testing.T) {
	g := graph.Path(10)
	results := make([]int64, g.N())
	mixed := func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		if info.V == 0 {
			// A lone any-plane machine participating in the sum protocol.
			return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
				if round == 0 {
					sim.SendAll(out, info.ID)
					return false
				}
				var sum int64
				for _, m := range in {
					sum += m.(int64)
				}
				results[info.V] = sum
				return true
			})
		}
		return wordSumProgram(results)(info, nbrIDs, nbrLabels)
	}
	wantRes := make([]int64, g.N())
	wantStats, err := runReference(sim.NewTopology(g), sumProgram(wantRes), 8)
	if err != nil {
		t.Fatal(err)
	}
	gotStats, err := sim.RunSequential(context.Background(), sim.NewTopology(g), mixed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Fatalf("mixed stats %+v, reference %+v", gotStats, wantStats)
	}
	for v := range wantRes {
		if results[v] != wantRes[v] {
			t.Fatalf("vertex %d: mixed %d, reference %d", v, results[v], wantRes[v])
		}
	}
}

// --- allocation regression -------------------------------------------------

// wordExchangeProgram is the packed counterpart of exchangeProgram for
// steady-state allocation pinning. Unlike the any plane — which relies on
// the runtime's small-integer interface cache — the packed plane is
// alloc-free for arbitrary word values; the payloads here exceed the
// 0..255 cache range to prove it.
func wordExchangeProgram(rounds int) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		var acc int64
		return sim.WrapWord(sim.WordFunc(func(round int, in, out []sim.Word) bool {
			for _, w := range in {
				if w != sim.NoWord {
					acc += w
				}
			}
			sim.SendAllWords(out, int64(round)+1_000_000)
			return round >= rounds-1
		}))
	}
}

// TestWordPlaneSteadyStateAllocFree pins the packed plane's contract on
// both sequential engines: after instance setup, zero heap allocations
// per round, payload values notwithstanding.
func TestWordPlaneSteadyStateAllocFree(t *testing.T) {
	g := planeRandomGraph(7, 400, 0.04)
	topo := sim.NewTopology(g)
	g.CSR() // build the cached view outside the measurement
	for _, ec := range []struct {
		name string
		run  func(ctx context.Context, t *sim.Topology, f sim.Factory, maxRounds int) (sim.Stats, error)
	}{
		{"sequential", sim.RunSequential},
		{"reverse", sim.RunReverseSequential},
	} {
		t.Run(ec.name, func(t *testing.T) {
			run := func(rounds int) {
				if _, err := ec.run(context.Background(), topo, wordExchangeProgram(rounds), rounds+2); err != nil {
					t.Fatal(err)
				}
			}
			short := testing.AllocsPerRun(5, func() { run(8) })
			long := testing.AllocsPerRun(5, func() { run(72) })
			if long != short {
				t.Fatalf("word plane allocates per round: %.1f allocs over 64 extra rounds (%.1f vs %.1f)",
					long-short, long, short)
			}
		})
	}
}
