package sim_test

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// sizedExchangeProgram is exchangeProgram with honest bit accounting: every
// payload is round&0x7f, which fits in 7 bits.
type sizedExchange struct {
	rounds int
	acc    int64
}

func (m *sizedExchange) StepWord(round int, in, out []sim.Word) bool {
	for _, w := range in {
		if w != sim.NoWord {
			m.acc += w
		}
	}
	sim.SendAllWords(out, sim.Word(round&0x7f))
	return round >= m.rounds-1
}

func (m *sizedExchange) WordBits(w sim.Word) int64 { return 7 }

func sizedExchangeFactory(rounds int) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		return sim.WrapWord(&sizedExchange{rounds: rounds})
	}
}

func TestCongestCapBits(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{1, 8}, {2, 8}, {16, 10}, {1024, 22}, {10_000, 28},
	}
	for _, c := range cases {
		if got := sim.CongestCapBits(c.n); got != c.want {
			t.Errorf("CongestCapBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// The accountant under a cap that everything respects: no violations, and
// the histogram records every talkative round at the right bucket.
func TestBandwidthAccountingClean(t *testing.T) {
	g := graph.Cycle(64) // n=64: cap = 2*7 = 14 >= 7-bit payloads
	topo := sim.NewTopology(g)
	bw := &sim.Bandwidth{CapBits: sim.CongestCapBits(g.N())}
	const rounds = 10
	stats, err := sim.Instrumented(sim.Sequential, nil, bw).Run(
		context.Background(), topo, sizedExchangeFactory(rounds), rounds+2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CongestViolations != 0 {
		t.Errorf("clean run has %d violations", stats.CongestViolations)
	}
	if bw.Violations() != 0 {
		t.Errorf("accountant reports %d violations", bw.Violations())
	}
	if bw.Rounds() != rounds {
		t.Errorf("accountant saw %d rounds, want %d", bw.Rounds(), rounds)
	}
	if bw.MaxMessageBits() != 7 {
		t.Errorf("max message bits = %d, want 7", bw.MaxMessageBits())
	}
	// Every vertex sends 2 messages of 7 bits per round.
	wantRoundBits := int64(2 * 64 * 7)
	if bw.MaxRoundBits() != wantRoundBits {
		t.Errorf("max round bits = %d, want %d", bw.MaxRoundBits(), wantRoundBits)
	}
	// All rounds land in the 7-bits bucket: smallest e with 7 <= 2^e is 3.
	hist := bw.HistBuckets()
	for e, c := range hist {
		want := int64(0)
		if e == 3 {
			want = rounds
		}
		if c != want {
			t.Errorf("bucket %d (le %d) = %d, want %d", e, sim.BucketBound(e), c, want)
		}
	}
}

// The accountant against a cap the program exceeds: default-accounted
// 64-bit words against a tight cap violate every talkative round, and
// Stats carries the count.
func TestBandwidthViolations(t *testing.T) {
	g := graph.Cycle(16)
	topo := sim.NewTopology(g)
	bw := &sim.Bandwidth{CapBits: 10}
	const rounds = 6
	for _, eng := range []sim.Engine{sim.Sequential, sim.ReverseSequential, sim.Parallel} {
		bw2 := &sim.Bandwidth{CapBits: 10}
		stats, err := sim.Instrumented(eng, nil, bw2).Run(
			context.Background(), topo, exchangeProgram(rounds), rounds+2)
		if err != nil {
			t.Fatal(err)
		}
		if stats.CongestViolations != rounds {
			t.Errorf("engine %d: %d violations, want %d", eng, stats.CongestViolations, rounds)
		}
	}
	// Shared accountant across executions accumulates.
	for i := 0; i < 3; i++ {
		if _, err := sim.Instrumented(sim.Sequential, nil, bw).Run(
			context.Background(), topo, exchangeProgram(rounds), rounds+2); err != nil {
			t.Fatal(err)
		}
	}
	if bw.Violations() != 3*rounds {
		t.Errorf("shared accountant: %d violations, want %d", bw.Violations(), 3*rounds)
	}
	// Zero cap: account, don't judge.
	free := &sim.Bandwidth{}
	stats, err := sim.Instrumented(sim.Sequential, nil, free).Run(
		context.Background(), topo, exchangeProgram(rounds), rounds+2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CongestViolations != 0 || free.Violations() != 0 {
		t.Errorf("capless accountant recorded violations")
	}
	if free.Rounds() != rounds || free.MaxMessageBits() != 64 {
		t.Errorf("capless accountant rounds=%d maxMsg=%d", free.Rounds(), free.MaxMessageBits())
	}
}

// RoundEvent now carries the per-round bandwidth view; hook and accountant
// must agree with the cumulative Stats.
func TestRoundEventBandwidthFields(t *testing.T) {
	g := graph.Cycle(8)
	topo := sim.NewTopology(g)
	var events []sim.RoundEvent
	hook := func(ev sim.RoundEvent) { events = append(events, ev) }
	bw := &sim.Bandwidth{CapBits: sim.CongestCapBits(g.N())}
	stats, err := sim.Instrumented(sim.Sequential, hook, bw).Run(
		context.Background(), topo, exchangeProgram(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != stats.Rounds {
		t.Fatalf("%d events for %d rounds", len(events), stats.Rounds)
	}
	var sum int64
	for i, ev := range events {
		sum += ev.RoundBits
		if ev.Stats.Bits != sum {
			t.Errorf("round %d: cumulative bits %d, sum of RoundBits %d", i, ev.Stats.Bits, sum)
		}
		if ev.RoundMaxBits != 64 {
			t.Errorf("round %d: RoundMaxBits = %d, want 64", i, ev.RoundMaxBits)
		}
	}
	if sum != stats.Bits {
		t.Errorf("RoundBits sum %d != Stats.Bits %d", sum, stats.Bits)
	}
}

// The zero-alloc contract survives instrumentation: accountant attached,
// hook attached, still no allocations per round.
func TestInstrumentedSteadyStateAllocFree(t *testing.T) {
	g := planeRandomGraph(7, 400, 0.04)
	topo := sim.NewTopology(g)
	g.CSR()
	bw := &sim.Bandwidth{CapBits: sim.CongestCapBits(g.N())}
	hook := func(sim.RoundEvent) {}
	exec := sim.Instrumented(sim.Sequential, hook, bw)
	run := func(rounds int) {
		if _, err := exec.Run(context.Background(), topo, exchangeProgram(rounds), rounds+2); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(5, func() { run(8) })
	long := testing.AllocsPerRun(5, func() { run(72) })
	if long != short {
		t.Fatalf("instrumented engine allocates per round: %.1f allocs over 64 extra rounds (%.1f vs %.1f)",
			long-short, long, short)
	}
}
