// Package sim is the synchronous message-passing runtime (the LOCAL model of
// §1.1 of the paper) on which every algorithm in this repository executes.
//
// A network is a Topology: a graph whose vertices are processors with
// distinct identifiers. An algorithm is a Factory producing one Machine per
// vertex; a Machine is a pure state machine advanced once per round. In each
// round every machine reads the messages its neighbors sent in the previous
// round (one inbox slot per incident edge), updates local state, and writes
// outgoing messages (one outbox slot per incident edge). The engine delivers
// outboxes to inboxes between rounds. Running time is the number of rounds
// until every machine has halted, exactly the paper's measure.
//
// Knowledge model: as is standard for deterministic LOCAL algorithms
// (KT1), a machine initially knows its own identifier, degree, the global
// parameters n and Δ, and its neighbors' identifiers and seed labels. All
// other information must travel over edges.
//
// Two engines are provided. RunSequential advances machines in index order
// within a round — fast and allocation-free in its steady state. RunParallel
// executes each round concurrently over contiguous vertex shards with one
// barrier per round; messages still cross only between rounds. Machines are
// pure functions of (state, inbox), so both engines produce bit-identical
// executions; tests assert this.
//
// Data plane: all engines run over the graph's flat CSR view (graph.CSR).
// Inboxes and outboxes are flat slabs with one slot per directed arc,
// allocated once per run; a vertex's buffers are the slab range given by
// the CSR offsets. Outboxes are double-buffered and swapped between
// rounds, and delivery is the Mate permutation, applied lazily while
// stepping each receiver (in[p] = prevOut[Mate[Off[v]+p]]). The message
// representation is chosen per program: []Message (the general any plane)
// by default, or the packed []Word fast path of words.go — no interface
// boxing anywhere on the hot path — when every machine of the run
// implements WordMachine. In either representation the round loop performs
// no heap allocations — see DESIGN.md §7–§8 and the allocation-regression
// tests.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Message is an arbitrary payload travelling over one edge for one round.
// nil means "no message".
type Message any

// NodeInfo is the initial knowledge of a vertex (see the package comment).
type NodeInfo struct {
	V      int   // vertex index within the topology (engine bookkeeping)
	ID     int64 // unique identifier, the only identity algorithms should use
	Label  int64 // seed label (e.g. a proper coloring from an earlier phase); -1 if unset
	Degree int
	N      int // number of vertices in the topology (global knowledge)
	MaxDeg int // Δ of the topology (global knowledge)
}

// Machine is the per-vertex state machine of an algorithm.
type Machine interface {
	// Step executes one synchronous round. in[p] holds the message sent by
	// the neighbor on port p in the previous round (nil if none, and on
	// round 0). The machine writes messages into out[p] (pre-cleared to
	// nil). Step returns true when the vertex halts; a halted machine is
	// never stepped again and sends nothing.
	Step(round int, in []Message, out []Message) bool
}

// Factory creates the machine for one vertex. nbrIDs[p] and nbrLabels[p]
// are the identifier and seed label of the neighbor on port p. Both slices
// are read-only windows into engine-owned storage shared by all vertices
// of the run: machines must not modify them (copy first to mutate).
type Factory func(info NodeInfo, nbrIDs []int64, nbrLabels []int64) Machine

// Topology is a network: a graph plus per-vertex identifiers and optional
// seed labels.
type Topology struct {
	G *graph.Graph
	// IDs are the distinct vertex identifiers. nil means "use vertex index".
	IDs []int64
	// Labels are optional seed labels (§3 of the paper replaces IDs with a
	// precomputed O(Δ²)-coloring to avoid repeated log* n terms). nil means
	// "unset" (-1 is passed to machines).
	Labels []int64
}

// NewTopology wraps g with default identifiers 0..n-1.
func NewTopology(g *graph.Graph) *Topology { return &Topology{G: g} }

// ID returns the identifier of vertex v.
func (t *Topology) ID(v int) int64 {
	if t.IDs == nil {
		return int64(v)
	}
	return t.IDs[v]
}

// Label returns the seed label of v, or -1 when unset.
func (t *Topology) Label(v int) int64 {
	if t.Labels == nil {
		return -1
	}
	return t.Labels[v]
}

// Validate checks that identifiers are distinct.
func (t *Topology) Validate() error {
	if t.IDs != nil {
		if len(t.IDs) != t.G.N() {
			return fmt.Errorf("sim: %d IDs for %d vertices", len(t.IDs), t.G.N())
		}
		seen := make(map[int64]bool, len(t.IDs))
		for _, id := range t.IDs {
			if seen[id] {
				return fmt.Errorf("sim: duplicate identifier %d", id)
			}
			seen[id] = true
		}
	}
	if t.Labels != nil && len(t.Labels) != t.G.N() {
		return fmt.Errorf("sim: %d labels for %d vertices", len(t.Labels), t.G.N())
	}
	return nil
}

// Sizer lets a message payload report its encoded size in bits. Payloads
// that do not implement Sizer are accounted as one machine word (64 bits).
// The paper's model is LOCAL (unbounded messages); this accounting measures
// how far each algorithm actually strays from CONGEST-sized messages.
type Sizer interface {
	Bits() int64
}

// Stats records the cost of an execution or of a composition of executions.
type Stats struct {
	Rounds   int
	Messages int64
	// Bits is the total traffic in bits under the Sizer accounting.
	Bits int64
	// MaxMessageBits is the largest single message observed — the CONGEST
	// yardstick (CONGEST allows O(log n) bits per message per round).
	MaxMessageBits int64
	// CongestViolations counts executed rounds whose largest message
	// exceeded the attached bandwidth accountant's cap (bandwidth.go). It
	// is always 0 when no accountant with a cap is attached, so it is
	// omitted from JSON encodings unless someone is actually auditing.
	CongestViolations int64 `json:",omitempty"`
}

// Seq returns the cost of running s then o sequentially.
func (s Stats) Seq(o Stats) Stats {
	return Stats{
		Rounds:            s.Rounds + o.Rounds,
		Messages:          s.Messages + o.Messages,
		Bits:              s.Bits + o.Bits,
		MaxMessageBits:    maxI64(s.MaxMessageBits, o.MaxMessageBits),
		CongestViolations: s.CongestViolations + o.CongestViolations,
	}
}

// Par returns the cost of running s and o concurrently on (possibly
// overlapping) parts of the network: rounds take the maximum, messages add.
// This is the paper's accounting for "for each Gi in parallel do".
func (s Stats) Par(o Stats) Stats {
	r := s.Rounds
	if o.Rounds > r {
		r = o.Rounds
	}
	return Stats{
		Rounds:            r,
		Messages:          s.Messages + o.Messages,
		Bits:              s.Bits + o.Bits,
		MaxMessageBits:    maxI64(s.MaxMessageBits, o.MaxMessageBits),
		CongestViolations: s.CongestViolations + o.CongestViolations,
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ParAll folds Par over a set of concurrent executions.
func ParAll(all []Stats) Stats {
	var acc Stats
	for _, s := range all {
		acc = acc.Par(s)
	}
	return acc
}

// ErrRoundLimit is returned when an execution exceeds its round budget,
// which in this codebase always indicates an algorithm bug (deadlock or
// non-termination), not an expected condition.
var ErrRoundLimit = errors.New("sim: round limit exceeded")

// Exec runs a node program to global termination. Engine values implement
// it; Observed wraps an Engine with a per-round hook. Algorithm packages
// accept an Exec so callers can observe every constituent execution of a
// composed algorithm without the algorithms knowing.
//
// Cancellation is ctx-native: every engine checks ctx at each round
// boundary and aborts with an error wrapping context.Cause(ctx), so
// deadlines and cancellation propagate through arbitrarily deep algorithm
// compositions without observer-based plumbing.
type Exec interface {
	Run(ctx context.Context, t *Topology, f Factory, maxRounds int) (Stats, error)
}

// OrSequential normalizes a possibly-nil Exec (the zero value of an Options
// struct holding an Exec interface) to the Sequential engine.
func OrSequential(e Exec) Exec {
	if e == nil {
		return Sequential
	}
	return e
}

// RoundEvent describes one executed round of one execution, delivered to a
// RoundHook. Stats are cumulative for that execution.
type RoundEvent struct {
	// Round is the 0-based index of the round that just executed.
	Round int
	// Running is the number of machines still running after the round.
	Running int
	// N is the vertex count of the execution's topology. Composed
	// algorithms run many executions, often on subtopologies; N lets an
	// observer tell them apart.
	N int
	// Stats is the cumulative cost of this execution so far.
	Stats Stats
	// RoundBits is the total traffic of this round alone (the per-round
	// bandwidth view; Stats.Bits is the cumulative sum).
	RoundBits int64
	// RoundMaxBits is the largest single message of this round — the
	// bandwidth of the round's hottest edge, 0 in a silent round. Observers
	// histogram it to see CONGEST behavior over time.
	RoundMaxBits int64
}

// RoundHook observes rounds as they execute. It is purely a tracing
// mechanism: hooks cannot abort a run (cancel the execution's context to do
// that).
type RoundHook func(RoundEvent)

// Observed returns an Exec that runs like base but calls hook after every
// executed round. A nil hook returns base unchanged.
func Observed(base Engine, hook RoundHook) Exec {
	return Instrumented(base, hook, nil)
}

// Instrumented returns an Exec that runs like base, calling hook after
// every executed round (nil: no hook) and feeding every round to the
// bandwidth accountant bw (nil: no accounting). Because composed
// algorithms thread the Exec they are given to all their sub-executions,
// attaching an accountant here accounts the whole composition.
func Instrumented(base Engine, hook RoundHook, bw *Bandwidth) Exec {
	if hook == nil && bw == nil {
		return base
	}
	return observedExec{base: base, hook: hook, bw: bw}
}

type observedExec struct {
	base Engine
	hook RoundHook
	bw   *Bandwidth
}

func (o observedExec) Run(ctx context.Context, t *Topology, f Factory, maxRounds int) (Stats, error) {
	return o.base.run(ctx, t, f, maxRounds, o.hook, o.bw)
}

// instance holds the shared execution state of one run.
//
// The message plane is laid out over the graph's CSR view (graph.CSR):
// flat []Message slabs with one slot per directed arc. Vertex v's buffers
// are the slab range [Off[v], Off[v+1]) — the port order of Adj(v) — so
// handing a machine its buffers is a slice expression, not an allocation.
//
// Outboxes are double-buffered: machines write outs[round%2] while reading
// (through the inbox) what the previous round wrote into the other slab.
// Delivery is the Mate permutation — the message arriving on v's port p is
// whatever the neighbor wrote on the opposite arc Mate[Off[v]+p] — applied
// lazily when a vertex is stepped: its inbox window of the in slab is
// materialized from the previous out slab right before Step, while the
// slots are about to be read anyway. There is no separate delivery pass,
// halted vertices' dead inboxes are never materialized, and the buffer
// swap is a parity flip. All slabs are allocated once per run; the round
// loop performs no heap allocations.
type instance struct {
	t         *Topology
	csr       *graph.CSR
	machines  []Machine
	done      []bool
	remaining int
	// in is the inbox slab; outs are the double-buffered outbox slabs,
	// alternating by round parity. Allocated only for any-plane runs.
	in   []Message
	outs [2][]Message
	// The packed fast path (words.go): when every machine implements
	// WordMachine the run is laid out over []Word slabs instead, the
	// machines are stepped through wms (pre-asserted, so the hot loop does
	// no interface assertions), and wszs holds each machine's WordSizer
	// (nil entries use the default 64-bit accounting).
	words bool
	wms   []WordMachine
	wszs  []WordSizer
	win   []Word
	wouts [2][]Word
	// newly and pending are reusable scratch lists (capacity n, so appends
	// never allocate) of the vertices that halted in the current and the
	// previous round; retireRound drains them.
	newly   []int32
	pending []int32
}

func newInstance(t *Topology, f Factory) (*instance, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	g := t.G
	n := g.N()
	csr := g.CSR()
	arcs := csr.NumArcs()
	inst := &instance{
		t:         t,
		csr:       csr,
		machines:  make([]Machine, n),
		done:      make([]bool, n),
		remaining: n,
		newly:     make([]int32, 0, n),
		pending:   make([]int32, 0, n),
	}
	// Neighbor knowledge is carved from two flat slabs by the same CSR
	// offsets as the message plane. Machines must treat the slices as
	// read-only (they are windows into shared storage).
	nbrIDs := make([]int64, arcs)
	nbrLabels := make([]int64, arcs)
	for j, u := range csr.To {
		nbrIDs[j] = t.ID(int(u))
		if t.Labels == nil {
			nbrLabels[j] = -1
		} else {
			nbrLabels[j] = t.Labels[u]
		}
	}
	maxDeg := g.MaxDegree()
	for v := 0; v < n; v++ {
		lo, hi := csr.Range(v)
		info := NodeInfo{
			V:      v,
			ID:     t.ID(v),
			Label:  t.Label(v),
			Degree: int(hi - lo),
			N:      n,
			MaxDeg: maxDeg,
		}
		inst.machines[v] = f(info, nbrIDs[lo:hi:hi], nbrLabels[lo:hi:hi])
	}
	// Choose the message representation per program: the packed Word plane
	// when every machine speaks it, the general any plane otherwise. Only
	// the chosen plane's slabs are allocated.
	if wms, wszs, ok := wordProgram(inst.machines); ok {
		inst.words = true
		inst.wms, inst.wszs = wms, wszs
		inst.win = make([]Word, arcs)
		inst.wouts = [2][]Word{make([]Word, arcs), make([]Word, arcs)}
		for _, slab := range [...][]Word{inst.win, inst.wouts[0], inst.wouts[1]} {
			for j := range slab {
				slab[j] = NoWord
			}
		}
	} else {
		inst.in = make([]Message, arcs)
		inst.outs = [2][]Message{make([]Message, arcs), make([]Message, arcs)}
	}
	return inst, nil
}

// sendStats aggregates the traffic one vertex emitted in one round.
type sendStats struct {
	msgs    int64
	bits    int64
	maxBits int64
}

func (a *sendStats) add(b sendStats) {
	a.msgs += b.msgs
	a.bits += b.bits
	if b.maxBits > a.maxBits {
		a.maxBits = b.maxBits
	}
}

// stepVertex advances one machine and returns its emitted traffic plus
// whether the vertex halted during this call, dispatching to the plane the
// program was laid out on. In either plane the inbox window is
// materialized from the previous round's outbox slab through the Mate
// permutation (this IS message delivery — fused into the step so the slots
// are written right before Step reads them), the current outbox window is
// cleared per the Machine contract, and the emitted slots are scanned for
// Stats while still hot.
//
//distcolor:noalloc
func (inst *instance) stepVertex(v, round int) (sendStats, bool) {
	if inst.done[v] {
		return sendStats{}, false
	}
	if inst.words {
		return inst.stepVertexWord(v, round)
	}
	prevOut, curOut := inst.outs[(round&1)^1], inst.outs[round&1]
	lo, hi := inst.csr.Range(v)
	mate := inst.csr.Mate[lo:hi:hi]
	in := inst.in[lo:hi:hi]
	out := curOut[lo:hi:hi]
	for p := range in {
		in[p] = prevOut[mate[p]]
		out[p] = nil
	}
	halted := inst.machines[v].Step(round, in, out)
	if halted {
		inst.done[v] = true
	}
	var st sendStats
	for _, m := range out {
		if m == nil {
			continue
		}
		st.msgs++
		if s, ok := m.(Sizer); ok {
			b := s.Bits()
			st.bits += b
			if b > st.maxBits {
				st.maxBits = b
			}
		} else {
			st.bits += 64
			if st.maxBits < 64 {
				st.maxBits = 64
			}
		}
	}
	return st, halted
}

// stepVertexWord is stepVertex on the packed plane: same delivery, same
// clearing discipline, with NoWord in place of nil and no boxing anywhere.
//
//distcolor:noalloc
func (inst *instance) stepVertexWord(v, round int) (sendStats, bool) {
	prevOut, curOut := inst.wouts[(round&1)^1], inst.wouts[round&1]
	lo, hi := inst.csr.Range(v)
	mate := inst.csr.Mate[lo:hi:hi]
	in := inst.win[lo:hi:hi]
	out := curOut[lo:hi:hi]
	for p := range in {
		in[p] = prevOut[mate[p]]
		out[p] = NoWord
	}
	halted := inst.wms[v].StepWord(round, in, out)
	if halted {
		inst.done[v] = true
	}
	var st sendStats
	sz := inst.wszs[v]
	for _, w := range out {
		if w == NoWord {
			continue
		}
		st.msgs++
		b := int64(64)
		if sz != nil {
			b = sz.WordBits(w)
		}
		st.bits += b
		if b > st.maxBits {
			st.maxBits = b
		}
	}
	return st, halted
}

// retireRound runs at the end of each round, after the slab the round read
// from (its prevOut) has been fully consumed, and clears in that slab the
// outbox regions of the vertices that halted this round (killing their
// stale next-to-last messages) and of those that halted last round
// (killing their just-consumed final messages). After its two passes over
// a halted vertex the vertex's region is silent in both slabs and is never
// written again, so inbox materialization reads silence from it forever —
// the cost is O(deg) once per vertex, not per round.
//
//distcolor:noalloc
func (inst *instance) retireRound(round int) {
	if inst.words {
		consumed := inst.wouts[(round&1)^1]
		inst.retireWordsInto(consumed, inst.newly)
		inst.retireWordsInto(consumed, inst.pending)
	} else {
		consumed := inst.outs[(round&1)^1]
		inst.retireInto(consumed, inst.newly)
		inst.retireInto(consumed, inst.pending)
	}
	inst.pending, inst.newly = inst.newly, inst.pending[:0]
}

//distcolor:noalloc
func (inst *instance) retireInto(slab []Message, vs []int32) {
	for _, v := range vs {
		lo, hi := inst.csr.Range(int(v))
		for j := lo; j < hi; j++ {
			slab[j] = nil
		}
	}
}

//distcolor:noalloc
func (inst *instance) retireWordsInto(slab []Word, vs []int32) {
	for _, v := range vs {
		lo, hi := inst.csr.Range(int(v))
		for j := lo; j < hi; j++ {
			slab[j] = NoWord
		}
	}
}

// orBackground normalizes a nil ctx (tolerated for robustness) to the
// background context.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		//distcolor:ignore ctxfirst nil-ctx normalization: there is no caller context to inherit here
		return context.Background()
	}
	return ctx
}

// abortErr is the engine's error for a run cut short by its context; it
// wraps context.Cause(ctx) so errors.Is(err, context.Canceled) (and
// DeadlineExceeded, and any WithCancelCause cause) keep working through the
// algorithm layers above.
func abortErr(ctx context.Context, round, remaining int) error {
	return fmt.Errorf("sim: aborted at round %d (%d vertices still running): %w", round, remaining, context.Cause(ctx))
}

// RunSequential executes the algorithm to global termination, advancing
// vertices in index order within each round.
func RunSequential(ctx context.Context, t *Topology, f Factory, maxRounds int) (Stats, error) {
	return runSequential(ctx, t, f, maxRounds, nil, nil)
}

func runSequential(ctx context.Context, t *Topology, f Factory, maxRounds int, hook RoundHook, bw *Bandwidth) (Stats, error) {
	ctx = orBackground(ctx)
	inst, err := newInstance(t, f)
	if err != nil {
		return Stats{}, err
	}
	n := t.G.N()
	var stats Stats
	for round := 0; ; round++ {
		if inst.remaining == 0 {
			break
		}
		if ctx.Err() != nil {
			return stats, abortErr(ctx, round, inst.remaining)
		}
		if round >= maxRounds {
			return stats, fmt.Errorf("%w after %d rounds (%d vertices still running)", ErrRoundLimit, round, inst.remaining)
		}
		prevBits := stats.Bits
		var roundMax int64
		for v := 0; v < n; v++ {
			st, halted := inst.stepVertex(v, round)
			stats.Messages += st.msgs
			stats.Bits += st.bits
			if st.maxBits > roundMax {
				roundMax = st.maxBits
			}
			if halted {
				inst.remaining--
				inst.newly = append(inst.newly, int32(v))
			}
		}
		if roundMax > stats.MaxMessageBits {
			stats.MaxMessageBits = roundMax
		}
		if bw != nil {
			stats.CongestViolations += bw.roundDone(stats.Bits-prevBits, roundMax)
		}
		inst.retireRound(round)
		stats.Rounds++
		if hook != nil {
			hook(RoundEvent{Round: round, Running: inst.remaining, N: n, Stats: stats,
				RoundBits: stats.Bits - prevBits, RoundMaxBits: roundMax})
		}
	}
	return stats, nil
}

// RunReverseSequential executes the algorithm stepping vertices in reverse
// index order within each round. Synchronous message passing makes the
// in-round order semantically irrelevant; this engine exists to *prove*
// that — any program whose results depend on intra-round scheduling (e.g.
// by leaking state through shared memory mid-round) will diverge from
// RunSequential under test.
func RunReverseSequential(ctx context.Context, t *Topology, f Factory, maxRounds int) (Stats, error) {
	return runReverseSequential(ctx, t, f, maxRounds, nil, nil)
}

func runReverseSequential(ctx context.Context, t *Topology, f Factory, maxRounds int, hook RoundHook, bw *Bandwidth) (Stats, error) {
	ctx = orBackground(ctx)
	inst, err := newInstance(t, f)
	if err != nil {
		return Stats{}, err
	}
	n := t.G.N()
	var stats Stats
	for round := 0; ; round++ {
		if inst.remaining == 0 {
			break
		}
		if ctx.Err() != nil {
			return stats, abortErr(ctx, round, inst.remaining)
		}
		if round >= maxRounds {
			return stats, fmt.Errorf("%w after %d rounds (%d vertices still running)", ErrRoundLimit, round, inst.remaining)
		}
		prevBits := stats.Bits
		var roundMax int64
		for v := n - 1; v >= 0; v-- {
			st, halted := inst.stepVertex(v, round)
			stats.Messages += st.msgs
			stats.Bits += st.bits
			if st.maxBits > roundMax {
				roundMax = st.maxBits
			}
			if halted {
				inst.remaining--
				inst.newly = append(inst.newly, int32(v))
			}
		}
		if roundMax > stats.MaxMessageBits {
			stats.MaxMessageBits = roundMax
		}
		if bw != nil {
			stats.CongestViolations += bw.roundDone(stats.Bits-prevBits, roundMax)
		}
		inst.retireRound(round)
		stats.Rounds++
		if hook != nil {
			hook(RoundEvent{Round: round, Running: inst.remaining, N: n, Stats: stats,
				RoundBits: stats.Bits - prevBits, RoundMaxBits: roundMax})
		}
	}
	return stats, nil
}

// RunParallel executes the algorithm with shard-per-goroutine concurrency.
// The execution is bit-identical to RunSequential.
func RunParallel(ctx context.Context, t *Topology, f Factory, maxRounds int) (Stats, error) {
	return runParallel(ctx, t, f, maxRounds, nil, nil)
}

func runParallel(ctx context.Context, t *Topology, f Factory, maxRounds int, hook RoundHook, bw *Bandwidth) (Stats, error) {
	ctx = orBackground(ctx)
	inst, err := newInstance(t, f)
	if err != nil {
		return Stats{}, err
	}
	n := t.G.N()
	// Worker sizing is grain-based: a shard must carry enough vertices for
	// its goroutine spawn plus barrier share (on the order of a
	// microsecond) to pay for itself, so small topologies run on few (or
	// single) goroutines. The fused data plane needs only ONE barrier per
	// round: a worker materializes inboxes from the previous round's outbox
	// slab (frozen during the round), steps its own vertices, and writes
	// only its own vertices' in/out regions.
	workers := shardWorkers(n, stepGrain)
	var stats Stats
	halted := make([]int, workers)     // per-shard newly halted counts
	sent := make([]sendStats, workers) // per-shard traffic
	// Per-shard newly-halted lists, each preallocated to its shard size so
	// round-loop appends never allocate; drained into inst.newly after the
	// barrier to share the sequential engines' retire machinery.
	shardNewly := make([][]int32, workers)
	chunk := (n + workers - 1) / workers
	for w := range shardNewly {
		shardNewly[w] = make([]int32, 0, chunk)
	}
	for round := 0; ; round++ {
		if inst.remaining == 0 {
			break
		}
		if ctx.Err() != nil {
			return stats, abortErr(ctx, round, inst.remaining)
		}
		if round >= maxRounds {
			return stats, fmt.Errorf("%w after %d rounds (%d vertices still running)", ErrRoundLimit, round, inst.remaining)
		}
		runShards(n, workers, func(w, lo, hi int) {
			var h int
			var s sendStats
			buf := shardNewly[w][:0]
			for v := lo; v < hi; v++ {
				st, vHalted := inst.stepVertex(v, round)
				s.add(st)
				if vHalted {
					h++
					buf = append(buf, int32(v))
				}
			}
			halted[w], sent[w], shardNewly[w] = h, s, buf
		})
		prevBits := stats.Bits
		var roundMax int64
		for w := 0; w < workers; w++ {
			inst.remaining -= halted[w]
			stats.Messages += sent[w].msgs
			stats.Bits += sent[w].bits
			if sent[w].maxBits > roundMax {
				roundMax = sent[w].maxBits
			}
			inst.newly = append(inst.newly, shardNewly[w]...)
		}
		if roundMax > stats.MaxMessageBits {
			stats.MaxMessageBits = roundMax
		}
		if bw != nil {
			stats.CongestViolations += bw.roundDone(stats.Bits-prevBits, roundMax)
		}
		inst.retireRound(round)
		stats.Rounds++
		if hook != nil {
			hook(RoundEvent{Round: round, Running: inst.remaining, N: n, Stats: stats,
				RoundBits: stats.Bits - prevBits, RoundMaxBits: roundMax})
		}
	}
	return stats, nil
}

// stepGrain is the parallel engine's shard grain, tuned on the flat data
// plane: one worker per at least this many vertices.
const stepGrain = 256

// shardWorkers sizes a shard pass: at most one worker per grain units of
// work, capped at NumCPU, at least one.
func shardWorkers(work, grain int) int {
	w := runtime.NumCPU()
	if byGrain := work / grain; w > byGrain {
		w = byGrain
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runShards splits [0,n) into contiguous shards and runs fn on each from
// its own goroutine, waiting for all to finish.
func runShards(n, workers int, fn func(w, lo, hi int)) {
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// Engine selects an execution engine; the zero value is the sequential one.
type Engine int

const (
	// Sequential is the deterministic single-threaded engine.
	Sequential Engine = iota
	// Parallel is the goroutine-sharded engine.
	Parallel
	// ReverseSequential steps vertices in reverse order (scheduling-
	// independence validation; see RunReverseSequential).
	ReverseSequential
)

// Run dispatches to the selected engine.
func (e Engine) Run(ctx context.Context, t *Topology, f Factory, maxRounds int) (Stats, error) {
	return e.run(ctx, t, f, maxRounds, nil, nil)
}

// run is the single engine-dispatch point, shared by Engine.Run and
// Instrumented wrappers.
func (e Engine) run(ctx context.Context, t *Topology, f Factory, maxRounds int, hook RoundHook, bw *Bandwidth) (Stats, error) {
	switch e {
	case Parallel:
		return runParallel(ctx, t, f, maxRounds, hook, bw)
	case ReverseSequential:
		return runReverseSequential(ctx, t, f, maxRounds, hook, bw)
	default:
		return runSequential(ctx, t, f, maxRounds, hook, bw)
	}
}

// DefaultMaxRounds returns a generous round budget for a topology: all
// algorithms here are polylogarithmic or poly-Δ, so 64·(Δ²+log²n+64) rounds
// only trips on genuine non-termination.
func DefaultMaxRounds(t *Topology) int {
	n := t.G.N()
	d := t.G.MaxDegree()
	logn := 1
	for v := n; v > 1; v >>= 1 {
		logn++
	}
	return 64 * (d*d + logn*logn + 64)
}
