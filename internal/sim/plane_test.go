package sim_test

// This file proves the flat CSR + arena data plane (see sim.go and
// DESIGN.md §7) equivalent to the straightforward per-vertex-slice
// implementation it replaced, and pins its performance contract:
//
//   - runReference below IS the old data plane (per-vertex inbox/outbox
//     slices, portRef delivery), kept as the executable specification of
//     one synchronous round;
//   - the equivalence matrix runs programs × graphs × engines and demands
//     identical per-vertex results and identical Stats against it;
//   - the algorithm-level matrix runs real colorings (Linial, the §4 star
//     partition) under every engine and demands identical colorings and
//     Stats;
//   - the allocation tests pin the sequential engine's steady state at
//     zero heap allocations per round;
//   - BenchmarkSimPlane* measure the plane against the reference on the
//     10k-vertex workload (make bench-check guards the JSON baseline).

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cd"
	"repro/internal/cliques"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/reduce"
	"repro/internal/sim"
	"repro/internal/star"
	"repro/internal/vc"
	"repro/internal/verify"
)

// --- the reference engine: the pre-CSR data plane --------------------------

type refPort struct {
	v    int32
	port int32
}

type refInstance struct {
	machines  []sim.Machine
	done      []bool
	remaining int
	in        [][]sim.Message
	out       [][]sim.Message
	peer      [][]refPort
}

func newRefInstance(t *sim.Topology, f sim.Factory) *refInstance {
	g := t.G
	n := g.N()
	inst := &refInstance{
		machines:  make([]sim.Machine, n),
		done:      make([]bool, n),
		remaining: n,
		in:        make([][]sim.Message, n),
		out:       make([][]sim.Message, n),
		peer:      make([][]refPort, n),
	}
	portOf := make([]map[int32]int32, n)
	for v := 0; v < n; v++ {
		adj := g.Adj(v)
		portOf[v] = make(map[int32]int32, len(adj))
		for p, a := range adj {
			portOf[v][a.Edge] = int32(p)
		}
	}
	for v := 0; v < n; v++ {
		adj := g.Adj(v)
		deg := len(adj)
		inst.in[v] = make([]sim.Message, deg)
		inst.out[v] = make([]sim.Message, deg)
		inst.peer[v] = make([]refPort, deg)
		nbrIDs := make([]int64, deg)
		nbrLabels := make([]int64, deg)
		for p, a := range adj {
			inst.peer[v][p] = refPort{v: a.To, port: portOf[a.To][a.Edge]}
			nbrIDs[p] = t.ID(int(a.To))
			nbrLabels[p] = t.Label(int(a.To))
		}
		info := sim.NodeInfo{
			V: v, ID: t.ID(v), Label: t.Label(v),
			Degree: deg, N: n, MaxDeg: g.MaxDegree(),
		}
		inst.machines[v] = f(info, nbrIDs, nbrLabels)
	}
	return inst
}

func refBits(m sim.Message) int64 {
	if s, ok := m.(sim.Sizer); ok {
		return s.Bits()
	}
	return 64
}

// runReference executes the algorithm exactly as the old sequential engine
// did: step vertices in index order, deliver per-vertex outboxes through
// port references, clear outboxes of halted vertices every round.
func runReference(t *sim.Topology, f sim.Factory, maxRounds int) (sim.Stats, error) {
	if err := t.Validate(); err != nil {
		return sim.Stats{}, err
	}
	inst := newRefInstance(t, f)
	n := t.G.N()
	var stats sim.Stats
	for round := 0; ; round++ {
		if inst.remaining == 0 {
			break
		}
		if round >= maxRounds {
			return stats, fmt.Errorf("%w after %d rounds", sim.ErrRoundLimit, round)
		}
		for v := 0; v < n; v++ {
			if inst.done[v] {
				continue
			}
			out := inst.out[v]
			for p := range out {
				out[p] = nil
			}
			if inst.machines[v].Step(round, inst.in[v], out) {
				inst.done[v] = true
				inst.remaining--
			}
			for p := range out {
				if out[p] != nil {
					stats.Messages++
					b := refBits(out[p])
					stats.Bits += b
					if b > stats.MaxMessageBits {
						stats.MaxMessageBits = b
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			out := inst.out[v]
			for p, ref := range inst.peer[v] {
				inst.in[ref.v][ref.port] = out[p]
			}
		}
		for v := 0; v < n; v++ {
			if inst.done[v] {
				out := inst.out[v]
				for p := range out {
					out[p] = nil
				}
			}
		}
		stats.Rounds++
	}
	return stats, nil
}

// --- test programs ---------------------------------------------------------

func planeRandomGraph(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// sizedMsg exercises the Sizer accounting path of Stats.
type sizedMsg int64

func (s sizedMsg) Bits() int64 { return int64(s)%13 + 14 }

// sumProgram broadcasts the vertex ID, then stores the neighbor-ID sum.
func sumProgram(results []int64) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
			if round == 0 {
				sim.SendAll(out, info.ID)
				return info.Degree == 0
			}
			var sum int64
			for _, m := range in {
				sum += m.(int64)
			}
			results[info.V] = sum
			return true
		})
	}
}

// floodProgram floods a token from ID 0; results record first-hearing
// rounds. On disconnected graphs it never terminates, which the matrix
// exercises through the round-limit path.
func floodProgram(results []int64) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		reached := info.ID == 0
		return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
			if reached {
				sim.SendAll(out, int64(1))
				results[info.V] = int64(round)
				return true
			}
			for _, m := range in {
				if m != nil {
					reached = true
					break
				}
			}
			return false
		})
	}
}

// chattyProgram staggers halting by ID, sends on a rotating subset of
// ports (mixing nil and non-nil slots, plain and Sizer payloads), and
// folds everything received into a per-vertex accumulator. It exercises
// final-message delivery, halted-sender clearing, and bit accounting.
func chattyProgram(results []int64) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		stop := int(info.ID%5) + 1
		return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
			acc := results[info.V]
			for p, m := range in {
				switch v := m.(type) {
				case nil:
					acc = acc*31 + 7
				case int64:
					acc = acc*31 + v + int64(p)
				case sizedMsg:
					acc = acc*31 + int64(v) - int64(p)
				}
			}
			results[info.V] = acc
			for p := range out {
				switch (p + round + int(info.ID)) % 3 {
				case 0:
					out[p] = int64(round)*1000 + info.ID
				case 1:
					out[p] = sizedMsg(info.ID + int64(p))
				}
			}
			return round >= stop-1
		})
	}
}

// --- the equivalence matrix ------------------------------------------------

func TestDataPlaneEquivalenceMatrix(t *testing.T) {
	twoCliques := func() *graph.Graph {
		b := graph.NewBuilder(16)
		for u := 0; u < 8; u++ {
			for v := u + 1; v < 8; v++ {
				b.AddEdge(u, v)
				b.AddEdge(u+8, v+8)
			}
		}
		return b.MustBuild()
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-small", planeRandomGraph(1, 60, 0.15)},
		{"gnp-sparse", planeRandomGraph(2, 250, 0.015)},
		{"gnp-dense", planeRandomGraph(3, 50, 0.6)},
		{"star", graph.Star(40)},
		{"path", graph.Path(30)},
		{"complete", graph.Complete(24)},
		{"cycle", graph.Cycle(17)},
		{"two-cliques", twoCliques()},
		{"isolated", graph.NewBuilder(12).MustBuild()},
		{"single", graph.NewBuilder(1).MustBuild()},
		{"empty", graph.NewBuilder(0).MustBuild()},
	}
	programs := []struct {
		name string
		prog func([]int64) sim.Factory
	}{
		{"sum", sumProgram},
		{"flood", floodProgram},
		{"chatty", chattyProgram},
	}
	engines := []struct {
		name string
		eng  sim.Engine
	}{
		{"sequential", sim.Sequential},
		{"reverse", sim.ReverseSequential},
		{"parallel", sim.Parallel},
	}
	const maxRounds = 64
	for _, gc := range graphs {
		for _, pc := range programs {
			t.Run(gc.name+"/"+pc.name, func(t *testing.T) {
				topo := sim.NewTopology(gc.g)
				wantRes := make([]int64, gc.g.N())
				wantStats, wantErr := runReference(topo, pc.prog(wantRes), maxRounds)
				for _, ec := range engines {
					gotRes := make([]int64, gc.g.N())
					gotStats, gotErr := ec.eng.Run(context.Background(), topo, pc.prog(gotRes), maxRounds)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s: error mismatch: reference %v, got %v", ec.name, wantErr, gotErr)
					}
					if gotStats != wantStats {
						t.Fatalf("%s: stats %+v, reference %+v", ec.name, gotStats, wantStats)
					}
					for v := range wantRes {
						if gotRes[v] != wantRes[v] {
							t.Fatalf("%s: vertex %d result %d, reference %d", ec.name, v, gotRes[v], wantRes[v])
						}
					}
				}
			})
		}
	}
}

// TestAlgorithmEquivalenceMatrix runs real colorings from the seed
// workloads under every engine — including the pre-CSR reference plane
// (refExec, words_test.go), which carries the word-ported programs over
// the unoptimized any-payload path: colorings and Stats must be identical
// bit-for-bit (DESIGN.md §4, §8).
func TestAlgorithmEquivalenceMatrix(t *testing.T) {
	engines := []struct {
		name string
		eng  sim.Exec
	}{
		{"sequential", sim.Sequential},
		{"reverse", sim.ReverseSequential},
		{"parallel", sim.Parallel},
		{"reference", refExec{}},
	}
	g, err := gen.NearRegular(512, 12, 2017)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("linial", func(t *testing.T) {
		var want *linial.Result
		for _, ec := range engines {
			got, err := linial.Reduce(context.Background(), ec.eng, sim.NewTopology(g), int64(g.N()))
			if err != nil {
				t.Fatalf("%s: %v", ec.name, err)
			}
			if err := verify.VertexColoring(g, got.Colors, got.Palette); err != nil {
				t.Fatalf("%s: improper: %v", ec.name, err)
			}
			if want == nil {
				want = got
				continue
			}
			if got.Stats != want.Stats || got.Palette != want.Palette {
				t.Fatalf("%s: stats/palette diverge: %+v vs %+v", ec.name, got.Stats, want.Stats)
			}
			for v := range want.Colors {
				if got.Colors[v] != want.Colors[v] {
					t.Fatalf("%s: color of %d differs", ec.name, v)
				}
			}
		}
	})
	t.Run("reduce-kw", func(t *testing.T) {
		lin, err := linial.Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), int64(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		topo := &sim.Topology{G: g, Labels: lin.Colors}
		target := int64(g.MaxDegree()) + 1
		var want *reduce.Result
		for _, ec := range engines {
			got, err := reduce.KuhnWattenhofer(context.Background(), ec.eng, topo, lin.Palette, target)
			if err != nil {
				t.Fatalf("%s: %v", ec.name, err)
			}
			if err := verify.VertexColoring(g, got.Colors, got.Palette); err != nil {
				t.Fatalf("%s: improper: %v", ec.name, err)
			}
			if want == nil {
				want = got
				continue
			}
			if got.Stats != want.Stats {
				t.Fatalf("%s: stats diverge: %+v vs %+v", ec.name, got.Stats, want.Stats)
			}
			for v := range want.Colors {
				if got.Colors[v] != want.Colors[v] {
					t.Fatalf("%s: color of %d differs", ec.name, v)
				}
			}
		}
	})
	t.Run("star", func(t *testing.T) {
		sg, err := gen.NearRegular(128, 16, 2017)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := star.ChooseT(sg.MaxDegree(), 1)
		if err != nil {
			t.Fatal(err)
		}
		var want *star.Result
		for _, ec := range engines {
			opt := star.Options{Exec: ec.eng, VC: vc.Options{Exec: ec.eng}}
			got, err := star.EdgeColor(context.Background(), sg, tt, 1, opt)
			if err != nil {
				t.Fatalf("%s: %v", ec.name, err)
			}
			if err := verify.EdgeColoring(sg, got.Colors, got.Palette); err != nil {
				t.Fatalf("%s: improper: %v", ec.name, err)
			}
			if want == nil {
				want = got
				continue
			}
			if got.Stats != want.Stats || got.Palette != want.Palette {
				t.Fatalf("%s: stats/palette diverge: %+v vs %+v", ec.name, got.Stats, want.Stats)
			}
			for e := range want.Colors {
				if got.Colors[e] != want.Colors[e] {
					t.Fatalf("%s: color of edge %d differs", ec.name, e)
				}
			}
		}
	})
	t.Run("cd", func(t *testing.T) {
		h, err := gen.UniformHypergraph(120, 3, 360, 2017)
		if err != nil {
			t.Fatal(err)
		}
		lgr := h.LineGraph()
		cov, err := cliques.FromLineGraph(lgr)
		if err != nil {
			t.Fatal(err)
		}
		tt := cd.ChooseT(cov.MaxCliqueSize(), 1)
		var want *cd.Result
		for _, ec := range engines {
			opt := cd.Options{Exec: ec.eng, VC: vc.Options{Exec: ec.eng}}
			got, err := cd.Color(context.Background(), lgr.L, cov, tt, 1, opt)
			if err != nil {
				t.Fatalf("%s: %v", ec.name, err)
			}
			if err := verify.VertexColoring(lgr.L, got.Colors, got.Palette); err != nil {
				t.Fatalf("%s: improper: %v", ec.name, err)
			}
			if want == nil {
				want = got
				continue
			}
			if got.Stats != want.Stats || got.Palette != want.Palette {
				t.Fatalf("%s: stats/palette diverge: %+v vs %+v", ec.name, got.Stats, want.Stats)
			}
			for v := range want.Colors {
				if got.Colors[v] != want.Colors[v] {
					t.Fatalf("%s: color of %d differs", ec.name, v)
				}
			}
		}
	})
}

// --- allocation regression -------------------------------------------------

// exchangeProgram is the steady-state workload for allocation pinning: every
// vertex keeps exchanging small int64 payloads (which the Go runtime
// converts to interfaces without allocating) for a fixed number of rounds.
func exchangeProgram(rounds int) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		var acc int64
		return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
			for _, m := range in {
				if m != nil {
					acc += m.(int64)
				}
			}
			sim.SendAll(out, int64(round&0x7f))
			return round >= rounds-1
		})
	}
}

// TestSequentialSteadyStateAllocFree pins the tentpole contract: after
// instance setup, the sequential engine's round loop performs zero heap
// allocations. Measured by differencing whole runs of different lengths,
// which cancels the one-time setup cost exactly.
func TestSequentialSteadyStateAllocFree(t *testing.T) {
	g := planeRandomGraph(5, 400, 0.04)
	topo := sim.NewTopology(g)
	g.CSR() // build the cached view outside the measurement
	run := func(rounds int) {
		if _, err := sim.RunSequential(context.Background(), topo, exchangeProgram(rounds), rounds+2); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(5, func() { run(8) })
	long := testing.AllocsPerRun(5, func() { run(72) })
	if long != short {
		t.Fatalf("sequential engine allocates per round: %.1f allocs over 64 extra rounds (%.1f vs %.1f)",
			long-short, long, short)
	}
}

// TestReverseSequentialSteadyStateAllocFree pins the same contract for the
// reverse engine (it shares the data plane, not the loop).
func TestReverseSequentialSteadyStateAllocFree(t *testing.T) {
	g := planeRandomGraph(6, 400, 0.04)
	topo := sim.NewTopology(g)
	g.CSR()
	run := func(rounds int) {
		if _, err := sim.RunReverseSequential(context.Background(), topo, exchangeProgram(rounds), rounds+2); err != nil {
			t.Fatal(err)
		}
	}
	short := testing.AllocsPerRun(5, func() { run(8) })
	long := testing.AllocsPerRun(5, func() { run(72) })
	if long != short {
		t.Fatalf("reverse engine allocates per round: %.1f allocs over 64 extra rounds", long-short)
	}
}

// --- benchmarks ------------------------------------------------------------

// benchGraph builds a 10k-vertex random graph with ~deg·n/2 edges without
// the O(n²) coin-flip loop.
func benchGraph(tb testing.TB, n, deg int, seed int64) *graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	seen := make(map[[2]int]bool, n*deg/2)
	for len(seen) < n*deg/2 {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

const benchRounds = 32

// wavefrontProgram is the canonical 10k-vertex plane workload: vertices
// halt in staggered waves (vertex v runs 1 + ID mod span rounds), which is
// the termination pattern of this repository's algorithms — Linial's
// schedule, the §5 peeling, and the class-by-class trims all retire
// vertices progressively, so most rounds execute over a mix of live and
// halted vertices.
func wavefrontProgram(span int) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		stop := 1 + int(info.ID)%span
		var acc int64
		return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
			for _, m := range in {
				if m != nil {
					acc += m.(int64)
				}
			}
			sim.SendAll(out, int64(round&0x7f))
			return round >= stop-1
		})
	}
}

// BenchmarkSimPlane is the 10k-vertex message-plane workload guarded by
// BENCH_simcore.json: one op is a full execution (at most 32 rounds) of
// the wavefront (staggered halting) or exchange (all vertices live
// throughout) program. The reference sub-benchmarks run the identical
// workloads on the old data plane, so the CSR speedup is measurable
// in-repo:
//
//	go test ./internal/sim -bench BenchmarkSimPlane -benchmem
func BenchmarkSimPlane(b *testing.B) {
	g := benchGraph(b, 10_000, 16, 2017)
	topo := sim.NewTopology(g)
	g.CSR()
	workloads := []struct {
		name string
		prog func() sim.Factory
	}{
		{"wavefront", func() sim.Factory { return wavefrontProgram(benchRounds) }},
		{"exchange", func() sim.Factory { return exchangeProgram(benchRounds) }},
	}
	for _, wl := range workloads {
		b.Run(wl.name+"/sequential/10k", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunSequential(context.Background(), topo, wl.prog(), benchRounds+2); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(wl.name+"/parallel/10k", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunParallel(context.Background(), topo, wl.prog(), benchRounds+2); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(wl.name+"/reference/10k", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runReference(topo, wl.prog(), benchRounds+2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimLinial measures a real algorithm (the O(log* n) Linial
// substrate) end-to-end on the 10k workload, old plane vs new.
func BenchmarkSimLinial(b *testing.B) {
	g, err := gen.NearRegular(10_000, 8, 2017)
	if err != nil {
		b.Fatal(err)
	}
	g.CSR()
	b.Run("sequential/10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := linial.Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), int64(g.N())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel/10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := linial.Reduce(context.Background(), sim.Parallel, sim.NewTopology(g), int64(g.N())); err != nil {
				b.Fatal(err)
			}
		}
	})
}
