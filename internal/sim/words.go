package sim

// The word message plane: the engine's boxing-free fast path.
//
// `Message` is `any`, so every payload a vertex stores into its outbox is
// converted to an interface value — and any int64 outside the runtime's
// small-integer cache escapes to the heap. The algorithms of this
// repository overwhelmingly exchange single machine words (colors, tokens,
// field elements), so the plane offers a second representation: a packed
// Word slab with one int64 slot per directed arc and a sentinel (NoWord)
// for "no message". The representation is chosen once per program: when
// every machine an execution's Factory produces implements WordMachine,
// the engines lay the run out over []Word slabs and call StepWord; one
// non-word machine falls the whole run back to the []Message plane, where
// WrapWord bridges StepWord through the any contract. Either way the
// observable execution — per-vertex results, rounds, message counts, bit
// accounting — is identical bit for bit; the equivalence matrix in
// plane_test.go pins this.

import (
	"fmt"
	"math"
)

// Word is a packed single-word message payload. It is an alias of int64 so
// algorithm code reads and writes colors without conversions.
type Word = int64

// NoWord is the Word sentinel for "no message" (the counterpart of a nil
// Message). Programs must not send it as a payload; every payload in this
// repository is a non-negative color or token, far from the sentinel.
const NoWord Word = math.MinInt64

// WordMachine is the packed counterpart of Machine: in[p] holds NoWord
// where the any plane would hold nil, and out is pre-filled with NoWord
// where the any plane pre-clears to nil. Word machines are handed to
// engines through WrapWord, which also provides the Machine contract for
// the any plane (mixed programs, the reference engine in tests).
type WordMachine interface {
	StepWord(round int, in, out []Word) bool
}

// WordSizer is the packed counterpart of Sizer: a word machine that
// implements it reports the encoded size in bits of each word it emits.
// Words from machines that do not implement WordSizer are accounted as one
// machine word (64 bits), exactly like non-Sizer Messages.
type WordSizer interface {
	WordBits(w Word) int64
}

// SendAllWords writes the same word to every outgoing port.
func SendAllWords(out []Word, w Word) {
	for p := range out {
		out[p] = w
	}
}

// WrapWord adapts a WordMachine to the Machine interface so a Factory can
// return it. The returned machine implements WordMachine (engines detect
// it and run the packed plane) and Machine (the any plane steps it through
// a per-machine conversion buffer, allocated once on first use — this path
// only runs when a program mixes word and non-word machines, or under the
// reference engine kept in tests).
func WrapWord(wm WordMachine) Machine {
	if ws, ok := wm.(WordSizer); ok {
		return &sizedWordBridge{wordBridge: wordBridge{wm: wm}, ws: ws}
	}
	return &wordBridge{wm: wm}
}

type wordBridge struct {
	wm      WordMachine
	in, out []Word
}

func (b *wordBridge) StepWord(round int, in, out []Word) bool {
	return b.wm.StepWord(round, in, out)
}

// Step runs the word machine on the any plane: convert the inbox, step,
// convert the outbox back. Emitted words become plain int64 Messages, so
// the default 64-bit accounting matches the word plane's.
func (b *wordBridge) Step(round int, in []Message, out []Message) bool {
	b.convertIn(in)
	halted := b.wm.StepWord(round, b.in, b.out)
	for p, w := range b.out {
		if w != NoWord {
			out[p] = w
		}
	}
	return halted
}

func (b *wordBridge) convertIn(in []Message) {
	if b.in == nil {
		b.in = make([]Word, len(in))
		b.out = make([]Word, len(in))
	}
	for p, m := range in {
		switch v := m.(type) {
		case nil:
			b.in[p] = NoWord
		case int64:
			b.in[p] = v
		case sizedWord:
			b.in[p] = v.w
		default:
			// A neighbor sent something a word machine cannot read. As
			// with Int64s, this always indicates a protocol bug between
			// machines of the same algorithm; surface it at the point of
			// corruption instead of reading silence.
			panic(fmt.Sprintf("sim: word machine received non-word payload %T on port %d", m, p))
		}
	}
	for p := range b.out {
		b.out[p] = NoWord
	}
}

// sizedWordBridge is the WrapWord adapter for machines with custom bit
// accounting: on the any plane their words travel as sizedWord Messages so
// Stats.Bits matches the word plane exactly.
type sizedWordBridge struct {
	wordBridge
	ws WordSizer
}

func (b *sizedWordBridge) WordBits(w Word) int64 { return b.ws.WordBits(w) }

func (b *sizedWordBridge) Step(round int, in []Message, out []Message) bool {
	b.convertIn(in)
	halted := b.wm.StepWord(round, b.in, b.out)
	for p, w := range b.out {
		if w != NoWord {
			out[p] = sizedWord{w: w, bits: b.ws.WordBits(w)}
		}
	}
	return halted
}

// sizedWord carries a word over the any plane with its WordSizer bit count.
type sizedWord struct {
	w    Word
	bits int64
}

// Bits implements Sizer.
func (s sizedWord) Bits() int64 { return s.bits }

// wordProgram detects the packed fast path: every machine of the run must
// implement WordMachine (vacuously false for empty topologies, where the
// choice is irrelevant). Returning the asserted slice lets the hot loop
// skip the per-step interface assertion.
func wordProgram(machines []Machine) ([]WordMachine, []WordSizer, bool) {
	if len(machines) == 0 {
		return nil, nil, false
	}
	// Verify before allocating: any-plane programs pass through here on
	// every run and must not pay for the fast path they are not taking.
	for _, m := range machines {
		if _, ok := m.(WordMachine); !ok {
			return nil, nil, false
		}
	}
	wms := make([]WordMachine, len(machines))
	szs := make([]WordSizer, len(machines))
	for v, m := range machines {
		wms[v] = m.(WordMachine)
		if s, ok := m.(WordSizer); ok {
			szs[v] = s
		}
	}
	return wms, szs, true
}
