package sim

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// sizedMsg is a test payload with an explicit bit size.
type sizedMsg struct{ n int64 }

func (s sizedMsg) Bits() int64 { return s.n }

func TestBitAccounting(t *testing.T) {
	// Path 0-1-2: vertex 0 sends a 128-bit message, vertex 2 a plain int64
	// (64 bits), vertex 1 nothing; everyone halts after one exchange.
	g := graph.Path(3)
	f := func(info NodeInfo, nbrIDs, nbrLabels []int64) Machine {
		return FuncMachine(func(round int, in []Message, out []Message) bool {
			if round == 0 {
				switch info.ID {
				case 0:
					SendAll(out, sizedMsg{n: 128})
				case 2:
					SendAll(out, int64(7))
				}
				return false
			}
			return true
		})
	}
	stats, err := RunSequential(context.Background(), NewTopology(g), f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 2 {
		t.Fatalf("messages = %d, want 2", stats.Messages)
	}
	if stats.Bits != 128+64 {
		t.Fatalf("bits = %d, want 192", stats.Bits)
	}
	if stats.MaxMessageBits != 128 {
		t.Fatalf("max message bits = %d, want 128", stats.MaxMessageBits)
	}
}

func TestBitAccountingCombinators(t *testing.T) {
	a := Stats{Rounds: 2, Messages: 10, Bits: 640, MaxMessageBits: 64, CongestViolations: 1}
	b := Stats{Rounds: 5, Messages: 1, Bits: 999, MaxMessageBits: 999, CongestViolations: 4}
	seq := a.Seq(b)
	if seq.Bits != 1639 || seq.MaxMessageBits != 999 || seq.Rounds != 7 || seq.CongestViolations != 5 {
		t.Fatalf("Seq wrong: %+v", seq)
	}
	par := a.Par(b)
	if par.Bits != 1639 || par.MaxMessageBits != 999 || par.Rounds != 5 || par.CongestViolations != 5 {
		t.Fatalf("Par wrong: %+v", par)
	}
}

func TestBitAccountingEnginesAgree(t *testing.T) {
	g := graph.Complete(9)
	f := func(info NodeInfo, nbrIDs, nbrLabels []int64) Machine {
		return FuncMachine(func(round int, in []Message, out []Message) bool {
			if round < 2 {
				SendAll(out, sizedMsg{n: info.ID + 1})
				return false
			}
			return true
		})
	}
	s1, err := RunSequential(context.Background(), NewTopology(g), f, 5)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunParallel(context.Background(), NewTopology(g), f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("engines disagree: %+v vs %+v", s1, s2)
	}
}
