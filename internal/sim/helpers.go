package sim

// SendAll writes the same message to every outgoing port.
func SendAll(out []Message, msg Message) {
	for p := range out {
		out[p] = msg
	}
}

// Int64s extracts int64 payloads from an inbox; slots with nil messages are
// reported as the provided missing value. It panics if a non-nil message is
// not an int64, which always indicates a protocol bug between machines of
// the same algorithm.
func Int64s(in []Message, missing int64) []int64 {
	vals := make([]int64, len(in))
	for p, m := range in {
		if m == nil {
			vals[p] = missing
			continue
		}
		vals[p] = m.(int64)
	}
	return vals
}

// FuncMachine adapts a step function to the Machine interface, for small
// inline programs (mostly in tests).
type FuncMachine func(round int, in []Message, out []Message) bool

// Step implements Machine.
func (f FuncMachine) Step(round int, in []Message, out []Message) bool {
	return f(round, in, out)
}

// WordFunc adapts a step function to the WordMachine interface; wrap it
// with WrapWord to obtain the Machine a Factory must return:
//
//	return sim.WrapWord(sim.WordFunc(func(round int, in, out []sim.Word) bool { ... }))
type WordFunc func(round int, in, out []Word) bool

// StepWord implements WordMachine.
func (f WordFunc) StepWord(round int, in, out []Word) bool {
	return f(round, in, out)
}
