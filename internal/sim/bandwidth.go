package sim

// CONGEST bandwidth accounting.
//
// The paper's model is LOCAL — message size is unbounded — but the natural
// hardening question for every algorithm here is how far it strays from
// CONGEST, where an edge carries O(log n) bits per round (Blikstad–Maus–
// de Vos study exactly this for deterministic edge coloring; see
// PAPERS.md). Stats already records total traffic (Bits) and the largest
// single message (MaxMessageBits); the Bandwidth accountant adds the
// *per-round* view: a histogram of each round's hottest-edge message size
// and a violation count against an optional cap. Violations are recorded,
// never enforced — the simulator stays a LOCAL machine, the accountant
// turns message-size honesty into a measurable, CI-gateable number
// (BENCH_simcore.json carries max_word_bits and congest_violations as
// deterministic columns).
//
// Granularity: one accounting event per executed round per execution. The
// engines already aggregate per-message sizes into per-round maxima for
// Stats, so the accountant costs a handful of atomic operations per round
// — nothing per message, nothing per vertex — and the round loop stays
// allocation-free (the zero-alloc regression tests run with an accountant
// attached).
//
// A single Bandwidth value may be shared by every execution of a composed
// algorithm (attach it with Instrumented, which rides the same Exec that
// algorithms thread to their sub-executions): counters are atomic, so
// concurrent sub-executions account safely, and the totals are
// deterministic because atomic addition commutes.

import "sync/atomic"

// bwBuckets is the fixed bucket count of the per-round bandwidth
// histogram: bucket e counts rounds whose hottest edge carried at most 2^e
// bits (e = 0..15), with one overflow bucket above 2^15. 32 Ki bits per
// message is far beyond anything a word-structured algorithm emits, so the
// overflow bucket is the "something is very wrong" bucket.
const bwBuckets = 17

// Bandwidth accounts per-round edge bandwidth across the executions it is
// attached to. The zero value is ready to use; a zero CapBits disables
// violation counting (the histogram still fills). All methods are safe for
// concurrent use.
type Bandwidth struct {
	// CapBits is the CONGEST cap in bits per edge per round; a round whose
	// largest message exceeds it records one violation. 0 means "account,
	// don't judge". CongestCapBits sizes it for a topology.
	CapBits int64

	rounds       atomic.Int64
	violations   atomic.Int64
	maxRoundBits atomic.Int64
	maxMsgBits   atomic.Int64
	hist         [bwBuckets]atomic.Int64
}

// roundDone records one executed round: totalBits is the round's total
// traffic, maxBits its largest single message (0 in a silent round, which
// is accounted as a round but not histogrammed). It returns 1 when the
// round violated the cap, else 0 — the engine adds the result into the
// execution's Stats so violations propagate through the Seq/Par algebra.
func (b *Bandwidth) roundDone(totalBits, maxBits int64) int64 {
	b.rounds.Add(1)
	updateMax(&b.maxRoundBits, totalBits)
	if maxBits <= 0 {
		return 0
	}
	updateMax(&b.maxMsgBits, maxBits)
	b.hist[bwBucket(maxBits)].Add(1)
	if b.CapBits > 0 && maxBits > b.CapBits {
		b.violations.Add(1)
		return 1
	}
	return 0
}

// updateMax raises *m to v if v is larger (CAS loop; contention is one
// update per round per execution, so it converges immediately).
func updateMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// bwBucket maps a positive bit count to its histogram bucket: the smallest
// e with bits <= 2^e, clamped to the overflow bucket.
func bwBucket(bits int64) int {
	e := 0
	for e < bwBuckets-1 && bits > int64(1)<<e {
		e++
	}
	return e
}

// Rounds reports the number of rounds accounted.
func (b *Bandwidth) Rounds() int64 { return b.rounds.Load() }

// Violations reports the number of rounds whose hottest edge exceeded
// CapBits.
func (b *Bandwidth) Violations() int64 { return b.violations.Load() }

// MaxRoundBits reports the largest per-round total traffic observed.
func (b *Bandwidth) MaxRoundBits() int64 { return b.maxRoundBits.Load() }

// MaxMessageBits reports the largest single message observed.
func (b *Bandwidth) MaxMessageBits() int64 { return b.maxMsgBits.Load() }

// HistBuckets snapshots the per-round hottest-edge histogram: slot e
// counts rounds with hottest-edge size in (2^(e-1), 2^e] bits, the last
// slot overflow beyond 2^15. (Snapshot allocation is fine: this is the
// scrape path, not the round loop.)
func (b *Bandwidth) HistBuckets() []int64 {
	out := make([]int64, bwBuckets)
	for i := range b.hist {
		out[i] = b.hist[i].Load()
	}
	return out
}

// BucketBound reports the upper bound in bits of histogram slot e (the
// last slot has no bound and reports -1).
func BucketBound(e int) int64 {
	if e < 0 || e >= bwBuckets-1 {
		return -1
	}
	return int64(1) << e
}

// CongestCapBits is the CONGEST bandwidth cap this repository uses for an
// n-vertex network: 2·⌈log2 n⌉ bits per edge per round, floored at 8 so
// toy topologies are not judged against a 2-bit cap. The constant 2 is the
// usual "a message is O(1) identifiers/colors" allowance.
func CongestCapBits(n int) int64 {
	log := int64(1)
	for v := n; v > 1; v >>= 1 {
		log++
	}
	c := 2 * log
	if c < 8 {
		c = 8
	}
	return c
}
