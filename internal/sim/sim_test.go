package sim

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func rg(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// neighborSumProgram: every vertex broadcasts its ID in round 0, sums the
// received IDs in round 1, stores the result, and halts.
func neighborSumProgram(results []int64) Factory {
	return func(info NodeInfo, nbrIDs, nbrLabels []int64) Machine {
		return FuncMachine(func(round int, in []Message, out []Message) bool {
			switch round {
			case 0:
				SendAll(out, info.ID)
				return info.Degree == 0 // isolated vertices are done immediately
			default:
				var sum int64
				for _, m := range in {
					sum += m.(int64)
				}
				results[info.V] = sum
				return true
			}
		})
	}
}

func TestNeighborSum(t *testing.T) {
	g := rg(1, 40, 0.2)
	results := make([]int64, g.N())
	topo := NewTopology(g)
	stats, err := RunSequential(context.Background(), topo, neighborSumProgram(results), 10)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		var want int64
		for _, a := range g.Adj(v) {
			want += int64(a.To)
		}
		if g.Degree(v) > 0 && results[v] != want {
			t.Fatalf("vertex %d sum = %d, want %d", v, results[v], want)
		}
	}
	if stats.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", stats.Rounds)
	}
	if stats.Messages != 2*int64(g.M()) {
		t.Fatalf("messages = %d, want %d", stats.Messages, 2*g.M())
	}
}

// bfsProgram floods a token from the vertex with identifier 0; every vertex
// records the round it first hears the token (its BFS distance).
func bfsProgram(dist []int) Factory {
	return func(info NodeInfo, nbrIDs, nbrLabels []int64) Machine {
		reached := info.ID == 0
		relayed := false
		if reached {
			dist[info.V] = 0
		}
		return FuncMachine(func(round int, in []Message, out []Message) bool {
			if reached && !relayed {
				SendAll(out, int64(1))
				relayed = true
				return true
			}
			if !reached {
				for _, m := range in {
					if m != nil {
						reached = true
						dist[info.V] = round
						break
					}
				}
				if reached {
					SendAll(out, int64(1))
					relayed = true
					return true
				}
			}
			return false
		})
	}
}

func TestBFSDistances(t *testing.T) {
	g := rg(7, 60, 0.08)
	// Compute reference distances from vertex 0 by BFS.
	want := make([]int, g.N())
	for i := range want {
		want[i] = -1
	}
	want[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.Adj(v) {
			if want[a.To] == -1 {
				want[a.To] = want[v] + 1
				queue = append(queue, int(a.To))
			}
		}
	}
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	topo := NewTopology(g)
	// Unreachable vertices never halt; bound rounds and expect the error if
	// the graph is disconnected.
	_, err := RunSequential(context.Background(), topo, bfsProgram(dist), g.N()+2)
	disconnected := false
	for _, d := range want {
		if d == -1 {
			disconnected = true
		}
	}
	if disconnected {
		if !errors.Is(err, ErrRoundLimit) {
			t.Fatalf("expected round-limit error on disconnected graph, got %v", err)
		}
	} else if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if want[v] != -1 && dist[v] != want[v] {
			t.Fatalf("vertex %d distance %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestEnginesProduceIdenticalExecutions(t *testing.T) {
	g := rg(3, 200, 0.05)
	r1 := make([]int64, g.N())
	r2 := make([]int64, g.N())
	s1, err := RunSequential(context.Background(), NewTopology(g), neighborSumProgram(r1), 10)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunParallel(context.Background(), NewTopology(g), neighborSumProgram(r2), 10)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	for v := range r1 {
		if r1[v] != r2[v] {
			t.Fatalf("vertex %d differs: %d vs %d", v, r1[v], r2[v])
		}
	}
}

func TestEngineDispatch(t *testing.T) {
	g := graph.Path(4)
	res := make([]int64, 4)
	for _, e := range []Engine{Sequential, Parallel} {
		if _, err := e.Run(context.Background(), NewTopology(g), neighborSumProgram(res), 10); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundLimitError(t *testing.T) {
	g := graph.Path(3)
	forever := func(info NodeInfo, nbrIDs, nbrLabels []int64) Machine {
		return FuncMachine(func(round int, in []Message, out []Message) bool {
			return false
		})
	}
	_, err := RunSequential(context.Background(), NewTopology(g), forever, 5)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("want ErrRoundLimit, got %v", err)
	}
}

func TestTopologyValidation(t *testing.T) {
	g := graph.Path(3)
	topo := &Topology{G: g, IDs: []int64{1, 1, 2}}
	if err := topo.Validate(); err == nil {
		t.Fatal("expected duplicate ID error")
	}
	topo = &Topology{G: g, IDs: []int64{1}}
	if err := topo.Validate(); err == nil {
		t.Fatal("expected ID length error")
	}
	topo = &Topology{G: g, Labels: []int64{1}}
	if err := topo.Validate(); err == nil {
		t.Fatal("expected label length error")
	}
	topo = &Topology{G: g, IDs: []int64{5, 3, 9}, Labels: []int64{0, 1, 0}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.ID(1) != 3 || topo.Label(2) != 0 {
		t.Fatal("accessors wrong")
	}
	plain := NewTopology(g)
	if plain.ID(2) != 2 || plain.Label(0) != -1 {
		t.Fatal("default accessors wrong")
	}
}

func TestNodeInfoAndNeighborKnowledge(t *testing.T) {
	g := graph.Star(5)
	ids := []int64{100, 200, 300, 400, 500}
	labels := []int64{7, 8, 9, 10, 11}
	topo := &Topology{G: g, IDs: ids, Labels: labels}
	type seen struct {
		info   NodeInfo
		nbrIDs []int64
		nbrLbl []int64
	}
	got := make([]seen, g.N())
	f := func(info NodeInfo, nbrIDs, nbrLabels []int64) Machine {
		got[info.V] = seen{info, append([]int64(nil), nbrIDs...), append([]int64(nil), nbrLabels...)}
		return FuncMachine(func(round int, in []Message, out []Message) bool { return true })
	}
	if _, err := RunSequential(context.Background(), topo, f, 5); err != nil {
		t.Fatal(err)
	}
	center := got[0]
	if center.info.ID != 100 || center.info.Degree != 4 || center.info.MaxDeg != 4 || center.info.N != 5 {
		t.Fatalf("center info wrong: %+v", center.info)
	}
	if len(center.nbrIDs) != 4 {
		t.Fatal("center should see 4 neighbor IDs")
	}
	for p, a := range g.Adj(0) {
		if center.nbrIDs[p] != ids[a.To] || center.nbrLbl[p] != labels[a.To] {
			t.Fatal("neighbor knowledge mismatched with ports")
		}
	}
	leaf := got[3]
	if leaf.info.Label != 10 || len(leaf.nbrIDs) != 1 || leaf.nbrIDs[0] != 100 {
		t.Fatalf("leaf knowledge wrong: %+v", leaf)
	}
}

func TestStatsCombinators(t *testing.T) {
	a := Stats{Rounds: 5, Messages: 100}
	b := Stats{Rounds: 3, Messages: 50}
	if s := a.Seq(b); s.Rounds != 8 || s.Messages != 150 {
		t.Fatalf("Seq wrong: %+v", s)
	}
	if s := a.Par(b); s.Rounds != 5 || s.Messages != 150 {
		t.Fatalf("Par wrong: %+v", s)
	}
	if s := ParAll([]Stats{a, b, {Rounds: 9, Messages: 1}}); s.Rounds != 9 || s.Messages != 151 {
		t.Fatalf("ParAll wrong: %+v", s)
	}
	if s := ParAll(nil); s.Rounds != 0 || s.Messages != 0 {
		t.Fatalf("empty ParAll wrong: %+v", s)
	}
}

func TestHaltedVertexStopsSending(t *testing.T) {
	// Vertex with ID 0 halts immediately after sending once; its neighbor
	// must see the message in round 1 but nothing in round 2.
	g := graph.Path(2)
	var sawRound1, sawRound2 bool
	f := func(info NodeInfo, nbrIDs, nbrLabels []int64) Machine {
		if info.ID == 0 {
			return FuncMachine(func(round int, in []Message, out []Message) bool {
				SendAll(out, int64(42))
				return true
			})
		}
		return FuncMachine(func(round int, in []Message, out []Message) bool {
			switch round {
			case 1:
				sawRound1 = in[0] != nil
				return false
			case 2:
				sawRound2 = in[0] != nil
				return true
			}
			return false
		})
	}
	if _, err := RunSequential(context.Background(), NewTopology(g), f, 10); err != nil {
		t.Fatal(err)
	}
	if !sawRound1 {
		t.Fatal("final message of halting vertex was not delivered")
	}
	if sawRound2 {
		t.Fatal("halted vertex message redelivered")
	}
}

func TestInt64sHelper(t *testing.T) {
	in := []Message{int64(3), nil, int64(9)}
	got := Int64s(in, -1)
	if got[0] != 3 || got[1] != -1 || got[2] != 9 {
		t.Fatalf("Int64s wrong: %v", got)
	}
}

func TestDefaultMaxRounds(t *testing.T) {
	if DefaultMaxRounds(NewTopology(graph.Complete(10))) <= 0 {
		t.Fatal("round budget must be positive")
	}
}

// TestContextAbortsRun: engines check the context at every round boundary
// and abort with an error wrapping the cancellation cause.
func TestContextAbortsRun(t *testing.T) {
	g := rg(7, 40, 0.2)
	forever := func(info NodeInfo, nbrIDs, nbrLabels []int64) Machine {
		return FuncMachine(func(round int, in, out []Message) bool { return false })
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range []Engine{Sequential, Parallel, ReverseSequential} {
		stats, err := e.Run(ctx, NewTopology(g), forever, 1000)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %v: want context.Canceled, got %v", e, err)
		}
		if stats.Rounds != 0 {
			t.Fatalf("engine %v ran %d rounds under a canceled context", e, stats.Rounds)
		}
	}
}
