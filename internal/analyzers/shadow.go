package analyzers

// shadow: a standard-library reimplementation of the stock `shadow` vet
// analyzer (the x/tools original cannot be vendored into this
// dependency-free module). It follows the original's noise-control
// heuristics: a declaration shadows only if the outer variable is
// function-local (parameters included), has an identical type, and is
// still used after the inner scope ends — the configuration in which a
// reader can plausibly believe the inner assignment reached the outer
// variable. Test files are exempt (table-test rebinding idioms shadow on
// purpose).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shadow is the stdlib shadow pass. See the file comment for the
// contract.
var Shadow = &Analyzer{
	Name: "shadow",
	Doc:  "report inner declarations that shadow an identically-typed outer variable still used after the inner scope",
	Run:  runShadow,
}

func runShadow(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShadows(pass, fd)
		}
	}
	return nil
}

func checkShadows(pass *Pass, fd *ast.FuncDecl) {
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		// Only statement-level declarations shadow reportably: the
		// `if err := f(); err != nil` and `for i := 0; ...` init-clause
		// idioms deliberately scope a fresh variable to the statement, and
		// parameters/range variables are declarations the reader cannot
		// miss.
		var names []*ast.Ident
		switch d := n.(type) {
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE || isInitClause(d, stack) {
				return true
			}
			for _, lhs := range d.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					names = append(names, id)
				}
			}
		case *ast.GenDecl:
			if d.Tok != token.VAR {
				return true
			}
			for _, spec := range d.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					names = append(names, vs.Names...)
				}
			}
		default:
			return true
		}
		for _, id := range names {
			checkShadowedName(pass, fd, id)
		}
		return true
	})
}

// isInitClause reports whether the assignment is the Init clause of its
// enclosing if/for/switch statement.
func isInitClause(as *ast.AssignStmt, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.IfStmt:
		return p.Init == ast.Stmt(as)
	case *ast.ForStmt:
		return p.Init == ast.Stmt(as)
	case *ast.SwitchStmt:
		return p.Init == ast.Stmt(as)
	case *ast.TypeSwitchStmt:
		return p.Init == ast.Stmt(as)
	}
	return false
}

func checkShadowedName(pass *Pass, fd *ast.FuncDecl, id *ast.Ident) {
	if id.Name == "_" {
		return
	}
	obj, ok := pass.TypesInfo.Defs[id].(*types.Var)
	if !ok || obj.IsField() || obj.Parent() == nil || obj.Parent().Parent() == nil {
		return
	}
	_, outer := obj.Parent().Parent().LookupParent(obj.Name(), obj.Pos())
	ov, ok := outer.(*types.Var)
	if !ok || ov.IsField() {
		return
	}
	// Function-local outers only (a package-level shadow is almost
	// always intentional naming, per the stock analyzer).
	if ov.Pos() < fd.Pos() || ov.Pos() > fd.End() {
		return
	}
	if !types.Identical(obj.Type(), ov.Type()) {
		return
	}
	if !usedAfter(pass, ov, obj.Parent().End()) {
		return
	}
	pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s; the outer variable is still used afterwards",
		id.Name, pass.Fset.Position(ov.Pos()))
}

// usedAfter reports whether obj is referenced at any position past end.
func usedAfter(pass *Pass, obj types.Object, end token.Pos) bool {
	for id, o := range pass.TypesInfo.Uses {
		if o == obj && id.Pos() > end {
			return true
		}
	}
	return false
}
