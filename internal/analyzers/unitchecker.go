package analyzers

// The `go vet -vettool` protocol, on the standard library. The go
// command drives a vet tool in three ways:
//
//   tool -V=full        print an identity line used as the cache key
//   tool -flags         print a JSON description of the tool's flags
//   tool <file>.cfg     analyze one package described by the JSON config
//
// The .cfg file carries everything needed to re-typecheck the package
// without loading the build graph: file lists, the import map, and the
// compiler export-data file of every dependency (already built, because
// vet runs after compilation). x/tools ships this driver as
// go/analysis/unitchecker; this is the same protocol implemented on
// go/importer so the module stays dependency-free. See DESIGN.md §10.

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// vetConfig mirrors the JSON the go command writes for each package; the
// field set (and JSON spelling) is fixed by cmd/go.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/distcolorvet: parse the protocol flags,
// then analyze the .cfg package (exit 0 clean, 2 on findings, 1 on
// internal errors — the go command treats any nonzero exit as a vet
// failure).
func Main(as ...*Analyzer) {
	progname := filepath.Base(os.Args[0])

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (the go command's tool-ID probe)")
	flagsFlag := fs.Bool("flags", false, "print a JSON description of the tool's flags and exit")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON instead of plain text")
	enabled := make(map[string]*bool, len(as))
	for _, a := range as {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" pass: "+a.Doc)
	}
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		printVersion(progname, *versionFlag)
		return
	}
	if *flagsFlag {
		printFlags(fs)
		return
	}

	var active []*Analyzer
	for _, a := range as {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <file>.cfg\n(this tool is driven by `go vet -vettool=%s`; see make lint)\n", progname, progname)
		os.Exit(1)
	}
	diags, fset, err := checkPackage(fs.Arg(0), active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	exit := 0
	suppressed := make(map[string]int)
	enc := json.NewEncoder(os.Stderr)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if *jsonFlag {
			// NDJSON, one finding per line, suppressed ones included with
			// their waiver reason so CI tooling sees the full audit trail.
			enc.Encode(jsonDiagnostic{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
				Suppressed: d.Suppressed, Reason: d.SuppressReason,
			})
		}
		if d.Suppressed {
			suppressed[d.Analyzer]++
			continue
		}
		exit = 2
		if !*jsonFlag {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
		}
	}
	// The suppression audit trail: every waived finding is counted per
	// pass, so `make lint` output shows how much of the invariant is held
	// by comment rather than by proof.
	if len(suppressed) > 0 {
		keys := make([]string, 0, len(suppressed))
		for k := range suppressed {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s:%d", k, suppressed[k])
		}
		fmt.Fprintf(os.Stderr, "%s: note: suppressed findings: %s\n", progname, strings.Join(parts, " "))
	}
	os.Exit(exit)
}

// jsonDiagnostic is the -json wire shape: NDJSON on stderr, one object
// per finding. The field set is stable; CI consumes it (see the
// problem-matcher under .github/problem-matchers/).
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// printVersion answers the -V probe. The go command requires the first
// two fields to be the tool's basename and the literal "version", and
// caches vet results keyed on the rest — so the build ID must change
// when the tool binary does, which hashing the executable guarantees.
func printVersion(progname, mode string) {
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	exe, err := os.Executable()
	if err == nil {
		if f, err2 := os.Open(exe); err2 == nil {
			h := sha256.New()
			io.Copy(h, f)
			f.Close()
			fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
			return
		}
	}
	fmt.Printf("%s version devel\n", progname)
}

// printFlags answers the -flags probe: the go command uses it to
// distinguish tool flags from package patterns when users pass analyzer
// flags through `go vet`.
func printFlags(fs *flag.FlagSet) {
	type jsonFlagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlagDesc
	fs.VisitAll(func(f *flag.Flag) {
		b, isBool := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlagDesc{Name: f.Name, Bool: isBool && b.IsBoolFlag(), Usage: f.Usage})
	})
	data, _ := json.Marshal(out)
	os.Stdout.Write(data)
}

// checkPackage loads one vet config, re-typechecks the package from its
// sources plus the dependencies' export data, and runs the analyzers.
func checkPackage(cfgPath string, as []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// Dependency-only visits of standard-library packages (source under
	// GOROOT) skip the typecheck-and-summarize pass entirely: the flow
	// analyzers model the relevant stdlib behavior natively (sync
	// mutexes, encoding/binary sources), and computing summaries for
	// go/types and friends would dominate lint time for zero findings.
	// The empty vetx file reads back as an empty fact set.
	if cfg.VetxOnly && isGorootDir(cfg.Dir) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				return nil, nil, err
			}
		}
		return nil, token.NewFileSet(), nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			return nil, nil, perr
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := NewTypesInfo()
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		return nil, nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	// Merge the facts every dependency exported through its vetx file.
	// Files written by other tools (or missing entirely) read as empty
	// fact sets — the protocol only promises the path, not the format.
	deps := &PackageFacts{}
	for _, vetx := range cfg.PackageVetx {
		deps.Merge(ReadFactsFile(vetx))
	}

	// Every visit — including VetxOnly dependency visits — computes and
	// writes this package's facts, because downstream packages key their
	// flow reasoning on them. Facts carry the dependencies' facts merged
	// in, so readers see the transitive closure from direct deps alone.
	if cfg.VetxOutput != "" {
		facts := ComputeFacts(fset, files, pkg, info, deps)
		if err := WriteFactsFile(cfg.VetxOutput, facts); err != nil {
			return nil, nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: facts written, no diagnostics due.
		return nil, fset, nil
	}

	diags, err := RunAnalyzers(as, fset, files, pkg, info, deps)
	return diags, fset, err
}

// isGorootDir reports whether dir lies under the standard library's
// source root.
func isGorootDir(dir string) bool {
	root := runtime.GOROOT()
	return root != "" && strings.HasPrefix(dir, root+string(os.PathSeparator))
}

// NewTypesInfo returns a types.Info with every map the analyzers read
// populated (shared by the vet driver and the analysistest harness).
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
