package analyzers

// detcheck: deterministic-execution hygiene for the simulation and
// algorithm packages.
//
// The repository's correctness story leans on bit-identical execution:
// the equivalence matrix pins every engine against the reference plane,
// the bench gate compares rounds/messages/colors exactly, and the
// CONGEST accounting columns are exact-match. Any source of run-to-run
// variation inside the packages below silently turns those gates into
// flake generators. The compiler cannot see "deterministic", so this
// pass flags the four constructs that in practice smuggle
// nondeterminism into Go code:
//
//   - `range` over a map (iteration order is randomized per run);
//   - wall-clock reads (time.Now / time.Since / time.Until);
//   - the globally-seeded math/rand source (top-level rand.Intn etc.;
//     a locally constructed rand.New(rand.NewSource(seed)) is fine and
//     is how the coming Monte Carlo colorers must get randomness);
//   - `select` with two or more communication cases (when several are
//     ready the runtime picks uniformly at random).
//
// The pass applies to the determinism-critical packages listed in
// detPackages, and to any package carrying a file-level
// `//distcolor:deterministic` comment. Test files are exempt.

import (
	"go/ast"
	"go/types"
)

// detPackages are the packages whose execution must be bit-identical
// across engines and runs (the import paths the bench gate and the
// equivalence matrix exercise).
var detPackages = map[string]bool{
	"repro/internal/sim":    true,
	"repro/internal/linial": true,
	"repro/internal/reduce": true,
	"repro/internal/arbor":  true,
	"repro/internal/cd":     true,
	"repro/internal/star":   true,
	"repro/internal/vc":     true,
	"repro/internal/graph":  true,
}

// detDirective marks a package determinism-critical without being on the
// built-in list (fixtures, future packages).
const detDirective = "//distcolor:deterministic"

// randConstructors are the math/rand(/v2) names that build or seed a
// local source rather than draw from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Detcheck is the determinism pass. See the file comment for the
// contract.
var Detcheck = &Analyzer{
	Name: "detcheck",
	Doc:  "flag nondeterministic constructs (map ranges, wall clocks, global rand, multi-way selects) in determinism-critical packages",
	Run:  runDetcheck,
}

func runDetcheck(pass *Pass) error {
	if !detPackages[pass.Pkg.Path()] && !pkgDirective(pass.Files, detDirective) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over map %s: iteration order is randomized; collect and sort the keys first", exprString(n.X))
					}
				}
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					switch fn.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(n.Pos(), "wall-clock read time.%s in a determinism-critical package; time must not influence execution", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					// Only package-level functions draw from the shared
					// global source; methods on a *rand.Rand have a local
					// receiver and are fine.
					if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
						pass.Reportf(n.Pos(), "global math/rand source (rand.%s) is process-seeded and shared; use rand.New(rand.NewSource(seed)) with an explicit seed", fn.Name())
					}
				}
			case *ast.SelectStmt:
				comm := 0
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Pos(), "select with %d communication cases: the runtime picks randomly among ready cases", comm)
				}
			}
			return true
		})
	}
	return nil
}
