package analyzers

// A per-function control-flow graph over go/ast, for the flow-sensitive
// passes (leakcheck, lockorder, decodebounds). Statements are grouped
// into basic blocks; a control statement (if/for/range/switch/select)
// sits as the LAST entry of the block that evaluates its condition, so
// an analysis can read the condition from Stmts[len-1] and interpret
// the successor edges.
//
// Shapes handled: if/else chains, for (all three clauses), range,
// (type)switch with fallthrough, select, labeled break/continue, and
// early exits. A return statement, a call to panic, and the
// never-return sinks (os.Exit, runtime.Goexit, log.Fatal*) edge to the
// synthetic Exit block; defer bodies conceptually run on every such
// edge, so the builder records the function's defers on the CFG rather
// than splicing them into the block graph (the flow passes treat a
// deferred join/unlock as covering all paths to Exit). goto is not
// modeled (the repository has none); a goto conservatively edges to
// Exit so no analysis silently claims paths it cannot see.
//
// Function literals are NOT inlined: a FuncLit body is an independent
// context with its own CFG, exactly as the structural passes treat it.
// The builder never descends into one.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Block is a maximal straight-line statement sequence: every
// statement in Stmts executes whenever the block is entered, in order.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
	Preds []*Block
}

// A CFG is one function body's control-flow graph.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the synthetic sink every return/panic/fallthrough-off-the-
	// end edges to. It holds no statements.
	Exit *Block
	// Defers are every defer statement of the body (any block): their
	// calls run on all paths to Exit that executed the defer. The flow
	// passes use them for "covers every exit" reasoning.
	Defers []*ast.DeferStmt
}

// NewCFG builds the graph for one function body. info may be nil; it is
// used only to recognize the panic builtin and never-return sinks.
func NewCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{info: info}
	b.cfg = &CFG{}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.cfg.Exit) // fall off the end: implicit return
	return b.cfg
}

type loopTargets struct {
	label         string
	brk, cont     *Block
	isLoop        bool // continue only targets loops
	caseFollowing *Block
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *Block
	info  *types.Info
	loops []loopTargets
	// pendingLabel carries a label across the LabeledStmt → loop hand-off.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		if bs, ok := s.(*ast.BranchStmt); ok && bs.Tok == token.FALLTHROUGH {
			// Resolved by the switch builder: edge to the next case body.
			for j := len(b.loops) - 1; j >= 0; j-- {
				if b.loops[j].caseFollowing != nil {
					b.edge(b.cur, b.loops[j].caseFollowing)
					break
				}
			}
			b.cur = b.newBlock() // anything after fallthrough is unreachable
			continue
		}
		if next := b.stmt(s); next != nil {
			b.cur = next
		}
	}
}

// stmt lowers one statement into the graph. It returns the block
// subsequent statements should continue in, or nil to keep the current
// one.
func (b *cfgBuilder) stmt(s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.edge(b.cur, b.cfg.Exit)
		return b.newBlock() // unreachable continuation

	case *ast.DeferStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.cfg.Defers = append(b.cfg.Defers, s)
		return nil

	case *ast.ExprStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		if b.neverReturns(s.X) {
			b.edge(b.cur, b.cfg.Exit)
			return b.newBlock()
		}
		return nil

	case *ast.BlockStmt:
		b.stmts(s.List)
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		b.cur.Stmts = append(b.cur.Stmts, s) // condition evaluates here
		cond := b.cur
		then := b.newBlock()
		join := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmts(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			if next := b.stmt(s.Else); next != nil {
				b.cur = next
			}
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		head := b.newBlock()
		head.Stmts = append(head.Stmts, s) // condition evaluates here
		b.edge(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Stmts = append(post.Stmts, s.Post)
			b.edge(post, head)
		}
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after) // for {} only leaves via break
		}
		b.pushLoop(loopTargets{label: b.pendingLabel, brk: after, cont: post, isLoop: true})
		b.pendingLabel = ""
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, post)
		b.popLoop()
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		head.Stmts = append(head.Stmts, s) // range expr + per-iter assignment
		b.edge(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.pushLoop(loopTargets{label: b.pendingLabel, brk: after, cont: head, isLoop: true})
		b.pendingLabel = ""
		b.cur = body
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.popLoop()
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return b.switchLike(s)

	case *ast.SelectStmt:
		sel := b.cur
		sel.Stmts = append(sel.Stmts, s)
		join := b.newBlock()
		b.pushLoop(loopTargets{label: b.pendingLabel, brk: join})
		b.pendingLabel = ""
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			cb := b.newBlock()
			if cc.Comm != nil {
				cb.Stmts = append(cb.Stmts, cc.Comm)
			}
			b.edge(sel, cb)
			b.cur = cb
			b.stmts(cc.Body)
			b.edge(b.cur, join)
		}
		b.popLoop()
		if len(s.Body.List) == 0 {
			b.edge(sel, join)
		}
		return join

	case *ast.LabeledStmt:
		// The label names the immediately following loop/switch/select for
		// its break/continue targets.
		b.pendingLabel = s.Label.Name
		next := b.stmt(s.Stmt)
		b.pendingLabel = ""
		return next

	case *ast.BranchStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				b.edge(b.cur, t)
			} else {
				b.edge(b.cur, b.cfg.Exit)
			}
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				b.edge(b.cur, t)
			} else {
				b.edge(b.cur, b.cfg.Exit)
			}
		default: // goto (unmodeled): conservatively an exit
			b.edge(b.cur, b.cfg.Exit)
		}
		return b.newBlock()

	default:
		// Assignments, declarations, sends, inc/dec, go, empty: straight
		// line.
		b.cur.Stmts = append(b.cur.Stmts, s)
		return nil
	}
}

// switchLike lowers switch and type-switch: the tag block fans out to
// every case body, each joining after; fallthrough edges to the next
// case's body. A missing default adds the no-case-matched edge.
func (b *cfgBuilder) switchLike(s ast.Stmt) *Block {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, s.Init)
		}
		b.cur.Stmts = append(b.cur.Stmts, s.Assign)
		body = s.Body
	}
	tag := b.cur
	tag.Stmts = append(tag.Stmts, s)
	join := b.newBlock()

	// Pre-create one body block per case so fallthrough can see the next.
	var cases []*ast.CaseClause
	var blocks []*Block
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cases = append(cases, cc)
		blocks = append(blocks, b.newBlock())
	}
	label := b.pendingLabel
	b.pendingLabel = ""
	for i, cc := range cases {
		cb := blocks[i]
		b.edge(tag, cb)
		var next *Block
		if i+1 < len(blocks) {
			next = blocks[i+1]
		} else {
			next = join // fallthrough off the last case is illegal anyway
		}
		b.pushLoop(loopTargets{label: label, brk: join, caseFollowing: next})
		b.cur = cb
		b.stmts(cc.Body)
		b.edge(b.cur, join)
		b.popLoop()
	}
	if !hasDefault {
		b.edge(tag, join)
	}
	return join
}

func (b *cfgBuilder) pushLoop(t loopTargets) { b.loops = append(b.loops, t) }
func (b *cfgBuilder) popLoop()               { b.loops = b.loops[:len(b.loops)-1] }

// findTarget resolves a break/continue to its block. Unlabeled continue
// targets the innermost loop; unlabeled break the innermost loop,
// switch, or select.
func (b *cfgBuilder) findTarget(label *ast.Ident, isContinue bool) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		t := b.loops[i]
		if isContinue && !t.isLoop {
			continue
		}
		if label != nil && t.label != label.Name {
			continue
		}
		if isContinue {
			return t.cont
		}
		return t.brk
	}
	return nil
}

// neverReturns recognizes calls that terminate the goroutine: the panic
// builtin, os.Exit, runtime.Goexit, and the log.Fatal family.
func (b *cfgBuilder) neverReturns(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info == nil {
			return true
		}
		_, isBuiltin := b.info.Uses[fun].(*types.Builtin)
		return isBuiltin
	case *ast.SelectorExpr:
		if b.info == nil {
			return false
		}
		fn, ok := b.info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			switch fn.Name() {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		}
	}
	return false
}

// Dominators computes the immediate dominator of every block reachable
// from Entry (the Cooper–Harvey–Kennedy iterative algorithm over a
// reverse postorder). idom[Entry.Index] == Entry; unreachable blocks
// get nil.
func (c *CFG) Dominators() []*Block {
	rpo := c.reversePostorder()
	order := make([]int, len(c.Blocks)) // block index → RPO position
	for i := range order {
		order[i] = -1
	}
	for i, blk := range rpo {
		order[blk.Index] = i
	}
	idom := make([]*Block, len(c.Blocks))
	idom[c.Entry.Index] = c.Entry
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			if blk == c.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range blk.Preds {
				if idom[p.Index] == nil {
					continue // unprocessed or unreachable
				}
				if newIdom == nil {
					newIdom = p
					continue
				}
				newIdom = intersectDom(idom, order, p, newIdom)
			}
			if newIdom != nil && idom[blk.Index] != newIdom {
				idom[blk.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func intersectDom(idom []*Block, order []int, a, b *Block) *Block {
	for a != b {
		for order[a.Index] > order[b.Index] {
			a = idom[a.Index]
		}
		for order[b.Index] > order[a.Index] {
			b = idom[b.Index]
		}
	}
	return a
}

// Dominates reports whether a dominates b under idom (reflexive).
func Dominates(idom []*Block, a, b *Block) bool {
	for {
		if b == a {
			return true
		}
		next := idom[b.Index]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// reversePostorder over the blocks reachable from Entry.
func (c *CFG) reversePostorder() []*Block {
	seen := make([]bool, len(c.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(blk *Block) {
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, blk)
	}
	dfs(c.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// BlockLocalNodes returns the parts of a block statement that actually
// execute in the block holding it. Control statements sit as the last
// entry of the block evaluating their condition, so walking the whole
// subtree would attribute branch-body effects to the condition block;
// this narrows the walk to the locally-evaluated expressions. Init
// statements are appended to blocks separately by the builder and are
// not repeated here.
func BlockLocalNodes(st ast.Stmt) []ast.Node {
	switch st := st.(type) {
	case *ast.IfStmt:
		return []ast.Node{st.Cond}
	case *ast.ForStmt:
		if st.Cond != nil {
			return []ast.Node{st.Cond}
		}
		return nil
	case *ast.RangeStmt:
		return []ast.Node{st.X}
	case *ast.SwitchStmt:
		if st.Tag != nil {
			return []ast.Node{st.Tag}
		}
		return nil
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		return nil
	default:
		return []ast.Node{st}
	}
}

// CanReachExitAvoiding reports whether Exit is reachable from any
// successor path out of `from` without entering a block for which
// avoid returns true. `from` itself is not tested — use it for "does
// some path from this spawn reach return without passing a join". A
// path that dies in an infinite loop never reaches Exit and does not
// count.
func (c *CFG) CanReachExitAvoiding(from *Block, avoid func(*Block) bool) bool {
	seen := make([]bool, len(c.Blocks))
	var dfs func(*Block) bool
	dfs = func(blk *Block) bool {
		if blk == c.Exit {
			return true
		}
		if seen[blk.Index] || avoid(blk) {
			return false
		}
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range from.Succs {
		if dfs(s) {
			return true
		}
	}
	return false
}
