// Package lockorderfix is the positive/negative/suppression fixture for
// the lockorder pass: a two-lock cycle (both edges report), an
// interprocedural cycle through a callee's acquire summary, a double
// acquire (self-edge), consistent orderings and local mutexes as
// negatives, and the suppression grammar.
package lockorderfix

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
)

// abOrder and baOrder disagree: a classic deadlock pair. Both edges
// participate in the cycle, so both acquisition sites report.
func abOrder() {
	muA.Lock()
	muB.Lock() // want "lock order cycle"
	muB.Unlock()
	muA.Unlock()
}

func baOrder() {
	muB.Lock()
	muA.Lock() // want "lock order cycle"
	muA.Unlock()
	muB.Unlock()
}

// cThenD and dHolderCallsC form a cycle interprocedurally: the call
// site acquires C through lockCviaHelper's summary while holding D.
func cThenD() {
	muC.Lock()
	muD.Lock() // want "lock order cycle"
	muD.Unlock()
	muC.Unlock()
}

func dHolderCallsC() {
	muD.Lock()
	lockCviaHelper() // want "lock order cycle"
	muD.Unlock()
}

func lockCviaHelper() {
	muC.Lock()
	muC.Unlock()
}

// consistent takes the same two locks in one global order everywhere: a
// negative.
var muX, muY sync.Mutex

func consistentOne() {
	muX.Lock()
	muY.Lock()
	muY.Unlock()
	muX.Unlock()
}

func consistentTwo() {
	muX.Lock()
	defer muX.Unlock()
	muY.Lock()
	defer muY.Unlock()
}

// releasedFirst drops the first lock before taking the second: no edge,
// no ordering constraint.
func releasedFirst() {
	muY.Lock()
	muY.Unlock()
	muX.Lock()
	muX.Unlock()
}

// localScoped uses a function-local mutex: it has no global identity
// and never constrains the order graph.
func localScoped() {
	var mu sync.Mutex
	mu.Lock()
	muX.Lock()
	muX.Unlock()
	mu.Unlock()
}

// reacquire exercises the suppression grammar on a deliberate double
// acquire (a self-edge in the order graph).
func reacquire() {
	muA.Lock()
	//distcolor:ignore lockorder fixture: deliberate re-acquire exercising the waiver grammar
	muA.Lock()
	muA.Unlock()
	muA.Unlock()
}
