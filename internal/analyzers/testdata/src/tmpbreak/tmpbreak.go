package tmpbreak

import "sync"

type S struct {
	mu sync.Mutex
	// n is guarded by mu
	n int
}

func (s *S) LoopUnlockBreak(items []int) int {
	s.mu.Lock()
	for _, it := range items {
		if it > 10 {
			s.mu.Unlock()
			break
		}
		s.n += it
	}
	return s.n
}
