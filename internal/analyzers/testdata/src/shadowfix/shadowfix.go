// Package shadowfix is the positive/negative/suppression fixture for the
// shadow pass.
package shadowfix

import "errors"

func Shadowed() error {
	err := errors.New("outer")
	for i := 0; i < 1; i++ {
		err := errors.New("inner") // want "declaration of .err. shadows declaration"
		_ = err
	}
	return err
}

func VarShadow() error {
	err := errors.New("outer")
	{
		var err error // want "declaration of .err. shadows declaration"
		_ = err
	}
	return err
}

// InitClause is the negative for the deliberate statement-scoped idiom.
func InitClause() error {
	err := errors.New("outer")
	if err := work(); err != nil {
		return err
	}
	return err
}

// DeadOuter is the negative for an outer variable never read after the
// inner scope: the inner declaration cannot be mistaken for it.
func DeadOuter() {
	err := errors.New("outer")
	_ = err
	{
		err := errors.New("inner")
		_ = err
	}
}

// Suppressed exercises the suppression grammar on a deliberate rebinding.
func Suppressed() error {
	err := errors.New("outer")
	for i := 0; i < 1; i++ {
		//distcolor:ignore shadow fixture: deliberate per-iteration rebinding
		err := errors.New("inner")
		_ = err
	}
	return err
}

func work() error { return nil }
