// Package nilnessfix is the positive/negative/suppression fixture for
// the nilness pass.
package nilnessfix

type box struct{ v int }

func Deref(p *int) int {
	if p == nil {
		return *p // want "nil dereference: p is nil on this branch"
	}
	return *p
}

func Field(b *box) int {
	if b == nil {
		return b.v // want "nil dereference: b is nil on this branch"
	}
	return b.v
}

// Mirror flags the else-branch of the inverted comparison.
func Mirror(p *int) int {
	if p != nil {
		return *p
	} else {
		return *p // want "nil dereference: p is nil on this branch"
	}
}

func Index(xs []int) int {
	if xs == nil {
		return xs[0] // want "index of nil xs"
	}
	return xs[0]
}

func Call(f func() int) int {
	if f == nil {
		return f() // want "call of nil function f"
	}
	return f()
}

// Reassigned is the negative: p is repaired before the use.
func Reassigned(p *int) int {
	if p == nil {
		p = new(int)
		return *p
	}
	return *p
}

func Impossible(p *int) int {
	if p == nil {
		return 0
	} else if p == nil { // want "impossible condition: p is non-nil on this branch"
		return 1
	}
	return *p
}

// SuppressedDeref exercises the suppression grammar on a documented
// deliberate crash.
func SuppressedDeref(p *int) int {
	if p == nil {
		//distcolor:ignore nilness fixture: crash-on-purpose sentinel
		return *p
	}
	return *p
}
