// Package noallocfix is the positive/negative/suppression fixture for
// the noallochot pass.
package noallocfix

type point struct{ x, y int }

//distcolor:noalloc
func MakesMap(n int) {
	m := make(map[int]int, n) // want "make.map. in noalloc function MakesMap"
	_ = m
}

//distcolor:noalloc
func MapWrite(m map[int]int) {
	m[1] = 2 // want "map write in noalloc function MapWrite"
}

//distcolor:noalloc
func BareAppend(xs []int, v int) []int {
	return append(xs, v) // want "append in noalloc function BareAppend without capacity evidence"
}

// ResliceAppend is a negative: appending into a reslice reuses the
// existing backing array.
//
//distcolor:noalloc
func ResliceAppend(xs []int, v int) []int {
	return append(xs[:0], v)
}

// GrowOnce is a negative: the cap-guarded make is the scratch-slab
// cold path (grow once, then reuse forever).
//
//distcolor:noalloc
func GrowOnce(scratch []int64, k int) []int64 {
	if cap(scratch) < k {
		scratch = make([]int64, k)
	}
	return scratch[:k]
}

//distcolor:noalloc
func UnguardedMake(k int) []int64 {
	return make([]int64, k) // want "make.slice. in noalloc function UnguardedMake without a cap.. guard"
}

//distcolor:noalloc
func Boxes(v int64) any {
	return v // want "return boxes int64 into any"
}

// PointerNoBox is a negative: pointers ride in the interface word
// without allocating.
//
//distcolor:noalloc
func PointerNoBox(p *point) any {
	return p
}

//distcolor:noalloc
func Captures(n int) func() int {
	f := func() int { return n } // want "closure in noalloc function Captures captures n"
	return f
}

//distcolor:noalloc
func Escapes() *point {
	return &point{1, 2} // want "&composite literal in noalloc function Escapes"
}

//distcolor:noalloc
func Spawns() {
	go noop() // want "go statement in noalloc function Spawns"
}

//distcolor:noalloc
func Concat(a, b string) string {
	return a + b // want "string concatenation in noalloc function Concat"
}

// Unchecked is a negative: no directive, no check — the pass is strictly
// opt-in.
func Unchecked() map[int]int { return make(map[int]int) }

// SuppressedBox exercises the suppression grammar on a deliberate
// cold-path boxing.
//
//distcolor:noalloc
func SuppressedBox(v int64) any {
	//distcolor:ignore noallochot fixture: cold error path, boxing accepted
	return v
}

func noop() {}
