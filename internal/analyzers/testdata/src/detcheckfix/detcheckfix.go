// Package detcheckfix is the positive/negative/suppression fixture for
// the detcheck pass. The package is not on detcheck's built-in path list;
// the directive below opts it in.
//
//distcolor:deterministic
package detcheckfix

import (
	"math/rand"
	"time"
)

func MapRange(m map[int]int) int {
	s := 0
	for k := range m { // want "range over map m: iteration order is randomized"
		s += k
	}
	return s
}

// SliceRange is the negative twin: slices iterate in index order.
func SliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func WallClock() time.Duration {
	t0 := time.Now()      // want "wall-clock read time.Now"
	return time.Since(t0) // want "wall-clock read time.Since"
}

func GlobalRand() int {
	return rand.Intn(10) // want "global math/rand source"
}

// LocalRand is the negative twin: a locally constructed, explicitly
// seeded source is exactly what the pass demands.
func LocalRand(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63()
}

func TwoReady(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

// OneCase is the negative twin: a single communication case blocks
// deterministically.
func OneCase(a chan int) int {
	select {
	case x := <-a:
		return x
	}
}

// SuppressedMapRange exercises the suppression grammar: the fold is
// commutative, so iteration order cannot reach the result.
func SuppressedMapRange(m map[int]int) int {
	s := 0
	//distcolor:ignore detcheck order-independent: commutative sum over values
	for _, v := range m {
		s += v
	}
	return s
}
