// Package atomicguardfix is the positive/negative/suppression fixture
// for the atomicguard pass: plain access to an address-taken atomic
// field, copying a typed atomic out of its cell, the guarded-by
// conflict, the accepted access shapes, and the suppression grammar.
package atomicguardfix

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits  int64
	total atomic.Int64
}

// bump puts counters.hits into the atomic domain: its address reaches
// sync/atomic.
func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// badPlainRead reads the same field without the atomic package: a torn
// read on 32-bit platforms and a data race everywhere.
func (c *counters) badPlainRead() int64 {
	return c.hits // want "atomic domain"
}

func (c *counters) goodAtomicRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

// goodTyped uses the typed atomic through its methods: the only plain
// contexts allowed are method access, address-of, and indexing.
func (c *counters) goodTyped() {
	c.total.Add(1)
}

// badCopy tears the typed atomic out of its cell.
func (c *counters) badCopy() atomic.Int64 {
	return c.total // want "must not be copied"
}

// conflicted claims mutex discipline over a location with an atomic
// type: one of the two annotations is a lie.
type conflicted struct {
	mu sync.Mutex
	n  atomic.Int64 // guarded by mu — want "pick one discipline"
}

func (c *conflicted) read() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n.Load()
}

// migration exercises the suppression grammar on a deliberate plain
// read.
func (c *counters) migration() int64 {
	//distcolor:ignore atomicguard fixture: audited read during an atomic migration
	return c.hits
}
