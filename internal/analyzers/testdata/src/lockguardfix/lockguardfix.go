// Package lockguardfix is the positive/negative/suppression fixture for
// the lockguard pass: the bare spec ("guarded by mu", lock on the same
// struct), the dotted spec ("guarded by s.mu", lock on a named outer
// struct), both caller-holds conventions, construction exemption, and
// the function-literal fresh-context rule.
package lockguardfix

import "sync"

type counterSet struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counterSet) Good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counterSet) GoodDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counterSet) Bad() {
	c.n++ // want "c.n is guarded by c.mu, which Bad does not hold on this path"
}

// BranchLeak locks inside a conditional: the lock state must not survive
// the join.
func (c *counterSet) BranchLeak(grow bool) {
	if grow {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.n++ // want "c.n is guarded by c.mu, which BranchLeak does not hold"
}

// bumpLocked is a negative: the Locked suffix is the caller-holds naming
// convention.
func (c *counterSet) bumpLocked() {
	c.n++
}

// addLoud must be called while holding c.mu. (A negative: the doc
// comment states the caller-holds contract.)
func (c *counterSet) addLoud(d int) {
	c.n += d
}

// fresh is a negative: an unpublished value needs no lock.
func fresh() *counterSet {
	c := &counterSet{}
	c.n = 1
	return c
}

// Closure locks around the call, but a function literal is a fresh
// context: the literal itself must take the lock.
func (c *counterSet) Closure() {
	f := func() {
		c.n++ // want "c.n is guarded by c.mu, which Closure does not hold"
	}
	c.mu.Lock()
	f()
	c.mu.Unlock()
}

// Snapshot exercises the suppression grammar on a deliberate racy read.
func (c *counterSet) Snapshot() int {
	//distcolor:ignore lockguard fixture: racy snapshot read is acceptable here
	return c.n
}

type instruments struct {
	hits int // guarded by s.mu
}

type server struct {
	mu  sync.Mutex
	obs *instruments
}

func (s *server) Record() {
	s.mu.Lock()
	s.obs.hits++
	s.mu.Unlock()
}

func (s *server) BadRecord() {
	s.obs.hits++ // want "s.obs.hits is guarded by s.mu, which BadRecord does not hold"
}
