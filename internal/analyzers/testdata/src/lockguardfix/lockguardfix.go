// Package lockguardfix is the positive/negative/suppression fixture for
// the lockguard pass: the bare spec ("guarded by mu", lock on the same
// struct), the dotted spec ("guarded by s.mu", lock on a named outer
// struct), both caller-holds conventions, construction exemption, and
// the function-literal fresh-context rule.
package lockguardfix

import "sync"

type counterSet struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counterSet) Good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counterSet) GoodDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counterSet) Bad() {
	c.n++ // want "c.n is guarded by c.mu, which Bad does not hold on this path"
}

// BranchLeak locks inside a conditional: the lock state must not survive
// the join.
func (c *counterSet) BranchLeak(grow bool) {
	if grow {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.n++ // want "c.n is guarded by c.mu, which BranchLeak does not hold"
}

// CondDefer is the conditional-defer-unlock shape: the early branch
// releases and returns, so the lock is still held at the join on every
// path that reaches it. A negative only because the join is
// termination-aware.
func (c *counterSet) CondDefer(ok bool) {
	c.mu.Lock()
	if !ok {
		c.mu.Unlock()
		return
	}
	defer c.mu.Unlock()
	c.n++
}

// BothBranchesLock acquires on every branch: the intersection join
// carries the lock past the if.
func (c *counterSet) BothBranchesLock(fast bool) {
	if fast {
		c.mu.Lock()
	} else {
		c.mu.Lock()
		c.n = 0
	}
	c.n++
	c.mu.Unlock()
}

// SwitchLock acquires in every arm of a defaulted switch: held after.
func (c *counterSet) SwitchLock(mode int) {
	switch mode {
	case 0:
		c.mu.Lock()
	default:
		c.mu.Lock()
		c.n = mode
	}
	c.n++
	c.mu.Unlock()
}

// CondRelease unlocks on one branch and falls through: the join must
// drop the lock even though the entry path still holds it.
func (c *counterSet) CondRelease(bail bool) {
	c.mu.Lock()
	if bail {
		c.mu.Unlock()
	}
	c.n++ // want "c.n is guarded by c.mu, which CondRelease does not hold"
	if !bail {
		c.mu.Unlock()
	}
}

// SelectRelease releases in one select arm; exactly one arm runs, so
// the join is the intersection of the arms and the lock is gone.
func (c *counterSet) SelectRelease(done chan int) {
	c.mu.Lock()
	select {
	case <-done:
		c.mu.Unlock()
	default:
		c.n++
	}
	c.n++ // want "c.n is guarded by c.mu, which SelectRelease does not hold"
}

// RelockLoop re-acquires on every iteration; after the loop the entry
// state (unlocked) joins the body outcome (unlocked): no lock, but no
// access either. The access inside the body is covered.
func (c *counterSet) RelockLoop(rounds int) {
	for i := 0; i < rounds; i++ {
		c.mu.Lock()
		c.n += i
		c.mu.Unlock()
	}
}

// bumpLocked is a negative: the Locked suffix is the caller-holds naming
// convention.
func (c *counterSet) bumpLocked() {
	c.n++
}

// addLoud must be called while holding c.mu. (A negative: the doc
// comment states the caller-holds contract.)
func (c *counterSet) addLoud(d int) {
	c.n += d
}

// fresh is a negative: an unpublished value needs no lock.
func fresh() *counterSet {
	c := &counterSet{}
	c.n = 1
	return c
}

// Closure locks around the call, but a function literal is a fresh
// context: the literal itself must take the lock.
func (c *counterSet) Closure() {
	f := func() {
		c.n++ // want "c.n is guarded by c.mu, which Closure does not hold"
	}
	c.mu.Lock()
	f()
	c.mu.Unlock()
}

// Snapshot exercises the suppression grammar on a deliberate racy read.
func (c *counterSet) Snapshot() int {
	//distcolor:ignore lockguard fixture: racy snapshot read is acceptable here
	return c.n
}

type instruments struct {
	hits int // guarded by s.mu
}

type server struct {
	mu  sync.Mutex
	obs *instruments
}

func (s *server) Record() {
	s.mu.Lock()
	s.obs.hits++
	s.mu.Unlock()
}

func (s *server) BadRecord() {
	s.obs.hits++ // want "s.obs.hits is guarded by s.mu, which BadRecord does not hold"
}
