// Package recovercheckfix is the positive/negative/suppression fixture
// for the recovercheck pass.
package recovercheckfix

// Annotated is the negative: a declared recovery point passes.
func Annotated() (err error) {
	defer func() {
		//distcolor:recover fixture: declared recovery point
		if r := recover(); r != nil {
			err = nil
		}
	}()
	return nil
}

// AnnotatedSameLine exercises the same-line annotation placement.
func AnnotatedSameLine() {
	defer func() {
		_ = recover() //distcolor:recover fixture: same-line annotation
	}()
}

// Naked is the positive: an undeclared recover is a finding.
func Naked() {
	defer func() {
		_ = recover() // want "recover.. outside internal/fault must carry"
	}()
}

// Suppressed exercises the suppression grammar (distinct from the
// annotation: a suppression says "this finding is acceptable", an
// annotation says "this is a declared recovery point").
func Suppressed() {
	defer func() {
		//distcolor:ignore recovercheck fixture: deliberate naked recover
		_ = recover()
	}()
}

// shadowed proves the pass resolves the builtin: a local function named
// recover is not a recovery point.
func shadowed() {
	recover := func() any { return nil }
	_ = recover()
}

// stale demonstrates the auditability rule: a suppression that covers no
// finding is itself a finding.
func stale() {
	//distcolor:ignore recovercheck nothing here recovers // want "stale suppression: no recovercheck finding"
}
