// Package ctxfirstfix is the positive/negative/suppression fixture for
// the ctxfirst pass, including the stale-suppression finding.
package ctxfirstfix

import "context"

// First is the negative: ctx in position one is the contract.
func First(ctx context.Context, n int) int { return n }

func Second(n int, ctx context.Context) int { // want "Second takes context.Context as parameter 2"
	return n
}

func Detached() context.Context {
	return context.Background() // want "context.Background in library code"
}

func Todo() context.Context {
	return context.TODO() // want "context.TODO in library code"
}

// SuppressedRoot exercises the suppression grammar.
func SuppressedRoot() context.Context {
	//distcolor:ignore ctxfirst fixture: deliberate root context
	return context.Background()
}

// stale demonstrates the auditability rule: a suppression that covers no
// finding is itself a finding.
func stale() {
	//distcolor:ignore ctxfirst nothing on this line needs a waiver // want "stale suppression: no ctxfirst finding"
}
