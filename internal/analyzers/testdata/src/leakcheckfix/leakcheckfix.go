// Package leakcheckfix is the positive/negative/suppression fixture for
// the leakcheck pass: the four accepted disciplines (detached
// annotation, ctx-bounded, WaitGroup-accounted with field and local
// variants, channel-joined), the path-sensitive cases the CFG makes
// decidable, and the suppression grammar.
package leakcheckfix

import (
	"context"
	"sync"
)

func work() {}

// fire is the baseline positive: nothing bounds the goroutine.
func fire() {
	go work() // want "goroutine is not joined, ctx-bounded, or annotated"
}

// detachedGood declares the detachment with a reason: accepted.
func detachedGood() {
	//distcolor:detached fixture flusher owns its lifetime, bounded by process exit
	go work()
}

// detachedBare has the annotation but no justification.
func detachedBare() {
	//distcolor:detached
	go work() // want "requires a reason"
}

// ctxClosure is bounded by the context its body watches.
func ctxClosure(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// ctxNamed passes the context into a named same-package function.
func ctxNamed(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// fanOut is the local-WaitGroup shape: every path Waits.
func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// leakyPath Waits on the happy path but returns early without joining.
func leakyPath(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "some path from this spawn returns without wg.Wait"
		defer wg.Done()
		work()
	}()
	if n > 10 {
		return
	}
	wg.Wait()
}

// pool is the field-WaitGroup shape: workers join in close.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

func (p *pool) close() {
	p.wg.Wait()
}

// leaky accounts to a field WaitGroup nothing ever Waits on.
type leaky struct {
	wg sync.WaitGroup
}

func (l *leaky) start() {
	l.wg.Add(1)
	go func() { // want "no non-test code in this package calls wg.Wait"
		defer l.wg.Done()
		work()
	}()
}

// chanJoin is channel-joined: the spawner receives what the goroutine
// produces on every path.
func chanJoin() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	return <-ch
}

// closeJoin: the goroutine closes the channel and the spawner drains it.
func closeJoin() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// waived exercises the suppression grammar on a deliberate leak.
func waived() {
	//distcolor:ignore leakcheck fixture: lifetime audited by hand
	go work()
}
