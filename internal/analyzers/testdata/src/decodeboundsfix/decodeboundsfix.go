// Package decodeboundsfix is the positive/negative/suppression fixture
// for the decodebounds pass: unchecked wire-sized allocations (direct,
// through a helper's wire summary, through a Grow, and through an
// allocation-sized parameter), the blessing comparison, the append
// accumulation negative, and the suppression grammar.
package decodeboundsfix

import (
	"bytes"
	"encoding/binary"
)

// badDirect is the readFrame DoS shape: the attacker picks the size.
func badDirect(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	return make([]byte, n) // want "make size derives from the wire read"
}

// goodChecked compares the decoded size against the bytes actually
// available before allocating: the comparison blesses the origin.
func goodChecked(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	if n > uint64(len(buf)) {
		return nil
	}
	return make([]byte, n)
}

// readLen returns the decoded length without checking it, so readLen
// itself becomes a wire source in the package summary.
func readLen(buf []byte) uint64 {
	n, _ := binary.Uvarint(buf)
	return n
}

// badViaHelper launders the read through readLen; the summary carries
// the taint back to this allocation.
func badViaHelper(buf []byte) []int {
	n := readLen(buf)
	return make([]int, n) // want "make size derives from the wire read"
}

// badGrow pre-sizes a buffer from the wire: Grow is a sink too.
func badGrow(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	var b bytes.Buffer
	b.Grow(int(n)) // want "Grow size derives from the wire read"
	return b.Bytes()
}

// allocN's parameter sizes an allocation unchecked, so the obligation
// moves to every call site instead of firing here.
func allocN(n int) []int {
	return make([]int, n)
}

func badCallSite(buf []byte) []int {
	n, _ := binary.Uvarint(buf)
	return allocN(int(n)) // want "allocation-sized argument 0 of allocN"
}

func goodCallSite(buf []byte) []int {
	n, _ := binary.Uvarint(buf)
	if n > 1<<20 {
		return nil
	}
	return allocN(int(n))
}

// appendLoop accumulates by what was actually decoded: append grows
// incrementally and is deliberately not a sink.
func appendLoop(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	var out []byte
	for i := uint64(0); i < n; i++ {
		out = append(out, byte(i))
	}
	return out
}

// trusted exercises the suppression grammar on a deliberate unchecked
// allocation.
func trusted(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	//distcolor:ignore decodebounds fixture: size pre-validated by the framing layer
	return make([]byte, n)
}
