package analyzers

// lockguard: structural mutex discipline for annotated struct fields.
//
// A struct field whose doc or trailing comment says
//
//	// guarded by mu        (lock lives on the same struct; the access
//	                         path picks the receiver: x.field needs x.mu)
//	// guarded by s.mu      (lock lives on a named outer struct — the
//	                         serverObs instruments are mutated under the
//	                         Server's s.mu; the spelling is literal)
//
// may only be read or written where the named mutex is structurally held
// on every path from function entry to the access: a preceding
// `<lock>.Lock()` or `<lock>.RLock()`, not yet released by a plain
// `<lock>.Unlock()` (a deferred unlock holds to function end; a
// cond.Wait reacquires before returning, so held-state is preserved
// across it). At a join the held set is the intersection of the branch
// outcomes that can actually reach it, with termination awareness: a
// branch ending in return, panic, os.Exit, continue, or goto
// contributes nothing, an if without else joins against the entry
// state, a switch without a default keeps the entry state as a
// reaching path, and a select always runs exactly one arm. So a Lock
// taken in every branch proves the lock after the join, an early
// `Unlock(); return` branch does not kill it, and a conditional or
// select-arm Unlock does.
//
// Three structural exemptions keep the check aligned with the
// repository's conventions rather than fighting them:
//
//   - functions whose name ends in "Locked" (the caller-holds-the-lock
//     naming convention, e.g. job.finishLocked);
//   - functions whose doc comment says the caller must hold the lock
//     ("must be held", "caller holds", "while holding");
//   - values constructed in this function (`x := &T{...}`): until the
//     constructor publishes them no other goroutine can see them.
//
// Function literals are independent contexts with no inherited lock
// state — a sample-at-scrape gauge closure must take the lock itself,
// exactly as internal/service's registerDerived ones do. Test files are
// exempt. The check is structural, not alias-aware: it proves the
// convention, and the race detector hammers what it cannot see.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Lockguard is the mutex-discipline pass. See the file comment for the
// contract.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "check that fields annotated 'guarded by <mu>' are only accessed while the named mutex is structurally held",
	Run:  runLockguard,
}

var (
	guardedByRe   = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)
	callerHoldsRe = regexp.MustCompile(`(?i)must be held|caller holds|caller must hold|held by the caller|while holding`)
)

func runLockguard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := &lockScan{pass: pass, guards: guards, fn: fd}
			if exemptFunc(fd) {
				sc.exempt = true
			}
			sc.constructed = map[string]bool{}
			sc.scanStmts(fd.Body.List, map[string]bool{})
			for len(sc.lits) > 0 {
				lit := sc.lits[0]
				sc.lits = sc.lits[1:]
				inner := &lockScan{pass: pass, guards: guards, fn: fd, constructed: map[string]bool{}}
				inner.scanStmts(lit.Body.List, map[string]bool{})
				sc.lits = append(sc.lits, inner.lits...)
			}
		}
	}
	return nil
}

// collectGuards maps each annotated field's object to its guard spec.
func collectGuards(pass *Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				spec := ""
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
						spec = m[1]
					}
				}
				if spec == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = spec
					}
				}
			}
			return true
		})
	}
	return out
}

// exemptFunc applies the caller-holds conventions.
func exemptFunc(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if len(name) >= 6 && name[len(name)-6:] == "Locked" {
		return true
	}
	return fd.Doc != nil && callerHoldsRe.MatchString(fd.Doc.Text())
}

// lockScan walks one function context tracking which lock expressions
// are structurally held.
type lockScan struct {
	pass        *Pass
	guards      map[types.Object]string
	fn          *ast.FuncDecl
	exempt      bool
	constructed map[string]bool // locals built from composite literals here
	lits        []*ast.FuncLit  // nested literals, scanned as fresh contexts
}

// flowExit describes how control leaves a statement or sequence:
// falling through to what follows, breaking past the nearest breakable
// construct (the held state at the break reaches the code after it), or
// leaving the linear flow entirely — return, panic, os.Exit,
// runtime.Goexit, continue, goto — so the state contributes nothing to
// the join.
type flowExit int

const (
	flowFalls flowExit = iota
	flowBreaks
	flowStops
)

// scanStmts processes a statement sequence, mutating held in place, and
// reports how control leaves it. Statements after a non-falling exit
// are unreachable on this path and are not scanned.
func (sc *lockScan) scanStmts(stmts []ast.Stmt, held map[string]bool) flowExit {
	for _, st := range stmts {
		if exit := sc.scanStmt(st, held); exit != flowFalls {
			return exit
		}
	}
	return flowFalls
}

func (sc *lockScan) scanStmt(st ast.Stmt, held map[string]bool) flowExit {
	switch st := st.(type) {
	case *ast.ExprStmt:
		sc.checkExpr(st.X, held)
		if recv, ok := isCallTo(st.X, "Lock", "RLock"); ok {
			held[recv] = true
		}
		if recv, ok := isCallTo(st.X, "Unlock", "RUnlock"); ok {
			delete(held, recv)
		}
		if sc.isNoReturnCall(st.X) {
			return flowStops
		}
	case *ast.DeferStmt:
		// A deferred Unlock releases at return: the lock stays held for
		// the remainder of the body. Still check the call's arguments.
		if _, isUnlock := isCallTo(st.Call, "Unlock", "RUnlock"); !isUnlock {
			sc.checkExpr(st.Call, held)
		}
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			sc.checkExpr(rhs, held)
		}
		for _, lhs := range st.Lhs {
			sc.checkExpr(lhs, held)
		}
		sc.noteConstruction(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			sc.checkExpr(r, held)
		}
		return flowStops
	case *ast.BranchStmt:
		if st.Tok == token.BREAK {
			return flowBreaks
		}
		return flowStops // continue, goto, fallthrough leave this path
	case *ast.IncDecStmt:
		sc.checkExpr(st.X, held)
	case *ast.SendStmt:
		sc.checkExpr(st.Chan, held)
		sc.checkExpr(st.Value, held)
	case *ast.GoStmt:
		// The goroutine body runs later, under no lock the spawner holds.
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			sc.lits = append(sc.lits, fl)
			for _, a := range st.Call.Args {
				sc.checkExpr(a, held)
			}
		} else {
			sc.checkExpr(st.Call, held)
		}
	case *ast.BlockStmt:
		return sc.scanStmts(st.List, held) // a bare block is still linear flow
	case *ast.LabeledStmt:
		return sc.scanStmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			sc.scanStmt(st.Init, held)
		}
		sc.checkExpr(st.Cond, held)
		thenHeld := copyHeld(held)
		thenExit := sc.scanStmts(st.Body.List, thenHeld)
		if st.Else == nil {
			// The cond-false path falls through with the entry state; the
			// then-branch joins it only if it falls off its own end.
			if thenExit == flowFalls {
				intersectInto(held, thenHeld)
			}
			return flowFalls
		}
		elseHeld := copyHeld(held)
		elseExit := sc.scanStmt(st.Else, elseHeld)
		switch {
		case thenExit == flowFalls && elseExit == flowFalls:
			intersectInto(thenHeld, elseHeld)
			replaceHeld(held, thenHeld)
		case thenExit == flowFalls:
			replaceHeld(held, thenHeld)
		case elseExit == flowFalls:
			replaceHeld(held, elseHeld)
		default:
			// Neither branch falls through: the join is unreachable.
			if thenExit == flowBreaks || elseExit == flowBreaks {
				return flowBreaks
			}
			return flowStops
		}
	case *ast.ForStmt:
		if st.Init != nil {
			sc.scanStmt(st.Init, held)
		}
		if st.Cond != nil {
			sc.checkExpr(st.Cond, held)
		}
		body := copyHeld(held)
		exit := sc.scanStmts(st.Body.List, body)
		if exit == flowFalls && st.Post != nil {
			sc.scanStmt(st.Post, body)
		}
		// The code after the loop joins the entry state (zero
		// iterations) with what a body path left behind — where the scan
		// stopped at a break, body holds exactly the state at the break.
		intersectInto(held, body)
	case *ast.RangeStmt:
		sc.checkExpr(st.X, held)
		body := copyHeld(held)
		sc.scanStmts(st.Body.List, body)
		intersectInto(held, body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			sc.scanStmt(st.Init, held)
		}
		if st.Tag != nil {
			sc.checkExpr(st.Tag, held)
		}
		return sc.joinCaseArms(st.Body.List, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			sc.scanStmt(st.Init, held)
		}
		sc.scanStmt(st.Assign, held)
		return sc.joinCaseArms(st.Body.List, held)
	case *ast.SelectStmt:
		// Exactly one clause always runs (default is itself a clause):
		// the join is the intersection of the arms that reach it, with no
		// entry-state fall-through.
		var outs []map[string]bool
		for _, cl := range st.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			arm := copyHeld(held)
			if cc.Comm != nil {
				sc.scanStmt(cc.Comm, arm)
			}
			if exit := sc.scanStmts(cc.Body, arm); exit != flowStops {
				outs = append(outs, arm)
			}
		}
		if len(outs) == 0 {
			return flowStops // every arm leaves, or select{} blocks forever
		}
		joinInto(held, outs)
	}
	return flowFalls
}

// joinCaseArms scans each case body of a switch or type switch on a
// copy of the entry state and joins the after-construct state: the
// intersection of every arm that can reach it, plus the entry state
// itself when there is no default arm (no case may match).
func (sc *lockScan) joinCaseArms(clauses []ast.Stmt, held map[string]bool) flowExit {
	hasDefault := false
	var outs []map[string]bool
	for _, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			sc.checkExpr(e, held)
		}
		arm := copyHeld(held)
		if exit := sc.scanStmts(cc.Body, arm); exit != flowStops {
			outs = append(outs, arm)
		}
	}
	if !hasDefault {
		// Some value may match no case: the entry state reaches the join.
		for _, o := range outs {
			intersectInto(held, o)
		}
		return flowFalls
	}
	if len(outs) == 0 {
		return flowStops
	}
	joinInto(held, outs)
	return flowFalls
}

// isNoReturnCall reports calls that never return control: panic,
// os.Exit, runtime.Goexit.
func (sc *lockScan) isNoReturnCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		b, ok := sc.pass.TypesInfo.Uses[fun].(*types.Builtin)
		return ok && b.Name() == "panic"
	case *ast.SelectorExpr:
		f, ok := sc.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || f.Pkg() == nil {
			return false
		}
		p := f.Pkg().Path()
		return (p == "os" && f.Name() == "Exit") || (p == "runtime" && f.Name() == "Goexit")
	}
	return false
}

// noteConstruction records `x := &T{...}` / `x := T{...}` / `x := new(T)`
// locals: unpublished values need no lock.
func (sc *lockScan) noteConstruction(as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		switch r := rhs.(type) {
		case *ast.CompositeLit:
			sc.constructed[id.Name] = true
		case *ast.UnaryExpr:
			if _, isLit := r.X.(*ast.CompositeLit); isLit {
				sc.constructed[id.Name] = true
			}
		case *ast.CallExpr:
			if fid, ok := r.Fun.(*ast.Ident); ok && fid.Name == "new" {
				sc.constructed[id.Name] = true
			}
		}
	}
}

// checkExpr validates every guarded-field access inside e against the
// current lock state; nested function literals are queued for their own
// fresh-context scan.
func (sc *lockScan) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			sc.lits = append(sc.lits, fl)
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := sc.pass.TypesInfo.Uses[sel.Sel]
		spec, guarded := sc.guards[obj]
		if !guarded || sc.exempt {
			return true
		}
		need := spec
		if !containsDot(spec) {
			need = exprString(sel.X) + "." + spec
		}
		if held[need] {
			return true
		}
		if sc.constructed[rootIdent(sel.X)] {
			return true
		}
		fname := "(func literal)"
		if sc.fn != nil {
			fname = sc.fn.Name.Name
		}
		sc.pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s, which %s does not hold on this path", exprString(sel.X), sel.Sel.Name, need, fname)
		return true
	})
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// intersectInto removes from dst every lock src does not hold.
func intersectInto(dst, src map[string]bool) {
	for k := range dst {
		if !src[k] {
			delete(dst, k)
		}
	}
}

// replaceHeld overwrites dst's contents with src's.
func replaceHeld(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// joinInto sets held to the intersection of outs.
func joinInto(held map[string]bool, outs []map[string]bool) {
	first := outs[0]
	for _, o := range outs[1:] {
		intersectInto(first, o)
	}
	replaceHeld(held, first)
}

func containsDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}

// rootIdent returns the leftmost identifier of an access path, or "".
func rootIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return ""
		}
	}
}
