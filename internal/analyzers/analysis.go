// Package analyzers is the repository's static-analysis suite: custom
// passes that machine-check the invariants the compiler cannot see and
// that the rest of the codebase is built on — deterministic execution in
// the simulation packages (detcheck), zero steady-state allocation in
// functions marked //distcolor:noalloc (noallochot), mutex discipline on
// fields annotated "guarded by" (lockguard), and context-first APIs with
// no context.Background in library code (ctxfirst) — plus stdlib
// reimplementations of the stock nilness and shadow vet passes.
//
// The suite compiles into cmd/distcolorvet and runs as a `go vet
// -vettool` multichecker over every package of the module (`make lint`,
// part of `make ci`), so a violation is a build break, not a review
// comment. The analyzers are deliberately structural: they prove the
// easy 95% mechanically and make the hard 5% auditable via counted
// suppression comments (see Suppressed below), never silent.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) so the suite can move onto x/tools
// unchanged once the module takes that dependency; it is implemented on
// the standard library alone (go/ast, go/types, go/importer) because
// this repository vendors nothing. See DESIGN.md §10 for each
// analyzer's contract and the annotation grammar.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one static-analysis pass. The shape deliberately
// matches golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the pass name, as used in suppression comments and -<name>=0
	// disable flags.
	Name string
	// Doc is the one-line contract shown by -help.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass hands an Analyzer one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, parsed with comments.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Deps holds the merged cross-package facts of every dependency
	// (see facts.go). Never nil; empty when the driver has no vetx
	// inputs (tests, or a stale cache).
	Deps *PackageFacts

	diagnostics []Diagnostic
}

// A Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Suppressed is set by the driver when an in-scope
	// //distcolor:ignore comment covers the finding; suppressed findings
	// are counted and summarized, never printed as failures.
	Suppressed bool
	// SuppressReason is the free-text justification from the suppression
	// comment.
	SuppressReason string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. The
// determinism, lock, and context passes skip test files: tests may
// legitimately use wall clocks, contexts, and unsynchronized access to
// their own fixtures.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ignoreRe is the suppression grammar: `//distcolor:ignore <analyzer>
// <reason>` placed on the flagged line or the line directly above it.
// The reason is mandatory — a suppression without a justification does
// not suppress.
var ignoreRe = regexp.MustCompile(`//distcolor:ignore\s+([a-z]+)\s+(\S.*)`)

// suppression is one parsed //distcolor:ignore comment.
type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int
	used     bool
}

// collectSuppressions parses every //distcolor:ignore comment of the
// package.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []*suppression {
	var out []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, &suppression{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					file:     pos.Filename,
					line:     pos.Line,
				})
			}
		}
	}
	return out
}

// applySuppressions marks diagnostics covered by a suppression on their
// line or the line above, and returns any suppression that covered
// nothing (a stale suppression is itself a finding: the grammar must
// stay auditable, not accrete dead waivers).
func applySuppressions(fset *token.FileSet, sups []*suppression, diags []Diagnostic) (out []Diagnostic, stale []*suppression) {
	for i := range diags {
		pos := fset.Position(diags[i].Pos)
		for _, s := range sups {
			if s.analyzer != diags[i].Analyzer || s.file != pos.Filename {
				continue
			}
			if s.line == pos.Line || s.line == pos.Line-1 {
				diags[i].Suppressed = true
				diags[i].SuppressReason = s.reason
				s.used = true
				break
			}
		}
	}
	for _, s := range sups {
		if !s.used {
			stale = append(stale, s)
		}
	}
	return diags, stale
}

// RunAnalyzers runs every analyzer over one type-checked package,
// applies suppressions, and converts stale suppressions into findings.
// deps may be nil (no cross-package facts available). Diagnostics come
// back sorted by position.
func RunAnalyzers(as []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps *PackageFacts) ([]Diagnostic, error) {
	if deps == nil {
		deps = &PackageFacts{}
	}
	var diags []Diagnostic
	known := make(map[string]bool, len(as))
	for _, a := range as {
		known[a.Name] = true
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Deps: deps}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		diags = append(diags, pass.diagnostics...)
	}
	sups := collectSuppressions(fset, files)
	diags, stale := applySuppressions(fset, sups, diags)
	for _, s := range stale {
		if !known[s.analyzer] {
			// A suppression for a pass that is not running (a disabled
			// analyzer, or a typo) stays silent rather than flapping with
			// the -<name>=0 flags.
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      posAt(fset, s.file, s.line),
			Analyzer: s.analyzer,
			Message:  fmt.Sprintf("stale suppression: no %s finding on this or the next line (%s)", s.analyzer, s.reason),
		})
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// posAt recovers a token.Pos for file:line, for anchoring stale-
// suppression findings; NoPos if the file is not in the fset.
func posAt(fset *token.FileSet, file string, line int) token.Pos {
	var pos token.Pos = token.NoPos
	fset.Iterate(func(f *token.File) bool {
		if f.Name() != file {
			return true
		}
		if line <= f.LineCount() {
			pos = f.LineStart(line)
		}
		return false
	})
	return pos
}

// funcDirective reports whether a function declaration carries the given
// //distcolor:* directive in its doc comment.
func funcDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// pkgDirective reports whether any file-level comment of the package
// carries the directive (used by fixtures and future packages to opt
// into a pass without being on its built-in path list).
func pkgDirective(files []*ast.File, directive string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, directive) {
					return true
				}
			}
		}
	}
	return false
}
