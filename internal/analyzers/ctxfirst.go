package analyzers

// ctxfirst: context discipline for library packages.
//
// PR 2 made cancellation ctx-native end to end: every engine checks its
// context at round boundaries, and deadlines propagate through
// arbitrarily deep algorithm compositions with no observer plumbing.
// That property only composes if (a) a context parameter is always the
// first parameter (so call sites thread the caller's ctx by reflex, the
// stdlib convention), and (b) library code never manufactures its own
// root context — a context.Background() in a library silently detaches
// everything below it from the caller's deadline, which is exactly the
// bug class the PR 2 redesign eliminated.
//
// The pass therefore checks, in every non-main package, skipping test
// files:
//
//   - any function with a context.Context parameter must take it first
//     (after the receiver);
//   - no calls to context.Background() or context.TODO(); a library
//     function that can block takes a ctx instead. The two deliberate
//     exceptions (sim's nil-ctx normalization, the deprecated
//     pre-context client shim) carry counted suppressions.

import (
	"go/ast"
	"go/types"
)

// Ctxfirst is the context-discipline pass. See the file comment for the
// contract.
var Ctxfirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "require context.Context to be the first parameter and forbid context.Background/TODO in library packages",
	Run:  runCtxfirst,
}

func runCtxfirst(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // binaries own their root contexts
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxPosition(pass, n)
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				switch fn.Name() {
				case "Background", "TODO":
					pass.Reportf(n.Pos(), "context.%s in library code detaches callees from the caller's cancellation; accept a ctx parameter instead", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// checkCtxPosition flags a context.Context parameter anywhere but first.
func checkCtxPosition(pass *Pass, fd *ast.FuncDecl) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	params := obj.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if !isContextType(params.At(i).Type()) {
			continue
		}
		if i != 0 {
			pass.Reportf(fd.Name.Pos(), "%s takes context.Context as parameter %d; ctx must come first", fd.Name.Name, i+1)
		}
		return // only the first ctx parameter matters
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
