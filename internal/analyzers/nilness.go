package analyzers

// nilness: a standard-library reimplementation of the useful core of the
// stock `nilness` vet analyzer, so one -vettool invocation covers stock
// and custom passes (the x/tools original is SSA-based and cannot be
// vendored into this dependency-free module; this version is AST-based
// and deliberately conservative — it reports only the branch-local
// certainties, never path-sensitive guesses).
//
// Reported patterns:
//
//   - inside the then-branch of `if x == nil`, a use of x that is
//     certain to panic: *x, x.f through a pointer, x[i] on a slice, a
//     call x(), or a map write — unless x is reassigned first;
//   - the mirrored else-branch of `if x != nil`;
//   - `if x == nil { ... } else if x == nil { ... }`: the second test is
//     impossible (degenerate but cheap to catch).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilness is the stdlib nilness pass. See the file comment for the
// contract and its deliberate limits.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc:  "report uses of provably nil pointers, slices, maps, and funcs inside nil-check branches",
	Run:  runNilness,
}

func runNilness(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj, isNilEq := nilComparison(pass, ifs.Cond)
			if obj == nil {
				return true
			}
			if isNilEq {
				checkNilUses(pass, obj, ifs.Body)
				if elif, ok := ifs.Else.(*ast.IfStmt); ok {
					if obj2, eq2 := nilComparison(pass, elif.Cond); obj2 == obj && eq2 {
						pass.Reportf(elif.Cond.Pos(), "impossible condition: %s is non-nil on this branch", obj.Name())
					}
				}
			} else if ifs.Else != nil {
				if block, ok := ifs.Else.(*ast.BlockStmt); ok {
					checkNilUses(pass, obj, block)
				}
			}
			return true
		})
	}
	return nil
}

// nilComparison matches `x == nil` (isEq=true) and `x != nil` for a
// nil-able variable x, returning its object.
func nilComparison(pass *Pass, cond ast.Expr) (obj types.Object, isEq bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	x, y := be.X, be.Y
	if !isNilIdent(pass, y) {
		if !isNilIdent(pass, x) {
			return nil, false
		}
		x = y
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !nilable(v.Type()) {
		return nil, false
	}
	return v, be.Op == token.EQL
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[id]
	return ok && tv.IsNil()
}

func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Signature, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// checkNilUses walks the branch where obj is known nil, reporting
// certain panics until obj is reassigned (or the walk ends).
func checkNilUses(pass *Pass, obj types.Object, body *ast.BlockStmt) {
	reassigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					reassigned = true
				}
			}
		case *ast.FuncLit:
			return false // deferred execution: obj may be set by then
		case *ast.StarExpr:
			if usesObj(pass, n.X, obj) {
				pass.Reportf(n.Pos(), "nil dereference: %s is nil on this branch", obj.Name())
			}
		case *ast.SelectorExpr:
			if usesObj(pass, n.X, obj) {
				if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
					// Field access panics; a method with a pointer receiver
					// may legally take nil, so only flag real selections of
					// fields.
					if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
						pass.Reportf(n.Pos(), "nil dereference: %s is nil on this branch", obj.Name())
					}
				}
			}
		case *ast.IndexExpr:
			if usesObj(pass, n.X, obj) {
				switch obj.Type().Underlying().(type) {
				case *types.Slice, *types.Pointer:
					pass.Reportf(n.Pos(), "index of nil %s on this branch", obj.Name())
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "call of nil function %s on this branch", obj.Name())
			}
		}
		return true
	})
}

func usesObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}
