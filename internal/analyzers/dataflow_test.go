package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// defsAt resolves the reaching definitions of a named variable just
// before the statement on the marker line: the block's IN state with
// the block's earlier statements applied.
func defsAt(t *testing.T, src, marker, varname string) (int, *token.FileSet) {
	t.Helper()
	fd, info, fset := parseFunc(t, src, "f")
	c := NewCFG(fd.Body, info)
	in := ReachingDefinitions(c, info)
	blk := stmtBlock(t, c, fset, src, marker)

	wantLine := 0
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, marker) {
			wantLine = i + 1
		}
	}
	state := in[blk.Index].clone()
	for _, st := range blk.Stmts {
		if fset.Position(st.Pos()).Line == wantLine {
			break
		}
		EachDefinition(st, info, func(obj types.Object, def ast.Node) {
			state.gen(obj, def)
		})
	}

	var obj types.Object
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == varname {
			if o := info.Defs[id]; o != nil {
				obj = o
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("no definition of %q", varname)
	}
	return len(state[obj]), fset
}

func TestReachingDefsJoin(t *testing.T) {
	src := `package cfgtest
func f(x int) int {
	a := 1
	if x > 0 {
		a = 2
	} else {
		a = 3
	}
	return a // RET
}`
	// Both branch assignments reach the return; the initial one is killed
	// on every path.
	if n, _ := defsAt(t, src, "// RET", "a"); n != 2 {
		t.Errorf("got %d reaching defs of a at the return, want 2", n)
	}
}

func TestReachingDefsKill(t *testing.T) {
	src := `package cfgtest
func f(x int) int {
	a := 1
	a = 2
	return a // RET
}`
	if n, _ := defsAt(t, src, "// RET", "a"); n != 1 {
		t.Errorf("got %d reaching defs of a at the return, want 1 (straight-line kill)", n)
	}
}

func TestReachingDefsLoop(t *testing.T) {
	src := `package cfgtest
func f(n int) int {
	a := 0
	for i := 0; i < n; i++ {
		a = i // LOOPDEF
	}
	return a // RET
}`
	// Zero-iteration and loop paths both reach the return.
	if n, _ := defsAt(t, src, "// RET", "a"); n != 2 {
		t.Errorf("got %d reaching defs of a at the return, want 2 (init + loop)", n)
	}
	// Inside the loop body, on entry to the defining block, init, the
	// previous iteration's def, or nothing new: 2 again.
	if n, _ := defsAt(t, src, "// LOOPDEF", "a"); n != 2 {
		t.Errorf("got %d reaching defs of a in the body, want 2", n)
	}
}

func TestForwardSetUnionFixpoint(t *testing.T) {
	// A hand-built may-set problem on a diamond: facts injected in each
	// branch must both be present after the join.
	src := `package cfgtest
func f(x int) {
	if x > 0 {
		_ = x // L
	} else {
		_ = x // R
	}
	_ = x // JOIN
}`
	fd, info, fset := parseFunc(t, src, "f")
	c := NewCFG(fd.Body, info)
	l := stmtBlock(t, c, fset, src, "// L")
	r := stmtBlock(t, c, fset, src, "// R")
	join := stmtBlock(t, c, fset, src, "// JOIN")

	in := Forward(c, Flow[set[string]]{
		Entry: set[string]{},
		Clone: set[string].clone,
		Merge: func(dst, src set[string]) bool { return dst.union(src) },
		Transfer: func(b *Block, s set[string]) set[string] {
			switch b {
			case l:
				s.add("left")
			case r:
				s.add("right")
			}
			return s
		},
	})
	got := in[join.Index]
	if !got.has("left") || !got.has("right") {
		t.Errorf("join state %v, want both left and right", got)
	}
	if in[l.Index].has("right") || in[r.Index].has("left") {
		t.Errorf("branch states leaked across: L=%v R=%v", in[l.Index], in[r.Index])
	}
}
