package analyzers

import "testing"

func TestTmpBreak(t *testing.T) {
	_, diags, err := checkFixture("tmpbreak", []*Analyzer{Lockguard})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Logf("diag: %s", d.Message)
	}
	if len(diags) == 0 {
		t.Log("NO FINDING: unlock+break path missed")
	}
}
