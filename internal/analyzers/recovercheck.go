package analyzers

// recovercheck: recovery-point accounting for the panic-quarantine
// failure domain (DESIGN.md §12).
//
// The service survives panicking jobs by recovering them at exactly one
// place — the worker's execute wrapper — and converting them into typed
// terminal failures. That containment argument only holds while the set
// of recovery points is known: an ad-hoc recover() deep in a library
// swallows the panic before the quarantine machinery sees it, hiding
// both the failure and the stack that explains it.
//
// The pass therefore reports every call of the builtin recover() in
// non-test files, except in repro/internal/fault (the injection layer
// manufactures and re-absorbs panics by design), unless the call site
// carries a `//distcolor:recover <reason>` annotation on its line or the
// line directly above. The annotation is a declaration, not a waiver:
// grepping for it enumerates every recovery point in the tree.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Recovercheck is the recovery-point accounting pass. See the file
// comment for the contract.
var Recovercheck = &Analyzer{
	Name: "recovercheck",
	Doc:  "require every recover() outside internal/fault to carry a //distcolor:recover <reason> annotation",
	Run:  runRecovercheck,
}

// recoverMarkRe is the annotation grammar: a mandatory free-text reason,
// mirroring the suppression grammar's auditability rule.
var recoverMarkRe = regexp.MustCompile(`//distcolor:recover\s+\S`)

const faultPkgPath = "repro/internal/fault"

func runRecovercheck(pass *Pass) error {
	if pass.Pkg.Path() == faultPkgPath {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		marked := recoverMarkLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "recover" {
				return true
			}
			if obj, ok := pass.TypesInfo.Uses[id]; !ok || obj != types.Universe.Lookup("recover") {
				return true // a shadowing declaration, not the builtin
			}
			line := pass.Fset.Position(call.Pos()).Line
			if marked[line] || marked[line-1] {
				return true
			}
			pass.Reportf(call.Pos(), "recover() outside internal/fault must carry a //distcolor:recover <reason> annotation (panic quarantine owns recovery points)")
			return true
		})
	}
	return nil
}

// recoverMarkLines collects the lines of f holding a well-formed
// //distcolor:recover annotation.
func recoverMarkLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if recoverMarkRe.MatchString(c.Text) {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}
