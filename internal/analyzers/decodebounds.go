package analyzers

// decodebounds: allocation sizes derived from wire-read integers must
// be bounds-checked before they reach make (or a buffer Grow).
//
// The readFrame DoS fixed in PR 8 — `make` sized by an attacker-
// controlled varint before any comparison against the bytes actually
// available — generalized into a gate. A forward taint analysis over
// the CFG tracks which variables carry wire-derived integers:
//
//	sources     encoding/binary reads (Uvarint, Varint, ReadUvarint,
//	            ReadVarint, ByteOrder.Uint16/32/64) and any function
//	            this pass has already proven returns a wire integer
//	            unchecked (package-locally or via the vetx facts:
//	            PackageFacts.WireIntFuncs)
//	transfer    assignments, arithmetic, conversions, and calls
//	            propagate origins; len/cap are barriers (their results
//	            are bounded by an existing allocation)
//	blessing    a conditional whose comparison mentions a tainted
//	            variable against anything but the literal 0 blesses
//	            those origins in every block the condition dominates —
//	            the `if n > d.remaining()` / `if n > frameMaxBytes`
//	            shapes
//	sinks       make size/cap arguments and bytes/strings Builder/
//	            Buffer Grow; also call sites passing unblessed taint
//	            into a parameter known (locally or via
//	            PackageFacts.AllocSizedParams) to flow into an
//	            allocation size unchecked
//
// A parameter flowing unchecked into a sink is not a finding at the
// function — it becomes an obligation at every call site, carried
// across packages through the fact channel. append is deliberately not
// a sink: appending grows by what was actually decoded, and the DoS is
// pre-allocation, not accumulation.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Decodebounds is the decoder-bounds pass. See the file comment.
var Decodebounds = &Analyzer{
	Name: "decodebounds",
	Doc:  "check that make/Grow sizes derived from wire-read integers are bounds-checked first",
	Run:  runDecodebounds,
}

// dbSummaries is the package-level fixpoint state: function FullNames
// proven to return unchecked wire integers, parameter indices flowing
// unchecked into allocation sizes, and param→result propagators.
type dbSummaries struct {
	wire  map[string]bool
	alloc map[string]map[int]bool
	prop  map[string]map[int]bool
}

func runDecodebounds(pass *Pass) error {
	s := decodeboundsFixpoint(pass)
	decodeboundsSweep(pass, s, true)
	return nil
}

// decodeboundsFacts exports the summaries through the vetx channel.
func decodeboundsFacts(pass *Pass, out *PackageFacts) {
	s := decodeboundsFixpoint(pass)
	for fn := range s.wire {
		out.WireIntFuncs = append(out.WireIntFuncs, fn)
	}
	for fn, params := range s.alloc {
		if len(params) == 0 {
			continue
		}
		if out.AllocSizedParams == nil {
			out.AllocSizedParams = make(map[string][]int)
		}
		var list []int
		for i := range params {
			list = append(list, i)
		}
		out.AllocSizedParams[fn] = mergeInts(out.AllocSizedParams[fn], list)
	}
}

// decodeboundsFixpoint iterates summary extraction over the package's
// functions until no summary changes (growth is monotone and bounded).
func decodeboundsFixpoint(pass *Pass) *dbSummaries {
	s := &dbSummaries{
		wire:  make(map[string]bool),
		alloc: make(map[string]map[int]bool),
		prop:  make(map[string]map[int]bool),
	}
	for _, fn := range pass.Deps.WireIntFuncs {
		s.wire[fn] = true
	}
	for fn, params := range pass.Deps.AllocSizedParams {
		s.alloc[fn] = make(map[int]bool, len(params))
		for _, i := range params {
			s.alloc[fn][i] = true
		}
	}
	for changed := true; changed; {
		changed = decodeboundsSweep(pass, s, false)
	}
	return s
}

// decodeboundsSweep analyzes every function context once. With report
// set it emits diagnostics; it always folds new facts into s and
// reports whether any summary grew.
func decodeboundsSweep(pass *Pass, s *dbSummaries, report bool) bool {
	changed := false
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if dbAnalyzeContext(pass, s, fn, fd.Type, fd.Body, report) {
				changed = true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					// Literals are fresh contexts; they produce no summaries
					// (anonymous) but their sinks are checked.
					if report {
						dbAnalyzeContext(pass, s, nil, fl.Type, fl.Body, true)
					}
					return false
				}
				return true
			})
		}
	}
	return changed
}

// dbAnalyzeContext runs the taint flow over one function body. fn is
// nil for literals (no summary is recorded).
func dbAnalyzeContext(pass *Pass, s *dbSummaries, fn *types.Func, ftyp *ast.FuncType, body *ast.BlockStmt, report bool) bool {
	cfg := NewCFG(body, pass.TypesInfo)

	// Entry state: integer parameters are their own origins.
	entry := taintState{}
	if ftyp.Params != nil {
		for _, field := range ftyp.Params.List {
			for _, name := range field.Names {
				obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if !ok || !isIntegerType(obj.Type()) {
					continue
				}
				entry[obj] = set[any]{}
				entry[obj].add(obj)
			}
		}
	}

	in := Forward(cfg, Flow[taintState]{
		Entry: entry,
		Clone: taintState.clone,
		Merge: func(dst, src taintState) bool { return dst.merge(src) },
		Transfer: func(b *Block, st taintState) taintState {
			for _, stmt := range b.Stmts {
				dbTransferStmt(pass, s, stmt, st)
			}
			return st
		},
	})

	// Blessed origins per block: the union of guard origins of every
	// strictly dominating block.
	idom := cfg.Dominators()
	guards := make([]set[any], len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		if in[b.Index] == nil || len(b.Stmts) == 0 {
			continue
		}
		// The guard condition reads the state after the block's earlier
		// statements — the `n, _ := read(); if n > max` shape keeps the
		// definition and the check in one block.
		st := in[b.Index].clone()
		for _, stmt := range b.Stmts[:len(b.Stmts)-1] {
			dbTransferStmt(pass, s, stmt, st)
		}
		guards[b.Index] = dbGuardOrigins(pass, b, st)
	}
	blessed := func(b *Block) set[any] {
		out := set[any]{}
		for d := idom[b.Index]; d != nil; d = idom[d.Index] {
			if d != b && guards[d.Index] != nil {
				out.union(guards[d.Index])
			}
			if d == cfg.Entry {
				break
			}
		}
		return out
	}

	changed := false
	fullName := ""
	if fn != nil {
		fullName = fn.FullName()
	}
	for _, b := range cfg.Blocks {
		if in[b.Index] == nil {
			continue
		}
		st := in[b.Index].clone()
		bl := blessed(b)
		for _, stmt := range b.Stmts {
			if dbCheckStmt(pass, s, fullName, fn, stmt, st, bl, report) {
				changed = true
			}
			dbTransferStmt(pass, s, stmt, st)
		}
	}
	return changed
}

// taintState maps each integer variable to the set of origins its
// value may derive from: *ast.CallExpr wire-source calls, or
// *types.Var parameters of the enclosing function.
type taintState map[types.Object]set[any]

func (t taintState) clone() taintState {
	out := make(taintState, len(t))
	for obj, origins := range t {
		out[obj] = origins.clone()
	}
	return out
}

func (t taintState) merge(src taintState) bool {
	grew := false
	for obj, origins := range src {
		dst, ok := t[obj]
		if !ok {
			t[obj] = origins.clone()
			grew = true
			continue
		}
		if dst.union(origins) {
			grew = true
		}
	}
	return grew
}

// dbTransferStmt applies one statement's definitions to the state.
func dbTransferStmt(pass *Pass, s *dbSummaries, stmt ast.Stmt, st taintState) {
	switch stmt := stmt.(type) {
	case *ast.AssignStmt:
		if len(stmt.Lhs) == len(stmt.Rhs) {
			for i, lhs := range stmt.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				origins := dbExprOrigins(pass, s, stmt.Rhs[i], st)
				dbAssign(pass, id, origins, stmt.Tok, st)
			}
		} else if len(stmt.Rhs) == 1 {
			origins := dbExprOrigins(pass, s, stmt.Rhs[0], st)
			for _, lhs := range stmt.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					dbAssign(pass, id, origins, stmt.Tok, st)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var origins set[any]
					if i < len(vs.Values) {
						origins = dbExprOrigins(pass, s, vs.Values[i], st)
					} else if len(vs.Values) == 1 {
						origins = dbExprOrigins(pass, s, vs.Values[0], st)
					}
					dbAssign(pass, name, origins, token.DEFINE, st)
				}
			}
		}
	case *ast.RangeStmt:
		// Ranging over a wire-sized collection yields wire-derived
		// values (the elements were themselves decoded); the index is
		// bounded by the allocation and stays clean.
		origins := dbExprOrigins(pass, s, stmt.X, st)
		if id, ok := stmt.Value.(*ast.Ident); ok && id != nil {
			dbAssign(pass, id, origins, token.DEFINE, st)
		}
	}
}

// dbAssign installs origins for id (kill on plain assign/define, union
// on compound ops like +=).
func dbAssign(pass *Pass, id *ast.Ident, origins set[any], tok token.Token, st taintState) {
	if id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if tok != token.ASSIGN && tok != token.DEFINE {
		if len(origins) == 0 {
			return
		}
		cur, ok := st[obj]
		if !ok {
			cur = set[any]{}
			st[obj] = cur
		}
		cur.union(origins)
		return
	}
	if len(origins) == 0 {
		delete(st, obj)
		return
	}
	st[obj] = origins.clone()
}

// dbExprOrigins collects the taint origins an expression's value may
// carry. len and cap are barriers; nested func literals are opaque.
func dbExprOrigins(pass *Pass, s *dbSummaries, e ast.Expr, st taintState) set[any] {
	out := set[any]{}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				out.union(st[obj])
			}
		case *ast.CallExpr:
			if isLenOrCap(pass, n) {
				return false
			}
			if dbIsWireSource(pass, s, n) {
				out.add(n)
			}
		}
		return true
	}
	ast.Inspect(e, walk)
	return out
}

// isLenOrCap reports a call to the len or cap builtin.
func isLenOrCap(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && (b.Name() == "len" || b.Name() == "cap")
}

// dbIsWireSource reports whether the call reads a wire integer: an
// encoding/binary decoder, or a function proven to return unchecked
// wire integers.
func dbIsWireSource(pass *Pass, s *dbSummaries, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "encoding/binary" {
		switch fn.Name() {
		case "Uvarint", "Varint", "ReadUvarint", "ReadVarint",
			"Uint16", "Uint32", "Uint64":
			return true
		}
		return false
	}
	return s.wire[fn.FullName()]
}

// dbGuardOrigins extracts the origins blessed by the block's trailing
// condition: a comparison mentioning a tainted variable against
// anything but the literal 0.
func dbGuardOrigins(pass *Pass, b *Block, in taintState) set[any] {
	if len(b.Stmts) == 0 {
		return nil
	}
	last := b.Stmts[len(b.Stmts)-1]
	var cond ast.Expr
	switch last := last.(type) {
	case *ast.IfStmt:
		cond = last.Cond
	case *ast.ForStmt:
		cond = last.Cond
	case *ast.SwitchStmt:
		// switch n { case ...: } compares n against each case value.
		cond = last.Tag
	}
	if cond == nil {
		return nil
	}
	out := set[any]{}
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		xo := identOrigins(pass, be.X, in)
		yo := identOrigins(pass, be.Y, in)
		if len(xo) > 0 && !isZeroLiteral(be.Y) {
			out.union(xo)
		}
		if len(yo) > 0 && !isZeroLiteral(be.X) {
			out.union(yo)
		}
		return true
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// identOrigins collects origins of the plain variables mentioned in e.
func identOrigins(pass *Pass, e ast.Expr, st taintState) set[any] {
	out := set[any]{}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out.union(st[obj])
			}
		}
		return true
	})
	return out
}

func isZeroLiteral(e ast.Expr) bool {
	bl, ok := e.(*ast.BasicLit)
	if !ok {
		return false
	}
	n, err := strconv.ParseInt(bl.Value, 0, 64)
	return err == nil && n == 0
}

// dbCheckStmt scans one statement's locally-evaluated parts for sinks,
// reporting (or recording parameter obligations) for unblessed taint.
func dbCheckStmt(pass *Pass, s *dbSummaries, fullName string, fn *types.Func, stmt ast.Stmt, st taintState, blessed set[any], report bool) bool {
	changed := false
	flag := func(origins set[any], pos token.Pos, what string) {
		for o := range origins {
			if blessed.has(o) {
				continue
			}
			switch o := o.(type) {
			case *ast.CallExpr:
				if report {
					src := pass.Fset.Position(o.Pos())
					pass.Reportf(pos, "%s derives from the wire read at %s:%d without a bounds check against available bytes", what, shortPath(src.Filename), src.Line)
				}
			case *types.Var:
				// A parameter obligation, surfaced at call sites instead.
				if fullName != "" && paramIndexOf(fn, o) >= 0 {
					if s.alloc[fullName] == nil {
						s.alloc[fullName] = make(map[int]bool)
					}
					if !s.alloc[fullName][paramIndexOf(fn, o)] {
						s.alloc[fullName][paramIndexOf(fn, o)] = true
						changed = true
					}
				}
			}
		}
	}

	for _, root := range BlockLocalNodes(stmt) {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// make(T, len, cap)
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
					for _, arg := range call.Args[1:] {
						flag(dbExprOrigins(pass, s, arg, st), call.Pos(), "make size")
					}
					return true
				}
			}
			// Buffer/Builder Grow.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Grow" && len(call.Args) == 1 {
				if f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && f.Pkg() != nil {
					if p := f.Pkg().Path(); p == "bytes" || p == "strings" {
						flag(dbExprOrigins(pass, s, call.Args[0], st), call.Pos(), "Grow size")
					}
				}
			}
			// Calls into functions with alloc-sized parameters.
			if callee := calleeFunc(pass, call); callee != nil {
				if params := s.alloc[callee.FullName()]; len(params) > 0 {
					for i := range params {
						if i < len(call.Args) {
							flag(dbExprOrigins(pass, s, call.Args[i], st),
								call.Pos(), "allocation-sized argument "+strconv.Itoa(i)+" of "+callee.Name())
						}
					}
				}
			}
			return true
		})
	}

	// Wire-int function detection: unblessed source origins escaping
	// through a return.
	if ret, ok := stmt.(*ast.ReturnStmt); ok && fullName != "" {
		for _, res := range ret.Results {
			for o := range dbExprOrigins(pass, s, res, st) {
				if _, isCall := o.(*ast.CallExpr); isCall && !blessed.has(o) {
					if !s.wire[fullName] {
						s.wire[fullName] = true
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// paramIndexOf returns o's index among fn's parameters, or -1.
func paramIndexOf(fn *types.Func, o *types.Var) int {
	if fn == nil {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == o {
			return i
		}
	}
	return -1
}

// isIntegerType reports whether t's core type is an integer.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// shortPath trims a long build-system path down to its last two
// elements for readable messages.
func shortPath(p string) string {
	slash := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			slash++
			if slash == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}
