package analyzers

// The //distcolor:noalloc annotation set and the dynamic AllocsPerRun
// pins must describe the same hot paths: the pins prove the property on
// the workloads the suite runs, the annotations prove it structurally on
// every path. This meta-test walks the module source and diffs the
// annotated set against the manifest below, so adding or dropping an
// annotation without updating the manifest (or vice versa) is a test
// failure — the sync is audited, not assumed.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// noallocManifest lists every function that must carry the
// //distcolor:noalloc directive, keyed "pkgdir.(recv).Name", with the
// dynamic pin that motivates each entry.
var noallocManifest = map[string]string{
	// Pinned at 0 allocs/op by TestPlaneZeroAlloc (plane_test.go),
	// TestWordPlaneZeroAlloc (words_test.go), the bandwidth accounting
	// pins (bandwidth_test.go), and the bench gate's allocs_per_round=0
	// columns (BENCH_simcore.json).
	"internal/sim.(instance).stepVertex":      "sim round loop, any plane",
	"internal/sim.(instance).stepVertexWord":  "sim round loop, word plane",
	"internal/sim.(instance).retireRound":     "sim round loop, halt retirement",
	"internal/sim.(instance).retireInto":      "sim round loop, halt retirement",
	"internal/sim.(instance).retireWordsInto": "sim round loop, halt retirement",
	// Pinned by the linial_test.go AllocsPerRun step pin and the
	// algo/linial bench-gate row.
	"internal/linial.(machine).StepWord":  "linial reduction step",
	"internal/linial.(machine).applyStep": "linial polynomial evaluation",
	// Pinned at 0 allocs/observation by TestInstrumentsZeroAlloc
	// (obs_test.go).
	"internal/obs.(Counter).Add":       "obs hot instrument",
	"internal/obs.(Counter).Inc":       "obs hot instrument",
	"internal/obs.(Gauge).Set":         "obs hot instrument",
	"internal/obs.(Gauge).Add":         "obs hot instrument",
	"internal/obs.(Histogram).Observe": "obs hot instrument",
}

// collectNoallocAnnotations parses every non-test .go file under the
// module root and returns the qualified names of functions carrying the
// directive.
func collectNoallocAnnotations(t *testing.T, root string) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "bin", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		rel, rerr := filepath.Rel(root, filepath.Dir(path))
		if rerr != nil {
			return rerr
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !funcDirective(fd, noallocDirective) {
				continue
			}
			out[filepath.ToSlash(rel)+"."+recvQualifier(fd)+fd.Name.Name] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// recvQualifier renders a receiver as "(T)." with pointers stripped, or
// "" for plain functions.
func recvQualifier(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")."
	}
	return "(?)."
}

func TestNoallocAnnotationsMatchAllocsPerRunPins(t *testing.T) {
	annotated := collectNoallocAnnotations(t, filepath.Join("..", ".."))
	var missing, unexpected []string
	for name := range noallocManifest {
		if !annotated[name] {
			missing = append(missing, name)
		}
	}
	for name := range annotated {
		if _, ok := noallocManifest[name]; !ok {
			unexpected = append(unexpected, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(unexpected)
	for _, name := range missing {
		t.Errorf("manifest entry %s (%s) is not annotated //distcolor:noalloc", name, noallocManifest[name])
	}
	for _, name := range unexpected {
		t.Errorf("%s is annotated //distcolor:noalloc but absent from noallocManifest; add it with the AllocsPerRun pin that motivates it", name)
	}
}
