package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc typechecks one source file and returns the named function's
// declaration plus the info needed to build its CFG.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgtest.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("cfgtest", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info, fset
		}
	}
	t.Fatalf("no function %q in source", name)
	return nil, nil, nil
}

// stmtBlock finds the block containing the statement whose rendered
// source line contains marker.
func stmtBlock(t *testing.T, c *CFG, fset *token.FileSet, src, marker string) *Block {
	t.Helper()
	wantLine := 0
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, marker) {
			wantLine = i + 1
			break
		}
	}
	if wantLine == 0 {
		t.Fatalf("marker %q not in source", marker)
	}
	for _, b := range c.Blocks {
		for _, s := range b.Stmts {
			if fset.Position(s.Pos()).Line == wantLine {
				return b
			}
		}
	}
	t.Fatalf("no block holds the statement at line %d (%q)", wantLine, marker)
	return nil
}

func TestCFGLinearAndBranch(t *testing.T) {
	src := `package cfgtest
func f(x int) int {
	a := 1 // A
	if x > 0 {
		a = 2 // THEN
	} else {
		a = 3 // ELSE
	}
	return a // RET
}`
	fd, info, fset := parseFunc(t, src, "f")
	c := NewCFG(fd.Body, info)

	entry := stmtBlock(t, c, fset, src, "// A")
	then := stmtBlock(t, c, fset, src, "// THEN")
	els := stmtBlock(t, c, fset, src, "// ELSE")
	ret := stmtBlock(t, c, fset, src, "// RET")

	if entry != c.Entry {
		t.Errorf("first statement not in the entry block")
	}
	if len(entry.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2", len(entry.Succs))
	}
	idom := c.Dominators()
	for _, b := range []*Block{then, els, ret} {
		if !Dominates(idom, entry, b) {
			t.Errorf("entry should dominate block %d", b.Index)
		}
	}
	if Dominates(idom, then, ret) || Dominates(idom, els, ret) {
		t.Errorf("neither branch may dominate the join/return")
	}
	// The return block reaches Exit.
	if !c.CanReachExitAvoiding(entry, func(b *Block) bool { return false }) {
		t.Errorf("exit unreachable from entry")
	}
}

func TestCFGEarlyReturnAndPanic(t *testing.T) {
	src := `package cfgtest
func f(x int) int {
	if x < 0 {
		return -1 // EARLY
	}
	if x == 0 {
		panic("zero") // PANIC
	}
	x++ // TAIL
	return x
}`
	fd, info, fset := parseFunc(t, src, "f")
	c := NewCFG(fd.Body, info)
	early := stmtBlock(t, c, fset, src, "// EARLY")
	pan := stmtBlock(t, c, fset, src, "// PANIC")
	tail := stmtBlock(t, c, fset, src, "// TAIL")

	hasExit := func(b *Block) bool {
		for _, s := range b.Succs {
			if s == c.Exit {
				return true
			}
		}
		return false
	}
	if !hasExit(early) {
		t.Errorf("return block must edge to Exit")
	}
	if !hasExit(pan) {
		t.Errorf("panic block must edge to Exit")
	}
	// The panic is terminal: the tail must not be among its successors.
	for _, s := range pan.Succs {
		if s == tail {
			t.Errorf("panic block must not fall through to the tail")
		}
	}
}

func TestCFGLoopsAndAvoidance(t *testing.T) {
	src := `package cfgtest
import "sync"
func f(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1) // ADD
	}
	if n > 10 {
		return // EARLY
	}
	wg.Wait() // WAIT
}`
	fd, info, fset := parseFunc(t, src, "f")
	c := NewCFG(fd.Body, info)
	add := stmtBlock(t, c, fset, src, "// ADD")
	wait := stmtBlock(t, c, fset, src, "// WAIT")

	// From the loop body one can reach Exit while avoiding the Wait block
	// (via the early return).
	if !c.CanReachExitAvoiding(add, func(b *Block) bool { return b == wait }) {
		t.Errorf("early return should make Exit reachable without the Wait")
	}
	// Loop back edge: the Add block can re-reach itself.
	seen := false
	var dfs func(b *Block, visited map[*Block]bool)
	dfs = func(b *Block, visited map[*Block]bool) {
		if visited[b] {
			return
		}
		visited[b] = true
		for _, s := range b.Succs {
			if s == add {
				seen = true
			}
			dfs(s, visited)
		}
	}
	dfs(add, map[*Block]bool{})
	if !seen {
		t.Errorf("loop body has no back edge to itself")
	}
}

func TestCFGSelectAndSwitch(t *testing.T) {
	src := `package cfgtest
func f(ch chan int, x int) int {
	select {
	case v := <-ch:
		return v // RECV
	default:
		x++ // DEF
	}
	switch x {
	case 1:
		x = 10 // ONE
		fallthrough
	case 2:
		x = 20 // TWO
	}
	return x // RET
}`
	fd, info, fset := parseFunc(t, src, "f")
	c := NewCFG(fd.Body, info)
	one := stmtBlock(t, c, fset, src, "// ONE")
	two := stmtBlock(t, c, fset, src, "// TWO")
	ret := stmtBlock(t, c, fset, src, "// RET")

	// fallthrough: ONE must edge into TWO's block.
	found := false
	for _, s := range one.Succs {
		if s == two {
			found = true
		}
	}
	if !found {
		t.Errorf("fallthrough edge from case 1 to case 2 missing")
	}
	idom := c.Dominators()
	if Dominates(idom, one, ret) {
		t.Errorf("a switch case must not dominate the code after the switch")
	}
}

func TestCFGDefersRecorded(t *testing.T) {
	src := `package cfgtest
import "sync"
func f(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	if true {
		defer println("branchy")
	}
}`
	fd, info, _ := parseFunc(t, src, "f")
	c := NewCFG(fd.Body, info)
	if len(c.Defers) != 2 {
		t.Errorf("recorded %d defers, want 2", len(c.Defers))
	}
}

func TestCFGEveryBlockEdgesConsistent(t *testing.T) {
	// Succ/pred symmetry over a shape-heavy function.
	src := `package cfgtest
func f(xs []int) int {
	total := 0
outer:
	for i, x := range xs {
		switch {
		case x < 0:
			continue
		case x == 0:
			break outer
		}
		for j := 0; j < x; j++ {
			if j == i {
				total += j
				continue
			}
			total++
		}
	}
	return total
}`
	fd, info, _ := parseFunc(t, src, "f")
	c := NewCFG(fd.Body, info)
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("block %d → %d has no matching pred", b.Index, s.Index)
			}
		}
	}
	if len(c.Exit.Succs) != 0 {
		t.Errorf("Exit must have no successors")
	}
}

func ExampleNewCFG() {
	fset := token.NewFileSet()
	f, _ := parser.ParseFile(fset, "x.go", `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, parser.SkipObjectResolution)
	fd := f.Decls[0].(*ast.FuncDecl)
	c := NewCFG(fd.Body, nil)
	fmt.Println(len(c.Blocks) > 3, c.Exit == c.Blocks[1])
	// Output: true true
}
