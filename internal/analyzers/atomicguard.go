package analyzers

// atomicguard: a memory location is atomic or it is plain — never
// both.
//
// Three rules, one discipline:
//
//  1. A variable or field whose address is passed to a sync/atomic
//     function (atomic.AddInt64(&x, …) and friends) belongs to the
//     atomic domain: every other access must also go through
//     sync/atomic. Plain reads/writes — and taking its address for
//     anything that is not an atomic call — are findings. The atomic
//     domain is package-spanning: PackageFacts.AtomicObjs carries the
//     identities across the vetx channel.
//  2. A value of a typed-atomic type (sync/atomic's Int64, Uint64,
//     Bool, Value, …) or of an internal/obs instrument value type
//     (Counter, Gauge, Histogram) must never be copied: copying tears
//     the atomic out of its cell. Method calls, address-of, and
//     indexing are the only plain contexts allowed. Pointer-typed
//     instrument fields (*obs.Counter guarded by a mutex — the
//     repository's convention) are untouched: copying a pointer is
//     fine.
//  3. A field cannot serve two masters: a "guarded by" annotation on a
//     typed-atomic field (or one in the atomic domain) claims mutex
//     discipline over a location the code touches atomically — one of
//     the two is a lie. Reported at the field declaration.

import (
	"go/ast"
	"go/types"
	"strings"
)

// Atomicguard is the atomic-vs-plain access pass. See the file comment.
var Atomicguard = &Analyzer{
	Name: "atomicguard",
	Doc:  "check that fields accessed via sync/atomic or obs instruments are never also accessed plainly",
	Run:  runAtomicguard,
}

func runAtomicguard(pass *Pass) error {
	domain, domainIDs := collectAtomicDomain(pass)
	for id := range depAtomicIDs(pass) {
		domainIDs[id] = true
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		checkAtomicFile(pass, f, domain, domainIDs)
	}
	checkGuardConflicts(pass, domain)
	return nil
}

// atomicguardFacts exports the package's atomic-domain identities.
func atomicguardFacts(pass *Pass, out *PackageFacts) {
	_, ids := collectAtomicDomain(pass)
	for id := range ids {
		out.AtomicObjs = append(out.AtomicObjs, id)
	}
}

// collectAtomicDomain finds every object whose address reaches a
// sync/atomic function, with the stable cross-package identity of each.
func collectAtomicDomain(pass *Pass) (map[types.Object]bool, map[string]bool) {
	domain := make(map[types.Object]bool)
	ids := make(map[string]bool)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := arg.(*ast.UnaryExpr)
				if !ok || ue.Op.String() != "&" {
					continue
				}
				if obj := addressedObj(pass, ue.X); obj != nil {
					domain[obj] = true
					if id := atomicObjID(pass, ue.X); id != "" {
						ids[id] = true
					}
				}
			}
			return true
		})
	}
	return domain, ids
}

func depAtomicIDs(pass *Pass) map[string]bool {
	out := make(map[string]bool, len(pass.Deps.AtomicObjs))
	for _, id := range pass.Deps.AtomicObjs {
		out[id] = true
	}
	return out
}

// isAtomicFuncCall reports a call to a sync/atomic package-level
// function (not a typed-atomic method).
func isAtomicFuncCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedObj resolves &expr's operand to the variable it names.
func addressedObj(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.ParenExpr:
		return addressedObj(pass, e.X)
	case *ast.IndexExpr:
		return addressedObj(pass, e.X)
	}
	return nil
}

// atomicObjID renders the cross-package identity of an access path:
// "pkgpath.Type.field" for fields (via the owner's named type),
// "pkgpath.var" for package-level vars, "" for locals.
func atomicObjID(pass *Pass, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	case *ast.SelectorExpr:
		return lockIdentity(pass, e) // same pkgpath.Type.field shape
	case *ast.ParenExpr:
		return atomicObjID(pass, e.X)
	case *ast.IndexExpr:
		return atomicObjID(pass, e.X)
	}
	return ""
}

// checkAtomicFile walks one file for rule-1 plain accesses and rule-2
// value copies.
func checkAtomicFile(pass *Pass, f *ast.File, domain map[types.Object]bool, domainIDs map[string]bool) {
	walkStack(f, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			// The Sel of a selector is handled through its SelectorExpr.
			if len(stack) > 0 {
				if p, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && p.Sel == n {
					return true
				}
			}
			obj := pass.TypesInfo.Uses[n]
			if obj == nil {
				return true
			}
			inDomain := domain[obj]
			if !inDomain && len(domainIDs) > 0 {
				// Selector tails are handled via their SelectorExpr below;
				// here only plain idents (package vars, locals) resolve.
				if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					inDomain = domainIDs[v.Pkg().Path()+"."+v.Name()]
				}
			}
			if inDomain && !inAtomicContext(pass, n, stack) {
				pass.Reportf(n.Pos(), "%s is in the atomic domain (its address is passed to sync/atomic) and must not be accessed plainly", n.Name)
			}
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[n.Sel]
			if obj == nil {
				return true
			}
			inDomain := domain[obj]
			if !inDomain && len(domainIDs) > 0 {
				if id := atomicObjID(pass, n); id != "" {
					inDomain = domainIDs[id]
				}
			}
			if inDomain && !inAtomicContext(pass, n, stack) {
				pass.Reportf(n.Sel.Pos(), "%s is in the atomic domain (its address is passed to sync/atomic) and must not be accessed plainly", exprString(n))
			}
		}
		// Rule 2: whole-value use of a typed-atomic value.
		if e, ok := n.(ast.Expr); ok {
			checkAtomicCopy(pass, e, stack)
		}
		return true
	})
}

// inAtomicContext reports whether the access node sits inside
// &x passed directly to a sync/atomic function call.
func inAtomicContext(pass *Pass, n ast.Node, stack []ast.Node) bool {
	// Find the nearest enclosing &-operand position.
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.UnaryExpr:
			if p.Op.String() != "&" {
				continue
			}
			// The & must itself be an argument of an atomic call.
			if i > 0 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok && isAtomicFuncCall(pass, call) {
					return true
				}
			}
			return false
		case *ast.SelectorExpr, *ast.ParenExpr, *ast.IndexExpr:
			continue
		default:
			return false
		}
	}
	return false
}

// checkAtomicCopy flags whole-value uses of typed-atomic values (rule
// 2). The allowed parents are method access, address-of, and indexing
// deeper into a container of atomics.
func checkAtomicCopy(pass *Pass, e ast.Expr, stack []ast.Node) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return
	}
	if len(stack) > 0 {
		if p, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok {
			if id, isID := e.(*ast.Ident); isID && p.Sel == id {
				return // the Sel half of a selector; the whole Sel expr is checked
			}
		}
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || !tv.IsValue() || !isTypedAtomic(tv.Type) {
		return
	}
	if len(stack) == 0 {
		return
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		if p.X == e {
			return // x.atomicField.<next sel> or method access: fine
		}
	case *ast.UnaryExpr:
		if p.Op.String() == "&" {
			return
		}
	case *ast.IndexExpr:
		if p.X == e {
			return
		}
	case *ast.StarExpr:
		return // dereference feeding a further selector; the selector case re-checks
	}
	// Inside a field declaration or composite type the ident is a type
	// name, not a value — Types.IsValue filtered those already.
	pass.Reportf(e.Pos(), "%s has atomic type %s and must not be copied or read as a plain value", exprString(e), tv.Type.String())
}

// isTypedAtomic reports sync/atomic named types and internal/obs
// instrument value types.
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync/atomic":
		return obj.Name() != "ByteOrder"
	}
	if strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
		switch obj.Name() {
		case "Counter", "Gauge", "Histogram":
			return true
		}
	}
	return false
}

// checkGuardConflicts reports rule 3: "guarded by" annotations on
// atomic-domain or typed-atomic fields.
func checkGuardConflicts(pass *Pass, domain map[types.Object]bool) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				annotated := false
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg != nil && guardedByRe.MatchString(cg.Text()) {
						annotated = true
					}
				}
				if !annotated {
					continue
				}
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if domain[obj] || isTypedAtomic(obj.Type()) {
						pass.Reportf(name.Pos(), "field %s is both 'guarded by' a mutex and accessed atomically — pick one discipline", name.Name)
					}
				}
			}
			return true
		})
	}
}
