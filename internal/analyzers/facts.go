package analyzers

// Cross-package facts. The go command's vet protocol hands every
// package visit a VetxOutput path to write "export data" for
// downstream packages, and a PackageVetx map naming the files its
// direct dependencies wrote. This suite rides that channel with a
// small JSON document of per-package summaries so the flow-sensitive
// passes can reason across package boundaries without a whole-program
// loader:
//
//   - WireIntFuncs: exported functions/methods whose results carry
//     wire-derived integers (decodebounds taint sources).
//   - AllocSizedParams: exported functions with parameters that flow
//     into an allocation size without an intervening bounds check
//     (decodebounds call-site obligations).
//   - LockEdges / LockAcquires: the mutex-acquisition order graph and
//     per-function transitive acquire summaries (lockorder).
//   - AtomicObjs: package-level vars and exported struct fields
//     accessed through sync/atomic functions (atomicguard).
//
// Facts written for a package include its dependencies' facts merged
// in, so a reader only needs its direct PackageVetx files to see the
// transitive closure. Every identifier is a stable string: functions
// as types.Func.FullName, objects as "pkgpath.Type.field" or
// "pkgpath.var".

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
)

// A LockEdge records that To was acquired while From was held, at Pos
// (a file:line string, used verbatim in cycle reports).
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Pos  string `json:"pos"`
}

// PackageFacts is the unit of cross-package exchange. The zero value
// is a valid empty fact set.
type PackageFacts struct {
	WireIntFuncs     []string            `json:"wire_int_funcs,omitempty"`
	AllocSizedParams map[string][]int    `json:"alloc_sized_params,omitempty"`
	LockEdges        []LockEdge          `json:"lock_edges,omitempty"`
	LockAcquires     map[string][]string `json:"lock_acquires,omitempty"`
	AtomicObjs       []string            `json:"atomic_objs,omitempty"`
}

// Merge folds src into f (set semantics; deterministic after
// normalize).
func (f *PackageFacts) Merge(src *PackageFacts) {
	if src == nil {
		return
	}
	f.WireIntFuncs = append(f.WireIntFuncs, src.WireIntFuncs...)
	f.LockEdges = append(f.LockEdges, src.LockEdges...)
	f.AtomicObjs = append(f.AtomicObjs, src.AtomicObjs...)
	for fn, params := range src.AllocSizedParams {
		if f.AllocSizedParams == nil {
			f.AllocSizedParams = make(map[string][]int)
		}
		f.AllocSizedParams[fn] = mergeInts(f.AllocSizedParams[fn], params)
	}
	for fn, locks := range src.LockAcquires {
		if f.LockAcquires == nil {
			f.LockAcquires = make(map[string][]string)
		}
		f.LockAcquires[fn] = mergeStrings(f.LockAcquires[fn], locks)
	}
}

// normalize sorts and dedups every list so the serialized form is
// deterministic — the vetx file participates in the go command's vet
// result cache, so byte-stable output matters.
func (f *PackageFacts) normalize() {
	f.WireIntFuncs = mergeStrings(nil, f.WireIntFuncs)
	f.AtomicObjs = mergeStrings(nil, f.AtomicObjs)
	sort.Slice(f.LockEdges, func(i, j int) bool {
		a, b := f.LockEdges[i], f.LockEdges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pos < b.Pos
	})
	dedup := f.LockEdges[:0]
	for i, e := range f.LockEdges {
		if i == 0 || e != f.LockEdges[i-1] {
			dedup = append(dedup, e)
		}
	}
	f.LockEdges = dedup
	for fn, params := range f.AllocSizedParams {
		f.AllocSizedParams[fn] = mergeInts(nil, params)
	}
	for fn, locks := range f.LockAcquires {
		f.LockAcquires[fn] = mergeStrings(nil, locks)
	}
}

func mergeStrings(dst, src []string) []string {
	seen := make(map[string]bool, len(dst)+len(src))
	var out []string
	for _, s := range append(dst, src...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func mergeInts(dst, src []int) []int {
	seen := make(map[int]bool, len(dst)+len(src))
	var out []int
	for _, n := range append(dst, src...) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// ReadFactsFile loads one vetx file. Missing, empty, or non-JSON
// files (a stock vet tool's vetx, or the empty file older versions of
// this tool wrote) yield an empty fact set, never an error: facts are
// an acceleration, and the analyzers must degrade to package-local
// reasoning without them.
func ReadFactsFile(path string) *PackageFacts {
	f := &PackageFacts{}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return f
	}
	if json.Unmarshal(data, f) != nil {
		return &PackageFacts{}
	}
	return f
}

// WriteFactsFile serializes facts (normalized) to path.
func WriteFactsFile(path string, f *PackageFacts) error {
	f.normalize()
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// factsAnalyzer identifies the fact-computation visit in the Pass it
// runs under; it is not a registered pass and reports nothing.
var factsAnalyzer = &Analyzer{Name: "facts", Doc: "internal cross-package fact computation"}

// ComputeFacts derives this package's exportable facts from its
// syntax and types, merging deps so the output carries the transitive
// closure. Each flow-sensitive analyzer contributes its summary here;
// the functions live next to their analyzers.
func ComputeFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps *PackageFacts) *PackageFacts {
	if deps == nil {
		deps = &PackageFacts{}
	}
	p := &Pass{Analyzer: factsAnalyzer, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Deps: deps}
	out := &PackageFacts{}
	out.Merge(deps)
	decodeboundsFacts(p, out)
	lockorderFacts(p, out)
	atomicguardFacts(p, out)
	out.normalize()
	return out
}
