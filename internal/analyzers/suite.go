package analyzers

// All returns the full distcolorvet suite in reporting order: the four
// repository-invariant passes, then the stdlib reimplementations of the
// stock nilness and shadow vet passes (one -vettool invocation covers
// stock and custom checks).
func All() []*Analyzer {
	return []*Analyzer{
		Detcheck,
		Noallochot,
		Lockguard,
		Ctxfirst,
		Recovercheck,
		Nilness,
		Shadow,
	}
}
