package analyzers

// All returns the full distcolorvet suite in reporting order: the
// structural repository-invariant passes, the flow-sensitive passes
// built on the CFG/dataflow engine (leakcheck, lockorder, decodebounds,
// atomicguard), then the stdlib reimplementations of the stock nilness
// and shadow vet passes (one -vettool invocation covers stock and
// custom checks).
func All() []*Analyzer {
	return []*Analyzer{
		Detcheck,
		Noallochot,
		Lockguard,
		Ctxfirst,
		Recovercheck,
		Leakcheck,
		Lockorder,
		Decodebounds,
		Atomicguard,
		Nilness,
		Shadow,
	}
}
