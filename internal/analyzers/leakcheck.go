package analyzers

// leakcheck: goroutines spawned in library code must be joined,
// context-bounded, or explicitly annotated detached.
//
// A `go` statement in a non-main, non-test package is accepted when
// one of four disciplines provably bounds the goroutine's lifetime:
//
//  1. Annotation: `//distcolor:detached <reason>` on the go statement's
//     line or the line above. The reason is mandatory — a bare
//     annotation is itself a finding. Unlike //distcolor:ignore this is
//     a declaration, not a waiver: it states the goroutine is meant to
//     outlive the spawner and names the mechanism that still bounds it.
//  2. Context-bounded: the goroutine body (a func literal, or the body
//     of a same-package function it calls) references a
//     context.Context value, or one is passed in its arguments — the
//     repository's ctx-first convention makes that the cancel signal.
//  3. WaitGroup-accounted: the body calls Done() on a sync.WaitGroup.
//     If the group is a struct field, some non-test code in the package
//     must call Wait() on the same field (the service.Server s.wg
//     shape: workers join in Close). If it is a local variable, every
//     CFG path from the spawn to function exit must pass a block that
//     calls Wait() on it, or a deferred Wait must exist (the
//     fan-out/fan-in shape of sim.runShards).
//  4. Channel-joined: the body sends on or closes a channel and every
//     path from the spawn to exit receives from that channel.
//
// Anything else leaks on some path and is reported. The check is per
// function context: func literals are independent contexts, exactly as
// in the structural passes.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Leakcheck is the goroutine-lifetime pass. See the file comment.
var Leakcheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "check that goroutines in library code are joined, ctx-bounded, or annotated //distcolor:detached",
	Run:  runLeakcheck,
}

const detachedDirective = "//distcolor:detached"

func runLeakcheck(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	fieldWaits := collectFieldWaits(pass)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		detached := collectDetached(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLeakContext(pass, fd.Body, detached, fieldWaits)
		}
	}
	return nil
}

// detachedNote is one parsed //distcolor:detached comment.
type detachedNote struct {
	line      int
	hasReason bool
	used      bool
	pos       token.Pos
}

func collectDetached(pass *Pass, f *ast.File) []*detachedNote {
	var out []*detachedNote
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, detachedDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, detachedDirective))
			out = append(out, &detachedNote{
				line:      pass.Fset.Position(c.Pos()).Line,
				hasReason: rest != "",
				pos:       c.Pos(),
			})
		}
	}
	return out
}

// collectFieldWaits gathers the field objects on which some non-test
// code of the package calls Wait() — the join side of field-held
// WaitGroups.
func collectFieldWaits(pass *Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Wait" {
				return true
			}
			if obj := waitGroupObj(pass, sel.X); obj != nil {
				out[obj] = true
			}
			return true
		})
	}
	return out
}

// waitGroupObj resolves an access path to the variable it names, if
// that variable is a sync.WaitGroup (or pointer to one).
func waitGroupObj(pass *Pass, e ast.Expr) types.Object {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	case *ast.ParenExpr:
		return waitGroupObj(pass, e.X)
	}
	if obj == nil || !isWaitGroup(obj.Type()) {
		return nil
	}
	return obj
}

func isWaitGroup(t types.Type) bool {
	return isNamedType(t, "sync", "WaitGroup")
}

// isNamedType reports whether t (possibly behind pointers) is the
// named type pkgpath.name.
func isNamedType(t types.Type, pkgpath, name string) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgpath && obj.Name() == name
}

// checkLeakContext analyzes one function body; nested literals recurse
// as fresh contexts.
func checkLeakContext(pass *Pass, body *ast.BlockStmt, detached []*detachedNote, fieldWaits map[types.Object]bool) {
	cfg := NewCFG(body, pass.TypesInfo)
	for _, blk := range cfg.Blocks {
		for _, st := range blk.Stmts {
			gs, ok := st.(*ast.GoStmt)
			if !ok {
				continue
			}
			checkSpawn(pass, cfg, blk, gs, detached, fieldWaits)
		}
	}
	// Literal bodies (including the spawned ones) are their own contexts.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkLeakContext(pass, fl.Body, detached, fieldWaits)
			return false
		}
		return true
	})
}

func checkSpawn(pass *Pass, cfg *CFG, blk *Block, gs *ast.GoStmt, detached []*detachedNote, fieldWaits map[types.Object]bool) {
	line := pass.Fset.Position(gs.Pos()).Line
	for _, d := range detached {
		if d.line == line || d.line == line-1 {
			d.used = true
			if !d.hasReason {
				pass.Reportf(gs.Pos(), "//distcolor:detached requires a reason explaining what bounds this goroutine")
			}
			return
		}
	}

	body, args := spawnBody(pass, gs)
	if ctxBounded(pass, body, args) {
		return
	}
	if wg := doneWaitGroup(pass, body); wg != nil {
		if _, isField := fieldOwner(wg); isField {
			if fieldWaits[wg] {
				return
			}
			pass.Reportf(gs.Pos(), "goroutine accounts to WaitGroup field %s but no non-test code in this package calls %s.Wait()", wg.Name(), wg.Name())
			return
		}
		if localWaitJoins(pass, cfg, blk, wg) {
			return
		}
		pass.Reportf(gs.Pos(), "goroutine accounts to %s but some path from this spawn returns without %s.Wait()", wg.Name(), wg.Name())
		return
	}
	if channelJoins(pass, cfg, blk, body) {
		return
	}
	pass.Reportf(gs.Pos(), "goroutine is not joined, ctx-bounded, or annotated //distcolor:detached")
}

// spawnBody resolves the goroutine's executable body: a func literal's
// block, or the body of a same-package function/method being called.
// Returns nil when the callee is opaque (other package, interface).
func spawnBody(pass *Pass, gs *ast.GoStmt) (*ast.BlockStmt, []ast.Expr) {
	args := gs.Call.Args
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, args
	default:
		var id *ast.Ident
		switch f := fun.(type) {
		case *ast.Ident:
			id = f
		case *ast.SelectorExpr:
			id = f.Sel
		}
		if id == nil {
			return nil, args
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() != pass.Pkg {
			return nil, args
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if pass.TypesInfo.Defs[fd.Name] == fn {
						return fd.Body, args
					}
				}
			}
		}
		return nil, args
	}
}

// ctxBounded reports whether the goroutine sees a context.Context: one
// of its arguments is a context, or its body references a
// context-typed value.
func ctxBounded(pass *Pass, body *ast.BlockStmt, args []ast.Expr) bool {
	isCtx := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		return ok && isNamedType(tv.Type, "context", "Context")
	}
	for _, a := range args {
		if isCtx(a) {
			return true
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && isNamedType(obj.Type(), "context", "Context") {
				found = true
			}
		}
		return !found
	})
	return found
}

// doneWaitGroup returns the WaitGroup variable the goroutine body calls
// Done() on, or nil.
func doneWaitGroup(pass *Pass, body *ast.BlockStmt) types.Object {
	if body == nil {
		return nil
	}
	var wg types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if wg != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if obj := waitGroupObj(pass, sel.X); obj != nil {
			wg = obj
		}
		return true
	})
	return wg
}

// fieldOwner reports whether obj is a struct field.
func fieldOwner(obj types.Object) (types.Object, bool) {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return obj, true
	}
	return nil, false
}

// localWaitJoins reports whether every CFG path from the spawn block to
// Exit passes a Wait() on wg — either a block containing the call, or a
// deferred Wait (which covers all exits).
func localWaitJoins(pass *Pass, cfg *CFG, spawn *Block, wg types.Object) bool {
	for _, d := range cfg.Defers {
		if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
			if waitGroupObj(pass, sel.X) == wg {
				return true
			}
		}
	}
	waits := func(b *Block) bool {
		for _, st := range b.Stmts {
			if stmtCallsOn(pass, st, wg, "Wait") {
				return true
			}
		}
		return false
	}
	if waits(spawn) {
		// The Wait sits in the spawn's own block, after the go statement.
		return true
	}
	return !cfg.CanReachExitAvoiding(spawn, waits)
}

// stmtCallsOn reports whether st contains a call obj.method() (not
// descending into nested func literals).
func stmtCallsOn(pass *Pass, st ast.Stmt, obj types.Object, method string) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		var got types.Object
		switch x := sel.X.(type) {
		case *ast.Ident:
			got = pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			got = pass.TypesInfo.Uses[x.Sel]
		}
		if got == obj {
			found = true
		}
		return true
	})
	return found
}

// channelJoins reports whether the goroutine produces on some channel
// that every path from the spawn to exit consumes from.
func channelJoins(pass *Pass, cfg *CFG, spawn *Block, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	// Channels the goroutine sends on or closes.
	produced := make(map[types.Object]bool)
	note := func(e ast.Expr) {
		var obj types.Object
		switch e := e.(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[e]
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[e.Sel]
		}
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Chan); ok {
			produced[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			note(n.Chan)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				note(n.Args[0])
			}
		}
		return true
	})
	if len(produced) == 0 {
		return false
	}
	receives := func(ch types.Object) func(*Block) bool {
		return func(b *Block) bool {
			for _, st := range b.Stmts {
				if stmtReceivesFrom(pass, st, ch) {
					return true
				}
			}
			return false
		}
	}
	for ch := range produced {
		recv := receives(ch)
		if recv(spawn) || !cfg.CanReachExitAvoiding(spawn, recv) {
			return true
		}
	}
	return false
}

// stmtReceivesFrom reports whether st receives from or ranges over the
// channel object (not descending into nested func literals).
func stmtReceivesFrom(pass *Pass, st ast.Stmt, ch types.Object) bool {
	chanOf := func(e ast.Expr) types.Object {
		switch e := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[e]
		case *ast.SelectorExpr:
			return pass.TypesInfo.Uses[e.Sel]
		}
		return nil
	}
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && chanOf(n.X) == ch {
				found = true
			}
		case *ast.RangeStmt:
			if chanOf(n.X) == ch {
				found = true
			}
		}
		return true
	})
	return found
}
