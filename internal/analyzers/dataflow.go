package analyzers

// A small forward-dataflow toolkit over the CFG: a generic worklist
// fixpoint engine plus the two lattices the flow passes use — may-sets
// (union at joins: lockorder's held-lock tracking, decodebounds'
// taint) and reaching definitions (the classic forward problem, used
// by decodebounds to see which assignments of a size variable reach an
// allocation site). Everything is standard library only; the engine is
// deliberately tiny — a handful of blocks per function, convergence in
// a few sweeps.

import (
	"go/ast"
	"go/types"
)

// Flow describes one forward dataflow problem with block states of
// type S. Transfer must be monotone for the fixpoint to terminate.
type Flow[S any] struct {
	// Entry is the state on entry to the CFG's entry block.
	Entry S
	// Clone deep-copies a state (states are mutated by Transfer).
	Clone func(S) S
	// Merge folds src into dst at a join point and reports whether dst
	// changed.
	Merge func(dst, src S) bool
	// Transfer applies one block's statements to a clone of its IN
	// state and returns the OUT state.
	Transfer func(b *Block, in S) S
}

// Forward runs the problem to fixpoint and returns the IN state of
// every reachable block (indexed by Block.Index; unreachable blocks
// keep the zero S).
func Forward[S any](c *CFG, f Flow[S]) []S {
	in := make([]S, len(c.Blocks))
	have := make([]bool, len(c.Blocks))
	in[c.Entry.Index] = f.Entry
	have[c.Entry.Index] = true

	rpo := c.reversePostorder()
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			if !have[blk.Index] {
				continue
			}
			out := f.Transfer(blk, f.Clone(in[blk.Index]))
			for _, s := range blk.Succs {
				if !have[s.Index] {
					in[s.Index] = f.Clone(out)
					have[s.Index] = true
					changed = true
				} else if f.Merge(in[s.Index], out) {
					changed = true
				}
			}
		}
	}
	return in
}

// set is the may-lattice element: membership accumulates by union.
type set[K comparable] map[K]struct{}

func (s set[K]) add(k K)      { s[k] = struct{}{} }
func (s set[K]) has(k K) bool { _, ok := s[k]; return ok }
func (s set[K]) clone() set[K] {
	out := make(set[K], len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

// union folds src into dst, reporting growth.
func (s set[K]) union(src set[K]) bool {
	grew := false
	for k := range src {
		if !s.has(k) {
			s.add(k)
			grew = true
		}
	}
	return grew
}

// ReachingDefs is the reaching-definitions state: for each variable,
// the set of assignment statements whose value may still be current.
type ReachingDefs map[types.Object]set[ast.Node]

func (r ReachingDefs) clone() ReachingDefs {
	out := make(ReachingDefs, len(r))
	for obj, defs := range r {
		out[obj] = defs.clone()
	}
	return out
}

func (r ReachingDefs) merge(src ReachingDefs) bool {
	grew := false
	for obj, defs := range src {
		dst, ok := r[obj]
		if !ok {
			r[obj] = defs.clone()
			grew = true
			continue
		}
		if dst.union(defs) {
			grew = true
		}
	}
	return grew
}

// gen kills obj's previous definitions and records def as the sole one.
func (r ReachingDefs) gen(obj types.Object, def ast.Node) {
	s := make(set[ast.Node], 1)
	s.add(def)
	r[obj] = s
}

// ReachingDefinitions solves the classic problem over one CFG: the
// result holds, for each reachable block, the definitions live on
// entry. info resolves identifiers to objects; only simple variables
// (Ident targets of assignments, value specs, and range/type-switch
// bindings) are tracked — field and index writes are not definitions
// of a trackable object.
func ReachingDefinitions(c *CFG, info *types.Info) []ReachingDefs {
	return Forward(c, Flow[ReachingDefs]{
		Entry: ReachingDefs{},
		Clone: ReachingDefs.clone,
		Merge: func(dst, src ReachingDefs) bool { return dst.merge(src) },
		Transfer: func(b *Block, in ReachingDefs) ReachingDefs {
			for _, st := range b.Stmts {
				EachDefinition(st, info, func(obj types.Object, def ast.Node) {
					in.gen(obj, def)
				})
			}
			return in
		},
	})
}

// EachDefinition invokes fn for every simple-variable definition the
// statement performs: assignments and short declarations to plain
// identifiers, var specs, inc/dec, and the per-iteration bindings of a
// range statement. Nested function literals are opaque (their bodies
// are separate contexts).
func EachDefinition(st ast.Stmt, info *types.Info, fn func(obj types.Object, def ast.Node)) {
	bind := func(id *ast.Ident, def ast.Node) {
		if id == nil || id.Name == "_" {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			fn(obj, def)
			return
		}
		if obj := info.Uses[id]; obj != nil {
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				fn(obj, def)
			}
		}
	}
	switch st := st.(type) {
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				bind(id, st)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := st.X.(*ast.Ident); ok {
			bind(id, st)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						bind(id, st)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := st.Key.(*ast.Ident); ok {
			bind(id, st)
		}
		if id, ok := st.Value.(*ast.Ident); ok {
			bind(id, st)
		}
	case *ast.TypeSwitchStmt:
		if as, ok := st.Assign.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					bind(id, st)
				}
			}
		}
	}
}
