package analyzers

// noallochot: zero-steady-state-allocation proof for annotated hot
// functions.
//
// The word plane (DESIGN.md §7–§8) and the obs instruments (§9) promise
// zero heap allocations per round / per observation, and the bench gate
// pins allocs/round at 0. Those pins are dynamic: they catch a
// regression only on the workloads the suite happens to run. This pass
// makes the property structural. A function marked with a
//
//	//distcolor:noalloc
//
// directive in its doc comment is rejected if its body contains a
// construct that allocates (or defeats escape analysis so reliably that
// it might as well):
//
//   - make of a map or channel, `new`, map literals, slice literals;
//   - make of a slice without capacity evidence — allowed only inside
//     an `if` guarded by a cap() comparison, i.e. the grow-once cold
//     path of a reused scratch slab;
//   - append without capacity evidence: the base must be a reslice
//     (x[:0], x[:n]) or a variable this function made with explicit
//     capacity or cap-guarded growth;
//   - &composite literals (escape candidates) and map writes;
//   - interface boxing: passing, assigning, returning, sending, or
//     converting a concrete non-pointer-shaped value into an interface;
//   - closures that capture variables, string concatenation,
//     string<->[]byte conversions, and `go` statements.
//
// The pass is intraprocedural by design: an annotated function may call
// helpers, and each helper that must also be allocation-free carries its
// own annotation (the meta-test in noalloc_sync_test.go keeps the
// annotation set aligned with the AllocsPerRun-pinned paths). Constructs
// that the annotated code legitimately needs (e.g. an append into a slab
// whose capacity was proven elsewhere) carry a counted
// //distcolor:ignore suppression naming the evidence.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// noallocDirective marks a function whose body must not allocate in the
// steady state.
const noallocDirective = "//distcolor:noalloc"

// Noallochot is the zero-allocation pass. See the file comment for the
// contract.
var Noallochot = &Analyzer{
	Name: "noallochot",
	Doc:  "reject allocating constructs in functions marked //distcolor:noalloc",
	Run:  runNoallochot,
}

func runNoallochot(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcDirective(fd, noallocDirective) {
				continue
			}
			checkNoalloc(pass, fd)
		}
	}
	return nil
}

func checkNoalloc(pass *Pass, fd *ast.FuncDecl) {
	evidence := capacityEvidence(pass, fd)
	info := pass.TypesInfo

	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in noalloc function %s: spawning a goroutine allocates", fd.Name.Name)

		case *ast.FuncLit:
			for _, capd := range closureCaptures(pass, fd, n) {
				pass.Reportf(n.Pos(), "closure in noalloc function %s captures %s: captured closures are heap-allocated", fd.Name.Name, capd)
			}

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal in noalloc function %s escapes to the heap", fd.Name.Name)
				}
			}

		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				break
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in noalloc function %s allocates", fd.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in noalloc function %s allocates its backing array", fd.Name.Name)
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && isString(tv.Type) {
					pass.Reportf(n.Pos(), "string concatenation in noalloc function %s allocates", fd.Name.Name)
				}
			}

		case *ast.AssignStmt:
			checkAssign(pass, fd, n)

		case *ast.ReturnStmt:
			checkReturn(pass, fd, n, stack)

		case *ast.SendStmt:
			if tv, ok := info.Types[n.Chan]; ok {
				if ch, ok := tv.Type.Underlying().(*types.Chan); ok {
					checkBoxing(pass, fd, ch.Elem(), n.Value, "channel send")
				}
			}

		case *ast.CallExpr:
			checkCall(pass, fd, n, stack, evidence)
		}
		return true
	})
}

// checkCall handles builtin allocators, conversions, and boxing at call
// boundaries.
func checkCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node, evidence map[types.Object]bool) {
	info := pass.TypesInfo

	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				pass.Reportf(call.Pos(), "new in noalloc function %s allocates", fd.Name.Name)
			case "make":
				checkMake(pass, fd, call, stack)
			case "append":
				checkAppend(pass, fd, call, evidence)
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := tv.Type
		src := info.Types[call.Args[0]].Type
		if isInterface(target) {
			checkBoxing(pass, fd, target, call.Args[0], "conversion")
			return
		}
		if convAllocates(target, src) {
			pass.Reportf(call.Pos(), "conversion %s in noalloc function %s copies and allocates", exprString(call.Fun), fd.Name.Name)
		}
		return
	}

	// Ordinary call: box-check each argument against the parameter type.
	sig, ok := typeAsSignature(info, call.Fun)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case sig.Variadic(): // f(xs...): the slice passes through, no boxing
			continue
		default:
			continue
		}
		checkBoxing(pass, fd, pt, arg, "argument")
	}
}

// checkMake allows cap-guarded slice growth (the scratch-slab cold path)
// and channels/maps never.
func checkMake(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		pass.Reportf(call.Pos(), "make(map) in noalloc function %s allocates", fd.Name.Name)
	case *types.Chan:
		pass.Reportf(call.Pos(), "make(chan) in noalloc function %s allocates", fd.Name.Name)
	case *types.Slice:
		if !underCapGuard(stack) {
			pass.Reportf(call.Pos(), "make(slice) in noalloc function %s without a cap() guard: not a grow-once cold path", fd.Name.Name)
		}
	}
}

// checkAppend demands capacity evidence for the append base.
func checkAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, evidence map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	base := call.Args[0]
	if _, ok := base.(*ast.SliceExpr); ok {
		return // append(x[:0], ...) — reuse of an existing backing array
	}
	if obj := baseObject(pass, base); obj != nil && evidence[obj] {
		return // this function made the base with explicit capacity
	}
	pass.Reportf(call.Pos(), "append in noalloc function %s without capacity evidence (reslice the base or make it with explicit capacity here)", fd.Name.Name)
}

// checkAssign flags map writes and boxing assignments.
func checkAssign(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt) {
	info := pass.TypesInfo
	for i, lhs := range as.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if tv, ok := info.Types[ix.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(lhs.Pos(), "map write in noalloc function %s can grow the map", fd.Name.Name)
				}
			}
		}
		if as.Tok == token.DEFINE || i >= len(as.Rhs) {
			continue // new variables take the RHS type: no conversion
		}
		if tv, ok := info.Types[lhs]; ok {
			checkBoxing(pass, fd, tv.Type, as.Rhs[i], "assignment")
		}
	}
}

// checkReturn box-checks results against the innermost function's
// signature.
func checkReturn(pass *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt, stack []ast.Node) {
	sig := enclosingSignature(pass, fd, stack)
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		checkBoxing(pass, fd, sig.Results().At(i).Type(), res, "return")
	}
}

// checkBoxing reports expr if storing it into target boxes a concrete
// non-pointer-shaped value.
func checkBoxing(pass *Pass, fd *ast.FuncDecl, target types.Type, expr ast.Expr, what string) {
	if !isInterface(target) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return
	}
	if !boxes(tv.Type) {
		return
	}
	pass.Reportf(expr.Pos(), "%s boxes %s into %s in noalloc function %s: interface conversion of a non-pointer value allocates",
		what, tv.Type, target, fd.Name.Name)
}

// capacityEvidence records which variables this function built with
// provable capacity: a 3-arg make, or a make under a cap() guard (the
// grow-once pattern keeps capacity monotone).
func capacityEvidence(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if len(call.Args) == 3 || underCapGuard(stack) {
				if obj := baseObject(pass, as.Lhs[i]); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// underCapGuard reports whether the stack passes through an if statement
// whose condition mentions cap() — the shape of "grow only when too
// small".
func underCapGuard(stack []ast.Node) bool {
	for _, anc := range stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "cap" {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// closureCaptures lists the names a FuncLit captures from the enclosing
// function (captures force the closure, and often the captured variable,
// onto the heap).
func closureCaptures(pass *Pass, fd *ast.FuncDecl, fl *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var out []string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		pos := obj.Pos()
		// Captured: declared inside the annotated function (including its
		// parameters) but outside this literal.
		inFunc := pos >= fd.Pos() && pos < fd.End()
		inLit := pos >= fl.Pos() && pos < fl.End()
		if inFunc && !inLit && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

// baseObject resolves the root variable of x, x.f, or x[i] to its
// types.Object (fields resolve to the field variable).
func baseObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if o := pass.TypesInfo.Uses[e]; o != nil {
			return o
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.ParenExpr:
		return baseObject(pass, e.X)
	case *ast.IndexExpr:
		return baseObject(pass, e.X)
	}
	return nil
}

// enclosingSignature finds the signature of the innermost function
// containing the stack tip (the FuncDecl itself or a nested FuncLit).
func enclosingSignature(pass *Pass, fd *ast.FuncDecl, stack []ast.Node) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			if tv, ok := pass.TypesInfo.Types[fl]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					return sig
				}
			}
			return nil
		}
	}
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature)
	}
	return nil
}

// typeAsSignature extracts the called signature of a non-builtin,
// non-conversion call expression.
func typeAsSignature(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	tv, ok := info.Types[fun]
	if !ok || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxes reports whether storing a value of type t in an interface
// allocates: pointer-shaped types (pointers, channels, maps, funcs,
// unsafe.Pointer) ride in the interface word directly, everything else
// is copied to the heap.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UnsafePointer, types.UntypedNil:
			return false
		}
		return true
	}
	return true
}

// convAllocates reports the conversions that copy into a fresh backing
// array: string <-> []byte/[]rune.
func convAllocates(target, src types.Type) bool {
	if isString(target) {
		if _, ok := src.Underlying().(*types.Slice); ok {
			return true
		}
	}
	if _, ok := target.Underlying().(*types.Slice); ok && isString(src) {
		return true
	}
	return false
}
