package analyzers

// Shared AST helpers for the passes: expression rendering (for lock
// names and messages) and a parent-stack walker (for context-sensitive
// checks like "is this make guarded by a cap() test").

import (
	"go/ast"
	"go/token"
)

// exprString renders simple access paths — identifiers and selector
// chains like "s.mu" or "inst.csr" — and returns "?" for anything more
// complex, which deliberately never matches a lock name.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X)
	}
	return "?"
}

// walkStack walks the tree rooted at n, invoking fn with each node and
// the stack of its ancestors (outermost first, not including n). If fn
// returns false the node's children are skipped.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		stack = append(stack, n)
		if !ok {
			// Still push/pop symmetrically: Inspect will send the nil pop
			// only if we return true, so pop here instead.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// receiverName returns the name of a method's receiver, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// isCallTo reports whether e is a call of a method named one of names on
// some receiver expression, returning the rendered receiver path.
func isCallTo(e ast.Expr, names ...string) (recv string, ok bool) {
	call, okc := e.(*ast.CallExpr)
	if !okc {
		return "", false
	}
	sel, oks := call.Fun.(*ast.SelectorExpr)
	if !oks {
		return "", false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return exprString(sel.X), true
		}
	}
	return "", false
}

// identObjPos returns the declaration position of the object an
// identifier resolves to, or token.NoPos.
func identObjPos(p *Pass, id *ast.Ident) token.Pos {
	if obj := p.TypesInfo.Uses[id]; obj != nil {
		return obj.Pos()
	}
	if obj := p.TypesInfo.Defs[id]; obj != nil {
		return obj.Pos()
	}
	return token.NoPos
}
