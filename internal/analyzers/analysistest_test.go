package analyzers

// A miniature analysistest: fixtures live under testdata/src/<dir> and
// carry `// want "regex"` expectations on the lines where an analyzer
// must report. checkFixture fails symmetrically — an unmatched want and
// an unexpected diagnostic are both problems — so every fixture fails
// when its analyzer is disabled (TestFixtureFailsWhenAnalyzerDisabled
// proves this for each pass; it is the acceptance check that the
// expectations are live, not decorative).

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

type wantExp struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkFixture typechecks testdata/src/<dir> (source importer: the
// fixtures import only the standard library), runs the analyzers through
// the same RunAnalyzers pipeline the vettool uses — suppressions and
// stale-suppression findings included — and diffs the unsuppressed
// diagnostics against the fixture's want expectations.
func checkFixture(dir string, as []*Analyzer) (problems []string, diags []Diagnostic, err error) {
	root := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(root, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, perr
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("repro/internal/analyzers/testdata/"+dir, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typechecking fixture %s: %v", dir, err)
	}
	diags, err = RunAnalyzers(as, fset, files, pkg, info, nil)
	if err != nil {
		return nil, nil, err
	}

	var wants []*wantExp
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, rerr := regexp.Compile(m[1])
					if rerr != nil {
						return nil, nil, fmt.Errorf("bad want regexp %q: %v", m[1], rerr)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, &wantExp{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != filepath.Base(pos.Filename) || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s:%d: %s: %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("no diagnostic matched want %q at %s:%d", w.re.String(), w.file, w.line))
		}
	}
	sort.Strings(problems)
	return problems, diags, nil
}

// fixtures maps each fixture directory to its analyzer and the number of
// suppressed findings the fixture deliberately contains (each fixture
// exercises the suppression grammar at least once).
var fixtures = []struct {
	dir        string
	analyzer   *Analyzer
	suppressed int
}{
	{"detcheckfix", Detcheck, 1},
	{"noallocfix", Noallochot, 1},
	{"lockguardfix", Lockguard, 1},
	{"ctxfirstfix", Ctxfirst, 1},
	{"recovercheckfix", Recovercheck, 1},
	{"leakcheckfix", Leakcheck, 1},
	{"lockorderfix", Lockorder, 1},
	{"decodeboundsfix", Decodebounds, 1},
	{"atomicguardfix", Atomicguard, 1},
	{"nilnessfix", Nilness, 1},
	{"shadowfix", Shadow, 1},
}

func TestFixtures(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			problems, diags, err := checkFixture(fx.dir, []*Analyzer{fx.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
			sup := 0
			for _, d := range diags {
				if d.Suppressed {
					if d.SuppressReason == "" {
						t.Errorf("suppressed finding without a reason: %s", d.Message)
					}
					sup++
				}
			}
			if sup != fx.suppressed {
				t.Errorf("fixture %s: %d suppressed findings, want %d", fx.dir, sup, fx.suppressed)
			}
		})
	}
}

// TestFixtureFailsWhenAnalyzerDisabled runs every fixture with its
// analyzer removed from the suite: the wants must go unmatched. A fixture
// that still passes would mean its expectations assert nothing.
func TestFixtureFailsWhenAnalyzerDisabled(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			problems, _, err := checkFixture(fx.dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) == 0 {
				t.Errorf("fixture %s reports no problems with %s disabled; its want expectations are dead", fx.dir, fx.analyzer.Name)
			}
		})
	}
}
