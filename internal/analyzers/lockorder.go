package analyzers

// lockorder: the global mutex-acquisition order must be acyclic.
//
// Every sync.Mutex/RWMutex acquisition site contributes edges to a
// package-spanning order graph: taking lock B while (may-)holding lock
// A adds the edge A → B. Holding is tracked flow-sensitively over the
// CFG (may-analysis, union at joins: an edge on any path counts), and
// interprocedurally through per-function acquire summaries — calling a
// function known to take B while holding A also adds A → B, across
// package boundaries via the vetx fact channel (PackageFacts.LockEdges
// and .LockAcquires).
//
// Lock identity is structural and global: a mutex field is named
// "pkgpath.Type.field" (resolved through the receiver expression's
// type), a package-level mutex "pkgpath.var". Function-local mutexes
// have no global order and are ignored. A deferred Unlock keeps the
// lock held to function exit, exactly as lockguard models it.
//
// A cycle in the merged graph is a potential deadlock; the pass
// reports every local edge participating in one, rendering the cycle
// path. The expected shape for this repository (DESIGN.md §10):
// service.Server.mu precedes job.mu and store.Store.mu, never the
// reverse.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockorder is the lock-ordering pass. See the file comment.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "build the global mutex-acquisition order graph and fail on cycles or inconsistent orderings",
	Run:  runLockorder,
}

// lockAcq is one acquisition event: lock taken at pos.
type lockAcq struct {
	lock string
	pos  token.Pos
}

// lockEdgeLocal is one order edge observed in this package.
type lockEdgeLocal struct {
	from, to string
	pos      token.Pos
}

func runLockorder(pass *Pass) error {
	edges, _ := lockorderScan(pass)

	// Merged adjacency: local edges plus everything the dependencies
	// exported.
	adj := make(map[string]map[string]string) // from → to → pos string
	addEdge := func(from, to, pos string) {
		if adj[from] == nil {
			adj[from] = make(map[string]string)
		}
		if _, ok := adj[from][to]; !ok {
			adj[from][to] = pos
		}
	}
	for _, e := range pass.Deps.LockEdges {
		addEdge(e.From, e.To, e.Pos)
	}
	for _, e := range edges {
		addEdge(e.from, e.to, pass.Fset.Position(e.pos).String())
	}

	// A local edge F→T is part of a cycle iff F is reachable from T.
	reported := make(map[string]bool)
	for _, e := range edges {
		if e.from == e.to {
			pass.Reportf(e.pos, "lock order cycle: %s acquired while already held", e.from)
			continue
		}
		path := lockPath(adj, e.to, e.from)
		if path == nil {
			continue
		}
		key := e.from + "→" + e.to
		if reported[key] {
			continue
		}
		reported[key] = true
		pass.Reportf(e.pos, "lock order cycle: %s taken while holding %s, but elsewhere %s", e.to, e.from, strings.Join(path, ", then "))
	}
	return nil
}

// lockorderFacts contributes this package's edges and per-function
// acquire summaries to the exported facts.
func lockorderFacts(pass *Pass, out *PackageFacts) {
	edges, summaries := lockorderScan(pass)
	for _, e := range edges {
		out.LockEdges = append(out.LockEdges, LockEdge{
			From: e.from, To: e.to, Pos: pass.Fset.Position(e.pos).String(),
		})
	}
	for fn, locks := range summaries {
		if len(locks) == 0 {
			continue
		}
		if out.LockAcquires == nil {
			out.LockAcquires = make(map[string][]string)
		}
		out.LockAcquires[fn] = mergeStrings(out.LockAcquires[fn], locks)
	}
}

// lockPath returns the lock names along a path from → … → to in adj
// (rendered with acquisition positions), or nil if unreachable.
func lockPath(adj map[string]map[string]string, from, to string) []string {
	type hop struct {
		lock string
		prev *hop
		via  string // pos of the edge that reached this lock
	}
	seen := map[string]bool{from: true}
	queue := []*hop{{lock: from}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if h.lock == to {
			var parts []string
			for ; h != nil; h = h.prev {
				if h.via == "" {
					parts = append(parts, h.lock)
				} else {
					parts = append(parts, fmt.Sprintf("%s (at %s)", h.lock, h.via))
				}
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return parts
		}
		for next, pos := range adj[h.lock] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, &hop{lock: next, prev: h, via: pos})
			}
		}
	}
	return nil
}

// lockorderScan runs the may-hold analysis over every function context
// of the package, returning the observed order edges and the
// per-function transitive acquire summaries (keyed by FullName).
func lockorderScan(pass *Pass) ([]lockEdgeLocal, map[string][]string) {
	// Round 1: direct acquisitions per function, and the same-package
	// call graph.
	type fnInfo struct {
		fn      *types.Func
		body    *ast.BlockStmt
		direct  map[string]bool
		callees map[*types.Func]bool
	}
	var fns []*fnInfo
	byFunc := make(map[*types.Func]*fnInfo)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{fn: fn, body: fd.Body, direct: map[string]bool{}, callees: map[*types.Func]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if acq := lockAcquire(pass, call, "Lock", "RLock"); acq != "" {
					fi.direct[acq] = true
				}
				if callee := calleeFunc(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
					fi.callees[callee] = true
				}
				return true
			})
			fns = append(fns, fi)
			byFunc[fn] = fi
		}
	}

	// Fixpoint: transitive acquire summaries, seeded with dependency
	// facts for cross-package callees.
	summaries := make(map[string][]string, len(fns))
	acquire := func(fn *types.Func) []string {
		if fi := byFunc[fn]; fi != nil {
			return summaries[fn.FullName()]
		}
		return pass.Deps.LockAcquires[fn.FullName()]
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			set := map[string]bool{}
			for l := range fi.direct {
				set[l] = true
			}
			for callee := range fi.callees {
				for _, l := range acquire(callee) {
					set[l] = true
				}
			}
			var list []string
			for l := range set {
				list = append(list, l)
			}
			list = mergeStrings(nil, list)
			key := fi.fn.FullName()
			if len(list) != len(summaries[key]) {
				summaries[key] = list
				changed = true
			}
		}
	}

	// Round 2: flow-sensitive may-hold per context, emitting edges.
	var edges []lockEdgeLocal
	seen := make(map[string]bool)
	emit := func(from, to string, pos token.Pos) {
		key := fmt.Sprintf("%s→%s@%d", from, to, pos)
		if seen[key] {
			return
		}
		seen[key] = true
		edges = append(edges, lockEdgeLocal{from: from, to: to, pos: pos})
	}
	for _, fi := range fns {
		lockorderFlow(pass, fi.body, acquire, emit)
		ast.Inspect(fi.body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				lockorderFlow(pass, fl.Body, acquire, emit)
				return false
			}
			return true
		})
	}
	return edges, summaries
}

// lockorderFlow runs the may-hold dataflow over one function context.
func lockorderFlow(pass *Pass, body *ast.BlockStmt, acquire func(*types.Func) []string, emit func(from, to string, pos token.Pos)) {
	cfg := NewCFG(body, pass.TypesInfo)
	applyNode := func(st ast.Stmt, root ast.Node, held set[string], record bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // fresh context, analyzed separately
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if acq := lockAcquire(pass, call, "Lock", "RLock"); acq != "" {
				if record {
					for h := range held {
						// h == acq yields a self-edge: a double acquire.
						emit(h, acq, call.Pos())
					}
				}
				held.add(acq)
				return true
			}
			if rel := lockAcquire(pass, call, "Unlock", "RUnlock"); rel != "" {
				if !deferredCall(st, call) {
					delete(held, rel)
				}
				return true
			}
			if callee := calleeFunc(pass, call); callee != nil {
				for _, l := range acquire(callee) {
					if record {
						for h := range held {
							emit(h, l, call.Pos())
						}
					}
				}
			}
			return true
		})
	}
	apply := func(st ast.Stmt, held set[string], record bool) {
		for _, root := range BlockLocalNodes(st) {
			applyNode(st, root, held, record)
		}
	}
	in := Forward(cfg, Flow[set[string]]{
		Entry: set[string]{},
		Clone: set[string].clone,
		Merge: func(dst, src set[string]) bool { return dst.union(src) },
		Transfer: func(b *Block, s set[string]) set[string] {
			for _, st := range b.Stmts {
				apply(st, s, false)
			}
			return s
		},
	})
	// Second deterministic sweep over the converged states to record
	// edges exactly once per site.
	for _, b := range cfg.Blocks {
		if in[b.Index] == nil && b != cfg.Entry {
			continue // unreachable
		}
		s := in[b.Index]
		if s == nil {
			s = set[string]{}
		}
		s = s.clone()
		for _, st := range b.Stmts {
			apply(st, s, true)
		}
	}
}

// deferredCall reports whether call is the direct call of a defer
// statement (a deferred Unlock holds the lock to exit).
func deferredCall(st ast.Stmt, call *ast.CallExpr) bool {
	d, ok := st.(*ast.DeferStmt)
	return ok && d.Call == call
}

// lockAcquire resolves a call to one of the named sync.Mutex/RWMutex
// methods into the global lock identity, or "" if it is not such a
// call or the mutex is function-local.
func lockAcquire(pass *Pass, call *ast.CallExpr, names ...string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	if !isNamedType(recv.Type(), "sync", "Mutex") && !isNamedType(recv.Type(), "sync", "RWMutex") {
		return ""
	}
	return lockIdentity(pass, sel.X)
}

// lockIdentity names the mutex behind an access path: a field as
// "pkgpath.Type.field" via the owner expression's type, a package-level
// var as "pkgpath.var", a local as "" (no global order).
func lockIdentity(pass *Pass, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return ""
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
		return "" // local mutex
	case *ast.SelectorExpr:
		// x.mu — resolve the owner x's named type.
		tv, ok := pass.TypesInfo.Types[e.X]
		if !ok {
			// Package-qualified var: pkg.Mu.
			if id, ok2 := e.X.(*ast.Ident); ok2 {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					if obj := pass.TypesInfo.Uses[e.Sel]; obj != nil && obj.Pkg() != nil {
						return obj.Pkg().Path() + "." + obj.Name()
					}
				}
			}
			return ""
		}
		t := tv.Type
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.ParenExpr:
		return lockIdentity(pass, e.X)
	}
	return ""
}

// calleeFunc resolves a call's static callee, or nil (builtins,
// interface methods, function values).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	}
	if id == nil {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
