// Package connector implements the paper's central device: structures that
// "connect vertices or edges in a certain way that reduces clique size"
// (§1.3). Three kinds are provided, matching Figures 1–3:
//
//   - Clique connectors (§2, Figure 1): every identified clique partitions
//     its vertices into groups of t; the connector keeps only within-group
//     edges, so its maximum degree drops to D·(t−1) (Lemma 2.1).
//   - Edge connectors (§4, Figure 2): every vertex splits into ⌈deg/t⌉
//     virtual vertices, each owning at most t incident edges; the connector
//     has the same edge set but maximum degree t.
//   - Orientation connectors (§5, Figure 3) and their bipartite variant
//     (Theorem 5.4): given an acyclic orientation, virtual vertices split
//     in-edges and out-edges into bounded groups, preserving acyclicity
//     while capping both the degree and the out-degree (hence arboricity).
//
// Distributed-cost model: each connector is constructed with O(1) rounds of
// communication (cliques have diameter 1, so a master — the highest-ID
// clique member — can collect and announce a partition in 2 rounds; virtual
// vertices are defined locally and announced to neighbors in 1 round). Each
// construction function reports this cost. Virtual vertices are simulated by
// their owner, and every connector edge is carried by a base edge (or is
// internal to one owner), so one simulated round on a connector costs one
// round on the base network; see DESIGN.md §3's accounting convention.
package connector

import (
	"fmt"
	"sort"

	"repro/internal/cliques"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/util"
)

// CliqueConstructRounds is the communication cost of building a clique
// connector: the master collects clique membership and announces groups.
const CliqueConstructRounds = 2

// VirtualConstructRounds is the communication cost of building an edge or
// orientation connector: each vertex announces, per incident edge, the
// virtual vertex it assigned that edge to.
const VirtualConstructRounds = 1

// CliqueConnector is the §2 structure: a spanning subgraph of G whose edges
// connect vertices in the same group of the same clique.
type CliqueConnector struct {
	// Sub embeds the connector as a spanning subgraph of the original graph.
	Sub *graph.Sub
	// Groups[q] lists the groups of clique q, each a sorted vertex list of
	// size ≤ t (the last group of a clique may be smaller).
	Groups [][][]int32
	// T is the group-size parameter.
	T int
	// Stats is the construction cost.
	Stats sim.Stats
}

// Clique builds the clique connector of g for the given cover with group
// parameter t ≥ 2. Group assignment is deterministic: each clique master
// sorts the members by vertex index and cuts consecutive runs of t
// (matching the paper's "each clique Q partitions its vertex set into
// subsets of size t each").
func Clique(g *graph.Graph, cover *cliques.Cover, t int) (*CliqueConnector, error) {
	if t < 2 {
		return nil, fmt.Errorf("connector: clique parameter t=%d < 2", t)
	}
	groups := make([][][]int32, len(cover.Cliques))
	// keep is indexed by edge identifier (resolved with the O(log deg)
	// EdgeID lookup as each within-group pair is generated) — one flat
	// bitmap instead of the packed-endpoint hash map this used to build per
	// recursion level.
	keep := make([]bool, g.M())
	for q, cl := range cover.Cliques {
		// Cover cliques are stored sorted; cut into runs of t.
		for lo := 0; lo < len(cl); lo += t {
			hi := lo + t
			if hi > len(cl) {
				hi = len(cl)
			}
			grp := cl[lo:hi:hi]
			groups[q] = append(groups[q], grp)
			for i := 0; i < len(grp); i++ {
				for j := i + 1; j < len(grp); j++ {
					if e, ok := g.EdgeID(int(grp[i]), int(grp[j])); ok {
						keep[e] = true
					}
				}
			}
		}
	}
	sub, err := graph.SpanningSubgraph(g, func(e int) bool { return keep[e] })
	if err != nil {
		return nil, fmt.Errorf("connector: clique: %w", err)
	}
	return &CliqueConnector{
		Sub:    sub,
		Groups: groups,
		T:      t,
		Stats:  sim.Stats{Rounds: CliqueConstructRounds, Messages: 2 * int64(g.M())},
	}, nil
}

// MaxDegreeBound returns the Lemma 2.1 bound D·(t−1) for a cover of
// diversity d.
func (c *CliqueConnector) MaxDegreeBound(d int) int { return d * (c.T - 1) }

// VirtualGraph is a graph on virtual vertices, each owned by an original
// vertex, whose edges correspond 1:1 to (a subset of) the original edges.
type VirtualGraph struct {
	G *graph.Graph
	// Owner maps each virtual vertex to the original vertex simulating it.
	Owner []int32
	// Index is the per-owner ordinal of each virtual vertex.
	Index []int32
	// EOrig maps each connector edge to the original edge identifier.
	EOrig []int32
	// Stats is the construction cost.
	Stats sim.Stats
}

// IDs derives distinct identifiers for the virtual vertices from the owner
// identifiers: id(virtual) = ownerID · stride + index. Callers supply the
// owner IDs of the base topology (nil for the 0..n−1 default).
func (vg *VirtualGraph) IDs(ownerIDs []int64, stride int64) []int64 {
	ids := make([]int64, vg.G.N())
	for v := range ids {
		owner := int64(vg.Owner[v])
		if ownerIDs != nil {
			owner = ownerIDs[vg.Owner[v]]
		}
		ids[v] = owner*stride + int64(vg.Index[v])
	}
	return ids
}

// Edge builds the §4 edge connector with group parameter t ≥ 1: vertex v
// becomes ⌈deg(v)/t⌉ virtual vertices, its incident edges assigned to them
// in runs of t following port order; edge {u,v} joins u's and v's virtual
// vertices owning it. The connector's maximum degree is at most t.
func Edge(g *graph.Graph, t int) (*VirtualGraph, error) {
	if t < 1 {
		return nil, fmt.Errorf("connector: edge parameter t=%d < 1", t)
	}
	n := g.N()
	// First virtual index of each vertex.
	base := make([]int32, n+1)
	for v := 0; v < n; v++ {
		base[v+1] = base[v] + int32(util.CeilDiv(g.Degree(v), t))
	}
	nv := int(base[n])
	owner := make([]int32, nv)
	index := make([]int32, nv)
	for v := 0; v < n; v++ {
		for i := base[v]; i < base[v+1]; i++ {
			owner[i] = int32(v)
			index[i] = i - base[v]
		}
	}
	// Virtual endpoint of edge e at endpoint v: base[v] + port(v,e)/t.
	b := graph.NewBuilder(nv)
	b.Grow(g.M())
	eorig := make([]int32, 0, g.M())
	virtAt := func(v int, port int) int { return int(base[v]) + port/t }
	for v := 0; v < n; v++ {
		for p, a := range g.Adj(v) {
			if int(a.To) < v {
				continue // add each edge once from its lower endpoint
			}
			// Find the port of this edge at the other endpoint.
			b.AddEdge(virtAt(v, p), virtAt(int(a.To), portOf(g, int(a.To), a.Edge)))
			eorig = append(eorig, a.Edge)
		}
	}
	cg, perm, err := buildOrdered(b)
	if err != nil {
		return nil, fmt.Errorf("connector: edge: %w", err)
	}
	return &VirtualGraph{
		G:     cg,
		Owner: owner,
		Index: index,
		EOrig: applyPerm(eorig, perm),
		Stats: sim.Stats{Rounds: VirtualConstructRounds, Messages: 2 * int64(g.M())},
	}, nil
}

// portOf returns the port index of edge e at vertex v.
func portOf(g *graph.Graph, v int, e int32) int {
	adj := g.Adj(v)
	i := sort.Search(len(adj), func(i int) bool { return adj[i].To >= int32(g.Other(int(e), v)) })
	for ; i < len(adj); i++ {
		if adj[i].Edge == e {
			return i
		}
	}
	panic(fmt.Sprintf("connector: edge %d not incident on vertex %d", e, v))
}

// buildOrdered mirrors graph.SpanningSubgraph's trick: build the graph and
// recover the mapping from insertion order to final edge identifiers.
func buildOrdered(b *graph.Builder) (*graph.Graph, []int32, error) {
	return graph.BuildWithEdgeOrder(b)
}

func applyPerm(eorig []int32, perm []int32) []int32 {
	out := make([]int32, len(eorig))
	for ins, orig := range eorig {
		out[perm[ins]] = orig
	}
	return out
}
