package connector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cliques"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/util"
	"repro/internal/verify"
)

// lineCover builds a line graph with its canonical diversity-2 cover.
func lineCover(t *testing.T, seed int64, n int, p float64) (*graph.Graph, *cliques.Cover) {
	t.Helper()
	g := gen.GNP(n, p, seed)
	lg := graph.LineGraph(g)
	cov, err := cliques.FromLineGraph(lg)
	if err != nil {
		t.Fatal(err)
	}
	return lg.L, cov
}

func TestCliqueConnectorDegreeBound(t *testing.T) {
	lg, cov := lineCover(t, 3, 24, 0.3)
	d := cov.Diversity()
	for _, tt := range []int{2, 3, 5} {
		cc, err := Clique(lg, cov, tt)
		if err != nil {
			t.Fatal(err)
		}
		// Lemma 2.1: Δ(G') ≤ D(t−1).
		if got, want := cc.Sub.G.MaxDegree(), cc.MaxDegreeBound(d); got > want {
			t.Fatalf("t=%d: connector degree %d exceeds D(t-1)=%d", tt, got, want)
		}
		// Every connector edge is an original edge within one group.
		for e := 0; e < cc.Sub.G.M(); e++ {
			u, v := cc.Sub.G.Endpoints(e)
			if !lg.HasEdge(u, v) {
				t.Fatal("connector edge not in original graph")
			}
		}
		// Groups partition each clique and respect size t.
		for q, groups := range cc.Groups {
			total := 0
			for _, grp := range groups {
				if len(grp) > tt {
					t.Fatalf("group larger than t=%d", tt)
				}
				total += len(grp)
			}
			if total != len(cov.Cliques[q]) {
				t.Fatalf("groups of clique %d do not partition it", q)
			}
		}
	}
}

func TestCliqueConnectorGroupEdgesPresent(t *testing.T) {
	lg, cov := lineCover(t, 9, 18, 0.35)
	cc, err := Clique(lg, cov, 3)
	if err != nil {
		t.Fatal(err)
	}
	// All within-group pairs must be connector edges.
	for _, groups := range cc.Groups {
		for _, grp := range groups {
			for i := 0; i < len(grp); i++ {
				for j := i + 1; j < len(grp); j++ {
					if !cc.Sub.G.HasEdge(int(grp[i]), int(grp[j])) {
						t.Fatal("within-group edge missing from connector")
					}
				}
			}
		}
	}
}

func TestCliqueConnectorRejectsSmallT(t *testing.T) {
	lg, cov := lineCover(t, 1, 10, 0.3)
	if _, err := Clique(lg, cov, 1); err == nil {
		t.Fatal("expected error for t<2")
	}
}

func TestEdgeConnectorDegreeBound(t *testing.T) {
	g := gen.GNP(40, 0.25, 5)
	for _, tt := range []int{1, 2, 3, 7} {
		vg, err := Edge(g, tt)
		if err != nil {
			t.Fatal(err)
		}
		if vg.G.MaxDegree() > tt {
			t.Fatalf("t=%d: connector degree %d exceeds t", tt, vg.G.MaxDegree())
		}
		if vg.G.M() != g.M() {
			t.Fatalf("edge connector must preserve edge count: %d vs %d", vg.G.M(), g.M())
		}
		// Edge correspondence: connector edge endpoints' owners are the
		// original endpoints.
		for e := 0; e < vg.G.M(); e++ {
			cu, cv := vg.G.Endpoints(e)
			ou, ov := int(vg.Owner[cu]), int(vg.Owner[cv])
			wu, wv := g.Endpoints(int(vg.EOrig[e]))
			if !(ou == wu && ov == wv) && !(ou == wv && ov == wu) {
				t.Fatalf("edge %d owners (%d,%d) do not match original (%d,%d)", e, ou, ov, wu, wv)
			}
		}
		// Virtual count per owner: ⌈deg/t⌉.
		cnt := map[int32]int{}
		for _, o := range vg.Owner {
			cnt[o]++
		}
		for v := 0; v < g.N(); v++ {
			want := util.CeilDiv(g.Degree(v), tt)
			if want == 0 {
				continue
			}
			if cnt[int32(v)] != want {
				t.Fatalf("vertex %d has %d virtuals, want %d", v, cnt[int32(v)], want)
			}
		}
	}
}

func TestEdgeConnectorIDs(t *testing.T) {
	g := gen.GNP(20, 0.3, 8)
	vg, err := Edge(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := vg.IDs(nil, 64)
	seen := map[int64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate virtual ID")
		}
		seen[id] = true
	}
}

func TestEdgeConnectorQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNP(10+rng.Intn(30), 0.2, seed)
		tt := 1 + rng.Intn(4)
		vg, err := Edge(g, tt)
		if err != nil {
			return false
		}
		return vg.G.MaxDegree() <= tt && vg.G.M() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOrientationConnector(t *testing.T) {
	g, err := gen.ForestUnionHub(200, 3, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	order, d := graph.DegeneracyOrder(g)
	rank := make([]int, g.N())
	for i, v := range order {
		rank[v] = i
	}
	o := graph.OrientByOrder(g, rank)
	delta := g.MaxDegree()
	k := util.Max(1, util.ISqrt(delta))
	inGroup := util.CeilDiv(delta, k)
	outGroup := util.Max(1, util.ISqrt(d))
	vg, err := Orientation(o, inGroup, outGroup)
	if err != nil {
		t.Fatal(err)
	}
	// Degree bound: ≤ inGroup + outGroup.
	if vg.G.MaxDegree() > inGroup+outGroup {
		t.Fatalf("connector degree %d exceeds %d", vg.G.MaxDegree(), inGroup+outGroup)
	}
	// Orientation inherited: acyclic with out-degree ≤ outGroup.
	if err := verify.AcyclicOrientation(vg.Orient, outGroup); err != nil {
		t.Fatal(err)
	}
	if vg.G.M() != g.M() {
		t.Fatal("edge count changed")
	}
}

func TestBipartiteOrientationConnector(t *testing.T) {
	g, err := gen.ForestUnionHub(150, 2, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	order, _ := graph.DegeneracyOrder(g)
	rank := make([]int, g.N())
	for i, v := range order {
		rank[v] = i
	}
	o := graph.OrientByOrder(g, rank)
	inGroup, outGroup := 5, 3
	vg, err := BipartiteOrientation(o, inGroup, outGroup)
	if err != nil {
		t.Fatal(err)
	}
	if vg.InSide == nil {
		t.Fatal("bipartite connector must mark sides")
	}
	// Bipartite: every edge joins an out-virtual (tail) to an in-virtual
	// (head); side degree bounds hold.
	for e := 0; e < vg.G.M(); e++ {
		u, v := vg.G.Endpoints(e)
		if vg.InSide[u] == vg.InSide[v] {
			t.Fatal("connector edge within one side")
		}
	}
	for v := 0; v < vg.G.N(); v++ {
		if vg.InSide[v] && vg.G.Degree(v) > inGroup {
			t.Fatalf("in-virtual degree %d exceeds %d", vg.G.Degree(v), inGroup)
		}
		if !vg.InSide[v] && vg.G.Degree(v) > outGroup {
			t.Fatalf("out-virtual degree %d exceeds %d", vg.G.Degree(v), outGroup)
		}
	}
	if err := verify.AcyclicOrientation(vg.Orient, outGroup); err != nil {
		t.Fatal(err)
	}
}

func TestOrientationConnectorRejectsBadGroups(t *testing.T) {
	g := graph.Path(3)
	o := graph.OrientByOrder(g, []int{0, 1, 2})
	if _, err := Orientation(o, 0, 1); err == nil {
		t.Fatal("expected error")
	}
	if _, err := BipartiteOrientation(o, 1, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestFigure1Structure(t *testing.T) {
	// Figure 1: two cliques Q,R sharing a vertex v, connector with t=4.
	// Build two K7s sharing vertex 0 and check the connector splits each
	// clique into groups of ≤ 4 with degree ≤ D(t−1) = 2·3 = 6.
	b := graph.NewBuilder(13)
	q := []int32{0, 1, 2, 3, 4, 5, 6}
	r := []int32{0, 7, 8, 9, 10, 11, 12}
	for _, cl := range [][]int32{q, r} {
		for i := 0; i < len(cl); i++ {
			for j := i + 1; j < len(cl); j++ {
				b.AddEdge(int(cl[i]), int(cl[j]))
			}
		}
	}
	g := b.MustBuild()
	cov, err := cliques.NewCover(g, [][]int32{q, r})
	if err != nil {
		t.Fatal(err)
	}
	if cov.Diversity() != 2 {
		t.Fatalf("shared vertex should have diversity 2, got %d", cov.Diversity())
	}
	cc, err := Clique(g, cov, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Sub.G.MaxDegree() > 2*3 {
		t.Fatalf("Figure 1 connector degree %d > 6", cc.Sub.G.MaxDegree())
	}
	// Each clique of size 7 splits into ⌈7/4⌉ = 2 groups.
	for _, groups := range cc.Groups {
		if len(groups) != 2 {
			t.Fatalf("expected 2 groups, got %d", len(groups))
		}
	}
}

func TestFigure2Structure(t *testing.T) {
	// Figure 2: edge connector with t=3 on a vertex of degree 7: it splits
	// into ⌈7/3⌉ = 3 virtual vertices of degrees 3,3,1.
	g := graph.Star(8)
	vg, err := Edge(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	var centerVirts []int
	for v := 0; v < vg.G.N(); v++ {
		if vg.Owner[v] == 0 {
			centerVirts = append(centerVirts, vg.G.Degree(v))
		}
	}
	if len(centerVirts) != 3 {
		t.Fatalf("center should have 3 virtuals, got %d", len(centerVirts))
	}
	sum := 0
	for _, d := range centerVirts {
		if d > 3 {
			t.Fatalf("virtual degree %d exceeds t=3", d)
		}
		sum += d
	}
	if sum != 7 {
		t.Fatalf("virtual degrees sum to %d, want 7", sum)
	}
}

func TestFigure3Structure(t *testing.T) {
	// Figure 3: orientation connector on a single vertex with 9 in-edges
	// and 4 out-edges, √ grouping: in-groups of 3 onto 3 virtuals,
	// out-groups of 2 onto 2 virtuals (shared set).
	b := graph.NewBuilder(14)
	for i := 1; i <= 9; i++ {
		b.AddEdge(0, i) // will orient into 0
	}
	for i := 10; i <= 13; i++ {
		b.AddEdge(0, i) // will orient out of 0
	}
	g := b.MustBuild()
	heads := make([]int32, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		_ = u
		if v <= 9 {
			heads[e] = 0 // in-edge of vertex 0
		} else {
			heads[e] = int32(v)
		}
	}
	o, err := graph.NewOrientation(g, heads)
	if err != nil {
		t.Fatal(err)
	}
	vg, err := Orientation(o, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0's virtuals: max(⌈9/3⌉, ⌈4/2⌉) = 3.
	virts := 0
	for v := 0; v < vg.G.N(); v++ {
		if vg.Owner[v] == 0 {
			virts++
			if vg.G.Degree(v) > 3+2 {
				t.Fatalf("virtual degree %d exceeds in+out group bound", vg.G.Degree(v))
			}
		}
	}
	if virts != 3 {
		t.Fatalf("vertex 0 should have 3 virtuals, got %d", virts)
	}
	if err := verify.AcyclicOrientation(vg.Orient, 2); err != nil {
		t.Fatal(err)
	}
}
