package connector

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/util"
)

// OrientedVirtualGraph is a VirtualGraph whose edges carry the inherited
// orientation from the base graph's acyclic orientation.
type OrientedVirtualGraph struct {
	VirtualGraph
	// Orient is the inherited orientation of the connector graph: edge
	// u→v of the base becomes tailVirtual(u)→headVirtual(v). It is acyclic
	// whenever the base orientation is.
	Orient *graph.Orientation
	// InSide marks, for the bipartite variant, the virtual vertices that
	// receive in-edges; nil for the shared-virtual (Figure 3) variant.
	InSide []bool
}

// Orientation builds the Figure-3 connector of Theorem 5.3. Every vertex v
// defines k virtual vertices v₁…v_k with k = max(#inGroups, #outGroups):
// incoming edges are split into groups of ≤ inGroup, the i-th group wired
// to vᵢ; outgoing edges into groups of ≤ outGroup, the i-th group wired to
// vᵢ. For Theorem 5.3, inGroup = ⌈Δ/⌈√Δ⌉⌉ and outGroup = ⌈√d⌉ where d is
// the orientation's out-degree bound; the connector then has maximum degree
// ≤ inGroup + outGroup and out-degree (hence arboricity) ≤ outGroup.
func Orientation(o *graph.Orientation, inGroup, outGroup int) (*OrientedVirtualGraph, error) {
	if inGroup < 1 || outGroup < 1 {
		return nil, fmt.Errorf("connector: orientation groups must be ≥ 1 (in=%d out=%d)", inGroup, outGroup)
	}
	return buildOriented(o, inGroup, outGroup, false)
}

// BipartiteOrientation builds the Theorem-5.4 connector: in-virtuals and
// out-virtuals are distinct vertices, so the connector is bipartite — every
// edge joins some tail's out-virtual to some head's in-virtual. One side has
// degree ≤ inGroup, the other ≤ outGroup.
func BipartiteOrientation(o *graph.Orientation, inGroup, outGroup int) (*OrientedVirtualGraph, error) {
	if inGroup < 1 || outGroup < 1 {
		return nil, fmt.Errorf("connector: orientation groups must be ≥ 1 (in=%d out=%d)", inGroup, outGroup)
	}
	return buildOriented(o, inGroup, outGroup, true)
}

func buildOriented(o *graph.Orientation, inGroup, outGroup int, bipartite bool) (*OrientedVirtualGraph, error) {
	g := o.Graph()
	n := g.N()
	inDeg := make([]int, n)
	outDeg := make([]int, n)
	for v := 0; v < n; v++ {
		for _, a := range g.Adj(v) {
			if o.Head(int(a.Edge)) == v {
				inDeg[v]++
			} else {
				outDeg[v]++
			}
		}
	}
	// Virtual vertex layout. Shared variant: max(#in, #out) virtuals per
	// vertex; bipartite: #in in-virtuals followed by #out out-virtuals.
	base := make([]int32, n+1)
	inCount := make([]int32, n)
	for v := 0; v < n; v++ {
		nIn := util.CeilDiv(inDeg[v], inGroup)
		nOut := util.CeilDiv(outDeg[v], outGroup)
		var total int
		if bipartite {
			total = nIn + nOut
			inCount[v] = int32(nIn)
		} else {
			total = util.Max(nIn, nOut)
		}
		if total == 0 {
			total = 1 // isolated vertices keep one virtual for simplicity
		}
		base[v+1] = base[v] + int32(total)
	}
	nv := int(base[n])
	owner := make([]int32, nv)
	index := make([]int32, nv)
	var inSide []bool
	if bipartite {
		inSide = make([]bool, nv)
	}
	for v := 0; v < n; v++ {
		for i := base[v]; i < base[v+1]; i++ {
			owner[i] = int32(v)
			index[i] = i - base[v]
			if bipartite && index[i] < inCount[v] {
				inSide[i] = true
			}
		}
	}
	// Per-vertex running counters assign each in-edge and out-edge, in port
	// order, to its group. In the bipartite variant out-virtuals start after
	// the in-virtuals.
	inSeen := make([]int, n)
	outSeen := make([]int, n)
	inVirt := func(v int) int {
		grp := inSeen[v] / inGroup
		inSeen[v]++
		return int(base[v]) + grp
	}
	outVirt := func(v int) int {
		grp := outSeen[v] / outGroup
		outSeen[v]++
		if bipartite {
			return int(base[v]) + int(inCount[v]) + grp
		}
		return int(base[v]) + grp
	}
	b := graph.NewBuilder(nv)
	eorig := make([]int32, 0, g.M())
	heads := make([]int32, 0, g.M())
	// Iterate edges in identifier order so group assignment is
	// deterministic (each endpoint processes its incident edges in a fixed
	// local order; identifier order is one such order).
	for e := 0; e < g.M(); e++ {
		head := o.Head(e)
		tail := o.Tail(e)
		hv := inVirt(head)
		tv := outVirt(tail)
		if hv == tv {
			// Impossible: head ≠ tail and virtuals have distinct owners.
			return nil, fmt.Errorf("connector: internal: virtual self-loop on edge %d", e)
		}
		b.AddEdge(tv, hv)
		eorig = append(eorig, int32(e))
		heads = append(heads, int32(hv))
	}
	cg, perm, err := graph.BuildWithEdgeOrder(b)
	if err != nil {
		return nil, fmt.Errorf("connector: orientation: %w", err)
	}
	headByFinal := make([]int32, len(heads))
	for ins, h := range heads {
		headByFinal[perm[ins]] = h
	}
	orient, err := graph.NewOrientation(cg, headByFinal)
	if err != nil {
		return nil, fmt.Errorf("connector: orientation: %w", err)
	}
	return &OrientedVirtualGraph{
		VirtualGraph: VirtualGraph{
			G:     cg,
			Owner: owner,
			Index: index,
			EOrig: applyPerm(eorig, perm),
			Stats: sim.Stats{Rounds: VirtualConstructRounds, Messages: 2 * int64(g.M())},
		},
		Orient: orient,
		InSide: inSide,
	}, nil
}
