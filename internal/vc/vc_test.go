package vc

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/verify"
)

func rg(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestDelta1(t *testing.T) {
	g := rg(1, 150, 0.06)
	res, err := Delta1(context.Background(), sim.NewTopology(g), int64(g.N()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(g.MaxDegree()) + 1
	if res.Palette != want {
		t.Fatalf("palette %d, want %d", res.Palette, want)
	}
	if err := verify.VertexColoring(g, res.Colors, want); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestDelta1OnStructuredGraphs(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"complete": graph.Complete(17),
		"path":     graph.Path(64),
		"cycleOdd": graph.Cycle(31),
		"star":     graph.Star(40),
		"bipart":   graph.CompleteBipartite(9, 13),
	} {
		res, err := Delta1(context.Background(), sim.NewTopology(g), int64(g.N()), Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.VertexColoring(g, res.Colors, int64(g.MaxDegree())+1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestTargetRejectsLowPalette(t *testing.T) {
	g := graph.Complete(5)
	if _, err := Target(context.Background(), sim.NewTopology(g), 5, 4, Options{}); err == nil {
		t.Fatal("expected error for target < Δ+1")
	}
}

func TestTargetLargerPalette(t *testing.T) {
	g := rg(3, 60, 0.1)
	target := int64(g.MaxDegree()) + 10
	res, err := Target(context.Background(), sim.NewTopology(g), int64(g.N()), target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, target); err != nil {
		t.Fatal(err)
	}
}

func TestDelta1WithSeedColoringIsFaster(t *testing.T) {
	g := rg(7, 200, 0.05)
	// First compute a Δ+1 coloring from scratch.
	fromScratch, err := Delta1(context.Background(), sim.NewTopology(g), int64(g.N()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Now seed with a proper small-palette coloring (the §3 trick): the
	// pipeline must still be correct and take no more rounds.
	topo := &sim.Topology{G: g, Labels: fromScratch.Colors}
	seeded, err := Delta1(context.Background(), topo, fromScratch.Palette, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, seeded.Colors, seeded.Palette); err != nil {
		t.Fatal(err)
	}
	if seeded.Stats.Rounds > fromScratch.Stats.Rounds {
		t.Fatalf("seeded run slower: %d > %d rounds", seeded.Stats.Rounds, fromScratch.Stats.Rounds)
	}
}

func TestReducerVariantsAllProper(t *testing.T) {
	g := rg(11, 70, 0.12)
	for _, r := range []Reducer{ReducerAuto, ReducerKW, ReducerTrim} {
		res, err := Delta1(context.Background(), sim.NewTopology(g), int64(g.N()), Options{Reducer: r})
		if err != nil {
			t.Fatalf("reducer %d: %v", r, err)
		}
		if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
			t.Fatalf("reducer %d: %v", r, err)
		}
	}
}

func TestEdgeColor(t *testing.T) {
	g := rg(2, 80, 0.08)
	res, err := EdgeColor(context.Background(), g, nil, EdgeIDBound(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := EdgePalette(g.MaxDegree())
	if res.Palette != want {
		t.Fatalf("palette %d, want 2Δ−1 = %d", res.Palette, want)
	}
	if err := verify.EdgeColoring(g, res.Colors, want); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeColorEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(4).MustBuild()
	res, err := EdgeColor(context.Background(), g, nil, EdgeIDBound(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Colors) != 0 {
		t.Fatal("expected no edge colors")
	}
}

func TestEdgeColorStructured(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"complete": graph.Complete(9),
		"star":     graph.Star(20),
		"cycle":    graph.Cycle(15),
		"grid-ish": graph.CompleteBipartite(6, 6),
	} {
		res, err := EdgeColor(context.Background(), g, nil, EdgeIDBound(g), Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestEdgeColorWithSeed(t *testing.T) {
	g := rg(5, 50, 0.15)
	first, err := EdgeColor(context.Background(), g, nil, EdgeIDBound(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Seeding with a proper edge coloring must work and cost no more.
	seeded, err := EdgeColor(context.Background(), g, first.Colors, first.Palette, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, seeded.Colors, seeded.Palette); err != nil {
		t.Fatal(err)
	}
	if seeded.Stats.Rounds > first.Stats.Rounds {
		t.Fatalf("seeded edge run slower: %d > %d", seeded.Stats.Rounds, first.Stats.Rounds)
	}
}

func TestDelta1Quick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		g := rg(seed, n, 0.12)
		res, err := Delta1(context.Background(), sim.NewTopology(g), int64(n), Options{})
		if err != nil {
			return false
		}
		return verify.VertexColoring(g, res.Colors, int64(g.MaxDegree())+1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeColorQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(40)
		g := rg(seed, n, 0.15)
		res, err := EdgeColor(context.Background(), g, nil, EdgeIDBound(g), Options{})
		if err != nil {
			return false
		}
		return verify.EdgeColoring(g, res.Colors, res.Palette) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestLineTopologyIdentifiers(t *testing.T) {
	g := graph.Complete(5)
	topo, lg := LineTopology(g, nil)
	if topo.G.N() != g.M() || lg.L.N() != g.M() {
		t.Fatal("line topology size wrong")
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		if topo.IDs[e] != int64(u)*int64(g.N())+int64(v) {
			t.Fatal("canonical edge ID wrong")
		}
		if topo.IDs[e] >= EdgeIDBound(g) {
			t.Fatal("edge ID exceeds bound")
		}
	}
}

func TestEdgePalette(t *testing.T) {
	if EdgePalette(0) != 1 || EdgePalette(1) != 1 || EdgePalette(5) != 9 {
		t.Fatal("EdgePalette wrong")
	}
}
