// Package vc provides the repository's pluggable coloring "black box": the
// role the paper assigns to the (Δ+1)-coloring algorithm of Fraigniaud,
// Heinrich and Kosowski [17]. Our engine is the classical deterministic
// pipeline Linial → Kuhn–Wattenhofer, which produces the same palettes
// ((Δ+1) for vertices, (2Δ−1) for edges) in O(Δ log Δ + log* n) rounds — see
// DESIGN.md §1.3 for the substitution note and its effect on measured round
// exponents.
//
// Edge colorings are computed by running the vertex pipeline on the line
// graph. Every line-graph round is executable in one round of the base
// graph: the state of edge {u,v} is replicated at u and v, each round the
// endpoints exchange it (one message per edge), and every message of L(G)
// travels between two edges sharing an endpoint, i.e. it is a local read at
// that shared vertex. Reported rounds therefore transfer 1:1; reported
// message counts are line-graph messages (≤ 2 base messages each).
package vc

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/reduce"
	"repro/internal/sim"
)

// Options configures the black-box engine.
type Options struct {
	// Exec selects the simulator engine (sequential by default).
	Exec sim.Exec
	// Reducer selects the post-Linial reduction strategy. Default Auto.
	Reducer Reducer
}

// Reducer selects how the O(Δ² log² Δ) Linial palette is brought down to
// the final target.
type Reducer int

const (
	// ReducerAuto picks the cheaper of KW and class iteration per call.
	ReducerAuto Reducer = iota
	// ReducerKW always uses Kuhn–Wattenhofer halving.
	ReducerKW
	// ReducerTrim always uses one-class-per-round iteration (the paper's
	// "basic reduction"); dramatically slower for large palettes, provided
	// for the ablation experiment A.engine.
	ReducerTrim
)

// Result is a computed coloring with its cost.
type Result struct {
	Colors  []int64
	Palette int64 // guaranteed bound: all colors < Palette
	Stats   sim.Stats
}

// Delta1 computes a proper (Δ+1)-vertex-coloring of t.G.
//
// Starting colors: the topology's seed labels when non-nil (they must be a
// proper coloring with palette m0), otherwise the identifiers (m0 must
// exceed every identifier). This parameterization is what implements the
// paper's §3 reuse trick: recursive calls pass the one O(Δ²)-coloring
// computed up front as seed, paying log* of the seed palette rather than
// log* n at every level.
func Delta1(ctx context.Context, t *sim.Topology, m0 int64, opt Options) (*Result, error) {
	target := int64(t.G.MaxDegree()) + 1
	return Target(ctx, t, m0, target, opt)
}

// Target computes a proper vertex coloring of t.G with the given palette
// target ≥ Δ+1.
func Target(ctx context.Context, t *sim.Topology, m0, target int64, opt Options) (*Result, error) {
	if target < int64(t.G.MaxDegree())+1 {
		return nil, fmt.Errorf("vc: target %d below Δ+1 = %d", target, t.G.MaxDegree()+1)
	}
	lin, err := linial.Reduce(ctx, opt.Exec, t, m0)
	if err != nil {
		return nil, err
	}
	if lin.Palette <= target {
		return &Result{Colors: lin.Colors, Palette: target, Stats: lin.Stats}, nil
	}
	t2 := &sim.Topology{G: t.G, IDs: t.IDs, Labels: lin.Colors}
	var red *reduce.Result
	switch opt.Reducer {
	case ReducerKW:
		red, err = reduce.KuhnWattenhofer(ctx, opt.Exec, t2, lin.Palette, target)
	case ReducerTrim:
		red, err = reduce.TrimClasses(ctx, opt.Exec, t2, lin.Palette, target)
	default:
		red, err = reduce.Auto(ctx, opt.Exec, t2, lin.Palette, target)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Colors: red.Colors, Palette: target, Stats: lin.Stats.Seq(red.Stats)}, nil
}

// LineTopology builds the simulation topology for edge algorithms on g:
// the line graph with canonical edge identifiers id({u,v}) = u·n + v, plus
// optional seed edge labels. The caller also receives the line graph result
// for translating back.
func LineTopology(g *graph.Graph, seed []int64) (*sim.Topology, *graph.LineGraphResult) {
	lg := graph.LineGraph(g)
	ids := make([]int64, g.M())
	n := int64(g.N())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		ids[e] = int64(u)*n + int64(v)
	}
	return &sim.Topology{G: lg.L, IDs: ids, Labels: seed}, lg
}

// EdgeIDBound returns the palette bound that covers LineTopology's
// canonical edge identifiers.
func EdgeIDBound(g *graph.Graph) int64 {
	n := int64(g.N())
	return n*n + 1
}

// EdgePalette returns the contractual palette of EdgeColor for a graph of
// maximum degree d: 2d−1 (1 when there are no edges at all).
func EdgePalette(d int) int64 {
	if d < 1 {
		return 1
	}
	return int64(2*d - 1)
}

// EdgeColor computes a proper (2Δ−1)-edge-coloring of g by running the
// vertex pipeline on the line graph. Seed, when non-nil, must be a proper
// edge coloring of g with palette m0; otherwise pass m0 = EdgeIDBound(g).
// Colors are indexed by g's edge identifiers.
func EdgeColor(ctx context.Context, g *graph.Graph, seed []int64, m0 int64, opt Options) (*Result, error) {
	if g.M() == 0 {
		return &Result{Colors: nil, Palette: 1}, nil
	}
	t, _ := LineTopology(g, seed)
	// Δ(L(G)) ≤ 2Δ(G)−2, so Δ(L)+1 ≤ the contractual 2Δ−1; color as low as
	// the line graph allows but report the 2Δ−1 contract.
	res, err := Delta1(ctx, t, m0, opt)
	if err != nil {
		return nil, fmt.Errorf("vc: edge color: %w", err)
	}
	palette := EdgePalette(g.MaxDegree())
	if res.Palette > palette {
		// Cannot happen: Δ(L)+1 ≤ 2Δ−1. Guard kept as an invariant check.
		return nil, fmt.Errorf("vc: internal: line palette %d exceeds 2Δ−1 = %d", res.Palette, palette)
	}
	return &Result{Colors: res.Colors, Palette: palette, Stats: res.Stats}, nil
}
