package arbor

import (
	"context"
	"fmt"

	"repro/internal/connector"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/star"
	"repro/internal/util"
	"repro/internal/vc"
)

// Options configures the Section 5 algorithms.
type Options struct {
	// Exec selects the simulator engine.
	Exec sim.Exec
	// VC configures the coloring black box used for part-internal edges.
	VC vc.Options
	// Q is the H-partition threshold multiplier (θ = ⌈q·a⌉); values above 2
	// guarantee logarithmically many parts (the paper's 2+ε). Default 3;
	// values below 2.05 are clamped up to keep the peeling fast.
	Q float64
	// DeclaredDelta, when positive, overrides the maximum-degree bound used
	// for palette sizing, so that parallel invocations on sibling subgraphs
	// share identical palettes. It must be ≥ the graph's actual Δ.
	DeclaredDelta int
	// InternalStar switches the part-internal edge coloring of Theorem 5.2
	// from the (2θ−1) black box to the §4 star partition at x=1 — the
	// speed-for-colors option the paper notes ("this step can be computed
	// much faster in the expense of increasing the constant"): 4θ internal
	// colors instead of 2θ−1.
	InternalStar bool
}

func (o Options) q() float64 {
	if o.Q == 0 {
		return 3
	}
	if o.Q < 2.05 {
		return 2.05
	}
	return o.Q
}

// Result is an edge coloring produced by one of the Section 5 algorithms.
type Result struct {
	// Colors is indexed by edge identifier.
	Colors []int64
	// Palette is the guaranteed palette bound.
	Palette int64
	Stats   sim.Stats
	// Parts is ℓ of the top-level H-partition (0 when none was needed).
	Parts int
	// Threshold is θ of the top-level H-partition.
	Threshold int
}

// Palette52 is the declared palette of ColorHPartition for a graph with
// maximum degree delta and arboricity bound a at multiplier q:
// (Δ + θ − 1) crossing colors plus (2θ − 1) part-internal colors.
func Palette52(delta, a int, q float64) int64 {
	theta := Threshold(a, q)
	return int64(delta) + int64(theta) - 1 + int64(2*theta-1)
}

// Palette52Star is the declared palette when InternalStar is set: the
// internal block grows to 4θ.
func Palette52Star(delta, a int, q float64) int64 {
	theta := Threshold(a, q)
	return int64(delta) + int64(theta) - 1 + int64(4*theta)
}

// ColorHPartition implements Theorem 5.2: a (Δ + O(a))-edge-coloring in
// O(a·log n) rounds. Internal edges of the parts are colored with the black
// box in a reserved O(a)-color block; crossing edges are colored stage by
// stage (highest part downward) with Merge.
func ColorHPartition(ctx context.Context, g *graph.Graph, a int, opt Options) (*Result, error) {
	if g.M() == 0 {
		return &Result{Colors: make([]int64, 0), Palette: 1}, nil
	}
	q := opt.q()
	theta := Threshold(a, q)
	delta := g.MaxDegree()
	if opt.DeclaredDelta > 0 {
		if opt.DeclaredDelta < delta {
			return nil, fmt.Errorf("arbor: declared Δ=%d below actual %d", opt.DeclaredDelta, delta)
		}
		delta = opt.DeclaredDelta
	}
	hp, err := HPartition(ctx, opt.Exec, g, theta)
	if err != nil {
		return nil, err
	}
	stats := hp.Stats

	// Reserved blocks: crossing palette [0, crossPal), internal block
	// [crossPal, crossPal + internalPal).
	crossPal := int64(delta + theta - 1)
	internalPal := int64(2*theta - 1)
	if opt.InternalStar {
		internalPal = int64(4 * theta)
	}

	colors := make([]int64, g.M())
	for e := range colors {
		colors[e] = -1
	}

	// Color part-internal edges in one shot: the spanning subgraph of
	// same-part edges has maximum degree ≤ θ (a vertex's same-part
	// neighbors all counted toward its peeling threshold).
	internal, err := graph.SpanningSubgraph(g, func(e int) bool {
		u, v := g.Endpoints(e)
		return hp.Part[u] == hp.Part[v]
	})
	if err != nil {
		return nil, err
	}
	if internal.G.M() > 0 {
		if internal.G.MaxDegree() > theta {
			return nil, fmt.Errorf("arbor: internal: same-part degree %d exceeds θ=%d", internal.G.MaxDegree(), theta)
		}
		icColors, icStats, err := colorInternal(ctx, internal.G, theta, opt)
		if err != nil {
			return nil, fmt.Errorf("arbor: internal edges: %w", err)
		}
		stats = stats.Seq(icStats)
		for e := 0; e < internal.G.M(); e++ {
			colors[internal.OrigEdge(e)] = crossPal + icColors[e]
		}
	}

	// Crossing stages: for i = ℓ−2 … 0, A = part i, B = parts > i.
	for i := hp.NumParts - 2; i >= 0; i-- {
		roleA := make([]bool, g.N())
		roleB := make([]bool, g.N())
		active := false
		for v := 0; v < g.N(); v++ {
			switch {
			case hp.Part[v] == i:
				roleA[v] = true
				active = true
			case hp.Part[v] > i:
				roleB[v] = true
			}
		}
		if !active {
			continue
		}
		mr, err := Merge(ctx, opt.Exec, MergeSpec{
			G:          g,
			RoleA:      roleA,
			RoleB:      roleB,
			EdgeColors: colors,
			D:          theta,
			Palette:    crossPal,
		})
		if err != nil {
			return nil, fmt.Errorf("arbor: crossing stage %d: %w", i, err)
		}
		stats = stats.Seq(mr.Stats)
	}

	for e, c := range colors {
		if c < 0 {
			return nil, fmt.Errorf("arbor: internal: edge %d left uncolored", e)
		}
	}
	return &Result{
		Colors:    colors,
		Palette:   crossPal + internalPal,
		Stats:     stats,
		Parts:     hp.NumParts,
		Threshold: theta,
	}, nil
}

// colorInternal colors the part-internal subgraph (max degree ≤ θ) within
// the reserved internal block: the black box (2θ−1 colors) by default, or
// the §4 star partition at x=1 (≤ 4θ colors, fewer rounds for large θ)
// when InternalStar is set.
func colorInternal(ctx context.Context, internal *graph.Graph, theta int, opt Options) ([]int64, sim.Stats, error) {
	if opt.InternalStar {
		if t, err := star.ChooseT(internal.MaxDegree(), 1); err == nil {
			res, err := star.EdgeColor(ctx, internal, t, 1, star.Options{Exec: opt.Exec, VC: opt.VC})
			if err != nil {
				return nil, sim.Stats{}, err
			}
			if res.Palette > int64(4*theta) {
				return nil, sim.Stats{}, fmt.Errorf("arbor: internal star palette %d exceeds 4θ=%d", res.Palette, 4*theta)
			}
			return res.Colors, res.Stats, nil
		}
		// Degenerate degree: fall through to the black box.
	}
	res, err := vc.EdgeColor(ctx, internal, nil, vc.EdgeIDBound(internal), opt.VC)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	return res.Colors, res.Stats, nil
}

// Palette53 is the declared palette of ColorSqrt for maximum degree delta
// and arboricity bound a at multiplier q.
func Palette53(delta, a int, q float64) int64 {
	theta := Threshold(a, q)
	kIn := util.Max(1, util.ISqrt(delta))
	inGroup := util.Max(1, util.CeilDiv(delta, kIn))
	outGroup := util.Max(1, util.ISqrt(theta))
	connDelta := inGroup + outGroup
	connArb := outGroup
	classDelta := util.CeilDiv(delta, inGroup) + util.CeilDiv(theta, outGroup)
	classArb := util.CeilDiv(theta, outGroup)
	return Palette52(connDelta, connArb, q) * Palette52(classDelta, classArb, q)
}

// ColorSqrt implements Theorem 5.3: the Figure-3 orientation connector
// reduces both Δ and the arboricity to about their square roots, each side
// is colored with Theorem 5.2, and the two colorings compose to
// Δ + O(√(Δ·a)) + O(a) colors in O(√a·log n) rounds.
func ColorSqrt(ctx context.Context, g *graph.Graph, a int, opt Options) (*Result, error) {
	if g.M() == 0 {
		return &Result{Colors: make([]int64, 0), Palette: 1}, nil
	}
	q := opt.q()
	theta := Threshold(a, q)
	delta := g.MaxDegree()
	if opt.DeclaredDelta > 0 {
		if opt.DeclaredDelta < delta {
			return nil, fmt.Errorf("arbor: declared Δ=%d below actual %d", opt.DeclaredDelta, delta)
		}
		delta = opt.DeclaredDelta
	}
	hp, err := HPartition(ctx, opt.Exec, g, theta)
	if err != nil {
		return nil, err
	}
	stats := hp.Stats

	kIn := util.Max(1, util.ISqrt(delta))
	inGroup := util.Max(1, util.CeilDiv(delta, kIn))
	outGroup := util.Max(1, util.ISqrt(theta))
	vg, err := connector.Orientation(hp.Orient, inGroup, outGroup)
	if err != nil {
		return nil, err
	}
	stats = stats.Seq(vg.Stats)

	// Connector coloring φ via Theorem 5.2; declared bounds make the
	// palette independent of the sample.
	connDelta := inGroup + outGroup
	connArb := outGroup
	phiRes, err := ColorHPartition(ctx, vg.G, connArb, Options{
		Exec: opt.Exec, VC: opt.VC, Q: opt.Q, DeclaredDelta: connDelta,
	})
	if err != nil {
		return nil, fmt.Errorf("arbor: connector coloring: %w", err)
	}
	stats = stats.Seq(phiRes.Stats)
	phiPal := Palette52(connDelta, connArb, q)
	phi := make([]int64, g.M())
	for ce := 0; ce < vg.G.M(); ce++ {
		phi[vg.EOrig[ce]] = phiRes.Colors[ce]
	}

	// Class coloring ψ: each φ-class has ≤ ⌈Δ/inGroup⌉ in-edges and
	// ≤ ⌈θ/outGroup⌉ out-edges per vertex, and inherits the acyclic
	// orientation, so its arboricity is ≤ ⌈θ/outGroup⌉.
	classDelta := util.CeilDiv(delta, inGroup) + util.CeilDiv(theta, outGroup)
	classArb := util.CeilDiv(theta, outGroup)
	psiPal := Palette52(classDelta, classArb, q)
	colors := make([]int64, g.M())
	var classStats []sim.Stats
	for c := int64(0); c < phiPal; c++ {
		sub, err := graph.SpanningSubgraph(g, func(e int) bool { return phi[e] == c })
		if err != nil {
			return nil, err
		}
		if sub.G.M() == 0 {
			continue
		}
		if sub.G.MaxDegree() > classDelta {
			return nil, fmt.Errorf("arbor: internal: class degree %d exceeds declared %d", sub.G.MaxDegree(), classDelta)
		}
		psi, err := ColorHPartition(ctx, sub.G, classArb, Options{
			Exec: opt.Exec, VC: opt.VC, Q: opt.Q, DeclaredDelta: classDelta,
		})
		if err != nil {
			return nil, fmt.Errorf("arbor: class %d: %w", c, err)
		}
		classStats = append(classStats, psi.Stats)
		for e := 0; e < sub.G.M(); e++ {
			orig := sub.OrigEdge(e)
			colors[orig] = phi[orig]*psiPal + psi.Colors[e]
		}
	}
	stats = stats.Seq(sim.ParAll(classStats))
	return &Result{
		Colors:    colors,
		Palette:   phiPal * psiPal,
		Stats:     stats,
		Parts:     hp.NumParts,
		Threshold: theta,
	}, nil
}
