package arbor

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/verify"
)

// bounded returns a graph with arboricity ≤ a+1 and Δ ≈ hub, plus the
// arboricity bound to use.
func bounded(t *testing.T, n, a, hub int, seed int64) (*graph.Graph, int) {
	t.Helper()
	g, err := gen.ForestUnionHub(n, a, hub, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, a + 1
}

func TestHPartition(t *testing.T) {
	g, a := bounded(t, 400, 3, 150, 7)
	theta := Threshold(a, 3)
	hp, err := HPartition(context.Background(), sim.Sequential, g, theta)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.HPartition(g, hp.Part, hp.NumParts, theta); err != nil {
		t.Fatal(err)
	}
	if err := verify.AcyclicOrientation(hp.Orient, theta); err != nil {
		t.Fatal(err)
	}
	// O(log n) parts for q=3: generous bound 4·log₂n.
	logn := 1
	for v := g.N(); v > 1; v >>= 1 {
		logn++
	}
	if hp.NumParts > 4*logn {
		t.Fatalf("%d parts for n=%d (expected O(log n))", hp.NumParts, g.N())
	}
	if hp.Stats.Rounds != hp.NumParts+1 {
		t.Fatalf("peeling rounds %d, want parts+1 = %d", hp.Stats.Rounds, hp.NumParts+1)
	}
}

func TestHPartitionTooSmallThresholdErrors(t *testing.T) {
	// K10 has arboricity 5; threshold 1 cannot peel anything after the
	// first phase check.
	_, err := HPartition(context.Background(), sim.Sequential, graph.Complete(10), 1)
	if !errors.Is(err, sim.ErrRoundLimit) {
		t.Fatalf("want round-limit error, got %v", err)
	}
}

func TestHPartitionValidation(t *testing.T) {
	if _, err := HPartition(context.Background(), sim.Sequential, graph.Path(3), 0); err == nil {
		t.Fatal("expected threshold error")
	}
}

func TestMergeBipartite(t *testing.T) {
	// Complete bipartite K_{4,6}: A side degree 6... use A = small side with
	// D=6, B side; no precolored edges; palette Δ(B)+D−1 = 4+6−1 = 9.
	g := graph.CompleteBipartite(4, 6)
	roleA := make([]bool, 10)
	roleB := make([]bool, 10)
	for v := 0; v < 4; v++ {
		roleA[v] = true
	}
	for v := 4; v < 10; v++ {
		roleB[v] = true
	}
	colors := make([]int64, g.M())
	for e := range colors {
		colors[e] = -1
	}
	res, err := Merge(context.Background(), sim.Sequential, MergeSpec{
		G: g, RoleA: roleA, RoleB: roleB, EdgeColors: colors, D: 6, Palette: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assigned != g.M() {
		t.Fatalf("assigned %d of %d edges", res.Assigned, g.M())
	}
	if err := verify.EdgeColoring(g, colors, 9); err != nil {
		t.Fatal(err)
	}
	// 2D+2 round schedule.
	if res.Stats.Rounds > 2*6+2 {
		t.Fatalf("merge took %d rounds, bound %d", res.Stats.Rounds, 2*6+2)
	}
}

func TestMergeRespectsPrecoloredEdges(t *testing.T) {
	// Path A-B with an A-internal precolored edge: 0-1 (A,A) colored 0;
	// 1-2 crossing; 2 in B.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	colors := []int64{0, -1}
	roleA := []bool{true, true, false}
	roleB := []bool{false, false, true}
	_, err := Merge(context.Background(), sim.Sequential, MergeSpec{
		G: g, RoleA: roleA, RoleB: roleB, EdgeColors: colors, D: 1, Palette: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if colors[1] == 0 {
		t.Fatal("crossing edge reused the A-internal color at the shared vertex")
	}
	if colors[1] < 0 || colors[1] >= 4 {
		t.Fatalf("crossing color %d out of palette", colors[1])
	}
}

func TestMergeValidation(t *testing.T) {
	g := graph.Path(3)
	col := []int64{-1, -1}
	both := []bool{true, true, true}
	if _, err := Merge(context.Background(), sim.Sequential, MergeSpec{G: g, RoleA: both, RoleB: both, EdgeColors: col, D: 1, Palette: 3}); err == nil {
		t.Fatal("expected both-roles error")
	}
	if _, err := Merge(context.Background(), sim.Sequential, MergeSpec{G: g, RoleA: []bool{true}, RoleB: both, EdgeColors: col, D: 1, Palette: 3}); err == nil {
		t.Fatal("expected role length error")
	}
	if _, err := Merge(context.Background(), sim.Sequential, MergeSpec{G: g, RoleA: make([]bool, 3), RoleB: make([]bool, 3), EdgeColors: []int64{0}, D: 1, Palette: 3}); err == nil {
		t.Fatal("expected edge color length error")
	}
}

func TestMergeDegreeBoundViolation(t *testing.T) {
	// A-vertex with 3 crossing edges but D=2 must error cleanly.
	g := graph.Star(4)
	roleA := []bool{true, false, false, false}
	roleB := []bool{false, true, true, true}
	colors := []int64{-1, -1, -1}
	_, err := Merge(context.Background(), sim.Sequential, MergeSpec{G: g, RoleA: roleA, RoleB: roleB, EdgeColors: colors, D: 2, Palette: 10})
	if err == nil {
		t.Fatal("expected crossing-degree error")
	}
}

func TestColorHPartition(t *testing.T) {
	g, a := bounded(t, 500, 3, 200, 3)
	res, err := ColorHPartition(context.Background(), g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	// Theorem 5.2: Δ + O(a) colors — exactly Δ + 3θ − 2 with θ = ⌈q·a⌉.
	want := Palette52(g.MaxDegree(), a, 3)
	if res.Palette != want {
		t.Fatalf("palette %d, want %d", res.Palette, want)
	}
	// Sanity: far below the greedy 2Δ−1 when a ≪ Δ.
	if res.Palette >= int64(2*g.MaxDegree()-1) {
		t.Fatalf("palette %d not better than 2Δ−1 = %d", res.Palette, 2*g.MaxDegree()-1)
	}
}

func TestColorHPartitionOnConstantArboricity(t *testing.T) {
	for name, tc := range map[string]struct {
		g *graph.Graph
		a int
	}{
		"grid": {gen.Grid(20, 25), 2},
		"tree": {gen.Tree(300, 5), 1},
	} {
		res, err := ColorHPartition(context.Background(), tc.g, tc.a, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.EdgeColoring(tc.g, res.Colors, res.Palette); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestColorSqrt(t *testing.T) {
	g, a := bounded(t, 600, 2, 250, 11)
	res, err := ColorSqrt(context.Background(), g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	if want := Palette53(g.MaxDegree(), a, 3); res.Palette != want {
		t.Fatalf("palette %d, want declared %d", res.Palette, want)
	}
}

func TestColorSqrtBeatsGreedyAtScale(t *testing.T) {
	// The Δ+O(√(Δa)) bound only dominates 2Δ−1 once the additive O(√(Δa))
	// term is genuinely sublinear: use a single tree plus a large hub
	// (arboricity bound 2, Δ ≈ 4000) and the paper's lean q = 2+ε.
	g, a := bounded(t, 4500, 1, 4000, 11)
	res, err := ColorSqrt(context.Background(), g, a, Options{Q: 2.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	delta := int64(g.MaxDegree())
	if res.Palette >= 2*delta-1 {
		t.Fatalf("palette %d not sublinear vs 2Δ−1=%d", res.Palette, 2*delta-1)
	}
}

func TestColorRecursive(t *testing.T) {
	g, a := bounded(t, 500, 2, 180, 13)
	for _, x := range []int{1, 2, 3} {
		res, err := ColorRecursive(context.Background(), g, a, x, Options{})
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if want := Palette54(g.MaxDegree(), a, 3, x); res.Palette > want {
			t.Fatalf("x=%d: palette %d exceeds declared %d", x, res.Palette, want)
		}
	}
}

func TestColorRecursiveValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := ColorRecursive(context.Background(), g, 1, 0, Options{}); err == nil {
		t.Fatal("expected x<1 error")
	}
}

func TestEmptyGraphs(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	if res, err := ColorHPartition(context.Background(), g, 1, Options{}); err != nil || res.Palette != 1 {
		t.Fatal("empty 5.2 failed")
	}
	if res, err := ColorSqrt(context.Background(), g, 1, Options{}); err != nil || res.Palette != 1 {
		t.Fatal("empty 5.3 failed")
	}
	if res, err := ColorRecursive(context.Background(), g, 1, 2, Options{}); err != nil || res.Palette != 1 {
		t.Fatal("empty 5.4 failed")
	}
}

func TestDeclaredDeltaValidation(t *testing.T) {
	g := graph.Complete(6)
	if _, err := ColorHPartition(context.Background(), g, 3, Options{DeclaredDelta: 2}); err == nil {
		t.Fatal("expected declared<actual error")
	}
}

func TestAdaptivePicksSmallPalette(t *testing.T) {
	g, a := bounded(t, 600, 2, 250, 17)
	res, plan, err := ColorAdaptive(context.Background(), g, a, Options{})
	if err != nil {
		t.Fatalf("plan %s: %v", plan.Name, err)
	}
	if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	// The adaptive choice must be at least as good as both fixed choices.
	if res.Palette > Palette52(g.MaxDegree(), a, 3) || res.Palette > Palette53(g.MaxDegree(), a, 3) {
		t.Fatalf("adaptive palette %d worse than fixed plans", res.Palette)
	}
	// Corollary 5.5 regime: comfortably below 2Δ−1 and within 2Δ of Δ.
	delta := int64(g.MaxDegree())
	if res.Palette >= 2*delta-1 {
		t.Fatalf("adaptive palette %d has no advantage (Δ=%d)", res.Palette, delta)
	}
}

func TestPlansEnumerate(t *testing.T) {
	plans := Plans(1000, 2)
	if len(plans) < 3 {
		t.Fatalf("expected several plans, got %d", len(plans))
	}
	seen := map[string]bool{}
	for _, p := range plans {
		if seen[p.Name] {
			t.Fatalf("duplicate plan %s", p.Name)
		}
		seen[p.Name] = true
		if p.Palette < 1 {
			t.Fatalf("plan %s has invalid palette %d", p.Name, p.Palette)
		}
	}
	if !seen["thm5.2"] || !seen["thm5.3"] {
		t.Fatal("fixed plans missing")
	}
}

func TestPalette53BeatsNaiveForBigGap(t *testing.T) {
	// For a ≪ Δ the 5.3 palette must be Δ + o(Δ): check the additive term
	// shrinks relative to Δ as Δ grows with a fixed.
	a := 2
	prevRatio := 10.0
	for _, delta := range []int{100, 1000, 10000, 100000} {
		p := Palette53(delta, a, 3)
		ratio := float64(p-int64(delta)) / float64(delta)
		if ratio >= prevRatio {
			t.Fatalf("Δ=%d: o(Δ) term ratio %.3f did not shrink (prev %.3f)", delta, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio > 0.2 {
		t.Fatalf("at Δ=100000, a=2 the extra colors are %.1f%% of Δ — not o(Δ)", prevRatio*100)
	}
}

func TestMergeQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.GNP(24, 0.3, seed)
		// Random bipartition: A = even, B = odd vertices; crossing edges
		// uncolored; D = max crossing degree of A side.
		roleA := make([]bool, g.N())
		roleB := make([]bool, g.N())
		for v := 0; v < g.N(); v++ {
			if v%2 == 0 {
				roleA[v] = true
			} else {
				roleB[v] = true
			}
		}
		colors := make([]int64, g.M())
		crossing := 0
		for e := 0; e < g.M(); e++ {
			u, v := g.Endpoints(e)
			if roleA[u] != roleA[v] {
				colors[e] = -1
				crossing++
			} else {
				colors[e] = int64(100 + e) // pre-colored, distinct, out of palette
			}
		}
		d := 0
		for v := 0; v < g.N(); v++ {
			if !roleA[v] {
				continue
			}
			cnt := 0
			for _, a := range g.Adj(v) {
				if colors[a.Edge] < 0 {
					cnt++
				}
			}
			if cnt > d {
				d = cnt
			}
		}
		palette := int64(g.MaxDegree() + d + 1)
		res, err := Merge(context.Background(), sim.Sequential, MergeSpec{G: g, RoleA: roleA, RoleB: roleB, EdgeColors: colors, D: d, Palette: palette})
		if err != nil {
			return false
		}
		if res.Assigned != crossing {
			return false
		}
		// Properness among crossing + precolored: crossing colors are
		// < palette and distinct per vertex from everything.
		return verify.EdgeColoring(g, colors, 100+int64(g.M())) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEnginesAgreeOnThm52(t *testing.T) {
	g, a := bounded(t, 200, 2, 80, 23)
	r1, err := ColorHPartition(context.Background(), g, a, Options{Exec: sim.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ColorHPartition(context.Background(), g, a, Options{Exec: sim.Parallel})
	if err != nil {
		t.Fatal(err)
	}
	for e := range r1.Colors {
		if r1.Colors[e] != r2.Colors[e] {
			t.Fatal("engines disagree")
		}
	}
}
