// Package arbor implements Section 5 of the paper: edge coloring of graphs
// whose arboricity a is bounded away from the maximum degree Δ, culminating
// in the headline (Δ + o(Δ))-edge-coloring.
//
// The building blocks are
//
//   - HPartition: the Nash–Williams peeling of [4] — vertices repeatedly
//     shed when their residual degree drops to the threshold, producing
//     parts H₁…H_ℓ such that every vertex has ≤ θ neighbors in its own or
//     higher parts, plus the induced acyclic orientation with out-degree ≤ θ;
//   - Merge: the Lemma 5.1 crossing-edge coloring procedure;
//   - ColorHPartition (Theorem 5.2): (Δ+O(a)) colors in O(a·log n) rounds;
//   - ColorSqrt (Theorem 5.3): orientation connectors square-root both
//     parameters, giving Δ+O(√(Δa))+O(a) colors in O(√a·log n) rounds;
//   - ColorRecursive (Theorem 5.4): bipartite orientation connectors give
//     (Δ^{1/x}+â^{1/x}+O(1))^x colors;
//   - ColorAdaptive (Corollary 5.5): parameter selection for Δ(1+o(1))
//     colors whenever a is polynomially below Δ.
package arbor

import (
	"context"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/util"
)

// Threshold returns the H-partition degree threshold θ = ⌈q·a⌉ (at least 1;
// q > 2 is required for logarithmically many parts).
func Threshold(a int, q float64) int {
	if a < 1 {
		a = 1
	}
	return util.Max(1, int(math.Ceil(q*float64(a))))
}

// HPartitionResult is an H-partition of a graph together with its induced
// acyclic orientation.
type HPartitionResult struct {
	// Part assigns each vertex its part index (0-based; part i is the set
	// of vertices peeled in phase i).
	Part []int
	// NumParts is ℓ, the number of parts.
	NumParts int
	// Threshold is the degree bound θ: every vertex has at most θ neighbors
	// in parts with index ≥ its own.
	Threshold int
	// Orient orients every edge toward the higher (part, index) endpoint;
	// it is acyclic with out-degree ≤ θ.
	Orient *graph.Orientation
	Stats  sim.Stats
}

// HPartition computes an H-partition of g with the given degree threshold
// by distributed peeling [4]: in each phase, every remaining vertex whose
// remaining degree is at most θ enters the current part and goes silent.
// When the true arboricity a(G) satisfies θ ≥ (2+ε)a the number of phases
// is O(log n); the round budget is n+4, so a threshold below the peeling
// requirement surfaces as ErrRoundLimit rather than nontermination.
func HPartition(ctx context.Context, eng sim.Exec, g *graph.Graph, threshold int) (*HPartitionResult, error) {
	eng = sim.OrSequential(eng)
	if threshold < 1 {
		return nil, fmt.Errorf("arbor: threshold %d < 1", threshold)
	}
	n := g.N()
	part := make([]int, n)
	factory := func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		return sim.WrapWord(&peelMachine{threshold: threshold, sink: &part[info.V]})
	}
	stats, err := eng.Run(ctx, sim.NewTopology(g), factory, n+4)
	if err != nil {
		return nil, fmt.Errorf("arbor: peeling (is the arboricity bound too small?): %w", err)
	}
	numParts := 0
	for _, p := range part {
		if p+1 > numParts {
			numParts = p + 1
		}
	}
	return &HPartitionResult{
		Part:      part,
		NumParts:  numParts,
		Threshold: threshold,
		Orient:    graph.OrientByOrder(g, part),
		Stats:     stats,
	}, nil
}

// peelMachine implements one vertex of the peeling program on the packed
// word plane. Active vertices broadcast a token every round; silence means
// the sender has been peeled. A vertex reading ≤ threshold active
// neighbors in round r is peeled into part r−1.
type peelMachine struct {
	threshold int
	sink      *int
}

func (pm *peelMachine) StepWord(round int, in, out []sim.Word) bool {
	if round == 0 {
		if len(in) == 0 {
			*pm.sink = 0
			return true
		}
		sim.SendAllWords(out, 1)
		return false
	}
	active := 0
	for _, w := range in {
		if w != sim.NoWord {
			active++
		}
	}
	if active <= pm.threshold {
		*pm.sink = round - 1
		return true
	}
	sim.SendAllWords(out, 1)
	return false
}

// RestrictOrientation carries an orientation down to a spanning subgraph:
// each kept edge keeps its head.
func RestrictOrientation(o *graph.Orientation, sub *graph.Sub) (*graph.Orientation, error) {
	heads := make([]int32, sub.G.M())
	for e := 0; e < sub.G.M(); e++ {
		heads[e] = int32(o.Head(sub.OrigEdge(e)))
	}
	return graph.NewOrientation(sub.G, heads)
}
