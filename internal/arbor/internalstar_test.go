package arbor

import (
	"context"
	"testing"

	"repro/internal/verify"
)

func TestInternalStarOption(t *testing.T) {
	g, a := bounded(t, 500, 3, 200, 31)
	plain, err := ColorHPartition(context.Background(), g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ColorHPartition(context.Background(), g, a, Options{InternalStar: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, fast.Colors, fast.Palette); err != nil {
		t.Fatal(err)
	}
	// Palette grows exactly as declared: internal block 4θ vs 2θ−1.
	if fast.Palette != Palette52Star(g.MaxDegree(), a, 3) {
		t.Fatalf("star-internal palette %d, want %d", fast.Palette, Palette52Star(g.MaxDegree(), a, 3))
	}
	if fast.Palette <= plain.Palette {
		t.Fatalf("star-internal palette %d should exceed plain %d", fast.Palette, plain.Palette)
	}
	// The paper's claim is a speedup in the internal stage; with θ this
	// small the effect is modest, so only sanity-check the runs completed
	// and both are proper.
	if err := verify.EdgeColoring(g, plain.Colors, plain.Palette); err != nil {
		t.Fatal(err)
	}
}

func TestInternalStarFallbackOnTinyTheta(t *testing.T) {
	// θ small enough that the star partition degenerates: the option must
	// silently fall back to the black box and still succeed.
	g, a := bounded(t, 200, 1, 80, 5)
	res, err := ColorHPartition(context.Background(), g, a, Options{InternalStar: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
}
