package arbor

import (
	"context"
	"fmt"
	"math"

	"repro/internal/graph"
)

// Plan describes one candidate parameterization considered by the adaptive
// algorithm of Corollary 5.5.
type Plan struct {
	// Name identifies the algorithm ("thm5.2", "thm5.3", "thm5.4/x=3", …).
	Name string
	// X is the recursion depth (0 for the non-recursive algorithms).
	X int
	// Q is the threshold multiplier.
	Q float64
	// Palette is the declared palette bound of this plan.
	Palette int64
}

// Plans enumerates the candidate parameterizations for a graph with
// maximum degree delta and arboricity bound a, in the spirit of
// Corollary 5.5: Theorem 5.2, Theorem 5.3, and Theorem 5.4 with depths up
// to ~log(q·a) (beyond which the group sizes bottom out at 2 and nothing
// improves).
func Plans(delta, a int) []Plan {
	const q = 3.0
	plans := []Plan{
		{Name: "thm5.2", X: 1, Q: q, Palette: Palette52(delta, a, q)},
		{Name: "thm5.3", X: 1, Q: q, Palette: Palette53(delta, a, q)},
	}
	theta := Threshold(a, q)
	maxX := 2
	if theta >= 2 {
		maxX = int(math.Log2(float64(theta))) + 2
	}
	if capX := int(math.Log2(float64(delta + 1))); maxX > capX {
		maxX = capX
	}
	for x := 2; x <= maxX; x++ {
		plans = append(plans, Plan{
			Name:    fmt.Sprintf("thm5.4/x=%d", x),
			X:       x,
			Q:       q,
			Palette: Palette54(delta, a, q, x),
		})
	}
	return plans
}

// BestPlan returns the candidate with the smallest declared palette,
// breaking ties toward smaller recursion depth (fewer rounds).
func BestPlan(delta, a int) Plan {
	plans := Plans(delta, a)
	best := plans[0]
	for _, p := range plans[1:] {
		if p.Palette < best.Palette || (p.Palette == best.Palette && p.X < best.X) {
			best = p
		}
	}
	return best
}

// ColorAdaptive implements the Corollary 5.5 variant: it selects, from the
// Section 5 family, the parameterization with the smallest declared palette
// for the given Δ and a — which for a polynomially below Δ yields
// Δ·(1+o(1)) colors — and runs it. The chosen plan is returned alongside
// the coloring.
func ColorAdaptive(ctx context.Context, g *graph.Graph, a int, opt Options) (*Result, Plan, error) {
	delta := g.MaxDegree()
	if opt.DeclaredDelta > 0 {
		delta = opt.DeclaredDelta
	}
	plan := BestPlan(delta, a)
	runOpt := opt
	runOpt.Q = plan.Q
	var (
		res *Result
		err error
	)
	switch plan.Name {
	case "thm5.2":
		res, err = ColorHPartition(ctx, g, a, runOpt)
	case "thm5.3":
		res, err = ColorSqrt(ctx, g, a, runOpt)
	default:
		res, err = ColorRecursive(ctx, g, a, plan.X, runOpt)
	}
	if err != nil {
		return nil, plan, err
	}
	return res, plan, nil
}
