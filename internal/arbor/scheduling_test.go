package arbor

import (
	"context"
	"testing"

	"repro/internal/sim"
)

// The merge machines coordinate through a shared edge-color array; these
// tests prove the coordination is round-synchronized (no machine reads a
// value another machine wrote in the same round unless the protocol says
// so) by checking that the engine's intra-round vertex order cannot change
// any outcome.

func TestMergeSchedulingIndependence(t *testing.T) {
	g, a := bounded(t, 300, 2, 120, 41)
	run := func(eng sim.Engine) *Result {
		res, err := ColorHPartition(context.Background(), g, a, Options{Exec: eng})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fwd := run(sim.Sequential)
	rev := run(sim.ReverseSequential)
	par := run(sim.Parallel)
	for e := range fwd.Colors {
		if fwd.Colors[e] != rev.Colors[e] || fwd.Colors[e] != par.Colors[e] {
			t.Fatalf("edge %d: engines disagree (%d / %d / %d)", e, fwd.Colors[e], rev.Colors[e], par.Colors[e])
		}
	}
	if fwd.Stats != rev.Stats || fwd.Stats != par.Stats {
		t.Fatalf("stats disagree: %+v / %+v / %+v", fwd.Stats, rev.Stats, par.Stats)
	}
}

func TestRecursiveSchedulingIndependence(t *testing.T) {
	g, a := bounded(t, 250, 2, 90, 43)
	fwd, err := ColorRecursive(context.Background(), g, a, 2, Options{Exec: sim.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := ColorRecursive(context.Background(), g, a, 2, Options{Exec: sim.ReverseSequential})
	if err != nil {
		t.Fatal(err)
	}
	for e := range fwd.Colors {
		if fwd.Colors[e] != rev.Colors[e] {
			t.Fatalf("edge %d differs under reverse scheduling", e)
		}
	}
}
