package arbor

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/sim"
)

// MergeSpec describes one invocation of the Lemma 5.1 procedure: color all
// currently uncolored edges crossing between the vertex sets A and B.
type MergeSpec struct {
	G *graph.Graph
	// RoleA / RoleB mark the two sides; vertices in neither are bystanders.
	// A vertex must not be in both.
	RoleA, RoleB []bool
	// EdgeColors holds the current (partial) edge coloring, −1 for
	// uncolored. Only uncolored A–B edges are assigned; everything else is
	// read-only context.
	EdgeColors []int64
	// D bounds the number of uncolored crossing edges at any A-vertex
	// (the paper's d); it determines the 2D+2 round schedule.
	D int
	// Palette is the color budget for the crossing edges: Lemma 5.1
	// guarantees feasibility when Palette ≥ Δ(B side) + D − 1.
	Palette int64
}

// MergeResult reports the updated coloring.
type MergeResult struct {
	// EdgeColors is the input array updated in place (returned for
	// convenience).
	EdgeColors []int64
	// Assigned counts newly colored edges.
	Assigned int
	Stats    sim.Stats
}

// Merge runs the Lemma 5.1 algorithm: every A-vertex labels its uncolored
// crossing edges 1…D; in sub-phase i the B-endpoint of every label-i edge
// picks a free color. Because each A-vertex activates at most one edge per
// sub-phase, and same-phase deciders at one B-vertex are handled by that
// single vertex, all assignments are conflict-free. Our message-passing
// realization spends two rounds per sub-phase (offer, reply) plus one role
// exchange: 2D+2 rounds, matching the paper's O(d).
func Merge(ctx context.Context, eng sim.Exec, spec MergeSpec) (*MergeResult, error) {
	eng = sim.OrSequential(eng)
	g := spec.G
	if len(spec.RoleA) != g.N() || len(spec.RoleB) != g.N() {
		return nil, fmt.Errorf("arbor: merge roles sized %d,%d for %d vertices", len(spec.RoleA), len(spec.RoleB), g.N())
	}
	if len(spec.EdgeColors) != g.M() {
		return nil, fmt.Errorf("arbor: merge has %d edge colors for %d edges", len(spec.EdgeColors), g.M())
	}
	if spec.D < 0 || spec.Palette < 1 {
		return nil, fmt.Errorf("arbor: merge D=%d palette=%d invalid", spec.D, spec.Palette)
	}
	for v := 0; v < g.N(); v++ {
		if spec.RoleA[v] && spec.RoleB[v] {
			return nil, fmt.Errorf("arbor: vertex %d in both roles", v)
		}
	}
	if spec.D == 0 {
		return &MergeResult{EdgeColors: spec.EdgeColors}, nil
	}
	n := g.N()
	errs := make([]error, n)
	assigned := make([]int, n)
	factory := func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		v := info.V
		role := roleIdle
		if spec.RoleA[v] {
			role = roleA
		} else if spec.RoleB[v] {
			role = roleB
		}
		return &mergeMachine{
			g:       g,
			v:       v,
			role:    role,
			spec:    &spec,
			errSink: &errs[v],
			cntSink: &assigned[v],
		}
	}
	stats, err := eng.Run(ctx, sim.NewTopology(g), factory, 2*spec.D+4)
	if err != nil {
		return nil, fmt.Errorf("arbor: merge: %w", err)
	}
	total := 0
	for v := 0; v < n; v++ {
		if errs[v] != nil {
			return nil, errs[v]
		}
		total += assigned[v]
	}
	return &MergeResult{EdgeColors: spec.EdgeColors, Assigned: total, Stats: stats}, nil
}

type mergeRole int

const (
	roleIdle mergeRole = iota
	roleA
	roleB
)

// offerMsg carries the colors currently on all edges of the offering
// A-endpoint.
type offerMsg struct {
	colors []int64
}

// Bits implements sim.Sizer: one word per carried color (the Lemma 5.1
// procedure is the one genuinely LOCAL-sized message in this codebase).
func (o offerMsg) Bits() int64 { return 64 * int64(len(o.colors)) }

// replyMsg carries the color assigned by the B-endpoint.
type replyMsg struct {
	color int64
}

// Bits implements sim.Sizer.
func (replyMsg) Bits() int64 { return 64 }

type mergeMachine struct {
	g       *graph.Graph
	v       int
	role    mergeRole
	spec    *MergeSpec
	errSink *error
	cntSink *int

	// A-side state.
	crossPorts []int   // ports of my uncolored crossing edges, label i = index i−1
	offerBuf   []int64 // reusable offer payload (consumed by the receiver before the next overwrite)
	// B-side state: bitset palettes over [0, Palette) (colors at or above
	// the crossing palette can never be picked, so they are not tracked).
	// myColors marks the colors on my incident edges (kept fresh);
	// offerScratch marks one offer's colors during pickColor and is wiped
	// back to zero before the step returns.
	myColors     []uint64
	offerScratch []uint64
}

// markColor inserts c (which must be in [0, Palette)) into the bitset.
func markColor(set []uint64, c int64) {
	set[c>>6] |= 1 << (uint(c) & 63)
}

func (mm *mergeMachine) Step(round int, in []sim.Message, out []sim.Message) bool {
	spec := mm.spec
	adj := mm.g.Adj(mm.v)
	switch {
	case round == 0:
		sim.SendAll(out, int64(mm.role))
		return mm.role == roleIdle
	case round == 1 && mm.role == roleA:
		// Learn neighbor roles; label my uncolored crossing edges.
		for p, a := range adj {
			if spec.EdgeColors[a.Edge] >= 0 {
				continue
			}
			if r, ok := in[p].(int64); ok && mergeRole(r) == roleB {
				mm.crossPorts = append(mm.crossPorts, p)
			}
		}
		if len(mm.crossPorts) > spec.D {
			*mm.errSink = fmt.Errorf("arbor: merge: vertex %d has %d crossing edges, bound D=%d", mm.v, len(mm.crossPorts), spec.D)
			return true
		}
		mm.sendOffer(0, out)
		return false
	case mm.role == roleA && round >= 2 && round%2 == 1:
		// Round 2i+1: record the reply for label i (i = (round−1)/2 ≥ 1),
		// then offer label i+1.
		i := (round - 1) / 2
		if i >= 1 && i <= len(mm.crossPorts) {
			p := mm.crossPorts[i-1]
			rep, ok := in[p].(replyMsg)
			if !ok {
				*mm.errSink = fmt.Errorf("arbor: merge: vertex %d missing reply for label %d", mm.v, i)
				return true
			}
			spec.EdgeColors[adj[p].Edge] = rep.color
		}
		if i >= len(mm.crossPorts) {
			return true // all my labels are colored
		}
		mm.sendOffer(i, out)
		return false
	case mm.role == roleB && round >= 2 && round%2 == 0:
		// Round 2i: process the offers of label i.
		if mm.myColors == nil {
			words := (spec.Palette + 63) / 64
			mm.myColors = make([]uint64, words)
			mm.offerScratch = make([]uint64, words)
			for _, a := range adj {
				if c := spec.EdgeColors[a.Edge]; c >= 0 && c < spec.Palette {
					markColor(mm.myColors, c)
				}
			}
		}
		for p, m := range in {
			offer, ok := m.(offerMsg)
			if !ok {
				continue
			}
			c, found := mm.pickColor(offer.colors)
			if !found {
				*mm.errSink = fmt.Errorf("arbor: merge: vertex %d found no free color below %d", mm.v, spec.Palette)
				return true
			}
			spec.EdgeColors[adj[p].Edge] = c
			markColor(mm.myColors, c)
			*mm.cntSink++
			out[p] = replyMsg{color: c}
		}
		if round >= 2*spec.D {
			return true // the last possible offer arrived this round
		}
		return false
	case mm.role == roleB || mm.role == roleA:
		// Off-cycle rounds: nothing to do, keep listening.
		return false
	default:
		return true
	}
}

// sendOffer emits the label-(i+1) offer: the colors of all my edges. The
// payload slice is the machine's reusable buffer: the receiver consumes it
// in the very next round, before the next sendOffer (two rounds later)
// overwrites it.
func (mm *mergeMachine) sendOffer(i int, out []sim.Message) {
	if i >= len(mm.crossPorts) {
		return
	}
	adj := mm.g.Adj(mm.v)
	if mm.offerBuf == nil {
		mm.offerBuf = make([]int64, 0, len(adj))
	}
	colors := mm.offerBuf[:0]
	for _, a := range adj {
		if c := mm.spec.EdgeColors[a.Edge]; c >= 0 {
			colors = append(colors, c)
		}
	}
	mm.offerBuf = colors
	out[mm.crossPorts[i]] = offerMsg{colors: colors}
}

// pickColor returns the smallest color < Palette avoiding my colors and the
// offered colors, scanning the two bitset palettes word-wise.
func (mm *mergeMachine) pickColor(offered []int64) (int64, bool) {
	pal := mm.spec.Palette
	for _, c := range offered {
		if c >= 0 && c < pal {
			markColor(mm.offerScratch, c)
		}
	}
	picked, found := int64(0), false
	for w := range mm.myColors {
		if free := ^(mm.myColors[w] | mm.offerScratch[w]); free != 0 {
			c := int64(w)*64 + int64(bits.TrailingZeros64(free))
			if c < pal {
				picked, found = c, true
			}
			break
		}
	}
	for _, c := range offered {
		if c >= 0 && c < pal {
			mm.offerScratch[c>>6] = 0
		}
	}
	return picked, found
}
