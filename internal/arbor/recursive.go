package arbor

import (
	"context"
	"fmt"

	"repro/internal/connector"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/util"
)

// ceilRoot returns the smallest r ≥ 1 with r^k ≥ n.
func ceilRoot(n, k int) int {
	if n <= 1 {
		return 1
	}
	r := util.IRoot(n, k)
	if util.IPow(r, k) < n {
		r++
	}
	return r
}

// Groups54 returns the Theorem 5.4 group sizes ⌈Δ^{1/x}⌉+1 and ⌈θ^{1/x}⌉+1.
func Groups54(delta, theta, x int) (inGroup, outGroup int) {
	return ceilRoot(delta, x) + 1, ceilRoot(theta, x) + 1
}

// Palette54 is the declared palette of ColorRecursive: the product of the
// per-level bipartite-connector palettes (inGroup+outGroup−1 each) and the
// Theorem 5.2 palette of the final classes.
func Palette54(delta, a int, q float64, x int) int64 {
	theta := Threshold(a, q)
	inG, outG := Groups54(delta, theta, x)
	return palette54Rec(delta, theta, inG, outG, x, q)
}

func palette54Rec(dDelta, dTheta, inG, outG, lvl int, q float64) int64 {
	if lvl <= 1 {
		return Palette52(dDelta, util.Max(1, dTheta), q)
	}
	next := int64(inG + outG - 1)
	return next * palette54Rec(nextDelta(dDelta, dTheta, inG, outG), util.CeilDiv(dTheta, outG), inG, outG, lvl-1, q)
}

func nextDelta(dDelta, dTheta, inG, outG int) int {
	return util.CeilDiv(dDelta, inG) + util.CeilDiv(dTheta, outG)
}

// ColorRecursive implements Theorem 5.4: x−1 levels of bipartite
// orientation connectors — each colored with the Lemma 5.1 procedure in
// O(θ^{1/x}) rounds — followed by Theorem 5.2 on the final classes, for a
// total of ≈ (Δ^{1/x} + (q·a)^{1/x} + 3)^x colors.
func ColorRecursive(ctx context.Context, g *graph.Graph, a, x int, opt Options) (*Result, error) {
	if x < 1 {
		return nil, fmt.Errorf("arbor: recursion depth x=%d < 1", x)
	}
	if g.M() == 0 {
		return &Result{Colors: make([]int64, 0), Palette: 1}, nil
	}
	if x == 1 {
		return ColorHPartition(ctx, g, a, opt)
	}
	q := opt.q()
	theta := Threshold(a, q)
	delta := g.MaxDegree()
	if opt.DeclaredDelta > 0 {
		if opt.DeclaredDelta < delta {
			return nil, fmt.Errorf("arbor: declared Δ=%d below actual %d", opt.DeclaredDelta, delta)
		}
		delta = opt.DeclaredDelta
	}
	hp, err := HPartition(ctx, opt.Exec, g, theta)
	if err != nil {
		return nil, err
	}
	inG, outG := Groups54(delta, theta, x)
	colors, stats, err := rec54(ctx, g, hp.Orient, delta, theta, inG, outG, x, opt)
	if err != nil {
		return nil, err
	}
	return &Result{
		Colors:    colors,
		Palette:   palette54Rec(delta, theta, inG, outG, x, q),
		Stats:     hp.Stats.Seq(stats),
		Parts:     hp.NumParts,
		Threshold: theta,
	}, nil
}

// rec54 colors the current level's subgraph. dDelta and dTheta are the
// declared degree and out-degree bounds (actuals never exceed them).
func rec54(ctx context.Context, g *graph.Graph, orient *graph.Orientation, dDelta, dTheta, inG, outG, lvl int, opt Options) ([]int64, sim.Stats, error) {
	q := opt.q()
	if g.M() == 0 {
		return make([]int64, 0), sim.Stats{}, nil
	}
	if lvl == 1 {
		res, err := ColorHPartition(ctx, g, util.Max(1, dTheta), Options{
			Exec: opt.Exec, VC: opt.VC, Q: opt.Q, DeclaredDelta: dDelta,
		})
		if err != nil {
			return nil, sim.Stats{}, fmt.Errorf("arbor: final classes: %w", err)
		}
		return res.Colors, res.Stats, nil
	}

	vg, err := connector.BipartiteOrientation(orient, inG, outG)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	stats := vg.Stats
	// Color the bipartite connector with the Lemma 5.1 procedure: A = the
	// out-virtual side (degree ≤ outG), B = the in-virtual side (degree ≤
	// inG); palette inG+outG−1 always suffices.
	roleA := make([]bool, vg.G.N())
	roleB := make([]bool, vg.G.N())
	for v := 0; v < vg.G.N(); v++ {
		if vg.InSide[v] {
			roleB[v] = true
		} else {
			roleA[v] = true
		}
	}
	connColors := make([]int64, vg.G.M())
	for e := range connColors {
		connColors[e] = -1
	}
	connPal := int64(inG + outG - 1)
	mr, err := Merge(ctx, opt.Exec, MergeSpec{
		G:          vg.G,
		RoleA:      roleA,
		RoleB:      roleB,
		EdgeColors: connColors,
		D:          outG,
		Palette:    connPal,
	})
	if err != nil {
		return nil, sim.Stats{}, fmt.Errorf("arbor: level %d connector: %w", lvl, err)
	}
	stats = stats.Seq(mr.Stats)
	phi := make([]int64, g.M())
	for ce := 0; ce < vg.G.M(); ce++ {
		phi[vg.EOrig[ce]] = connColors[ce]
	}

	// Split into classes and recurse.
	dDeltaNext := nextDelta(dDelta, dTheta, inG, outG)
	dThetaNext := util.CeilDiv(dTheta, outG)
	subPal := palette54Rec(dDeltaNext, dThetaNext, inG, outG, lvl-1, q)
	colors := make([]int64, g.M())
	var classStats []sim.Stats
	for c := int64(0); c < connPal; c++ {
		sub, err := graph.SpanningSubgraph(g, func(e int) bool { return phi[e] == c })
		if err != nil {
			return nil, sim.Stats{}, err
		}
		if sub.G.M() == 0 {
			continue
		}
		if sub.G.MaxDegree() > dDeltaNext {
			return nil, sim.Stats{}, fmt.Errorf("arbor: internal: level-%d class degree %d exceeds declared %d", lvl, sub.G.MaxDegree(), dDeltaNext)
		}
		subOrient, err := RestrictOrientation(orient, sub)
		if err != nil {
			return nil, sim.Stats{}, err
		}
		psi, st, err := rec54(ctx, sub.G, subOrient, dDeltaNext, dThetaNext, inG, outG, lvl-1, opt)
		if err != nil {
			return nil, sim.Stats{}, err
		}
		classStats = append(classStats, st)
		for e := 0; e < sub.G.M(); e++ {
			orig := sub.OrigEdge(e)
			colors[orig] = phi[orig]*subPal + psi[e]
		}
	}
	return colors, stats.Seq(sim.ParAll(classStats)), nil
}
