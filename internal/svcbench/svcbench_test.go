package svcbench

import (
	"context"
	"testing"
)

// TestOverloadResultDeterministicColumns pins the workload's contract: the
// fill is exactly the queue capacity and every burst submission sheds —
// the columns bench-check compares exactly across machines.
func TestOverloadResultDeterministicColumns(t *testing.T) {
	res, err := OverloadResult(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != overloadQueue || res.Messages != overloadBurst {
		t.Fatalf("deterministic columns rounds=%d messages=%d, want %d/%d", res.Rounds, res.Messages, overloadQueue, overloadBurst)
	}
	if res.NsPerOp <= 0 || res.AllocsPerOp <= 0 {
		t.Fatalf("no measurement recorded: %+v", res)
	}
	if res.AllocsPerRound != -1 {
		t.Fatalf("allocs/round = %v, want the -1 unmeasured sentinel", res.AllocsPerRound)
	}
}
