// Package svcbench extends the simulator-core perf suite (internal/bench)
// with service-layer workloads. It is a separate package only because of
// an import constraint: the root package's own tests import internal/bench,
// so internal/bench importing internal/service (which imports the root
// package) would cycle. cmd/colorbench composes the two suites into one
// BENCH_simcore.json report.
package svcbench

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"

	distcolor "repro"
	"repro/internal/bench"
	"repro/internal/service"
)

// The service-overload workload: shed latency is a production metric now
// that colord does admission control, so it is tracked in
// BENCH_simcore.json beside the data-plane and algorithm numbers. The
// scenario is the in-process twin of `colorbench -server URL -overload N`
// against a live daemon — here the server is Frozen (no workers), so
// occupancy is deterministic: the queue is filled to capacity once, and
// every burst submission after that MUST be shed with HTTP 429.
//
// One op is a burst of overloadBurst submissions through real HTTP round
// trips, all shed; ns/op is therefore burst shed latency (÷64 for
// per-request latency). The deterministic columns are repurposed —
// documented here because the suite schema is shared: Rounds records the
// accepted fill (the queue capacity) and Messages the sheds per op; both
// must reproduce exactly on every machine or admission semantics changed.
const (
	overloadQueue = 32
	overloadBurst = 64
)

// overloadRequest is the tiny fixed workload of the flood (a 16-cycle);
// caching is disabled in the scenario, so identical submissions all charge
// admission.
func overloadRequest() *distcolor.Request {
	edges := make([][2]int, 16)
	for i := range edges {
		edges[i] = [2]int{i, (i + 1) % 16}
	}
	return &distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy, Graph: distcolor.GraphSpec{N: 16, Edges: edges}}
}

// OverloadResult measures the admission shed path end to end and returns
// it in the simulator-core suite's result shape.
func OverloadResult(ctx context.Context) (bench.SimCoreResult, error) {
	name := "service/overload/shed-burst64"
	srv, err := service.NewServer(service.Config{Workers: 1, Frozen: true, QueueDepth: overloadQueue, CacheEntries: -1})
	if err != nil {
		return bench.SimCoreResult{}, fmt.Errorf("svcbench: %s: %w", name, err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &service.Client{Base: ts.URL, MaxRetries: -1} // every 429 must be observed, not retried

	// Deterministic occupancy: fill the queue to capacity once. The server
	// is frozen, so these jobs never drain and every later submission sheds.
	for i := 0; i < overloadQueue; i++ {
		if _, err := c.Submit(ctx, overloadRequest()); err != nil {
			return bench.SimCoreResult{}, fmt.Errorf("svcbench: %s: fill %d: %w", name, i, err)
		}
	}
	sheds := 0
	op := func() error {
		n := 0
		for i := 0; i < overloadBurst; i++ {
			_, subErr := c.Submit(ctx, overloadRequest())
			var he *service.HTTPError
			switch {
			case errors.As(subErr, &he) && he.Code == http.StatusTooManyRequests:
				n++
			case subErr == nil:
				return fmt.Errorf("burst submission %d was accepted; frozen occupancy leaked", i)
			default:
				return subErr
			}
		}
		sheds = n
		return nil
	}
	ns, allocs, bytes, err := bench.MeasureOp(op)
	if err != nil {
		return bench.SimCoreResult{}, fmt.Errorf("svcbench: %s: %w", name, err)
	}
	return bench.SimCoreResult{
		Name:           name,
		NsPerOp:        ns,
		AllocsPerOp:    allocs,
		BytesPerOp:     bytes,
		AllocsPerRound: -1, // not a round-structured workload
		Rounds:         overloadQueue,
		Messages:       int64(sheds),
	}, nil
}
