// Package svcbench extends the simulator-core perf suite (internal/bench)
// with service-layer workloads. It is a separate package only because of
// an import constraint: the root package's own tests import internal/bench,
// so internal/bench importing internal/service (which imports the root
// package) would cycle. cmd/colorbench composes the two suites into one
// BENCH_simcore.json report.
package svcbench

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"

	distcolor "repro"
	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/service"
)

// The service-overload workload: shed latency is a production metric now
// that colord does admission control, so it is tracked in
// BENCH_simcore.json beside the data-plane and algorithm numbers. The
// scenario is the in-process twin of `colorbench -server URL -overload N`
// against a live daemon — here the server is Frozen (no workers), so
// occupancy is deterministic: the queue is filled to capacity once, and
// every burst submission after that MUST be shed with HTTP 429.
//
// One op is a burst of overloadBurst submissions through real HTTP round
// trips, all shed; ns/op is therefore burst shed latency (÷64 for
// per-request latency). The deterministic columns are repurposed —
// documented here because the suite schema is shared: Rounds records the
// accepted fill (the queue capacity) and Messages the sheds per op; both
// must reproduce exactly on every machine or admission semantics changed.
const (
	overloadQueue = 32
	overloadBurst = 64
)

// overloadRequest is the tiny fixed workload of the flood (a 16-cycle);
// caching is disabled in the scenario, so identical submissions all charge
// admission.
func overloadRequest() *distcolor.Request {
	edges := make([][2]int, 16)
	for i := range edges {
		edges[i] = [2]int{i, (i + 1) % 16}
	}
	return &distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy, Graph: distcolor.GraphSpec{N: 16, Edges: edges}}
}

// OverloadResult measures the admission shed path end to end and returns
// it in the simulator-core suite's result shape.
func OverloadResult(ctx context.Context) (bench.SimCoreResult, error) {
	name := "service/overload/shed-burst64"
	srv, err := service.NewServer(service.Config{Workers: 1, Frozen: true, QueueDepth: overloadQueue, CacheEntries: -1})
	if err != nil {
		return bench.SimCoreResult{}, fmt.Errorf("svcbench: %s: %w", name, err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &service.Client{Base: ts.URL, MaxRetries: -1} // every 429 must be observed, not retried

	// Deterministic occupancy: fill the queue to capacity once. The server
	// is frozen, so these jobs never drain and every later submission sheds.
	for i := 0; i < overloadQueue; i++ {
		if _, err := c.Submit(ctx, overloadRequest()); err != nil {
			return bench.SimCoreResult{}, fmt.Errorf("svcbench: %s: fill %d: %w", name, i, err)
		}
	}
	sheds := 0
	op := func() error {
		n := 0
		for i := 0; i < overloadBurst; i++ {
			_, subErr := c.Submit(ctx, overloadRequest())
			var he *service.HTTPError
			switch {
			case errors.As(subErr, &he) && he.Code == http.StatusTooManyRequests:
				n++
			case subErr == nil:
				return fmt.Errorf("burst submission %d was accepted; frozen occupancy leaked", i)
			default:
				return subErr
			}
		}
		sheds = n
		return nil
	}
	ns, allocs, bytes, err := bench.MeasureOp(op)
	if err != nil {
		return bench.SimCoreResult{}, fmt.Errorf("svcbench: %s: %w", name, err)
	}
	return bench.SimCoreResult{
		Name:           name,
		NsPerOp:        ns,
		AllocsPerOp:    allocs,
		BytesPerOp:     bytes,
		AllocsPerRound: -1, // not a round-structured workload
		Rounds:         overloadQueue,
		Messages:       int64(sheds),
	}, nil
}

// The ingest-throughput workload: one op streams the 100k-vertex pipeline
// graph into a frozen colord over real HTTP as a chunked binary request
// (DESIGN.md §11), then cancels the queued job to return its admission
// charge. The server's in-flight bound is set far below the graph's
// admission cost, so the op exercises exactly the path the binary wire
// exists for — a graph only chunked ingest can admit. ns/op is end-to-end
// ingest latency (client encode, HTTP, per-chunk admission, server decode,
// graph build); colorbench derives MB/s and vertices/s from it. The
// deterministic columns are repurposed as with the overload workload:
// Rounds is the edge-chunk count and Messages the exact wire bytes per op —
// both must reproduce everywhere or the stream encoding changed.
const (
	// IngestVertices is the streamed graph's vertex count, exported so
	// colorbench can derive vertices/s from ns/op.
	IngestVertices = 100_000
	ingestDegree   = 8
	ingestSeed     = 2017
	// ingestBound is the server's MaxInflightBytes: ~8 MiB against a graph
	// whose admission cost is ~40 MB, so buffered submission is impossible.
	ingestBound = 8 << 20
)

// IngestResult measures chunked binary ingest end to end and returns it in
// the simulator-core suite's result shape.
func IngestResult(ctx context.Context) (bench.SimCoreResult, error) {
	name := fmt.Sprintf("service/ingest/stream-pipe%dk", IngestVertices/1000)
	g, err := gen.NearRegular(IngestVertices, ingestDegree, ingestSeed)
	if err != nil {
		return bench.SimCoreResult{}, fmt.Errorf("svcbench: %s: %w", name, err)
	}
	req := &distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy, Graph: distcolor.Spec(g)}
	srv, err := service.NewServer(service.Config{
		Workers: 1, Frozen: true, QueueDepth: 64, CacheEntries: -1, MaxInflightBytes: ingestBound,
	})
	if err != nil {
		return bench.SimCoreResult{}, fmt.Errorf("svcbench: %s: %w", name, err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &service.Client{Base: ts.URL, MaxRetries: -1}

	streamBytes := distcolor.RequestStreamLen(req, 0)
	chunks := (len(req.Graph.Edges) + distcolor.DefaultChunkEdges - 1) / distcolor.DefaultChunkEdges
	op := func() error {
		st, subErr := c.SubmitStream(ctx, req)
		if subErr != nil {
			return subErr
		}
		// The server is frozen, so the job sits queued; cancel returns its
		// admission charge and queue slot for the next op.
		_, cancelErr := c.Cancel(ctx, st.ID)
		return cancelErr
	}
	ns, allocs, bytes, err := bench.MeasureOp(op)
	if err != nil {
		return bench.SimCoreResult{}, fmt.Errorf("svcbench: %s: %w", name, err)
	}
	return bench.SimCoreResult{
		Name:           name,
		NsPerOp:        ns,
		AllocsPerOp:    allocs,
		BytesPerOp:     bytes,
		AllocsPerRound: -1, // not a round-structured workload
		Rounds:         chunks,
		Messages:       streamBytes,
	}, nil
}
