package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	distcolor "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func cycleRequest(n int) *distcolor.Request {
	g := graph.Cycle(n)
	return &distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy, Graph: distcolor.Spec(g)}
}

func gnpRequest(algorithm string, n int, p float64, seed int64) *distcolor.Request {
	return &distcolor.Request{Algorithm: algorithm, Graph: distcolor.Spec(gen.GNP(n, p, seed))}
}

func waitDone(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	st, err := s.WaitTimeout(id, 2*time.Minute)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	if st.State != StateDone {
		t.Fatalf("job %s finished %s (%s)", id, st.State, st.Error)
	}
	return st
}

func TestSubmitRunVerify(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	req := gnpRequest(distcolor.AlgoEdgeStar, 48, 0.2, 1)
	req.X = 1
	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() && st.State != StateDone {
		t.Fatalf("fresh submission immediately %s", st.State)
	}
	st = waitDone(t, s, st.ID)
	if st.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	resp, _, err := s.Result(st.ID)
	if err != nil || resp == nil {
		t.Fatalf("result: %v (resp=%v)", err, resp)
	}
	g, _ := req.Graph.Build()
	if err := verify.EdgeColoring(g, resp.Colors, resp.Palette); err != nil {
		t.Fatalf("served coloring invalid: %v", err)
	}
	if resp.Stats.Rounds <= 0 {
		t.Fatalf("served stats empty: %+v", resp.Stats)
	}
}

func TestCacheHitOnIdenticalResubmission(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	req := cycleRequest(24)
	st1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st1.ID)

	st2, err := s.Submit(cycleRequest(24))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("identical resubmission not served from cache: %+v", st2)
	}
	m := s.Metrics()
	if m.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1 (metrics %+v)", m.CacheHits, m)
	}
	if m.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1", m.CacheMisses)
	}
}

func TestCacheHitOnIsomorphicResubmission(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	g := gen.GNP(32, 0.2, 5)
	st1, err := s.Submit(&distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy, Graph: distcolor.Spec(g)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st1.ID)

	// Random relabeling: same structure, different vertex names.
	rng := rand.New(rand.NewSource(77))
	perm := rng.Perm(g.N())
	b := distcolor.NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(perm[e.U], perm[e.V])
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Submit(&distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy, Graph: distcolor.Spec(h)})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatalf("isomorphic resubmission missed the cache: %+v", st2)
	}
	resp, _, err := s.Result(st2.ID)
	if err != nil || resp == nil {
		t.Fatalf("result: %v", err)
	}
	if err := verify.EdgeColoring(h, resp.Colors, resp.Palette); err != nil {
		t.Fatalf("remapped cached coloring invalid on the relabeled graph: %v", err)
	}
}

func TestVertexAlgorithmsRoundTrip(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	// Δ+1 vertex coloring.
	req := gnpRequest(distcolor.AlgoVertexDelta1, 30, 0.15, 3)
	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	resp, _, _ := s.Result(st.ID)
	g, _ := req.Graph.Build()
	if err := verify.VertexColoring(g, resp.Colors, resp.Palette); err != nil {
		t.Fatalf("vertex coloring invalid: %v", err)
	}

	// CD coloring of a bounded-diversity clique graph, then an identical
	// resubmission from cache.
	cg, cliques, err := gen.BoundedDiversityCliqueGraph(40, 12, 5, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	spec := distcolor.Spec(cg)
	spec.Cliques = cliques
	cdReq := &distcolor.Request{Algorithm: distcolor.AlgoVertexCD, Graph: spec, X: 1}
	st2, err := s.Submit(cdReq)
	if err != nil {
		t.Fatal(err)
	}
	st2 = waitDone(t, s, st2.ID)
	resp2, _, _ := s.Result(st2.ID)
	if err := verify.VertexColoring(cg, resp2.Colors, resp2.Palette); err != nil {
		t.Fatalf("cd coloring invalid: %v", err)
	}
	again := *cdReq
	st3, err := s.Submit(&again)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.CacheHit {
		t.Fatalf("cd resubmission missed the cache: %+v", st3)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	// A slow job to occupy the worker plus one queued slot.
	slow := func(seed int64) *distcolor.Request {
		return gnpRequest(distcolor.AlgoEdgeStar, 160, 0.15, seed)
	}
	if _, err := s.Submit(slow(1)); err != nil {
		t.Fatal(err)
	}
	// Fill the queue (the first job may or may not have been picked up yet;
	// keep submitting until rejection, bounded).
	rejected := false
	for i := int64(2); i < 16; i++ {
		if _, err := s.Submit(slow(i)); err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("unexpected submit error: %v", err)
			}
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("queue depth 1 never rejected a submission")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: 8, CacheEntries: -1})
	// Occupy the single worker with a slow job, then cancel a queued one.
	if _, err := s.Submit(gnpRequest(distcolor.AlgoEdgeStar, 160, 0.15, 21)); err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(gnpRequest(distcolor.AlgoEdgeGreedy, 64, 0.2, 22))
	if err != nil {
		t.Fatal(err)
	}
	cst, err := s.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cst.State != StateCanceled && cst.State != StateRunning && cst.State != StateDone {
		t.Fatalf("cancel left state %s", cst.State)
	}
	final, err := s.WaitTimeout(st.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled && final.State != StateDone {
		t.Fatalf("canceled job finished %s", final.State)
	}
}

func TestTraceRecordsRounds(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	st, err := s.Submit(gnpRequest(distcolor.AlgoEdgeGreedy, 40, 0.2, 13))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	events, state, _, err := s.Trace(st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if state != StateDone {
		t.Fatalf("trace state %s", state)
	}
	if len(events) == 0 {
		t.Fatal("no round-trace events recorded")
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if events[len(events)-1].Exec < 1 {
		t.Fatal("trace never identified an execution")
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	ctx := context.Background()
	s := testServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	req := cycleRequest(30)
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.Wait(ctx, st.ID, 10*time.Millisecond, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
	}
	resp, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := req.Graph.Build()
	if err := verify.EdgeColoring(g, resp.Colors, resp.Palette); err != nil {
		t.Fatalf("HTTP-served coloring invalid: %v", err)
	}

	// Streaming trace over HTTP: events then a terminal line.
	n := 0
	state, err := c.Trace(ctx, st.ID, func(TraceEvent) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if state != StateDone || n == 0 {
		t.Fatalf("trace stream: state=%s events=%d", state, n)
	}

	// Second identical submission: served from cache, observable in the
	// metrics endpoint.
	st2, err := c.Submit(ctx, cycleRequest(30))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("resubmission not cache-served: %+v", st2)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits < 1 {
		t.Fatalf("metrics report %d cache hits", m.CacheHits)
	}
}

func TestHTTPGenerateAndBatch(t *testing.T) {
	ctx := context.Background()
	s := testServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	out, err := c.Generate(ctx, GenerateRequest{
		Gen:      GenSpec{Family: "foresthub", N: 80, A: 2, Hub: 30, Seed: 4, Count: 2},
		Template: distcolor.Request{Algorithm: distcolor.AlgoEdgeSparse, Arboricity: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 2 {
		t.Fatalf("generate submitted %d jobs", len(out.Jobs))
	}
	for _, job := range out.Jobs {
		if job.Error != "" {
			t.Fatalf("generated job failed to submit: %s", job.Error)
		}
		st, err := c.Wait(ctx, job.ID, 10*time.Millisecond, 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("generated job %s: %s (%s)", job.ID, st.State, st.Error)
		}
	}

	// Batch: one good and one bogus request; outcomes are index-aligned.
	batch, err := c.Batch(ctx, []distcolor.Request{
		*cycleRequest(12),
		{Algorithm: "nope", Graph: distcolor.GraphSpec{N: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Jobs) != 2 || batch.Jobs[0].Error != "" || batch.Jobs[1].Error == "" {
		t.Fatalf("batch outcomes wrong: %+v", batch.Jobs)
	}
	if batch.Jobs[1].Retryable {
		t.Fatalf("invalid request marked retryable: %+v", batch.Jobs[1])
	}
}

// TestConcurrentHammer exercises the cache and worker pool from many
// goroutines at once; it is the subject of the Makefile's race target.
func TestConcurrentHammer(t *testing.T) {
	s := testServer(t, Config{Workers: 4, QueueDepth: 512})
	const (
		goroutines = 8
		perG       = 12
		distinct   = 5 // distinct workloads → heavy deliberate cache contention
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				req := gnpRequest(distcolor.AlgoEdgeGreedy, 24, 0.2, int64((w*perG+i)%distinct))
				st, err := s.Submit(req)
				if err != nil {
					errs <- err
					continue
				}
				fin, err := s.WaitTimeout(st.ID, 2*time.Minute)
				if err != nil {
					errs <- err
					continue
				}
				if fin.State != StateDone {
					errs <- fmt.Errorf("job %s: %s (%s)", fin.ID, fin.State, fin.Error)
					continue
				}
				resp, _, err := s.Result(fin.ID)
				if err != nil || resp == nil {
					errs <- fmt.Errorf("result %s: %v", fin.ID, err)
					continue
				}
				g, _ := req.Graph.Build()
				if err := verify.EdgeColoring(g, resp.Colors, resp.Palette); err != nil {
					errs <- fmt.Errorf("job %s served invalid coloring: %v", fin.ID, err)
				}
				if i%3 == 0 {
					_, _, _, _ = s.Trace(fin.ID, 0)
					_ = s.Metrics()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Completed != goroutines*perG {
		t.Fatalf("completed %d of %d", m.Completed, goroutines*perG)
	}
	if m.CacheHits == 0 {
		t.Fatal("hammer with repeated workloads produced zero cache hits")
	}
	if m.CacheHits+m.CacheMisses != m.Submitted {
		t.Fatalf("cache accounting: hits %d + misses %d != submitted %d", m.CacheHits, m.CacheMisses, m.Submitted)
	}
}

// TestCacheEvictionLRU fills a tiny cache beyond capacity and checks both
// bounded size and that re-running an evicted workload re-simulates.
func TestCacheEvictionLRU(t *testing.T) {
	s := testServer(t, Config{Workers: 1, CacheEntries: 2})
	for seed := int64(0); seed < 4; seed++ {
		st, err := s.Submit(gnpRequest(distcolor.AlgoEdgeGreedy, 16, 0.25, seed))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, st.ID)
	}
	if n := s.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, cap 2", n)
	}
	// Workload 0 was evicted (LRU): resubmission misses.
	st, err := s.Submit(gnpRequest(distcolor.AlgoEdgeGreedy, 16, 0.25, 0))
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("evicted workload reported a cache hit")
	}
	waitDone(t, s, st.ID)
}

// TestParallelPolicyIsBitIdentical checks the Config.Parallel wall-clock
// policy: the sharded engine must serve exactly the coloring the
// sequential engine serves.
func TestParallelPolicyIsBitIdentical(t *testing.T) {
	seqS := testServer(t, Config{Workers: 1, CacheEntries: -1})
	parS := testServer(t, Config{Workers: 1, CacheEntries: -1, Parallel: true})
	req := gnpRequest(distcolor.AlgoEdgeGreedy, 48, 0.2, 31)
	var got [2][]int64
	for i, s := range []*Server{seqS, parS} {
		r := *req
		st, err := s.Submit(&r)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, st.ID)
		resp, _, err := s.Result(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		got[i] = resp.Colors
	}
	if len(got[0]) != len(got[1]) {
		t.Fatalf("color vector lengths differ: %d vs %d", len(got[0]), len(got[1]))
	}
	for e := range got[0] {
		if got[0][e] != got[1][e] {
			t.Fatalf("edge %d: sequential color %d, parallel color %d", e, got[0][e], got[1][e])
		}
	}
}

// TestCacheKeyNormalizesDefaults: X omitted (0) and X:1 run identically for
// edge/star, so they must share a cache entry; likewise Q 0 vs 3 for
// edge/sparse.
func TestCacheKeyNormalizesDefaults(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	g := gen.GNP(24, 0.25, 17)
	first := &distcolor.Request{Algorithm: distcolor.AlgoEdgeStar, Graph: distcolor.Spec(g)} // X omitted
	st, err := s.Submit(first)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	second := &distcolor.Request{Algorithm: distcolor.AlgoEdgeStar, Graph: distcolor.Spec(g), X: 1}
	st2, err := s.Submit(second)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatalf("X:1 resubmission of an X-omitted workload missed the cache: %+v", st2)
	}

	sp := &distcolor.Request{Algorithm: distcolor.AlgoEdgeSparse, Graph: distcolor.Spec(gen.ForestUnion(40, 2, 2)), Arboricity: 2}
	st3, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st3.ID)
	spQ := *sp
	spQ.Q = 3 // the default, spelled out
	st4, err := s.Submit(&spQ)
	if err != nil {
		t.Fatal(err)
	}
	if !st4.CacheHit {
		t.Fatalf("Q:3 resubmission of a Q-omitted workload missed the cache: %+v", st4)
	}
}

// TestCacheSizeGate: graphs over the canonicalization bounds bypass the
// cache (counted as skipped) but still run and serve.
func TestCacheSizeGate(t *testing.T) {
	s := testServer(t, Config{Workers: 1, CacheMaxVertices: 10})
	req := cycleRequest(24) // 24 > 10: uncacheable
	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	st2, err := s.Submit(cycleRequest(24))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st2.ID)
	if st2.CacheHit {
		t.Fatal("over-bound graph reported a cache hit")
	}
	m := s.Metrics()
	if m.CacheSkipped != 2 || m.CacheHits != 0 || m.CacheMisses != 0 {
		t.Fatalf("gate accounting wrong: %+v", m)
	}
}

// TestTraceDepthOne: the minimal trace bound must not panic the observer.
func TestTraceDepthOne(t *testing.T) {
	s := testServer(t, Config{Workers: 1, TraceDepth: 1, CacheEntries: -1})
	st, err := s.Submit(cycleRequest(16))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	events, _, firstSeq, err := s.Trace(st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 && firstSeq == 0 {
		t.Fatal("depth-1 trace retained nothing and reported no drops")
	}
}

// TestSubmitRejectsOutOfRangeEndpoints guards the wire codec against int32
// wrap-around: a 64-bit endpoint must be rejected, not silently truncated.
func TestSubmitRejectsOutOfRangeEndpoints(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	req := &distcolor.Request{
		Algorithm: distcolor.AlgoEdgeGreedy,
		Graph:     distcolor.GraphSpec{N: 5, Edges: [][2]int{{4294967299, 1}}},
	}
	if _, err := s.Submit(req); err == nil {
		t.Fatal("endpoint 2^32+3 was accepted")
	}
}

// TestGenerateRejectsHostileParams: the generator endpoint must bound its
// wire parameters before any graph materializes.
func TestGenerateRejectsHostileParams(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}
	for _, g := range []GenSpec{
		{Family: "tree", N: -1},
		{Family: "tree", N: 1 << 30},
		{Family: "gnp", N: 10, Count: 1 << 40},
		{Family: "grid", Rows: 40000, Cols: 40000},
		{Family: "hypergraph", NV: 10, Rank: 3, NE: 100_000_000},
	} {
		_, err := c.Generate(context.Background(), GenerateRequest{Gen: g, Template: distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy}})
		if err == nil {
			t.Fatalf("hostile generator spec %+v was accepted", g)
		}
	}
}
