package service

// Chunked binary ingest: the server half of the distcolor stream protocol
// (codecstream.go, DESIGN.md §11). A buffered submission buys its whole
// admission charge in one decision, which caps any single job at
// MaxInflightBytes. A streamed submission instead charges per edge chunk as
// it reads, so the bound protects the server's memory at every instant
// while the stream's own total may exceed it — the graph limits
// (MaxVertices/MaxEdges) stay the per-job size authority.

import (
	"errors"
	"fmt"

	distcolor "repro"
)

// SubmitStream admits and submits a chunked binary request stream. rr must
// have returned a chunked header from Begin, and skel is that header's
// request skeleton (no edges yet). The base charge — everything but the
// edges — is admitted up front along with the queue reservation; each edge
// chunk is then charged before the next is read. A chunk that does not fit
// sheds the whole stream with *OverloadError (HTTP 429), returning every
// byte charged so far; a malformed stream is a rejection (HTTP 400).
func (s *Server) SubmitStream(rr *distcolor.RequestReader, skel *distcolor.Request) (JobStatus, error) {
	if !rr.Chunked() {
		s.countRejected()
		return JobStatus{}, errors.New("service: SubmitStream needs a chunked request stream")
	}
	declared := rr.Declared()
	// Size limits are checked from the header, before any admission charge
	// or edge bytes: an oversized stream costs the server one frame.
	if s.cfg.MaxVertices > 0 && skel.Graph.N > s.cfg.MaxVertices {
		s.countRejected()
		return JobStatus{}, fmt.Errorf("service: graph has %d vertices, limit %d", skel.Graph.N, s.cfg.MaxVertices)
	}
	if s.cfg.MaxEdges > 0 && declared > s.cfg.MaxEdges {
		s.countRejected()
		return JobStatus{}, fmt.Errorf("service: stream declares %d edges, limit %d", declared, s.cfg.MaxEdges)
	}

	base := jobCostSansEdges(skel)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	if err := s.admitLocked(base); err != nil {
		s.mu.Unlock()
		var ov *OverloadError
		if errors.As(err, &ov) {
			s.log.Warn("stream shed at header", "reason", ov.Reason, "retry_after", ov.RetryAfter)
		}
		return JobStatus{}, err
	}
	s.mu.Unlock()
	held := base

	edges := skel.Graph.Edges[:0]
	if declared > 0 && len(edges) == 0 {
		edges = make([][2]int, 0, declared)
	}
	for {
		chunk, done, err := rr.ReadChunk()
		if err != nil {
			s.releaseStream(held)
			s.countRejected()
			return JobStatus{}, err
		}
		if done {
			break
		}
		charge := int64(len(chunk)) * jobCostPerEdge
		s.mu.Lock()
		if err := s.admitChunkLocked(charge, held); err != nil {
			s.mu.Unlock()
			s.releaseStream(held)
			var ov *OverloadError
			if errors.As(err, &ov) {
				s.log.Warn("stream shed mid-ingest", "reason", ov.Reason,
					"edges_read", len(edges), "declared", declared, "retry_after", ov.RetryAfter)
			}
			return JobStatus{}, err
		}
		s.mu.Unlock()
		held += charge
		edges = append(edges, chunk...)
	}
	skel.Graph.Edges = edges

	// The stream's accumulated charge equals jobCost(skel) by construction
	// (base + declared*jobCostPerEdge, and the reader enforced the tally),
	// so the handoff carries exactly what a buffered admission would have.
	return s.submit(skel, held)
}
