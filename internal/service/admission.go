package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	distcolor "repro"
)

// Admission control: the front door of the service is no longer an
// unbounded queue. Every submission carries an estimated memory cost
// (jobCost) and the server bounds both the queue depth and the total
// estimated bytes of accepted-but-unfinished work (Config.MaxInflightBytes).
// A submission over either bound is shed with *OverloadError — HTTP 429
// plus a Retry-After derived from the observed service rate — instead of
// growing the queue until the daemon OOMs. /v1/healthz exposes the same
// accounting as a readiness view (503 while shedding), so load balancers
// can drain a saturated instance before its clients see 429s.
//
// Recovery bypasses admission on purpose: a job replayed from the WAL was
// admitted before the crash, so it is re-enqueued unconditionally — but its
// cost still counts toward the in-flight budget, so fresh submissions shed
// until the backlog drains.

// ErrOverloaded matches (via errors.Is) every load-shedding rejection.
var ErrOverloaded = errors.New("service: overloaded")

// ErrDegraded matches (via errors.Is) submissions shed because the server
// is in read-only degraded mode: the journal cannot make new work durable.
var ErrDegraded = errors.New("service: degraded, journal unavailable")

// DegradedError is a degraded-mode shed (HTTP 503 + Retry-After): the
// journal is failing, so a submission that is not a cache hit is refused
// rather than accepted without durability. It matches ErrDegraded.
type DegradedError struct {
	// Reason is the journal error that flipped the server degraded.
	Reason string
	// RetryAfter hints when to retry; the server probes the store for
	// recovery on the same cadence it prices here.
	RetryAfter time.Duration
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("service: degraded (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Is matches ErrDegraded.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// OverloadError is a load-shedding rejection: the work was not accepted and
// the client should retry after RetryAfter. It matches ErrOverloaded, and —
// for the queue-bound case — the legacy ErrQueueFull.
type OverloadError struct {
	// Reason is "queue" (depth bound) or "inflight-bytes" (memory bound).
	Reason string
	// RetryAfter estimates when capacity frees up, from the current backlog
	// and the observed per-job service time.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Is matches ErrOverloaded always, and ErrQueueFull for the queue-depth
// bound — the error pre-admission-control callers tested for.
func (e *OverloadError) Is(target error) bool {
	return target == ErrOverloaded || (target == ErrQueueFull && e.Reason == "queue")
}

// jobCostBase is the fixed per-job overhead estimate (job struct, trace
// buffer headroom, bookkeeping) on top of the graph-proportional terms.
const jobCostBase = 4096

// jobCostPerEdge prices one edge: the spec pair, the CSR arcs, and the
// simulator's per-arc message slabs. Chunked ingest charges admission with
// the same constant, so a streamed job's accumulated charge equals what
// jobCost would have said had the request arrived buffered.
const jobCostPerEdge = 96

// jobCost estimates the resident bytes a submission pins while in flight:
// the spec, the built graph with its CSR view, and the simulator's per-arc
// message slabs all scale with edges; vertex state scales with n. It is a
// deliberate overestimate-leaning heuristic — admission is a memory fuse,
// not an allocator.
func jobCost(req *distcolor.Request) int64 {
	return jobCostSansEdges(req) + int64(len(req.Graph.Edges))*jobCostPerEdge
}

// jobCostSansEdges is jobCost's edge-independent part — what a chunked
// stream charges up front, before any edge bytes arrive.
func jobCostSansEdges(req *distcolor.Request) int64 {
	cost := int64(jobCostBase)
	cost += int64(req.Graph.N) * 16
	for _, cl := range req.Graph.Cliques {
		cost += int64(len(cl)) * 16
	}
	return cost
}

// admitLocked charges cost against the queue-depth and in-flight-bytes
// bounds, returning an *OverloadError when either would be exceeded. On
// nil it reserves both a queue slot and the byte charge: Submit journals
// outside s.mu before the job enters the queue, so occupancy must be
// counted at admission (queueReserved) — otherwise concurrent submissions
// would all pass the depth check before any of them publishes, and the
// queue bound would leak exactly under the load it exists for. The caller
// owns the reservation: the publish path converts it into a queue entry,
// withdraw returns it, and releaseLocked returns the bytes at the job's
// terminal transition.
func (s *Server) admitLocked(cost int64) error {
	if len(s.queue)+s.queueReserved >= s.cfg.QueueDepth {
		s.obs.shed.Inc()
		return &OverloadError{Reason: "queue", RetryAfter: s.retryAfterLocked()}
	}
	if s.cfg.MaxInflightBytes > 0 && s.inflightBytes+cost > s.cfg.MaxInflightBytes {
		s.obs.shed.Inc()
		return &OverloadError{Reason: "inflight-bytes", RetryAfter: s.retryAfterLocked()}
	}
	s.queueReserved++
	s.inflightBytes += cost
	return nil
}

// releaseLocked returns a job's admission charge; the caller holds s.mu.
func (s *Server) releaseLocked(cost int64) {
	s.inflightBytes -= cost
}

// admitChunkLocked charges one edge chunk of an in-progress ingest stream.
// held is the charge the stream has accumulated so far: it is subtracted
// from the occupancy check, so a stream is bounded by what the REST of the
// server holds plus one chunk — not by its own size. That asymmetry is the
// point of chunked ingest: a graph larger than MaxInflightBytes is
// admissible as long as each chunk fits next to everyone else's work,
// because by the time later chunks arrive the stream has already been
// granted the earlier ones. The queue slot was reserved with the stream's
// base charge (admitLocked), so no depth check here.
func (s *Server) admitChunkLocked(chunk, held int64) error {
	if s.cfg.MaxInflightBytes > 0 && s.inflightBytes-held+chunk > s.cfg.MaxInflightBytes {
		s.obs.shed.Inc()
		return &OverloadError{Reason: "inflight-bytes", RetryAfter: s.retryAfterLocked()}
	}
	s.inflightBytes += chunk
	return nil
}

// releaseStream abandons an in-progress (or handed-off-then-rejected)
// ingest stream: its queue reservation and accumulated byte charge return
// to the admission budget.
func (s *Server) releaseStream(held int64) {
	s.mu.Lock()
	s.queueReserved--
	s.releaseLocked(held)
	s.mu.Unlock()
}

// retryAfterLocked estimates when shed work could be re-submitted: the
// backlog (queued + running jobs) divided by the worker pool, priced at the
// observed mean job wall time (250ms before any job completed), clamped to
// [1s, 30s] so clients neither hammer nor stall.
func (s *Server) retryAfterLocked() time.Duration {
	per := 250 * time.Millisecond
	if completed := s.obs.completed.Value(); completed > 0 {
		per = time.Duration(s.obs.wallMSTotal.Value()/completed) * time.Millisecond
	}
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	backlog := len(s.queue) + s.queueReserved + int(s.obs.running.Value())
	est := per * time.Duration(backlog+1) / time.Duration(workers)
	if est < time.Second {
		return time.Second
	}
	if est > 30*time.Second {
		return 30 * time.Second
	}
	return est
}

// Health is the readiness view served by /v1/healthz: a server is Ready
// while it would accept a zero-cost submission — the moment either
// admission bound is exhausted (or the server is closed) readiness drops,
// before clients start eating 429s.
type Health struct {
	OK               bool  `json:"ok"`
	Ready            bool  `json:"ready"`
	QueueDepth       int   `json:"queue_depth"`
	QueueCap         int   `json:"queue_cap"`
	Running          int   `json:"running"`
	InflightBytes    int64 `json:"inflight_bytes"`
	MaxInflightBytes int64 `json:"max_inflight_bytes"`
	// Durable reports whether a write-ahead job store backs this instance;
	// StoreSegments/StoreBytes describe its on-disk journal when so.
	Durable       bool  `json:"durable"`
	StoreSegments int   `json:"store_segments,omitempty"`
	StoreBytes    int64 `json:"store_bytes,omitempty"`
	// StoreDegraded carries the journal's last failed maintenance
	// (rotation/compaction). Appends — and therefore durability — still
	// work, but the journal is not being bounded; an operator should look
	// at the data dir's disk.
	StoreDegraded string `json:"store_degraded,omitempty"`
	// Degraded reports read-only degraded mode: journal appends are
	// FAILING (not merely unmaintained), Submit sheds everything but cache
	// hits with 503, and DegradedReason carries the triggering error. The
	// server probes the store and exits on its own once appends succeed.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// Health snapshots the admission state.
func (s *Server) Health() Health {
	s.mu.Lock()
	h := Health{
		OK: true,
		Ready: !s.closed && s.degraded == "" &&
			len(s.queue)+s.queueReserved < s.cfg.QueueDepth &&
			(s.cfg.MaxInflightBytes <= 0 || s.inflightBytes < s.cfg.MaxInflightBytes),
		Degraded:         s.degraded != "",
		DegradedReason:   s.degraded,
		QueueDepth:       len(s.queue) + s.queueReserved,
		QueueCap:         s.cfg.QueueDepth,
		Running:          int(s.obs.running.Value()),
		InflightBytes:    s.inflightBytes,
		MaxInflightBytes: s.cfg.MaxInflightBytes,
		Durable:          s.store != nil,
	}
	s.mu.Unlock()
	if s.store != nil {
		h.StoreSegments, h.StoreBytes = s.store.Stats()
		if err := s.store.Err(); err != nil {
			h.StoreDegraded = err.Error()
		}
	}
	return h
}

// The sharded batch executor: /v1/batch used to submit its items serially
// on the handler goroutine, so one large batch serialized behind its own
// canonicalization work and monopolized admission. submitAll now stripes
// the items across up to batchMaxShards concurrent shards. Each shard
// draws on a per-shard byte budget — an equal split of MaxInflightBytes —
// so a single batch can saturate at most its fair share of the in-flight
// budget and concurrent batches (or single submissions) still get through.
// Outcomes stay index-aligned with the request; failures are per-item
// (partial failure is the normal case under load), with Retryable and
// RetryAfterMS set on shed items so clients know which half to resubmit.

// batchMaxShards caps batch fan-out regardless of worker-pool size.
const batchMaxShards = 8

// batchShards picks the shard count for a batch of n items.
func (s *Server) batchShards(n int) int {
	shards := s.cfg.Workers
	if shards > batchMaxShards {
		shards = batchMaxShards
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// submitAll fans the batch across shards and reports index-aligned
// outcomes.
func (s *Server) submitAll(reqs []distcolor.Request) BatchResponse {
	out := BatchResponse{Jobs: make([]BatchJob, len(reqs))}
	if len(reqs) == 0 {
		return out
	}
	shards := s.batchShards(len(reqs))
	var budget int64
	if s.cfg.MaxInflightBytes > 0 {
		budget = s.cfg.MaxInflightBytes / int64(shards)
	}
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			var spent int64
			for i := sh; i < len(reqs); i += shards {
				cost := jobCost(&reqs[i])
				if budget > 0 && spent+cost > budget && spent > 0 {
					// Per-shard budget exhausted: shed locally without even
					// contending on admission — the batch already holds its
					// fair share of the in-flight budget.
					out.Jobs[i] = batchJobError(s.batchBudgetShed())
					continue
				}
				st, err := s.Submit(&reqs[i])
				if err != nil {
					out.Jobs[i] = batchJobError(err)
					continue
				}
				if !st.State.Terminal() { // cache hits cost nothing lasting
					spent += cost
				}
				out.Jobs[i] = BatchJob{ID: st.ID, State: st.State, CacheHit: st.CacheHit}
			}
		}(sh)
	}
	wg.Wait()
	return out
}

// batchBudgetShed accounts a per-shard-budget shed like any other shed —
// it must show in Metrics.Shed, which exists precisely to observe batch
// overload — and prices its retry hint from the live backlog instead of a
// constant.
func (s *Server) batchBudgetShed() *OverloadError {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.shed.Inc()
	return &OverloadError{Reason: "batch-budget", RetryAfter: s.retryAfterLocked()}
}

// batchJobError renders one failed submission outcome, marking shed items
// retryable with the server's backoff hint.
func batchJobError(err error) BatchJob {
	bj := BatchJob{Error: err.Error()}
	var ov *OverloadError
	if errors.As(err, &ov) {
		bj.Retryable = true
		bj.RetryAfterMS = ov.RetryAfter.Milliseconds()
	}
	return bj
}
