package service

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	distcolor "repro"
	"repro/internal/verify"
)

// condensed is the comparable shape of a replayed job record.
type condensed struct {
	id, state, errMsg string
	hasReq, hasResp   bool
	cacheHit          bool
}

func condense(rec distcolor.JobRecord) condensed {
	return condensed{
		id: rec.ID, state: rec.State, errMsg: rec.Error,
		hasReq: rec.Request != nil, hasResp: rec.Response != nil,
		cacheHit: rec.CacheHit,
	}
}

func openForTest(t *testing.T, dir string, maxSeg int64) (*Store, []distcolor.JobRecord) {
	t.Helper()
	st, recs, err := OpenStore(dir, maxSeg)
	if err != nil {
		t.Fatalf("OpenStore(%s): %v", dir, err)
	}
	return st, recs
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, recs := openForTest(t, dir, 0)
	if len(recs) != 0 {
		t.Fatalf("fresh store recovered %d records", len(recs))
	}
	req := cycleRequest(8)
	resp := &distcolor.Response{Kind: "edge", Algorithm: "edge/greedy", Palette: 3, Colors: []int64{0, 1, 0, 1, 0, 1, 0, 2}}
	appends := []struct {
		rec  distcolor.JobRecord
		sync bool
	}{
		{distcolor.JobRecord{ID: "j1", State: "queued", Request: req}, true},
		{distcolor.JobRecord{ID: "j1", State: "running"}, false},
		{distcolor.JobRecord{ID: "j1", State: "done", Response: resp, WallMS: 7}, true},
		{distcolor.JobRecord{ID: "j2", State: "queued", Request: req}, true},
		{distcolor.JobRecord{ID: "j3", State: "queued", Request: req}, true},
		{distcolor.JobRecord{ID: "j3", State: "canceled", Error: "service: job canceled"}, true},
		{distcolor.JobRecord{ID: "j4", State: "done", Request: req, Response: resp, CacheHit: true}, true},
	}
	for _, a := range appends {
		if err := st.Append(a.rec, a.sync); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, got := openForTest(t, dir, 0)
	want := []condensed{
		{id: "j1", state: "done", hasReq: true, hasResp: true},
		{id: "j2", state: "queued", hasReq: true},
		{id: "j3", state: "canceled", errMsg: "service: job canceled", hasReq: true},
		{id: "j4", state: "done", hasReq: true, hasResp: true, cacheHit: true},
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d: %+v", len(got), len(want), got)
	}
	for i, rec := range got {
		if condense(rec) != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, condense(rec), want[i])
		}
	}
	if got[0].WallMS != 7 {
		t.Errorf("j1 wall_ms = %d, want 7", got[0].WallMS)
	}
}

// TestStorePrefixReplayConsistent is the crash-consistency property test:
// every byte prefix of a journal — a clean cut at a record boundary, a torn
// frame header, a torn payload — must replay without error to exactly the
// table of the records that are fully contained in the prefix.
func TestStorePrefixReplayConsistent(t *testing.T) {
	dir := t.TempDir()
	st, _ := openForTest(t, dir, 1<<20)
	req := cycleRequest(6)
	resp := &distcolor.Response{Kind: "edge", Algorithm: "edge/greedy", Palette: 3, Colors: []int64{0, 1, 0, 1, 0, 2}}
	script := []distcolor.JobRecord{
		{ID: "j1", State: "queued", Request: req},
		{ID: "j2", State: "queued", Request: req},
		{ID: "j1", State: "running"},
		{ID: "j1", State: "done", Response: resp, WallMS: 3},
		{ID: "j3", State: "queued", Request: req},
		{ID: "j2", State: "running"},
		{ID: "j2", State: "failed", Error: "boom"},
		{ID: "j3", State: "canceled", Error: "service: job canceled"},
		{ID: "j1", State: storeStateForgotten},
		{ID: "j4", State: "done", Request: req, Response: resp, CacheHit: true},
	}
	for _, rec := range script {
		if err := st.Append(rec, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The whole scripted journal lives in segment 1 (maxSeg is large).
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}

	// Recover the record boundaries from the framing itself.
	var bounds []int64 // end offset of record i
	off := int64(0)
	for off < int64(len(data)) {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 8 + n
		bounds = append(bounds, off)
	}
	if off != int64(len(data)) || len(bounds) != len(script) {
		t.Fatalf("journal framing: %d records ending at %d, want %d records over %d bytes", len(bounds), off, len(script), len(data))
	}

	// expected replays the first k script records through the same merge
	// semantics the store promises.
	expected := func(k int) map[string]condensed {
		table := map[string]*distcolor.JobRecord{}
		for _, rec := range script[:k] {
			cp := rec
			mergeRecord(table, &cp)
		}
		out := map[string]condensed{}
		for id, rec := range table {
			out[id] = condense(*rec)
		}
		return out
	}

	// Cut points: every record boundary (clean crash), plus tears inside
	// the next record's header and payload.
	var cuts []int64
	prev := int64(0)
	for _, b := range bounds {
		cuts = append(cuts, prev, prev+3, prev+8, (prev+b)/2, b-1)
		prev = b
	}
	cuts = append(cuts, int64(len(data)))
	for _, cut := range cuts {
		if cut < 0 || cut > int64(len(data)) {
			continue
		}
		// Records fully contained in the prefix.
		k := 0
		for k < len(bounds) && bounds[k] <= cut {
			k++
		}
		pdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(pdir, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		pst, recs, err := OpenStore(pdir, 1<<20)
		if err != nil {
			t.Fatalf("prefix %d/%d bytes: replay failed: %v", cut, len(data), err)
		}
		got := map[string]condensed{}
		for _, rec := range recs {
			got[rec.ID] = condense(rec)
		}
		want := expected(k)
		if len(got) != len(want) {
			t.Fatalf("prefix %d bytes (%d records): table %+v, want %+v", cut, k, got, want)
		}
		for id, w := range want {
			if got[id] != w {
				t.Fatalf("prefix %d bytes: job %s = %+v, want %+v", cut, id, got[id], w)
			}
		}
		// The truncated store accepts appends cleanly.
		if err := pst.Append(distcolor.JobRecord{ID: "j9", State: "queued", Request: req}, true); err != nil {
			t.Fatalf("prefix %d bytes: append after recovery: %v", cut, err)
		}
		pst.Close()
	}
}

// TestStoreCompaction drives enough appends through a tiny segment bound to
// trigger rotation-time compaction, and checks that the journal stays
// bounded while replaying to the same table — with forgotten jobs dropped.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	st, _ := openForTest(t, dir, 2048) // tiny segments force rotations
	req := cycleRequest(6)
	resp := &distcolor.Response{Kind: "edge", Algorithm: "edge/greedy", Palette: 3, Colors: []int64{0, 1, 0, 1, 0, 2}}
	const jobs = 40
	for i := 1; i <= jobs; i++ {
		id := fmt.Sprintf("j%d", i)
		if err := st.Append(distcolor.JobRecord{ID: id, State: "queued", Request: req}, true); err != nil {
			t.Fatal(err)
		}
		if err := st.Append(distcolor.JobRecord{ID: id, State: "done", Response: resp}, true); err != nil {
			t.Fatal(err)
		}
		if i <= jobs/2 { // first half forgotten by retention
			if err := st.Append(distcolor.JobRecord{ID: id, State: storeStateForgotten}, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	segments, _ := st.Stats()
	if segments >= storeCompactSegments+2 {
		t.Fatalf("journal grew to %d segments despite compaction", segments)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openForTest(t, dir, 2048)
	if len(recs) != jobs/2 {
		t.Fatalf("recovered %d jobs, want %d (forgotten half must stay dropped)", len(recs), jobs/2)
	}
	for i, rec := range recs {
		wantID := fmt.Sprintf("j%d", jobs/2+i+1)
		if rec.ID != wantID || rec.State != "done" || rec.Response == nil {
			t.Fatalf("record %d = %s/%s (resp %v), want %s/done", i, rec.ID, rec.State, rec.Response != nil, wantID)
		}
	}
}

// TestForgottenJobIDsStayBurned: a job dropped by retention disappears
// from the replayed table, but its ID must never be handed out again — a
// client still holding it would silently read a different job. The
// high-water mark must survive plain replay AND compaction (which rewrites
// the journal from the table the forgotten job is already gone from).
func TestForgottenJobIDsStayBurned(t *testing.T) {
	dir := t.TempDir()
	st, _ := openForTest(t, dir, 0)
	req := cycleRequest(6)
	for _, rec := range []distcolor.JobRecord{
		{ID: "j1", State: "queued", Request: req},
		{ID: "j1", State: "done"},
		{ID: "j7", State: "queued", Request: req},
		{ID: "j7", State: "done"},
		{ID: "j7", State: storeStateForgotten}, // the highest ID is forgotten
	} {
		if err := st.Append(rec, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil { // compaction must preserve the mark
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, recs := openForTest(t, dir, 0)
	st2.Close()
	if len(recs) != 1 || recs[0].ID != "j1" {
		t.Fatalf("recovered table %+v, want only j1", recs)
	}
	if got := st2.MaxJobID(); got != 7 {
		t.Fatalf("MaxJobID = %d after forget+compact, want 7", got)
	}
	// End to end: a server on this dir must assign j8, not reuse j7.
	s, err := NewServer(Config{Workers: 1, CacheEntries: -1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	jst, err := s.Submit(cycleRequest(8))
	if err != nil {
		t.Fatal(err)
	}
	if jst.ID != "j8" {
		t.Fatalf("post-forget submission got ID %s, want j8 (j7 is burned)", jst.ID)
	}
}

// TestStoreTornTailGarbage: garbage appended by a crash (not even a valid
// frame) is truncated away on open, and the store keeps working.
func TestStoreTornTailGarbage(t *testing.T) {
	dir := t.TempDir()
	st, _ := openForTest(t, dir, 0)
	req := cycleRequest(4)
	if err := st.Append(distcolor.JobRecord{ID: "j1", State: "queued", Request: req}, true); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(1)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st2, recs := openForTest(t, dir, 0)
	defer st2.Close()
	if len(recs) != 1 || recs[0].ID != "j1" || recs[0].State != "queued" {
		t.Fatalf("recovered %+v past a garbage tail", recs)
	}
}

// crashRequests is the 50-job batch both halves of the kill -9 test build:
// the child submits it, the parent re-derives it to verify recovered
// colorings. Seeds are distinct so every job really runs (and the parent
// can tell jobs apart).
func crashRequests() []*distcolor.Request {
	reqs := make([]*distcolor.Request, 50)
	for i := range reqs {
		reqs[i] = gnpRequest(distcolor.AlgoEdgeGreedy, 32, 0.2, int64(1000+i))
	}
	return reqs
}

// TestCrashChild is the kill -9 victim: re-executed by
// TestCrashRecoveryKill9 with REPRO_CRASH_DIR set, it opens a durable
// server, submits the 50-job batch, reports READY, and waits to be killed
// mid-execution.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("REPRO_CRASH_DIR")
	if dir == "" {
		t.Skip("helper process for TestCrashRecoveryKill9")
	}
	s, err := NewServer(Config{Workers: 1, QueueDepth: 64, CacheEntries: -1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range crashRequests() {
		if _, err := s.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	fmt.Println("READY")
	os.Stdout.Sync()
	time.Sleep(time.Minute) // the parent SIGKILLs us long before this
}

// TestCrashRecoveryKill9 pins the acceptance criterion of the durable
// store: kill -9 during a 50-job batch, restart on the same data dir —
// every job is either re-run to a verified coloring or reported terminal;
// none lost, none duplicated.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), "REPRO_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ready := false
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if strings.Contains(sc.Text(), "READY") {
			ready = true
			break
		}
	}
	if !ready {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child never reported READY")
	}
	// Let the single worker chew into the batch, then kill -9 mid-job.
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reaps the SIGKILLed child; its exit status is expectedly non-zero

	s, err := NewServer(Config{Workers: 2, QueueDepth: 64, CacheEntries: -1, DataDir: dir})
	if err != nil {
		t.Fatalf("restart on crashed data dir: %v", err)
	}
	defer s.Close()
	m := s.Metrics()
	if m.Recovered != 50 {
		t.Fatalf("recovered %d jobs, want all 50 (none lost)", m.Recovered)
	}
	reqs := crashRequests()
	for i, req := range reqs {
		id := fmt.Sprintf("j%d", i+1) // the child submitted serially: ID order = request order
		st, err := s.WaitTimeout(id, 2*time.Minute)
		if err != nil {
			t.Fatalf("job %s lost in recovery: %v", id, err)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s still %s after recovery wait", id, st.State)
		}
		if st.State != StateDone {
			t.Fatalf("job %s recovered to %s (%s), want done", id, st.State, st.Error)
		}
		resp, _, err := s.Result(id)
		if err != nil || resp == nil {
			t.Fatalf("job %s has no result after recovery: %v", id, err)
		}
		g, err := req.Graph.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.EdgeColoring(g, resp.Colors, resp.Palette); err != nil {
			t.Fatalf("job %s serves an invalid coloring after recovery: %v", id, err)
		}
	}
	// None duplicated: a fresh submission must get a fresh ID past the
	// journal's maximum, never reuse one of the 50.
	st, err := s.Submit(cycleRequest(10))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j51" {
		t.Fatalf("post-recovery submission got ID %s, want j51", st.ID)
	}
}

// TestRestartRaceHammer hammers submit/cancel from several goroutines
// across repeated server restarts on one data dir; under -race it is the
// store/admission concurrency check named by the Makefile race target.
func TestRestartRaceHammer(t *testing.T) {
	dir := t.TempDir()
	seen := map[string]bool{}
	for round := 0; round < 3; round++ {
		s, err := NewServer(Config{Workers: 2, QueueDepth: 128, CacheEntries: -1, DataDir: dir})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					req := gnpRequest(distcolor.AlgoEdgeGreedy, 16, 0.25, int64(round*1000+w*100+i))
					st, err := s.Submit(req)
					if err != nil {
						t.Errorf("round %d submit: %v", round, err)
						continue
					}
					if i%2 == 0 {
						if _, err := s.Cancel(st.ID); err != nil {
							t.Errorf("round %d cancel %s: %v", round, st.ID, err)
						}
					}
					if _, err := s.WaitTimeout(st.ID, time.Minute); err != nil {
						t.Errorf("round %d wait %s: %v", round, st.ID, err)
					}
				}
			}(w)
		}
		wg.Wait()
		s.Close() // graceful: drains the queue, so every journaled job ends terminal
	}
	// Final replay: every job recovered exactly once and terminal.
	st, recs, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(recs) != 3*4*5 {
		t.Fatalf("recovered %d jobs, want %d", len(recs), 3*4*5)
	}
	for _, rec := range recs {
		if seen[rec.ID] {
			t.Fatalf("job %s recovered twice", rec.ID)
		}
		seen[rec.ID] = true
		if !State(rec.State).Terminal() {
			t.Fatalf("job %s recovered %s after graceful close", rec.ID, rec.State)
		}
	}
}
