package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	distcolor "repro"
	"repro/internal/gen"
)

// frozenServer is a server with admission armed and no workers: accepted
// jobs occupy the queue forever, so occupancy — and therefore every shed —
// is deterministic.
func frozenServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Frozen = true
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = -1
	}
	return testServer(t, cfg)
}

// TestOverloadShedsWithBoundedState floods a tiny frozen server and pins
// the acceptance criterion: the flood is answered with sheds while the
// server's retained state (queue, jobs, in-flight bytes) stays bounded —
// no unbounded queue growth.
func TestOverloadShedsWithBoundedState(t *testing.T) {
	s := frozenServer(t, Config{QueueDepth: 4})
	accepted, shed := 0, 0
	for i := 0; i < 200; i++ {
		_, err := s.Submit(gnpRequest(distcolor.AlgoEdgeGreedy, 24, 0.2, int64(i)))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrOverloaded):
			shed++
			var ov *OverloadError
			if !errors.As(err, &ov) {
				t.Fatalf("shed error is not *OverloadError: %v", err)
			}
			if ov.Reason != "queue" || ov.RetryAfter < time.Second {
				t.Fatalf("shed = %+v, want queue reason and >=1s retry", ov)
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("queue shed must keep matching ErrQueueFull: %v", err)
			}
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if accepted != 4 || shed != 196 {
		t.Fatalf("accepted/shed = %d/%d, want 4/196", accepted, shed)
	}
	m := s.Metrics()
	if m.QueueDepth != 4 || m.Jobs != 4 || m.Shed != 196 || m.Submitted != 4 {
		t.Fatalf("bounded-state accounting wrong: %+v", m)
	}
	if m.InflightBytes <= 0 || (m.MaxInflightBytes > 0 && m.InflightBytes > m.MaxInflightBytes) {
		t.Fatalf("inflight bytes %d outside (0, %d]", m.InflightBytes, m.MaxInflightBytes)
	}
	if h := s.Health(); h.Ready {
		t.Fatalf("saturated server reports ready: %+v", h)
	}
}

// TestConcurrentAdmissionIsExact is the regression test for the
// reservation scheme: Submit journals outside the server lock, so without
// slot reservation at admit time a concurrent flood would all pass the
// depth check before any submission reaches the queue — the bound would
// leak exactly under the load it exists for. With reservation, a 64-way
// concurrent flood against queue depth 4 admits exactly 4.
func TestConcurrentAdmissionIsExact(t *testing.T) {
	s := frozenServer(t, Config{QueueDepth: 4, DataDir: t.TempDir()})
	var wg sync.WaitGroup
	var accepted, shed atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(gnpRequest(distcolor.AlgoEdgeGreedy, 20, 0.2, int64(i)))
			switch {
			case err == nil:
				accepted.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if accepted.Load() != 4 || shed.Load() != 60 {
		t.Fatalf("concurrent flood admitted %d / shed %d, want exactly 4/60", accepted.Load(), shed.Load())
	}
	m := s.Metrics()
	if m.QueueDepth != 4 || m.Submitted != 4 {
		t.Fatalf("queue accounting leaked: %+v", m)
	}
}

// TestInflightBytesBound: the byte bound sheds before the queue bound when
// it is the tighter one, with its own reason (not ErrQueueFull), and a
// single request that could never fit is a permanent rejection, not a shed.
func TestInflightBytesBound(t *testing.T) {
	one := jobCost(cycleRequest(16))
	s := frozenServer(t, Config{QueueDepth: 100, MaxInflightBytes: 2*one + one/2})
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(cycleRequest(16)); err != nil {
			t.Fatalf("submission %d within the byte budget shed: %v", i, err)
		}
	}
	_, err := s.Submit(cycleRequest(16))
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Reason != "inflight-bytes" {
		t.Fatalf("third submission: %v, want inflight-bytes shed", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("byte-bound shed must not match ErrQueueFull")
	}
	if m := s.Metrics(); m.InflightBytes != 2*one {
		t.Fatalf("inflight bytes %d, want %d", m.InflightBytes, 2*one)
	}

	// A buffered request whose own cost exceeds the bound sheds with 429 —
	// it can still arrive via chunked binary ingest, which admits per chunk,
	// so the refusal is not permanent.
	tiny := frozenServer(t, Config{QueueDepth: 100, MaxInflightBytes: 100})
	_, err = tiny.Submit(cycleRequest(16))
	if !errors.As(err, &ov) || ov.Reason != "inflight-bytes" {
		t.Fatalf("oversized buffered request got %v, want inflight-bytes shed", err)
	}
	if m := tiny.Metrics(); m.Shed != 1 || m.InflightBytes != 0 {
		t.Fatalf("oversized shed accounting: %+v", m)
	}
}

// TestInflightBytesReleaseOnTerminal: the admission charge drains as jobs
// finish (done, canceled-from-queue) so capacity comes back.
func TestInflightBytesReleaseOnTerminal(t *testing.T) {
	s := testServer(t, Config{Workers: 1, CacheEntries: -1})
	st, err := s.Submit(gnpRequest(distcolor.AlgoEdgeGreedy, 24, 0.2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitTimeout(st.ID, time.Minute); err != nil {
		t.Fatal(err)
	}
	// Frozen path: cancel a queued job.
	f := frozenServer(t, Config{QueueDepth: 8})
	fst, err := f.Submit(cycleRequest(12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Cancel(fst.ID); err != nil {
		t.Fatal(err)
	}
	for name, srv := range map[string]*Server{"done": s, "canceled": f} {
		if m := srv.Metrics(); m.InflightBytes != 0 {
			t.Fatalf("%s: inflight bytes %d after terminal transition, want 0", name, m.InflightBytes)
		}
	}
	if h := f.Health(); !h.Ready {
		t.Fatalf("drained server not ready: %+v", h)
	}
}

// TestHTTP429AndHealthz: over HTTP a shed is 429 with a Retry-After
// header, and /v1/healthz flips 200→503 as admission saturates.
func TestHTTP429AndHealthz(t *testing.T) {
	s := frozenServer(t, Config{QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()
	c := &Client{Base: ts.URL, MaxRetries: -1}

	h, err := c.Healthz(ctx)
	if err != nil || !h.Ready {
		t.Fatalf("fresh server healthz: %+v, %v", h, err)
	}
	if _, err := c.Submit(ctx, cycleRequest(12)); err != nil {
		t.Fatal(err)
	}

	// Saturated: raw HTTP shows the 429 contract.
	body, _ := json.Marshal(cycleRequest(14))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}

	// The typed client surfaces the same as *HTTPError 429.
	_, err = c.Submit(ctx, cycleRequest(16))
	var he *HTTPError
	if !errors.As(err, &he) || he.Code != http.StatusTooManyRequests {
		t.Fatalf("client submit: %v, want HTTP 429", err)
	}

	h, err = c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Ready {
		t.Fatalf("saturated healthz still ready: %+v", h)
	}
}

// TestClientRetriesShedSubmissions: a 429 is retried with backoff until
// the server admits the work; ctx cancellation cuts the retry loop short.
func TestClientRetriesShedSubmissions(t *testing.T) {
	var mu struct {
		n int
	}
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.n++
		if mu.n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(errorBody{Error: "shed"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(JobStatus{ID: "j1", State: StateQueued})
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()
	c := &Client{Base: ts.URL, MaxRetries: 3, RetryBase: time.Millisecond}
	st, err := c.Submit(context.Background(), cycleRequest(8))
	if err != nil {
		t.Fatalf("submit with retries: %v", err)
	}
	if st.ID != "j1" || mu.n != 3 {
		t.Fatalf("served after %d attempts with %+v, want 3 attempts", mu.n, st)
	}

	// Always-429: the retry loop must honor ctx cancellation promptly.
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer always.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = (&Client{Base: always.URL, MaxRetries: 5}).Submit(ctx, cycleRequest(8))
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("retry loop returned %v, want ctx deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("retry loop ignored ctx for %v", time.Since(start))
	}
}

// TestClientWaitHonorsContext: the satellite fix — Wait used to poll on
// wall-clock time only; a canceled context must now end the poll loop
// between status fetches.
func TestClientWaitHonorsContext(t *testing.T) {
	s := frozenServer(t, Config{QueueDepth: 8}) // the job never runs
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}
	st, err := c.Submit(context.Background(), cycleRequest(12))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Wait(ctx, st.ID, 10*time.Millisecond, 0) // no wall-clock timeout: ctx is the only exit
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait returned %v, want ctx deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("Wait ignored ctx for %v", time.Since(start))
	}
	// The deprecated wrapper keeps the old wall-clock contract.
	if _, err := c.WaitTimeout(st.ID, 5*time.Millisecond, 30*time.Millisecond); err == nil {
		t.Fatal("WaitTimeout on a never-running job returned nil")
	}
}

// TestBatchShardedPartialFailure: a batch larger than capacity comes back
// index-aligned with accepted items, retryable sheds (with backoff hints),
// and non-retryable invalid items — partial failure, not all-or-nothing.
func TestBatchShardedPartialFailure(t *testing.T) {
	s := frozenServer(t, Config{Workers: 4, QueueDepth: 8})
	reqs := make([]distcolor.Request, 0, 22)
	for i := 0; i < 20; i++ {
		reqs = append(reqs, *gnpRequest(distcolor.AlgoEdgeGreedy, 20, 0.2, int64(i)))
	}
	reqs = append(reqs, distcolor.Request{Algorithm: "nope", Graph: distcolor.GraphSpec{N: 2}})
	reqs = append(reqs, distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy, Graph: distcolor.GraphSpec{N: -1}})
	out := s.submitAll(reqs)
	if len(out.Jobs) != len(reqs) {
		t.Fatalf("outcomes %d, want %d", len(out.Jobs), len(reqs))
	}
	accepted, shed := 0, 0
	for i, bj := range out.Jobs[:20] {
		switch {
		case bj.Error == "":
			accepted++
			if bj.ID == "" || bj.State != StateQueued {
				t.Fatalf("accepted item %d malformed: %+v", i, bj)
			}
		case bj.Retryable:
			shed++
			if bj.RetryAfterMS < 1000 {
				t.Fatalf("shed item %d lacks a backoff hint: %+v", i, bj)
			}
		default:
			t.Fatalf("valid item %d failed non-retryably: %+v", i, bj)
		}
	}
	if accepted != 8 || shed != 12 {
		t.Fatalf("accepted/shed = %d/%d, want 8/12 (queue depth 8)", accepted, shed)
	}
	for i := 20; i < 22; i++ {
		if out.Jobs[i].Error == "" || out.Jobs[i].Retryable {
			t.Fatalf("invalid item %d not a permanent failure: %+v", i, out.Jobs[i])
		}
	}
}

// TestBatchPerShardBudget: a single batch on a byte-bounded server stops at
// its per-shard budget and sheds the rest locally as retryable.
func TestBatchPerShardBudget(t *testing.T) {
	one := jobCost(gnpRequest(distcolor.AlgoEdgeGreedy, 20, 0.2, 0))
	s := frozenServer(t, Config{Workers: 1, QueueDepth: 100, MaxInflightBytes: 2*one + one/2})
	reqs := make([]distcolor.Request, 10)
	for i := range reqs {
		reqs[i] = *gnpRequest(distcolor.AlgoEdgeGreedy, 20, 0.2, int64(i))
	}
	out := s.submitAll(reqs)
	accepted := 0
	for i, bj := range out.Jobs {
		if bj.Error == "" {
			accepted++
		} else if !bj.Retryable {
			t.Fatalf("item %d shed non-retryably: %+v", i, bj)
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d of 10, want 2 (budget two jobs)", accepted)
	}
}

// TestCoverVertexRejected is the coverHash regression test: an invalid
// cover that differs from a served valid cover only by an out-of-range
// vertex used to alias the valid cover's cache key and be *served* its
// cached coloring; it must now be rejected at submission with a typed
// error.
func TestCoverVertexRejected(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	cg, cliques, err := gen.BoundedDiversityCliqueGraph(30, 9, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := distcolor.Spec(cg)
	spec.Cliques = cliques
	valid := &distcolor.Request{Algorithm: distcolor.AlgoVertexCD, Graph: spec, X: 1}
	st, err := s.Submit(valid)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = s.WaitTimeout(st.ID, 2*time.Minute); err != nil || st.State != StateDone {
		t.Fatalf("valid cover job: %v / %+v", err, st)
	}

	// Same graph, same cover — except one clique smuggles vertex N+99.
	// Pre-fix, coverHash skipped it, the key collided, and the cache served
	// the valid cover's coloring for an invalid request.
	badCliques := make([][]int32, len(cliques))
	copy(badCliques, cliques)
	bad0 := append([]int32{}, badCliques[0]...)
	badCliques[0] = append(bad0, int32(cg.N()+99))
	badSpec := spec
	badSpec.Cliques = badCliques
	_, err = s.Submit(&distcolor.Request{Algorithm: distcolor.AlgoVertexCD, Graph: badSpec, X: 1})
	var cve *CoverVertexError
	if !errors.As(err, &cve) {
		t.Fatalf("out-of-range cover vertex got %v, want *CoverVertexError", err)
	}
	if cve.Vertex != int32(cg.N()+99) || cve.Clique != 0 {
		t.Fatalf("error pinpoints clique %d vertex %d, want 0/%d", cve.Clique, cve.Vertex, cg.N()+99)
	}
	if m := s.Metrics(); m.CacheHits != 0 {
		t.Fatalf("invalid cover was served from cache: %+v", m)
	}

	// The rejection must not depend on the cache being in play: a
	// cache-disabled server rejects the same request identically.
	nocache := testServer(t, Config{Workers: 1, CacheEntries: -1})
	_, err = nocache.Submit(&distcolor.Request{Algorithm: distcolor.AlgoVertexCD, Graph: badSpec, X: 1})
	if !errors.As(err, &cve) {
		t.Fatalf("cache-disabled server accepted the invalid cover: %v", err)
	}
}
