package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	distcolor "repro"
)

// Client talks to a running colord instance over its wire API. It is what
// cmd/colorbench uses in -server mode, and doubles as the reference client
// for the wire protocol. Every method is context-aware, and requests shed
// by the server's admission control (HTTP 429) are retried with backoff,
// honoring the server's Retry-After hint — a 429 means the work was not
// accepted, so retrying can never duplicate a job.
//
// Submissions auto-negotiate their encoding by payload size: small requests
// go as JSON (debuggable, the historical wire), large ones as a binary
// frame, and very large ones as a chunked binary stream that the server
// admits per edge chunk — the only way past the server's in-flight byte
// bound. Set Codec to pin a choice.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8080".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// MaxRetries bounds how many times a 429-shed request is retried
	// before the error surfaces (0 selects the default 4; negative
	// disables retrying — overload tests and load generators want to see
	// every 429).
	MaxRetries int
	// RetryBase is the first backoff delay (default 100ms), doubling per
	// attempt up to 5s; the server's Retry-After header overrides the
	// computed backoff when larger.
	RetryBase time.Duration
	// Codec pins the submission encoding: "json", "binary", or "" for
	// size-based auto-negotiation. "json" also turns off the binary Accept
	// header on Result. ("binary" still upgrades to the chunked stream for
	// graphs over the streaming threshold — a frame that large defeats the
	// point.)
	Codec string
	// ChunkEdges is the edge-chunk size for streamed submissions
	// (distcolor.DefaultChunkEdges when 0).
	ChunkEdges int
}

// Auto-negotiation thresholds, in edges. Below autoBinaryEdges JSON wins on
// debuggability and loses nothing measurable; past it the binary frame's
// 3-4x size and ~9x encode+decode advantage dominates; past autoStreamEdges
// the request is big enough that buffering it server-side fights the
// admission bound, so it streams.
const (
	autoBinaryEdges = 65_536
	autoStreamEdges = 262_144
)

// HTTPError is a non-2xx response from the server, with the decoded error
// body when one was sent. Retries are exhausted before it surfaces.
type HTTPError struct {
	Code    int
	Message string
	// RetryAfter is the server's Retry-After hint on a 429, zero otherwise
	// (or when the header was absent). Load generators read it to report
	// the shed-backoff distribution the server is handing out.
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("colord: HTTP %d: %s", e.Code, e.Message)
	}
	return fmt.Sprintf("colord: HTTP %d", e.Code)
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

func (c *Client) retries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 4
	}
	return c.MaxRetries
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return 100 * time.Millisecond
}

// sleepCtx waits d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryDelay picks the wait before the attempt'th retry of a shed request:
// exponential backoff from RetryBase capped at 5s, stretched to the
// server's Retry-After header when that is larger.
func (c *Client) retryDelay(attempt int, resp *http.Response) time.Duration {
	d := c.retryBase() << attempt
	if max := 5 * time.Second; d > max {
		d = max
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && time.Duration(secs)*time.Second > d {
			d = time.Duration(secs) * time.Second
		}
	}
	return d
}

// bodySpec describes a request body for roundTrip: the factory is invoked
// per attempt, so a retried request never reuses a consumed reader, and
// length (when >= 0) becomes the Content-Length header — set whenever it is
// known, even for streamed bodies, so the server can account the upload
// without chunked transfer encoding.
type bodySpec struct {
	contentType string
	length      int64
	mk          func() (io.Reader, error)
}

// bytesBody is the bodySpec for an already-materialized payload.
func bytesBody(contentType string, data []byte) *bodySpec {
	return &bodySpec{
		contentType: contentType,
		length:      int64(len(data)),
		mk:          func() (io.Reader, error) { return bytes.NewReader(data), nil },
	}
}

// roundTrip sends a request and decodes the response body into out (skipped
// when out is nil), dispatching on the response Content-Type — JSON or a
// binary frame. Non-2xx responses decode the server's error body into an
// *HTTPError; 429s are retried first, rebuilding the body each attempt.
func (c *Client) roundTrip(ctx context.Context, method, path string, body *bodySpec, accept string, out any) error {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			r, err := body.mk()
			if err != nil {
				return err
			}
			rd = r
		}
		req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", body.contentType)
			if body.length >= 0 {
				req.ContentLength = body.length
			}
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.retries() {
			delay := c.retryDelay(attempt, resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err := sleepCtx(ctx, delay); err != nil {
				return err
			}
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			he := &HTTPError{Code: resp.StatusCode}
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				he.RetryAfter = time.Duration(secs) * time.Second
			}
			var eb errorBody
			if json.NewDecoder(resp.Body).Decode(&eb) == nil {
				he.Message = eb.Error
			}
			return fmt.Errorf("colord: %s %s: %w", method, path, he)
		}
		if out == nil {
			return nil
		}
		return decodeResponse(resp, out)
	}
}

// decodeResponse decodes a 2xx body by its Content-Type.
func decodeResponse(resp *http.Response, out any) error {
	if mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type")); err == nil && mt == distcolor.ContentTypeBinary {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		return distcolor.CodecBinary.Decode(data, out)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// do is the JSON-envelope path (batch, generate, status, metrics, …): the
// payload is a service envelope type, not a distcolor wire type, so it is
// marshaled here rather than through a distcolor.Codec.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body *bodySpec
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytesBody("application/json", b)
	}
	return c.roundTrip(ctx, method, path, body, "", out)
}

// Submit sends one workload and returns its job status (already done on a
// cache hit). The encoding follows Codec, or auto-negotiates by size.
func (c *Client) Submit(ctx context.Context, req *distcolor.Request) (JobStatus, error) {
	var st JobStatus
	m := len(req.Graph.Edges)
	mode := c.Codec
	switch {
	case mode == "":
		switch {
		case m >= autoStreamEdges:
			mode = "stream"
		case m >= autoBinaryEdges:
			mode = "binary"
		default:
			mode = "json"
		}
	case mode == "binary" && m >= autoStreamEdges:
		mode = "stream"
	}
	switch mode {
	case "stream":
		return c.SubmitStream(ctx, req)
	case "binary":
		data, err := distcolor.CodecBinary.Encode(req)
		if err != nil {
			return st, err
		}
		err = c.roundTrip(ctx, http.MethodPost, "/v1/jobs", bytesBody(distcolor.ContentTypeBinary, data), "", &st)
		return st, err
	case "json":
		data, err := distcolor.CodecJSON.Encode(req)
		if err != nil {
			return st, err
		}
		err = c.roundTrip(ctx, http.MethodPost, "/v1/jobs", bytesBody(distcolor.ContentTypeJSON, data), "", &st)
		return st, err
	default:
		return st, fmt.Errorf("colord: unknown codec %q", c.Codec)
	}
}

// SubmitStream sends req as a chunked binary frame stream: the body is
// produced incrementally through a pipe — never buffered whole — while
// Content-Length is still set exactly (RequestStreamLen pre-computes it),
// and the server admits the graph chunk by chunk. This is the submission
// path for graphs whose admission cost exceeds the server's in-flight byte
// bound; Submit upgrades to it automatically past autoStreamEdges.
func (c *Client) SubmitStream(ctx context.Context, req *distcolor.Request) (JobStatus, error) {
	chunk := c.ChunkEdges
	body := &bodySpec{
		contentType: distcolor.ContentTypeBinary,
		length:      distcolor.RequestStreamLen(req, chunk),
		mk: func() (io.Reader, error) {
			pr, pw := io.Pipe()
			// The writer is bounded by the pipe, not a join: every Write
			// blocks until the transport reads or the request aborts and
			// closes pr, which errors the write and ends the goroutine.
			//distcolor:detached pipe-bounded: write errors out when roundTrip closes pr
			go func() { pw.CloseWithError(distcolor.WriteRequestStream(pw, req, chunk)) }()
			return pr, nil
		},
	}
	var st JobStatus
	err := c.roundTrip(ctx, http.MethodPost, "/v1/jobs", body, "", &st)
	return st, err
}

// Batch submits many workloads in one call. Outcomes are per-item — check
// each BatchJob for Error/Retryable; a 200 batch response can still carry
// shed items.
func (c *Client) Batch(ctx context.Context, reqs []distcolor.Request) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/batch", BatchRequest{Requests: reqs}, &out)
	return out, err
}

// Generate asks the server to synthesize and submit workloads.
func (c *Client) Generate(ctx context.Context, req GenerateRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/generate", req, &out)
	return out, err
}

// Status fetches a job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel requests cancellation.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// Result fetches the coloring of a done job. Unless Codec pins "json", it
// asks for the binary frame encoding (Accept) and decodes whichever the
// server chose from the response Content-Type.
func (c *Client) Result(ctx context.Context, id string) (*distcolor.Response, error) {
	accept := distcolor.ContentTypeBinary
	if c.Codec == "json" {
		accept = ""
	}
	var resp distcolor.Response
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, accept, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the server counters.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &m)
	return m, err
}

// Healthz fetches the admission readiness view. A shedding server answers
// 503 with the same Health body, which is not an error here — callers read
// Ready.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/healthz"), nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return Health{}, &HTTPError{Code: resp.StatusCode}
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, err
	}
	return h, nil
}

// Algorithms fetches the server's algorithm registry metadata: every
// registered algorithm with its kind and parameter schema, so clients can
// discover and validate workloads without hardcoding algorithm knowledge.
func (c *Client) Algorithms(ctx context.Context) ([]distcolor.AlgorithmInfo, error) {
	var out []distcolor.AlgorithmInfo
	err := c.do(ctx, http.MethodGet, "/v1/algorithms", nil, &out)
	return out, err
}

// Wait polls until the job is terminal, ctx is done, or the timeout
// elapses (when positive), returning the last observed status. Between
// polls it sleeps poll (default 50ms), waking early on ctx cancellation.
func (c *Client) Wait(ctx context.Context, id string, poll, timeout time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if timeout > 0 && time.Now().After(deadline) {
			return st, fmt.Errorf("colord: job %s still %s after %v", id, st.State, timeout)
		}
		if err := sleepCtx(ctx, poll); err != nil {
			return st, err
		}
	}
}

// WaitTimeout is the pre-context signature of Wait.
//
// Deprecated: use Wait with a context, which can be canceled between polls.
func (c *Client) WaitTimeout(id string, poll, timeout time.Duration) (JobStatus, error) {
	//distcolor:ignore ctxfirst deprecated pre-context shim; the timeout below bounds the wait
	return c.Wait(context.Background(), id, poll, timeout)
}

// Trace streams the job's round trace, invoking fn for every event until
// the stream's end line; it returns the job's final state. Lifecycle span
// lines are skipped — use TraceSpans to receive them. Canceling ctx tears
// the stream down.
func (c *Client) Trace(ctx context.Context, id string, fn func(TraceEvent)) (State, error) {
	return c.TraceSpans(ctx, id, fn, nil)
}

// TraceSpans streams the job's round trace like Trace, additionally
// invoking sfn for each lifecycle span the server appends once the job is
// terminal (admit, queue, execute, verify, serve under a root "job" span).
func (c *Client) TraceSpans(ctx context.Context, id string, fn func(TraceEvent), sfn func(Span)) (State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/trace"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("colord: trace %s: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// Span lines must be probed before TraceEvent: a {"span":…} line has
		// no TraceEvent keys, so it would otherwise decode as a zero event.
		if bytes.HasPrefix(line, []byte(`{"span"`)) {
			var sl spanLine
			if err := json.Unmarshal(line, &sl); err != nil {
				return "", fmt.Errorf("colord: trace %s: bad span line %q: %w", id, line, err)
			}
			if sfn != nil && sl.Span != nil {
				sfn(*sl.Span)
			}
			continue
		}
		var end traceEnd
		if json.Unmarshal(line, &end) == nil && end.Done {
			return end.State, nil
		}
		var ev TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return "", fmt.Errorf("colord: trace %s: bad line %q: %w", id, line, err)
		}
		if fn != nil {
			fn(ev)
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("colord: trace %s: stream ended without a terminal line", id)
}
