package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	distcolor "repro"
)

// Client talks to a running colord instance over its JSON API. It is what
// cmd/colorbench uses in -server mode, and doubles as the reference client
// for the wire protocol.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8080".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do sends a request and decodes the JSON body into out (skipped when out
// is nil). Non-2xx responses decode the server's error body.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.url(path), body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var eb errorBody
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			return fmt.Errorf("colord: %s %s: %s (HTTP %d)", method, path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("colord: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit sends one workload and returns its job status (already done on a
// cache hit).
func (c *Client) Submit(req *distcolor.Request) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Batch submits many workloads in one call.
func (c *Client) Batch(reqs []distcolor.Request) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(http.MethodPost, "/v1/batch", BatchRequest{Requests: reqs}, &out)
	return out, err
}

// Generate asks the server to synthesize and submit workloads.
func (c *Client) Generate(req GenerateRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(http.MethodPost, "/v1/generate", req, &out)
	return out, err
}

// Status fetches a job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel requests cancellation.
func (c *Client) Cancel(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// Result fetches the coloring of a done job.
func (c *Client) Result(id string) (*distcolor.Response, error) {
	var resp distcolor.Response
	if err := c.do(http.MethodGet, "/v1/jobs/"+id+"/result", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the server counters.
func (c *Client) Metrics() (Metrics, error) {
	var m Metrics
	err := c.do(http.MethodGet, "/v1/metrics", nil, &m)
	return m, err
}

// Algorithms fetches the server's algorithm registry metadata: every
// registered algorithm with its kind and parameter schema, so clients can
// discover and validate workloads without hardcoding algorithm knowledge.
func (c *Client) Algorithms() ([]distcolor.AlgorithmInfo, error) {
	var out []distcolor.AlgorithmInfo
	err := c.do(http.MethodGet, "/v1/algorithms", nil, &out)
	return out, err
}

// Wait polls until the job is terminal or the timeout elapses, returning
// the last observed status.
func (c *Client) Wait(id string, poll, timeout time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if timeout > 0 && time.Now().After(deadline) {
			return st, fmt.Errorf("colord: job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(poll)
	}
}

// Trace streams the job's round trace, invoking fn for every event until
// the stream's end line; it returns the job's final state.
func (c *Client) Trace(id string, fn func(TraceEvent)) (State, error) {
	resp, err := c.http().Get(c.url("/v1/jobs/" + id + "/trace"))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("colord: trace %s: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var end traceEnd
		if json.Unmarshal(line, &end) == nil && end.Done {
			return end.State, nil
		}
		var ev TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return "", fmt.Errorf("colord: trace %s: bad line %q: %w", id, line, err)
		}
		if fn != nil {
			fn(ev)
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("colord: trace %s: stream ended without a terminal line", id)
}
