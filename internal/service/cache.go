package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	distcolor "repro"
	"repro/internal/graph"
	"repro/internal/verify"
)

// The result cache is content-addressed: the key is the canonical hash of
// the submitted graph (isomorphic relabelings collapse to one key) combined
// with the algorithm name and its palette-determining parameters. Colorings
// are stored in canonical coordinates — edge colors in canonical edge
// order, vertex colors in canonical vertex order — so a hit for a
// *relabeled* resubmission is served by mapping the stored coloring through
// the new submission's own canonical labeling.
//
// The canonical hash is a fingerprint, not a proof of isomorphism (see
// graph.CanonicalLabeling): a remapped hit is therefore re-verified against
// the submitted graph before being served, and a verification failure is
// treated as a miss (counted as a "bad hit"). Correctness never depends on
// the canonicalization; only the hit rate does.

// canonForm is the submission-time canonicalization of a request's graph.
type canonForm struct {
	perm []int32 // vertex -> canonical index
	ord  []int32 // canonical edge position -> edge id
	hash string  // canonical structure hash
	// coverHash fingerprints the clique cover for vertex/cd requests, in
	// canonical vertex coordinates; empty otherwise.
	coverHash string
}

func canonicalize(g *graph.Graph, req *distcolor.Request) *canonForm {
	perm := graph.CanonicalLabeling(g)
	ord, hash := graph.CanonicalForm(g, perm)
	c := &canonForm{perm: perm, ord: ord, hash: hash}
	if len(req.Graph.Cliques) > 0 {
		c.coverHash = coverHash(req.Graph.Cliques, perm)
	}
	return c
}

// coverHash fingerprints a clique cover under the canonical labeling: each
// clique's vertices map through perm and sort, and the cliques themselves
// sort lexicographically, so isomorphic (graph, cover) pairs agree.
func coverHash(cliques [][]int32, perm []int32) string {
	mapped := make([][]int32, len(cliques))
	for i, cl := range cliques {
		m := make([]int32, len(cl))
		for k, v := range cl {
			if int(v) < len(perm) {
				m[k] = perm[v]
			} else {
				m[k] = v // out-of-range covers fail validation later
			}
		}
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
		mapped[i] = m
	}
	sort.Slice(mapped, func(a, b int) bool {
		x, y := mapped[a], mapped[b]
		for k := 0; k < len(x) && k < len(y); k++ {
			if x[k] != y[k] {
				return x[k] < y[k]
			}
		}
		return len(x) < len(y)
	})
	h := sha256.New()
	var buf [4]byte
	for _, cl := range mapped {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(cl)))
		h.Write(buf[:])
		for _, v := range cl {
			binary.LittleEndian.PutUint32(buf[:], uint32(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheKey combines the canonical structure hash with every request field
// that can change the served coloring or its declared palette. Parameters
// the algorithm ignores are zeroed and defaulted forms are normalized
// (X: 0→1 mirroring Request.x; Q: 0→3 and clamping mirroring arbor), so
// requests that provably run identically share one key.
func cacheKey(c *canonForm, req *distcolor.Request) string {
	var (
		x int
		a int
		q float64
	)
	switch req.Algorithm {
	case distcolor.AlgoEdgeStar:
		x = effX(req.X)
	case distcolor.AlgoVertexCD:
		x = effX(req.X)
	case distcolor.AlgoEdgeSparse, distcolor.AlgoEdgeSparse52, distcolor.AlgoEdgeSparse53,
		distcolor.AlgoEdgeSparse54x2, distcolor.AlgoEdgeSparse54x3:
		a = req.Arboricity
		q = effQ(req.Q)
	}
	return fmt.Sprintf("%s|%s|x=%d|a=%d|q=%g|cover=%s",
		c.hash, req.Algorithm, x, a, q, c.coverHash)
}

func effX(x int) int {
	if x == 0 {
		return 1
	}
	return x
}

func effQ(q float64) float64 {
	if q == 0 {
		return 3
	}
	if q < 2.05 {
		return 2.05
	}
	return q
}

// cacheEntry is a verified coloring in canonical coordinates.
type cacheEntry struct {
	kind        string // "edge" | "vertex"
	algorithm   string
	palette     int64
	stats       distcolor.Stats
	delta       int
	arboricity  int
	canonColors []int64
}

type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // value: *cacheItem
	lru     *list.List               // front = most recent
}

type cacheItem struct {
	key   string
	entry *cacheEntry
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, entries: make(map[string]*list.Element), lru: list.New()}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// store records a verified response under key, in canonical coordinates.
func (c *resultCache) store(key string, canon *canonForm, resp *distcolor.Response) {
	entry := &cacheEntry{
		kind:       resp.Kind,
		algorithm:  resp.Algorithm,
		palette:    resp.Palette,
		stats:      resp.Stats,
		delta:      resp.Delta,
		arboricity: resp.Arboricity,
	}
	switch resp.Kind {
	case "edge":
		entry.canonColors = make([]int64, len(resp.Colors))
		for i, e := range canon.ord {
			entry.canonColors[i] = resp.Colors[e]
		}
	case "vertex":
		entry.canonColors = make([]int64, len(resp.Colors))
		for v, c := range resp.Colors {
			entry.canonColors[canon.perm[v]] = c
		}
	default:
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).entry = entry
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheItem{key: key, entry: entry})
	for len(c.entries) > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheItem).key)
	}
}

// load looks up key and, on a hit, remaps the stored coloring onto g via
// canon and re-verifies it. It returns (response, false) on a verified hit,
// (nil, true) when an entry existed but failed post-remap verification (a
// canonical-hash collision), and (nil, false) on a plain miss.
func (c *resultCache) load(key string, g *graph.Graph, canon *canonForm) (*distcolor.Response, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.lru.MoveToFront(el)
	entry := el.Value.(*cacheItem).entry
	c.mu.Unlock()

	resp := &distcolor.Response{
		Kind:       entry.kind,
		Algorithm:  entry.algorithm,
		Palette:    entry.palette,
		Stats:      entry.stats,
		Delta:      entry.delta,
		Arboricity: entry.arboricity,
	}
	switch entry.kind {
	case "edge":
		if len(entry.canonColors) != g.M() {
			return nil, true
		}
		resp.Colors = make([]int64, g.M())
		for i, e := range canon.ord {
			resp.Colors[e] = entry.canonColors[i]
		}
		if verify.EdgeColoring(g, resp.Colors, resp.Palette) != nil {
			return nil, true
		}
	case "vertex":
		if len(entry.canonColors) != g.N() {
			return nil, true
		}
		resp.Colors = make([]int64, g.N())
		for v := 0; v < g.N(); v++ {
			resp.Colors[v] = entry.canonColors[canon.perm[v]]
		}
		if verify.VertexColoring(g, resp.Colors, resp.Palette) != nil {
			return nil, true
		}
	default:
		return nil, true
	}
	return resp, false
}
