package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	distcolor "repro"
	"repro/internal/graph"
	"repro/internal/verify"
)

// The result cache is content-addressed: the key is the canonical hash of
// the submitted graph (isomorphic relabelings collapse to one key) combined
// with the algorithm name and its registry-resolved parameter set. Colorings
// are stored in canonical coordinates — edge colors in canonical edge
// order, vertex colors in canonical vertex order — so a hit for a
// *relabeled* resubmission is served by mapping the stored coloring through
// the new submission's own canonical labeling.
//
// The canonical hash is a fingerprint, not a proof of isomorphism (see
// graph.CanonicalLabeling): a remapped hit is therefore re-verified against
// the submitted graph before being served, and a verification failure is
// treated as a miss (counted as a "bad hit"). Correctness never depends on
// the canonicalization; only the hit rate does.

// canonForm is the submission-time canonicalization of a request's graph.
type canonForm struct {
	perm []int32 // vertex -> canonical index
	ord  []int32 // canonical edge position -> edge id
	hash string  // canonical structure hash
	// coverHash fingerprints the clique cover for vertex/cd requests, in
	// canonical vertex coordinates; empty otherwise.
	coverHash string
}

// CoverVertexError reports a clique-cover vertex outside the graph's vertex
// range, detected at canonicalization time. Before this check, such a
// vertex was silently skipped from the cover fingerprint, so an invalid
// cover could alias a valid cover's cache key — and be *served* the valid
// cover's cached coloring instead of being rejected.
type CoverVertexError struct {
	Clique int   // index of the offending clique in the request's cover
	Vertex int32 // the out-of-range vertex
	N      int   // the graph's vertex count
}

func (e *CoverVertexError) Error() string {
	return fmt.Sprintf("service: clique %d lists vertex %d, outside the graph's range [0,%d)", e.Clique, e.Vertex, e.N)
}

// validateCoverRange rejects clique-cover vertices outside the graph's
// vertex range with a typed *CoverVertexError. Submit runs it on every
// cover-carrying request — not only cacheable ones — so an invalid cover is
// rejected identically whether or not the cache (where the aliasing bug
// lived) is in play.
func validateCoverRange(req *distcolor.Request) error {
	for i, cl := range req.Graph.Cliques {
		for _, v := range cl {
			if v < 0 || int(v) >= req.Graph.N {
				return &CoverVertexError{Clique: i, Vertex: v, N: req.Graph.N}
			}
		}
	}
	return nil
}

func canonicalize(g *graph.Graph, req *distcolor.Request) (*canonForm, error) {
	perm := graph.CanonicalLabeling(g)
	ord, hash := graph.CanonicalForm(g, perm)
	c := &canonForm{perm: perm, ord: ord, hash: hash}
	if len(req.Graph.Cliques) > 0 {
		ch, err := coverHash(req.Graph.Cliques, perm)
		if err != nil {
			return nil, err
		}
		c.coverHash = ch
	}
	return c, nil
}

// coverHash fingerprints a clique cover under the canonical labeling: each
// clique's vertices map through perm and sort, and the cliques themselves
// sort lexicographically, so isomorphic (graph, cover) pairs agree. A
// vertex outside [0, len(perm)) cannot be canonicalized and is rejected
// with a *CoverVertexError rather than skipped — two covers differing only
// in invalid vertices must never share a fingerprint.
func coverHash(cliques [][]int32, perm []int32) (string, error) {
	mapped := make([][]int32, len(cliques))
	for i, cl := range cliques {
		m := make([]int32, len(cl))
		for k, v := range cl {
			if v < 0 || int(v) >= len(perm) {
				return "", &CoverVertexError{Clique: i, Vertex: v, N: len(perm)}
			}
			m[k] = perm[v]
		}
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
		mapped[i] = m
	}
	sort.Slice(mapped, func(a, b int) bool {
		x, y := mapped[a], mapped[b]
		for k := 0; k < len(x) && k < len(y); k++ {
			if x[k] != y[k] {
				return x[k] < y[k]
			}
		}
		return len(x) < len(y)
	})
	h := sha256.New()
	var buf [4]byte
	for _, cl := range mapped {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(cl)))
		h.Write(buf[:])
		for _, v := range cl {
			binary.LittleEndian.PutUint32(buf[:], uint32(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheKey combines the canonical structure hash with the algorithm name
// and its registry-resolved parameter set (shorthand fields merged with
// Params, schema defaults applied, clamps performed), so requests that
// provably run identically share one key and requests differing in any
// coloring-relevant parameter never collide. Parameters the algorithm's
// schema does not know cannot reach the key — they fail validation before
// the cache is consulted.
func cacheKey(c *canonForm, req *distcolor.Request) string {
	p, err := req.ResolvedParams()
	if err != nil {
		// Unreachable: Submit validates (which resolves) before any cache
		// work. Keep the key collision-free anyway.
		return fmt.Sprintf("%s|%s|unresolvable:%s|cover=%s", c.hash, req.Algorithm, err, c.coverHash)
	}
	names := make([]string, 0, len(p))
	for name := range p {
		names = append(names, name)
	}
	sort.Strings(names)
	var params strings.Builder
	for _, name := range names {
		fmt.Fprintf(&params, "|%s=%g", name, p[name])
	}
	return fmt.Sprintf("%s|%s%s|cover=%s", c.hash, req.Algorithm, params.String(), c.coverHash)
}

// cacheEntry is a verified coloring in canonical coordinates.
type cacheEntry struct {
	kind        distcolor.Kind // "edge" | "vertex"
	algorithm   string
	palette     int64
	stats       distcolor.Stats
	delta       int
	arboricity  int
	canonColors []int64
}

type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // value: *cacheItem
	lru     *list.List               // front = most recent
}

type cacheItem struct {
	key   string
	entry *cacheEntry
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, entries: make(map[string]*list.Element), lru: list.New()}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// store records a verified response under key, in canonical coordinates.
func (c *resultCache) store(key string, canon *canonForm, resp *distcolor.Response) {
	entry := &cacheEntry{
		kind:       resp.Kind,
		algorithm:  resp.Algorithm,
		palette:    resp.Palette,
		stats:      resp.Stats,
		delta:      resp.Delta,
		arboricity: resp.Arboricity,
	}
	switch resp.Kind {
	case "edge":
		entry.canonColors = make([]int64, len(resp.Colors))
		for i, e := range canon.ord {
			entry.canonColors[i] = resp.Colors[e]
		}
	case "vertex":
		entry.canonColors = make([]int64, len(resp.Colors))
		for v, c := range resp.Colors {
			entry.canonColors[canon.perm[v]] = c
		}
	default:
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheItem).entry = entry
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheItem{key: key, entry: entry})
	for len(c.entries) > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheItem).key)
	}
}

// load looks up key and, on a hit, remaps the stored coloring onto g via
// canon and re-verifies it. It returns (response, false) on a verified hit,
// (nil, true) when an entry existed but failed post-remap verification (a
// canonical-hash collision), and (nil, false) on a plain miss.
func (c *resultCache) load(key string, g *graph.Graph, canon *canonForm) (*distcolor.Response, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.lru.MoveToFront(el)
	entry := el.Value.(*cacheItem).entry
	c.mu.Unlock()

	resp := &distcolor.Response{
		Kind:       entry.kind,
		Algorithm:  entry.algorithm,
		Palette:    entry.palette,
		Stats:      entry.stats,
		Delta:      entry.delta,
		Arboricity: entry.arboricity,
	}
	switch entry.kind {
	case "edge":
		if len(entry.canonColors) != g.M() {
			return nil, true
		}
		resp.Colors = make([]int64, g.M())
		for i, e := range canon.ord {
			resp.Colors[e] = entry.canonColors[i]
		}
		if verify.EdgeColoring(g, resp.Colors, resp.Palette) != nil {
			return nil, true
		}
	case "vertex":
		if len(entry.canonColors) != g.N() {
			return nil, true
		}
		resp.Colors = make([]int64, g.N())
		for v := 0; v < g.N(); v++ {
			resp.Colors[v] = entry.canonColors[canon.perm[v]]
		}
		if verify.VertexColoring(g, resp.Colors, resp.Palette) != nil {
			return nil, true
		}
	default:
		return nil, true
	}
	return resp, false
}
