package service

// The deterministic chaos suite (`make chaos`). One seeded fault schedule —
// CHAOS_SEED selects it, default 1 — drives a 200-job workload through every
// injection point at once: scheduled panics, injected execution errors,
// universal slow-downs against per-job deadlines, admission faults, a
// dying-then-healing journal disk, a torn journal tail across a restart, and
// a flaky client-side HTTP transport. The invariants are universal (they hold
// for EVERY seed, which is what the nightly seed sweep leans on):
//
//   - no accepted job is lost or duplicated, and no job ID is ever reused;
//   - every accepted job reaches a typed terminal state (a failure always
//     carries its error; deadline is its own state; nothing is "canceled"
//     because nothing cancels);
//   - the process survives every fault — scheduled panics are quarantined to
//     their jobs and the same workers keep serving;
//   - degraded mode is entered (journal dies), observable (typed 503s,
//     healthz, gauge), and exited (probe heals it) without a restart;
//   - every terminal outcome survives a restart over a torn journal tail.
//
// A failure report starts with pts.String() — the full schedule — so any
// failing run is replayable from its seed alone.

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	distcolor "repro"
	"repro/internal/fault"
)

func chaosSeed(t *testing.T) int64 {
	env := os.Getenv("CHAOS_SEED")
	if env == "" {
		return 1
	}
	n, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", env, err)
	}
	return n
}

func TestChaos(t *testing.T) {
	seed := chaosSeed(t)
	dir := t.TempDir()
	inj := fault.NewInject(nil)
	// The schedule: explicit On indexes guarantee each fault family fires at
	// least once under ANY seed; the Rate terms add seed-dependent background
	// chaos on top. The sleep plan fires on every hit the earlier plans left
	// alone, so jobs carrying a 1ms deadline_ms overrun it deterministically.
	pts := fault.New(seed,
		fault.Plan{Site: "worker.execute", Action: fault.ActionPanic, On: []int64{3, 41}, Rate: 0.02},
		fault.Plan{Site: "worker.execute", Action: fault.ActionErr, On: []int64{7}, Rate: 0.04},
		fault.Plan{Site: "worker.execute", Action: fault.ActionSleep, Delay: 10 * time.Millisecond, Rate: 1},
		fault.Plan{Site: "service.admit", Action: fault.ActionErr, On: []int64{25}, Rate: 0.01},
	)
	fail := func(format string, args ...any) {
		t.Fatalf("%s\n%s", fmt.Sprintf(format, args...), pts.String())
	}
	s, err := NewServer(Config{
		Workers: 4, QueueDepth: 512, DataDir: dir, FS: inj,
		Faults: pts, DegradedProbe: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			s.Close()
		}
	}()

	// Phase 1: the 200-job workload. Every 10th job carries a 1ms deadline;
	// non-deadline seeds repeat mod 37 for cache-hit traffic.
	const jobs = 200
	accepted := []string{}
	var admitFaults, sheds int
	for i := 0; i < jobs; i++ {
		var req *distcolor.Request
		if i%10 == 0 {
			req = gnpRequest(distcolor.AlgoEdgeGreedy, 24, 0.2, int64(1000+i))
			req.DeadlineMS = 1
		} else {
			req = gnpRequest(distcolor.AlgoEdgeGreedy, 24, 0.2, int64(i%37))
		}
		st, err := s.Submit(req)
		if err != nil {
			switch {
			case errors.Is(err, fault.ErrInjected):
				admitFaults++
			case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDegraded):
				sheds++
			default:
				fail("job %d: unexpected submit error: %v", i, err)
			}
			continue
		}
		accepted = append(accepted, st.ID)
	}
	if admitFaults == 0 {
		fail("the admission fault plan (On 25) never fired")
	}

	// Every accepted job reaches a typed terminal state, exactly once each.
	states := map[string]State{}
	for _, id := range accepted {
		fin, err := s.WaitTimeout(id, 2*time.Minute)
		if err != nil {
			fail("job %s lost: %v", id, err)
		}
		if !fin.State.Terminal() {
			fail("job %s stuck in %s", id, fin.State)
		}
		if _, dup := states[id]; dup {
			fail("job ID %s handed out twice", id)
		}
		states[id] = fin.State
		switch fin.State {
		case StateFailed, StateDeadline:
			if fin.Error == "" {
				fail("job %s terminal %s without a typed error", id, fin.State)
			}
		case StateCanceled:
			fail("job %s canceled; nothing cancels in this suite", id)
		}
	}
	m := s.Metrics()
	if m.Panicked < 2 {
		fail("panic plan (On 3,41) fired %d times, want >= 2", m.Panicked)
	}
	if m.DeadlineExceeded < 1 {
		fail("no job exceeded its deadline (20 carried deadline_ms=1)")
	}
	waitInflightZero(t, s)

	// Phase 2: degraded mode. Seed the cache with a known-done workload
	// (retrying past background faults), then kill the disk.
	cacheReq := func() *distcolor.Request { return gnpRequest(distcolor.AlgoEdgeGreedy, 24, 0.2, 9999) }
	seeded := false
	for i := 0; i < 20 && !seeded; i++ {
		if st, err := s.Submit(cacheReq()); err == nil {
			if fin, werr := s.WaitTimeout(st.ID, time.Minute); werr == nil && fin.State == StateDone {
				states[st.ID] = fin.State
				seeded = true
			}
		}
	}
	if !seeded {
		fail("could not complete the cache-seed workload in 20 attempts")
	}
	errDiskDead := errors.New("chaos: disk dead")
	inj.AddRule(fault.Rule{Op: fault.OpSync, Times: -1, Err: errDiskDead})
	entered := false
	for i := 0; i < 20 && !entered; i++ {
		_, err := s.Submit(gnpRequest(distcolor.AlgoEdgeGreedy, 24, 0.2, int64(20000+i)))
		entered = errors.Is(err, errDiskDead)
	}
	if !entered {
		fail("a dead disk never failed a submission")
	}
	degradedSeen := false
	for i := 0; i < 20 && !degradedSeen; i++ {
		_, err := s.Submit(gnpRequest(distcolor.AlgoEdgeGreedy, 24, 0.2, int64(30000+i)))
		degradedSeen = errors.Is(err, ErrDegraded)
	}
	if !degradedSeen {
		fail("degraded mode never shed a submission with the typed 503")
	}
	if h := s.Health(); !h.Degraded || h.Ready || h.DegradedReason == "" {
		fail("healthz while degraded: %+v", h)
	}
	if mm := s.Metrics(); mm.Degraded != 1 {
		fail("degraded gauge = %d while degraded", mm.Degraded)
	}
	// Cache hits keep serving while degraded (memory-only; their IDs are the
	// one documented durability gap — asserted after the restart below).
	degradedHitID := ""
	for i := 0; i < 10 && degradedHitID == ""; i++ {
		if st, err := s.Submit(cacheReq()); err == nil && st.CacheHit {
			degradedHitID = st.ID
		}
	}
	if degradedHitID == "" {
		fail("no cache hit served while degraded")
	}
	// The disk heals; the probe exits degraded without a restart.
	inj.ClearRules()
	healed := false
	for i := 0; i < 500 && !healed; i++ {
		time.Sleep(2 * time.Millisecond)
		st, err := s.Submit(gnpRequest(distcolor.AlgoEdgeGreedy, 24, 0.2, int64(40000+i)))
		if err == nil {
			fin, werr := s.WaitTimeout(st.ID, time.Minute)
			if werr != nil || !fin.State.Terminal() {
				fail("post-heal job %s: %+v, %v", st.ID, fin, werr)
			}
			states[st.ID] = fin.State
			healed = true
		} else if !errors.Is(err, ErrDegraded) && !errors.Is(err, fault.ErrInjected) {
			fail("unexpected error while healing: %v", err)
		}
	}
	if !healed {
		fail("server never exited degraded mode")
	}
	if h := s.Health(); h.Degraded {
		fail("healthz still degraded after healing: %+v", h)
	}

	// Phase 3: restart over a torn tail. Graft crash garbage onto the
	// newest journal segment; replay must heal it and serve every journaled
	// terminal unchanged.
	s.Close()
	closed = true
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		fail("no journal segments on disk")
	}
	f, err := os.OpenFile(dir+"/"+last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := NewServer(Config{Workers: 2, QueueDepth: 512, DataDir: dir})
	if err != nil {
		fail("restart on the chaos journal: %v", err)
	}
	defer s2.Close()
	maxID := int64(0)
	for id, want := range states {
		got, err := s2.Status(id)
		if err != nil {
			fail("job %s lost across restart: %v", id, err)
		}
		if got.State != want {
			fail("job %s recovered as %s, want %s", id, got.State, want)
		}
		if n := jobIDNum(id); n > maxID {
			maxID = n
		}
	}
	// The degraded-mode cache hit was served memory-only: its ID not
	// surviving the restart is the documented gap, not a loss.
	if _, err := s2.Status(degradedHitID); !errors.Is(err, ErrNotFound) {
		if _, tracked := states[degradedHitID]; !tracked {
			fail("degraded cache-hit ID %s: %v, want ErrNotFound (memory-only serve)", degradedHitID, err)
		}
	}

	// Phase 4: the flaky client transport (GET-only injection, so a failed
	// poll can never un-account a submission), then a clean job end-to-end —
	// the workers that absorbed every fault above are still alive.
	cpts := fault.New(seed, fault.Plan{Site: "client.rt", Action: fault.ActionErr, On: []int64{2}, After: 1, Rate: 0.25})
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTP: &http.Client{
		Transport: &fault.Transport{Points: cpts, Site: "client.rt", GETOnly: true},
	}}
	ctx := t.Context()
	var polled, injected int
	for i := 0; i < 20; i++ {
		if _, err := c.Status(ctx, accepted[0]); err != nil {
			if !errors.Is(err, fault.ErrInjected) {
				fail("poll %d: %v", i, err)
			}
			injected++
		} else {
			polled++
		}
	}
	if polled == 0 || injected == 0 {
		fail("transport injection: %d clean polls, %d injected failures — want both", polled, injected)
	}
	st, err := c.Submit(ctx, gnpRequest(distcolor.AlgoEdgeGreedy, 24, 0.2, 77777))
	if err != nil {
		fail("clean submission through the flaky transport: %v", err)
	}
	if n := jobIDNum(st.ID); n <= maxID {
		fail("fresh submission reused job ID %s (journal max j%d)", st.ID, maxID)
	}
	fin, err := s2.WaitTimeout(st.ID, 2*time.Minute)
	if err != nil || fin.State != StateDone {
		fail("final clean job: %+v, %v", fin, err)
	}
}
