package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	distcolor "repro"
)

// scrape fetches GET /metrics and returns the exposition text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("scrape content type %q lacks exposition version", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// seriesNames extracts the set of series names present in an exposition
// page (sample lines only; histogram _bucket/_sum/_count lines map back to
// the family name).
func seriesNames(text string) map[string]bool {
	names := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			names[strings.TrimSuffix(name, suf)] = true
		}
		names[name] = true
	}
	return names
}

// Every Metrics JSON field must have a Prometheus series exporting the same
// value, and the mapping table must not drift from the struct: a field
// added to one without the other fails here, not on a dashboard.
func TestEveryMetricsFieldHasASeries(t *testing.T) {
	tags := make(map[string]bool)
	mt := reflect.TypeOf(Metrics{})
	for i := 0; i < mt.NumField(); i++ {
		tag := strings.Split(mt.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			t.Fatalf("Metrics field %s has no json tag", mt.Field(i).Name)
		}
		tags[tag] = true
		if _, ok := metricsSeries[tag]; !ok {
			t.Errorf("Metrics field %q has no entry in metricsSeries", tag)
		}
	}
	for tag := range metricsSeries {
		if !tags[tag] {
			t.Errorf("metricsSeries maps %q, which is not a Metrics field", tag)
		}
	}

	// End to end: run real work through a real HTTP server, then assert the
	// scrape page carries every mapped series plus the histogram families.
	s := testServer(t, Config{Workers: 2, CacheEntries: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st, err := s.Submit(cycleRequest(24))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	if _, err := s.Submit(cycleRequest(24)); err != nil { // cache hit path
		t.Fatal(err)
	}
	got := seriesNames(scrape(t, ts.URL))
	for tag, series := range metricsSeries {
		if !got[series] {
			t.Errorf("series %s (Metrics field %q) missing from scrape", series, tag)
		}
	}
	for _, series := range []string{"colord_stage_duration_us", "colord_round_max_message_bits"} {
		if !got[series] {
			t.Errorf("histogram family %s missing from scrape", series)
		}
	}
}

// The exposition page is deterministic for a fixed server state, carries a
// HELP and TYPE header per family, and keeps families sorted — the
// stability contract a scraper's staleness handling relies on.
func TestMetricsPromStableAndWellFormed(t *testing.T) {
	s := testServer(t, Config{Workers: 1, Frozen: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	a, b := scrape(t, ts.URL), scrape(t, ts.URL)
	// The HTTP byte counters observe the scrape traffic itself, so they are
	// the one legitimate difference between two scrapes of an idle server.
	stripSelf := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "colord_http_request_bytes_total ") ||
				strings.HasPrefix(line, "colord_http_response_bytes_total ") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if stripSelf(a) != stripSelf(b) {
		t.Fatal("two scrapes of an idle server differ")
	}
	var families []string
	sc := bufio.NewScanner(strings.NewReader(a))
	help, typ := map[string]bool{}, map[string]bool{}
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) >= 3 && f[0] == "#" && f[1] == "HELP" {
			help[f[2]] = true
			families = append(families, f[2])
		}
		if len(f) >= 3 && f[0] == "#" && f[1] == "TYPE" {
			typ[f[2]] = true
		}
	}
	if len(families) == 0 {
		t.Fatal("no metric families in scrape")
	}
	if !strings.HasPrefix(a, "# HELP ") {
		t.Fatalf("exposition does not start with a HELP header: %q", a[:min(len(a), 60)])
	}
	for i := 1; i < len(families); i++ {
		if families[i-1] >= families[i] {
			t.Fatalf("families out of order: %s then %s", families[i-1], families[i])
		}
	}
	for f := range help {
		if !typ[f] {
			t.Errorf("family %s has HELP but no TYPE", f)
		}
	}
	// The stage histogram must expose one labeled series per lifecycle
	// stage, cumulative buckets included.
	for _, stage := range []string{stageAdmit, stageQueue, stageExecute, stageVerify, stageServe} {
		want := `colord_stage_duration_us_bucket{stage="` + stage + `",le="+Inf"}`
		if !strings.Contains(a, want) {
			t.Errorf("scrape lacks %s", want)
		}
	}
}

// Satellite regression: Metrics() must be a coherent single-lock snapshot.
// Flood the server with batch submissions while hammering the JSON metrics
// endpoint and check cross-field invariants that only hold if no field is
// read torn from the others. Run with -race, this also hunts data races
// between the scrape path and the submit/run paths.
func TestMetricsCoherentUnderBatchFlood(t *testing.T) {
	s := testServer(t, Config{Workers: 2, QueueDepth: 64, CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Batch flood: enough work to keep the queue busy, small enough to
	// finish promptly.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := &Client{Base: ts.URL, MaxRetries: -1}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reqs := make([]distcolor.Request, 8)
				for k := range reqs {
					reqs[k] = *cycleRequest(16 + (i+k)%7)
				}
				_, _ = cl.Batch(context.Background(), reqs)
			}
		}(w)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m Metrics
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		finished := m.Completed + m.Failed + m.Canceled
		if finished > m.Submitted {
			t.Fatalf("torn snapshot: %d finished > %d submitted (%+v)", finished, m.Submitted, m)
		}
		if m.QueueDepth < 0 || m.Running < 0 || m.InflightBytes < 0 {
			t.Fatalf("negative occupancy in snapshot: %+v", m)
		}
		if m.Running > m.Workers {
			t.Fatalf("running %d > workers %d", m.Running, m.Workers)
		}
		// Prometheus scrapes ride along to race the text path too.
		_ = scrape(t, ts.URL)
	}
	close(stop)
	wg.Wait()
}

// A finished job's trace stream ends with a complete admit→serve span tree;
// a cache hit's tree is admit+serve only.
func TestTraceSpanTree(t *testing.T) {
	s := testServer(t, Config{Workers: 1, CacheEntries: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := &Client{Base: ts.URL}

	st, err := s.Submit(cycleRequest(32))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	var spans []Span
	state, err := cl.TraceSpans(context.Background(), st.ID, nil, func(sp Span) { spans = append(spans, sp) })
	if err != nil {
		t.Fatal(err)
	}
	if state != StateDone {
		t.Fatalf("trace ended in state %s", state)
	}
	checkTree(t, spans, []string{"job", stageAdmit, stageQueue, stageExecute, stageVerify, stageServe})

	// Identical resubmission: served from cache, no queue/execute/verify.
	hit, err := s.Submit(cycleRequest(32))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatalf("resubmission was not a cache hit: %+v", hit)
	}
	spans = nil
	if _, err := cl.TraceSpans(context.Background(), hit.ID, nil, func(sp Span) { spans = append(spans, sp) }); err != nil {
		t.Fatal(err)
	}
	checkTree(t, spans, []string{"job", stageAdmit, stageServe})
}

// checkTree asserts the span list is exactly the named set, all closed,
// with one root ("job") that every other span parents to, and child spans
// contained within the root's interval.
func checkTree(t *testing.T, spans []Span, want []string) {
	t.Helper()
	if len(spans) != len(want) {
		t.Fatalf("got %d spans %v, want %v", len(spans), names(spans), want)
	}
	byName := make(map[string]Span, len(spans))
	rootIdx := -1
	for i, sp := range spans {
		byName[sp.Name] = sp
		if sp.DurUS < 0 {
			t.Errorf("span %s still open in terminal trace", sp.Name)
		}
		if sp.Name == "job" {
			rootIdx = i
			if sp.Parent != -1 {
				t.Errorf("root span has parent %d", sp.Parent)
			}
			if sp.StartUS != 0 {
				t.Errorf("root span starts at %dµs", sp.StartUS)
			}
		}
	}
	for _, name := range want {
		if _, ok := byName[name]; !ok {
			t.Fatalf("span %s missing (got %v)", name, names(spans))
		}
	}
	root := spans[rootIdx]
	for i, sp := range spans {
		if i == rootIdx {
			continue
		}
		if sp.Parent != rootIdx {
			t.Errorf("span %s parents to %d, root is %d", sp.Name, sp.Parent, rootIdx)
		}
		if sp.StartUS < root.StartUS || sp.StartUS+sp.DurUS > root.StartUS+root.DurUS {
			t.Errorf("span %s [%d,%d] outside root [%d,%d]",
				sp.Name, sp.StartUS, sp.StartUS+sp.DurUS, root.StartUS, root.StartUS+root.DurUS)
		}
	}
	// The lifecycle stages abut: each begins where the previous ended.
	for i := 2; i < len(want); i++ {
		prev, cur := byName[want[i-1]], byName[want[i]]
		if cur.StartUS != prev.StartUS+prev.DurUS {
			t.Errorf("span %s starts at %dµs, %s ended at %dµs",
				cur.Name, cur.StartUS, prev.Name, prev.StartUS+prev.DurUS)
		}
	}
}

func names(spans []Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// WAL activity must surface in the scrape when a store is configured.
func TestWALSeriesExported(t *testing.T) {
	s := testServer(t, Config{Workers: 1, DataDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st, err := s.Submit(cycleRequest(16))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	text := scrape(t, ts.URL)
	for _, series := range []string{
		"colord_wal_appends_total", "colord_wal_fsyncs_total",
		"colord_wal_compactions_total", "colord_wal_segments", "colord_wal_active_bytes",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("scrape lacks %s", series)
		}
	}
	a, f, _ := s.store.Counters()
	if a < 2 { // submission + terminal at minimum
		t.Errorf("store counted %d appends, want >= 2", a)
	}
	if f < 2 { // both of those fsync'd
		t.Errorf("store counted %d fsyncs, want >= 2", f)
	}
}
