package service

import (
	"context"
	"testing"
	"time"

	"net/http/httptest"

	distcolor "repro"
	"repro/internal/gen"
)

// TestAlgorithmsEndpointServesRegistry: /v1/algorithms returns the full
// registry metadata — every registered algorithm with its kind and
// parameter schema — so clients can discover workloads instead of
// hardcoding algorithm strings.
func TestAlgorithmsEndpointServesRegistry(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	infos, err := c.Algorithms(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := distcolor.Algorithms()
	if len(infos) != len(want) {
		t.Fatalf("endpoint lists %d algorithms, registry has %d", len(infos), len(want))
	}
	byName := map[string]distcolor.AlgorithmInfo{}
	for _, info := range infos {
		byName[info.Name] = info
		if info.Kind != distcolor.KindEdge && info.Kind != distcolor.KindVertex {
			t.Errorf("%s: bad kind %q", info.Name, info.Kind)
		}
		if info.Params == nil {
			t.Errorf("%s: params served as null, want []", info.Name)
		}
	}
	for _, name := range want {
		if _, ok := byName[name]; !ok {
			t.Errorf("registry algorithm %s missing from endpoint", name)
		}
	}
	sparse := byName[distcolor.AlgoEdgeSparse]
	var sawQ bool
	for _, p := range sparse.Params {
		if p.Name == "q" {
			sawQ = true
			if p.Default != 3 || p.ClampMin != 2.05 {
				t.Errorf("q schema = %+v, want default 3 clamp 2.05", p)
			}
		}
	}
	if !sawQ {
		t.Error("edge/sparse schema lacks q")
	}
	if cd := byName[distcolor.AlgoVertexCD]; !cd.NeedsCover {
		t.Error("vertex/cd must advertise needs_cover")
	}
}

// TestCancelRunningJobSurfacesCanceled: canceling a job mid-simulation
// aborts it through its context and the service reports it canceled — not
// failed — with the cancellation counted in the metrics.
func TestCancelRunningJobSurfacesCanceled(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	g, err := gen.NearRegular(400, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	req := &distcolor.Request{Algorithm: distcolor.AlgoEdgeStar, Graph: distcolor.Spec(g), X: 1}
	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the worker to pick the job up and execute rounds, so Cancel
	// exercises the ctx-abort path rather than queue removal.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := s.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateRunning {
			if evs, _, _, _ := s.Trace(st.ID, 0); len(evs) > 0 {
				break
			}
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished %s before it could be canceled; enlarge the workload", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := s.WaitTimeout(st.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("canceled job finished %s (%s), want %s", final.State, final.Error, StateCanceled)
	}
	if final.Error != errJobCanceled.Error() {
		t.Fatalf("canceled job error = %q, want %q", final.Error, errJobCanceled.Error())
	}
	m := s.Metrics()
	if m.Canceled != 1 || m.Failed != 0 {
		t.Fatalf("metrics canceled=%d failed=%d, want 1/0", m.Canceled, m.Failed)
	}
}

// TestCacheKeySeparatesParamsField: parameters arriving through the wire
// Params map must feed the cache key exactly like the legacy shorthand
// fields — two requests differing only in Params must never share a cached
// coloring, and equivalent spellings of one workload must share it.
func TestCacheKeySeparatesParamsField(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	g, err := gen.NearRegular(48, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := distcolor.Spec(g)

	x1 := &distcolor.Request{Algorithm: distcolor.AlgoEdgeStar, Graph: spec, Params: distcolor.Params{"x": 1}}
	st, err := s.Submit(x1)
	if err != nil {
		t.Fatal(err)
	}
	first := waitDone(t, s, st.ID)

	x2 := &distcolor.Request{Algorithm: distcolor.AlgoEdgeStar, Graph: spec, Params: distcolor.Params{"x": 2}}
	st, err = s.Submit(x2)
	if err != nil {
		t.Fatal(err)
	}
	second := waitDone(t, s, st.ID)
	if second.CacheHit {
		t.Fatalf("x=2 via Params was served x=1's cached coloring (%s, palette %d)", second.Algorithm, second.Palette)
	}
	if first.Palette == second.Palette {
		t.Fatalf("x=1 and x=2 report the same palette %d; workload too small to distinguish", first.Palette)
	}

	// The same workload spelled via the shorthand field must hit the
	// Params-spelled entry.
	xShort := &distcolor.Request{Algorithm: distcolor.AlgoEdgeStar, Graph: spec, X: 2}
	st, err = s.Submit(xShort)
	if err != nil {
		t.Fatal(err)
	}
	if third := waitDone(t, s, st.ID); !third.CacheHit {
		t.Fatal("X:2 shorthand did not hit the params{x:2} cache entry")
	}
}
