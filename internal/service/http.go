package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	distcolor "repro"
	"repro/internal/gen"
)

// HTTP surface of the service (JSON unless noted):
//
//	POST /v1/jobs              Request                → JobStatus (202; 200 on cache hit; 429 + Retry-After when shed)
//	                           Content-Type selects the request codec: application/json (default) or
//	                           application/vnd.distcolor.v1+bin — one binary frame, or a chunked stream
//	                           admitted per edge chunk (DESIGN.md §11). Requests using the legacy
//	                           shorthand fields (x/arboricity/q) get a Deprecation: true response header.
//	GET  /v1/jobs/{id}         —                      → JobStatus
//	GET  /v1/jobs/{id}/result  —                      → Response (409 until done)
//	GET  /v1/jobs/{id}/trace   ?after=<seq>           → NDJSON stream of TraceEvents, then {"span":…} lifecycle
//	                                                    spans, then one {"done":…} terminator
//	POST /v1/jobs/{id}/cancel  —                      → JobStatus
//	POST /v1/batch             BatchRequest           → BatchResponse (sharded; per-item partial failure)
//	POST /v1/generate          GenerateRequest        → BatchResponse (graphs built server-side)
//	GET  /v1/metrics           —                      → Metrics
//	GET  /metrics              —                      → Prometheus text exposition (0.0.4)
//	GET  /v1/algorithms        —                      → [AlgorithmInfo] (registry metadata: names, kinds, parameter schemas)
//	GET  /v1/healthz           —                      → Health (200 ready / 503 shedding)
//
// Every response carries an X-Request-Id header; the same ID tags the
// request's structured log line.

// BatchRequest submits many workloads in one call.
type BatchRequest struct {
	Requests []distcolor.Request `json:"requests"`
}

// BatchResponse reports the per-workload submission outcomes, index-aligned
// with the batch. Failed submissions carry Error and no ID.
type BatchResponse struct {
	Jobs []BatchJob `json:"jobs"`
}

// BatchJob is one submission outcome within a batch. Under load the normal
// case is partial failure: some items accepted, some shed. Shed items carry
// Retryable plus the server's backoff hint so a client can resubmit exactly
// the refused slice.
type BatchJob struct {
	ID       string `json:"id,omitempty"`
	State    State  `json:"state,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	// Retryable marks a load-shed (not invalid) item; RetryAfterMS is the
	// suggested resubmission delay.
	Retryable    bool  `json:"retryable,omitempty"`
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// GenSpec names a synthetic workload family from internal/gen.
type GenSpec struct {
	// Family: gnp | nearregular | forestunion | foresthub | tree | grid |
	// geometric | hypergraph | cliquecover.
	Family string `json:"family"`
	// Count generates this many graphs with seeds Seed, Seed+1, …
	// (default 1).
	Count int   `json:"count,omitempty"`
	Seed  int64 `json:"seed,omitempty"`

	N      int     `json:"n,omitempty"`      // vertices (gnp, nearregular, forestunion, foresthub, tree, geometric)
	P      float64 `json:"p,omitempty"`      // gnp edge probability
	Degree int     `json:"degree,omitempty"` // nearregular target degree
	A      int     `json:"a,omitempty"`      // forest count (forestunion, foresthub)
	Hub    int     `json:"hub,omitempty"`    // hub degree (foresthub)
	Rows   int     `json:"rows,omitempty"`   // grid
	Cols   int     `json:"cols,omitempty"`   // grid
	Radius float64 `json:"radius,omitempty"` // geometric
	NV     int     `json:"nv,omitempty"`     // hypergraph vertices
	Rank   int     `json:"rank,omitempty"`   // hypergraph edge size
	NE     int     `json:"ne,omitempty"`     // hypergraph edge count
	// cliquecover parameters (BoundedDiversityCliqueGraph).
	Cliques    int `json:"cliques,omitempty"`
	CliqueSize int `json:"clique_size,omitempty"`
	MaxPerV    int `json:"max_per_v,omitempty"`
}

// GenerateRequest synthesizes workloads server-side: each generated graph
// is submitted as Template with its Graph field replaced.
type GenerateRequest struct {
	Gen GenSpec `json:"gen"`
	// Template carries the algorithm and its parameters; Template.Graph is
	// ignored and overwritten by the generated graph (including the clique
	// cover for the hypergraph and cliquecover families).
	Template distcolor.Request `json:"template"`
}

// Generator guard rails: graph materialization happens before Submit's
// size checks can protect the server, so the wire parameters are bounded
// here first. genMaxCount caps graphs per request; genMaxN caps every
// vertex-count-like parameter (below MaxVertices because the quadratic
// families — gnp, geometric — cost O(n²) generation time).
const (
	genMaxCount = 256
	genMaxN     = 50_000
)

// validate bounds the wire parameters before any generator allocates.
func (g GenSpec) validate(cfg Config) error {
	if g.Count < 0 || g.Count > genMaxCount {
		return fmt.Errorf("service: generator count %d outside [0,%d]", g.Count, genMaxCount)
	}
	maxN := genMaxN
	if cfg.MaxVertices > 0 && cfg.MaxVertices < maxN {
		maxN = cfg.MaxVertices
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"n", g.N}, {"nv", g.NV}, {"rows", g.Rows}, {"cols", g.Cols},
	} {
		if p.v < 0 || p.v > maxN {
			return fmt.Errorf("service: generator %s=%d outside [0,%d]", p.name, p.v, maxN)
		}
	}
	if g.Rows > 0 && g.Cols > 0 && g.Rows*g.Cols > maxN {
		return fmt.Errorf("service: grid %d×%d exceeds %d vertices", g.Rows, g.Cols, maxN)
	}
	maxE := 2_000_000
	if cfg.MaxEdges > 0 && cfg.MaxEdges < maxE {
		maxE = cfg.MaxEdges
	}
	// Families whose edge count is not linear in a bounded parameter must
	// bound their *worst-case* materialized edges, since generation happens
	// before Submit's MaxEdges check can reject:
	//   gnp/geometric  → up to n(n−1)/2 regardless of P/Radius,
	//   nearregular    → n·degree/2,
	//   forest unions  → (a+1)·n,
	//   hypergraph     → line graphs of ne hyperedges reach O((ne·rank)²),
	//   cliquecover    → cliques·cliqueSize².
	switch g.Family {
	case "gnp", "geometric":
		if int64(g.N)*int64(g.N-1)/2 > int64(maxE) {
			return fmt.Errorf("service: %s with n=%d can reach %d edges, limit %d", g.Family, g.N, int64(g.N)*int64(g.N-1)/2, maxE)
		}
	case "nearregular":
		if int64(g.N)*int64(g.Degree)/2 > int64(maxE) {
			return fmt.Errorf("service: nearregular n=%d degree=%d exceeds %d edges", g.N, g.Degree, maxE)
		}
	case "forestunion", "foresthub":
		if int64(g.A+1)*int64(g.N) > int64(maxE) {
			return fmt.Errorf("service: forest union n=%d a=%d exceeds %d edges", g.N, g.A, maxE)
		}
	case "hypergraph":
		lineVerts := int64(g.NE)
		if lineVerts*(lineVerts-1)/2 > int64(maxE) {
			return fmt.Errorf("service: hypergraph ne=%d can reach %d line-graph edges, limit %d", g.NE, lineVerts*(lineVerts-1)/2, maxE)
		}
	case "cliquecover":
		if int64(g.Cliques)*int64(g.CliqueSize)*int64(g.CliqueSize) > int64(maxE) {
			return fmt.Errorf("service: cliquecover cliques=%d size=%d exceeds %d edges", g.Cliques, g.CliqueSize, maxE)
		}
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"degree", g.Degree}, {"a", g.A}, {"hub", g.Hub}, {"rank", g.Rank},
		{"ne", g.NE}, {"cliques", g.Cliques}, {"clique_size", g.CliqueSize},
		{"max_per_v", g.MaxPerV},
	} {
		if p.v < 0 || p.v > maxE {
			return fmt.Errorf("service: generator %s=%d outside [0,%d]", p.name, p.v, maxE)
		}
	}
	return nil
}

// buildGraph materializes one graph of the spec at the given seed.
func (g GenSpec) buildGraph(seed int64) (distcolor.GraphSpec, error) {
	switch g.Family {
	case "gnp":
		return distcolor.Spec(gen.GNP(g.N, g.P, seed)), nil
	case "nearregular":
		gr, err := gen.NearRegular(g.N, g.Degree, seed)
		if err != nil {
			return distcolor.GraphSpec{}, err
		}
		return distcolor.Spec(gr), nil
	case "forestunion":
		return distcolor.Spec(gen.ForestUnion(g.N, g.A, seed)), nil
	case "foresthub":
		gr, err := gen.ForestUnionHub(g.N, g.A, g.Hub, seed)
		if err != nil {
			return distcolor.GraphSpec{}, err
		}
		return distcolor.Spec(gr), nil
	case "tree":
		return distcolor.Spec(gen.Tree(g.N, seed)), nil
	case "grid":
		return distcolor.Spec(gen.Grid(g.Rows, g.Cols)), nil
	case "geometric":
		return distcolor.Spec(gen.Geometric(g.N, g.Radius, seed)), nil
	case "hypergraph":
		h, err := gen.UniformHypergraph(g.NV, g.Rank, g.NE, seed)
		if err != nil {
			return distcolor.GraphSpec{}, err
		}
		lg, cover, err := distcolor.HypergraphLineCover(h)
		if err != nil {
			return distcolor.GraphSpec{}, err
		}
		spec := distcolor.Spec(lg)
		spec.Cliques = cover.Cliques
		return spec, nil
	case "cliquecover":
		gr, cliques, err := gen.BoundedDiversityCliqueGraph(g.N, g.Cliques, g.CliqueSize, g.MaxPerV, seed)
		if err != nil {
			return distcolor.GraphSpec{}, err
		}
		spec := distcolor.Spec(gr)
		spec.Cliques = cliques
		return spec, nil
	default:
		return distcolor.GraphSpec{}, fmt.Errorf("service: unknown generator family %q", g.Family)
	}
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	mux.HandleFunc("GET /v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, distcolor.DescribeAlgorithms())
	})
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s.withRequestLog(mux)
}

// withRequestLog assigns each request a server-unique ID (echoed as the
// X-Request-Id response header) and logs method, path, status, and duration
// with it. Successes log at Debug so a production daemon is quiet by
// default; error statuses log at Warn.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := "r" + strconv.FormatInt(s.reqID.Add(1), 10)
		w.Header().Set("X-Request-Id", id)
		cr := &countingReader{rc: r.Body}
		r.Body = cr
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.mu.Lock()
		s.obs.bytesIn.Add(cr.n)
		s.obs.bytesOut.Add(sw.wrote)
		s.mu.Unlock()
		lvl := slog.LevelDebug
		if sw.code >= 400 {
			lvl = slog.LevelWarn
		}
		s.log.Log(r.Context(), lvl, "http request",
			"req", id, "method", r.Method, "path", r.URL.Path,
			"status", sw.code, "dur_ms", time.Since(start).Milliseconds())
	})
}

// countingReader counts request body bytes actually read by the handler,
// feeding colord_http_request_bytes_total.
type countingReader struct {
	rc io.ReadCloser
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.rc.Close() }

// statusWriter captures the response status and body size for the request
// log and the byte counters, passing Flush through so NDJSON trace
// streaming keeps working behind it.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.wrote += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleHealthz serves the admission readiness view: 200 while the server
// would accept new work, 503 once either admission bound is exhausted —
// load balancers drain a saturated instance before its clients see 429s.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if !h.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// boundBody caps how much of a request body a handler will read, so the
// configured limits protect memory during JSON decoding, not only after the
// full body has been materialized.
func (s *Server) boundBody(w http.ResponseWriter, r *http.Request) io.Reader {
	if s.cfg.MaxBodyBytes < 0 {
		return r.Body
	}
	return http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// submitCode maps a submission error to an HTTP status.
func submitCode(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDegraded), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// writeSubmitErr renders a submission failure; load sheds get 429 (and
// degraded-mode sheds 503) with a Retry-After header carrying the server's
// backoff estimate (whole seconds, rounded up, per RFC 9110).
func writeSubmitErr(w http.ResponseWriter, err error) {
	var retry time.Duration
	var ov *OverloadError
	var dg *DegradedError
	switch {
	case errors.As(err, &ov):
		retry = ov.RetryAfter
	case errors.As(err, &dg):
		retry = dg.RetryAfter
	}
	if retry > 0 {
		secs := int64((retry + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeErr(w, submitCode(err), err)
}

// submitCodec resolves a submission's Content-Type to a request codec. An
// absent header means JSON (the pre-binary wire, and the sane default for
// small requests), and so does curl's implicit `-d` default,
// application/x-www-form-urlencoded — every quickstart example posts JSON
// that way, and rejecting it would break the documented front door.
func submitCodec(contentType string) (distcolor.Codec, bool) {
	if strings.TrimSpace(contentType) == "" {
		return distcolor.CodecJSON, true
	}
	if mt, _, err := mime.ParseMediaType(contentType); err == nil && mt == "application/x-www-form-urlencoded" {
		return distcolor.CodecJSON, true
	}
	return distcolor.CodecForContentType(contentType)
}

// acceptsBinary reports whether the request's Accept header asks for the
// binary frame encoding. Anything else — absent header, */*, JSON — keeps
// the JSON default.
func acceptsBinary(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		if mt, _, err := mime.ParseMediaType(strings.TrimSpace(part)); err == nil && mt == distcolor.ContentTypeBinary {
			return true
		}
	}
	return false
}

// countCodec bumps the submissions-by-codec counter named by choice; the
// counters are guarded by s.mu, so selection happens under the lock.
func (s *Server) countCodec(choice string) {
	s.mu.Lock()
	switch choice {
	case "json":
		s.obs.codecJSON.Inc()
	case "binary":
		s.obs.codecBinary.Inc()
	case "stream":
		s.obs.codecStream.Inc()
	}
	s.mu.Unlock()
}

// noteDeprecated marks responses to requests that used the legacy shorthand
// parameter fields (x/arboricity/q) with a Deprecation header, and logs the
// migration pointer once per process. The fields keep working — PR-2
// tolerance semantics are pinned by test — this is the signpost to the
// params map (README migration table).
func (s *Server) noteDeprecated(w http.ResponseWriter, reqs ...*distcolor.Request) {
	for _, req := range reqs {
		if req.X != 0 || req.Arboricity != 0 || req.Q != 0 {
			w.Header().Set("Deprecation", "true")
			s.deprecatedOnce.Do(func() {
				s.log.Warn("request used deprecated shorthand fields (x/arboricity/q); set params instead — see the README migration table")
			})
			return
		}
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	codec, ok := submitCodec(r.Header.Get("Content-Type"))
	if !ok {
		writeErr(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("service: unsupported Content-Type %q (use %s or %s)",
				r.Header.Get("Content-Type"), distcolor.ContentTypeJSON, distcolor.ContentTypeBinary))
		return
	}
	var st JobStatus
	var err error
	if codec == distcolor.CodecBinary {
		rr := distcolor.NewRequestReader(s.boundBody(w, r))
		var req *distcolor.Request
		if req, err = rr.Begin(); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.noteDeprecated(w, req)
		if rr.Chunked() {
			s.countCodec("stream")
			st, err = s.SubmitStream(rr, req)
		} else {
			s.countCodec("binary")
			st, err = s.Submit(req)
		}
	} else {
		s.countCodec("json")
		body, rerr := io.ReadAll(s.boundBody(w, r))
		if rerr != nil {
			writeErr(w, http.StatusBadRequest, rerr)
			return
		}
		var req distcolor.Request
		if err := codec.Decode(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.noteDeprecated(w, &req)
		st, err = s.Submit(&req)
	}
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK // served from cache
	}
	writeJSON(w, code, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	resp, st, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if resp == nil {
		writeJSON(w, http.StatusConflict, st)
		return
	}
	if acceptsBinary(r.Header.Get("Accept")) {
		writeCodec(w, http.StatusOK, distcolor.CodecBinary, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeCodec renders v through an explicit codec, with Content-Length set
// (the frame is already materialized, so the length is known).
func writeCodec(w http.ResponseWriter, code int, c distcolor.Codec, v any) {
	data, err := c.Encode(v)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", c.ContentType())
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(code)
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handleMetricsProm serves the same instruments as Prometheus text
// exposition format 0.0.4 — the scrape target for a real monitoring stack,
// while /v1/metrics stays the JSON view for humans and the CLI.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WriteText(w)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(s.boundBody(w, r)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	for i := range req.Requests {
		s.noteDeprecated(w, &req.Requests[i])
	}
	writeJSON(w, http.StatusOK, s.submitAll(req.Requests))
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := json.NewDecoder(s.boundBody(w, r)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Gen.validate(s.cfg); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.noteDeprecated(w, &req.Template)
	count := req.Gen.Count
	if count <= 0 {
		count = 1
	}
	reqs := make([]distcolor.Request, 0, count)
	for i := 0; i < count; i++ {
		spec, err := req.Gen.buildGraph(req.Gen.Seed + int64(i))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		one := req.Template
		one.Graph = spec
		reqs = append(reqs, one)
	}
	writeJSON(w, http.StatusOK, s.submitAll(reqs))
}

// traceEnd is the final line of a trace stream.
type traceEnd struct {
	Done  bool  `json:"done"`
	State State `json:"state"`
	// FirstSeq is the seq of the oldest retained event; a reader that asked
	// for earlier events missed them to the bounded history.
	FirstSeq int `json:"first_seq"`
}

// spanLine wraps one lifecycle span on the trace stream. The wrapper key is
// what lets a line-oriented reader tell span lines from TraceEvents without
// a schema field on every line.
type spanLine struct {
	Span *Span `json:"span"`
}

// handleTrace streams the job's round trace as NDJSON: recorded events
// first, then live events as the job executes, then the job's lifecycle
// span tree (one {"span":…} line each, parents before children), then one
// traceEnd line.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	after := 0
	if q := r.URL.Query().Get("after"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("service: bad after=%q: %w", q, err))
			return
		}
		after = v
	}
	if _, err := s.Status(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		events, state, firstSeq, err := s.WaitTrace(ctx, id, after)
		if err != nil || ctx.Err() != nil {
			return // job evicted mid-stream or client went away
		}
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return // client went away
			}
			if ev.Seq >= after {
				after = ev.Seq + 1
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if state.Terminal() && len(events) == 0 {
			// The job is terminal, so the span tree is closed (the terminal
			// transition and the final span End share one critical section).
			spans, _ := s.Spans(id)
			for i := range spans {
				if err := enc.Encode(spanLine{Span: &spans[i]}); err != nil {
					return
				}
			}
			_ = enc.Encode(traceEnd{Done: true, State: state, FirstSeq: firstSeq})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
	}
}
