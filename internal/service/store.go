package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	distcolor "repro"
	"repro/internal/fault"
)

// Store is the write-ahead job store behind `colord -data-dir`: an append-only
// journal of distcolor.JobRecord entries (submission, state transitions,
// terminal results) framed as length-prefixed, CRC-guarded JSON records in
// numbered segment files. Replay merges entries by job ID, so any byte prefix
// of the journal — which is exactly what a crash leaves behind — reconstructs
// a consistent job table: a job exists iff its submission entry is complete,
// and is terminal iff its terminal entry is complete. The server re-enqueues
// every recovered non-terminal job on startup.
//
// Framing: each record is [len uint32][crc32(payload) uint32][payload JSON],
// both integers little-endian. A torn tail (len or crc violated) in the
// final segment is the expected crash artifact: replay stops at the last
// intact record and Open truncates the segment there so appends resume on a
// clean boundary. The same damage in a non-final segment cannot be produced
// by a crash of this writer and is reported as corruption.
//
// Durability policy: submission and terminal entries are fsync'd before the
// append returns — they are the entries whose loss changes the job table.
// "running" transitions and retention "forgotten" markers ride the next sync:
// losing one replays the job as queued (it re-runs — the at-least-once side
// of recovery) or re-retains a forgotten job, both harmless.
//
// Compaction: when the journal accumulates segments, Compact replays them
// and rewrites one condensed record per retained job (submission + latest
// state + outcome) into a fresh segment, then removes the old ones. The
// condensed segment is written to a temp file, synced, and renamed before
// any old segment is deleted, so a crash at any instant leaves a journal
// that replays to the same table (duplicate entries merge idempotently).
type Store struct {
	dir string
	fs  fault.FS // filesystem seam; fault.OS in production, injectable in tests

	// Journal activity counters, exported via the server's metric registry
	// (colord_wal_*_total). Atomic so Counters never contends with an
	// in-flight fsync under st.mu.
	appends, fsyncs, compactions atomic.Int64

	mu       sync.Mutex
	f        fault.File // active segment; nil after a failed rotation until self-heal
	seg      int64      // active segment index
	segBytes int64      // bytes appended to the active segment
	maxSeg   int64      // rotation threshold
	dirty    bool       // unsynced appends pending
	segments int        // segment files on disk (including active)
	maintErr error      // last rotation/compaction failure; cleared on success
	maxID    int64      // highest numeric job ID ever journaled (survives forgetting)
	closed   bool
}

// storeStateForgotten is the journal-only state marking a job dropped from
// the service's bounded retention; replay drops the job with it.
const storeStateForgotten = "forgotten"

// errStoreCorrupt reports journal damage that a crash of this writer cannot
// produce (a torn record before the final segment).
var errStoreCorrupt = errors.New("service: job store corrupt")

const (
	storeSegPrefix   = "wal-"
	storeSegSuffix   = ".log"
	storeRecordLimit = 1 << 30 // sanity bound on one record's length prefix
)

func segName(seg int64) string {
	return fmt.Sprintf("%s%08d%s", storeSegPrefix, seg, storeSegSuffix)
}

func parseSegName(name string) (int64, bool) {
	if !strings.HasPrefix(name, storeSegPrefix) || !strings.HasSuffix(name, storeSegSuffix) {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, storeSegPrefix), storeSegSuffix), 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// OpenStore opens (creating if needed) the journal in dir and replays it.
// The returned records are the condensed job table in ascending numeric job
// ID order; non-terminal entries are the jobs a crash interrupted. maxSeg
// caps a segment's size before rotation (<=0 selects 8 MiB).
func OpenStore(dir string, maxSeg int64) (*Store, []distcolor.JobRecord, error) {
	return OpenStoreFS(dir, maxSeg, nil)
}

// OpenStoreFS is OpenStore over an injectable filesystem (nil selects the
// real one). Every filesystem operation the store performs — including
// replay, truncation of torn tails, rotation, and compaction — goes
// through fsys, which is how the fault-injection tests script disk
// failures without byte surgery.
func OpenStoreFS(dir string, maxSeg int64, fsys fault.FS) (*Store, []distcolor.JobRecord, error) {
	if maxSeg <= 0 {
		maxSeg = 8 << 20
	}
	if fsys == nil {
		fsys = fault.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: job store: %w", err)
	}
	st := &Store{dir: dir, fs: fsys, maxSeg: maxSeg}
	segs, err := st.listSegments()
	if err != nil {
		return nil, nil, err
	}
	table, maxID, tornSeg, tornOff, err := replaySegments(fsys, dir, segs)
	if err != nil {
		return nil, nil, err
	}
	st.maxID = maxID
	if tornSeg >= 0 {
		// Crash artifact in the final segment: truncate to the last intact
		// record so the next append lands on a clean boundary.
		path := filepath.Join(dir, segName(tornSeg))
		if err := fsys.Truncate(path, tornOff); err != nil {
			return nil, nil, fmt.Errorf("service: job store: truncating torn tail of %s: %w", path, err)
		}
	}
	// Append to a fresh segment rather than reopening the old tail: a
	// replayed journal compacts on open when it has piled up segments.
	next := int64(1)
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	if err := st.openSegment(next); err != nil {
		return nil, nil, err
	}
	st.segments = len(segs) + 1
	recs := sortedRecords(table)
	if len(segs) >= storeCompactSegments {
		if err := st.Compact(); err != nil {
			st.Close()
			return nil, nil, err
		}
	}
	return st, recs, nil
}

// storeCompactSegments is the segment count past which the journal compacts
// (on open and on rotation).
const storeCompactSegments = 4

func (st *Store) listSegments() ([]int64, error) {
	entries, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("service: job store: %w", err)
	}
	var segs []int64
	for _, e := range entries {
		if n, ok := parseSegName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

func (st *Store) openSegment(seg int64) error {
	f, err := st.fs.OpenFile(filepath.Join(st.dir, segName(seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("service: job store: %w", err)
	}
	st.f, st.seg, st.segBytes, st.dirty = f, seg, 0, false
	return nil
}

// frame encodes one record payload in the journal's framing:
// [len uint32][crc32(payload) uint32][payload], little-endian. The replayer
// (replayBytes) and both writers (Append, compaction) share this layout.
func frame(payload []byte) []byte {
	f := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(f[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(f[4:8], crc32.ChecksumIEEE(payload))
	copy(f[8:], payload)
	return f
}

// Append journals one record. With sync, the record is fdatasync'd (along
// with any unsynced predecessors — the journal is strictly ordered) before
// Append returns. A nil return means the record is in the journal; segment
// rotation and compaction are maintenance that runs after the record is
// durable, so their failures never fail the append (they are retried on
// later appends and reported by Err).
func (st *Store) Append(rec distcolor.JobRecord, sync bool) error {
	rec.Schema = distcolor.JobRecordSchema
	payload, err := distcolor.CodecJSON.Encode(&rec)
	if err != nil {
		return fmt.Errorf("service: job store: %w", err)
	}
	f := frame(payload)

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if st.f == nil {
		// A previous rotation failed after sealing the old segment; heal by
		// opening a fresh one past everything on disk.
		if err := st.reopenPastDiskLocked(); err != nil {
			return err
		}
	}
	if _, err := st.f.Write(f); err != nil {
		return fmt.Errorf("service: job store: %w", err)
	}
	st.appends.Add(1)
	st.segBytes += int64(len(f))
	st.dirty = true
	if sync {
		if err := st.f.Sync(); err != nil {
			return fmt.Errorf("service: job store: %w", err)
		}
		st.fsyncs.Add(1)
		st.dirty = false
	}
	if st.segBytes >= st.maxSeg {
		// The record above is already durable: a maintenance failure here
		// must not fail the append — the caller would withdraw work whose
		// journal entry survives and resurrects as a ghost job on restart.
		st.maintErr = st.rotateLocked()
	}
	return nil
}

// Probe appends one replay-invisible record with a full fsync, reporting
// whether the journal can currently make bytes durable. The record is a
// "forgotten" marker with an empty ID: jobIDNum("") is 0 so it never moves
// the ID high-water mark, and replay's merge deletes the (nonexistent)
// empty-ID table entry — a no-op. The degraded-mode prober uses it to
// detect that a failing disk has recovered.
func (st *Store) Probe() error {
	return st.Append(distcolor.JobRecord{ID: "", State: storeStateForgotten}, true)
}

// Err reports the last failed rotation/compaction (nil when the journal is
// healthy); maintenance failures never fail Append, so this is where they
// surface. A later successful rotation clears it.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.maintErr
}

// reopenPastDiskLocked restores an appendable state after a failed
// rotation: open a fresh segment numbered past every file on disk.
// st.mu must be held and st.f must be nil.
func (st *Store) reopenPastDiskLocked() error {
	segs, err := st.listSegments()
	if err != nil {
		return err
	}
	next := st.seg + 1
	if len(segs) > 0 && segs[len(segs)-1]+1 > next {
		next = segs[len(segs)-1] + 1
	}
	if err := st.openSegment(next); err != nil {
		return err
	}
	st.segments = len(segs) + 1
	return nil
}

// rotateLocked seals the active segment and opens the next one, compacting
// when segments have piled up. st.mu must be held. On failure the store
// stays usable: st.f is either the old (oversized, retried later) segment
// or nil, which the next Append heals via reopenPastDiskLocked.
func (st *Store) rotateLocked() error {
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("service: job store: %w", err) // st.f still open; retry next append
	}
	st.fsyncs.Add(1)
	if err := st.f.Close(); err != nil {
		st.f = nil
		return fmt.Errorf("service: job store: %w", err)
	}
	st.f = nil
	if err := st.openSegment(st.seg + 1); err != nil {
		return err
	}
	st.segments++
	if st.segments >= storeCompactSegments {
		return st.compactLocked()
	}
	return nil
}

// Compact rewrites the journal as one condensed record per retained job and
// deletes the superseded segments.
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	return st.compactLocked()
}

func (st *Store) compactLocked() (err error) {
	// Seal the active segment so the replay below sees every append. A
	// Sync failure leaves st.f open and usable: bail with the journal
	// merely uncompacted.
	if serr := st.f.Sync(); serr != nil {
		return fmt.Errorf("service: job store: %w", serr)
	}
	st.fsyncs.Add(1)
	cerr := st.f.Close()
	st.f = nil
	// From here the active handle is gone: whatever else happens, leave
	// the store appendable by reopening a fresh segment on any error path
	// (the success path opens its own).
	defer func() {
		if st.f == nil {
			if rerr := st.reopenPastDiskLocked(); rerr != nil {
				err = errors.Join(err, rerr)
			}
		}
	}()
	if cerr != nil {
		return fmt.Errorf("service: job store: %w", cerr)
	}
	segs, err := st.listSegments()
	if err != nil {
		return err
	}
	table, maxID, _, _, err := replaySegments(st.fs, st.dir, segs)
	if err != nil {
		return err
	}
	compactSeg := st.seg + 1
	tmp := filepath.Join(st.dir, segName(compactSeg)+".tmp")
	f, err := st.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("service: job store: %w", err)
	}
	condensed := sortedRecords(table)
	// The ID high-water mark must survive compaction even when its job was
	// forgotten: a forgotten marker under the max ID keeps future replays'
	// maxID correct (replay drops it from the table but still counts it).
	var condensedMax int64
	if len(condensed) > 0 {
		condensedMax = jobIDNum(condensed[len(condensed)-1].ID)
	}
	if maxID > condensedMax {
		condensed = append(condensed, distcolor.JobRecord{
			Schema: distcolor.JobRecordSchema,
			ID:     "j" + strconv.FormatInt(maxID, 10),
			State:  storeStateForgotten,
		})
	}
	for _, rec := range condensed {
		payload, err := distcolor.CodecJSON.Encode(&rec)
		if err != nil {
			f.Close()
			return fmt.Errorf("service: job store: %w", err)
		}
		if _, err := f.Write(frame(payload)); err != nil {
			f.Close()
			return fmt.Errorf("service: job store: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("service: job store: %w", err)
	}
	st.fsyncs.Add(1)
	if err := f.Close(); err != nil {
		return fmt.Errorf("service: job store: %w", err)
	}
	// The rename is the commit point: after it, replay reaches the condensed
	// records (they sort after every old segment, so merged state is
	// unchanged even if deleting the old segments is interrupted).
	if err := st.fs.Rename(tmp, filepath.Join(st.dir, segName(compactSeg))); err != nil {
		return fmt.Errorf("service: job store: %w", err)
	}
	if err := syncDir(st.fs, st.dir); err != nil {
		return err
	}
	for _, s := range segs {
		if err := st.fs.Remove(filepath.Join(st.dir, segName(s))); err != nil {
			return fmt.Errorf("service: job store: %w", err)
		}
	}
	if err := st.openSegment(compactSeg + 1); err != nil {
		return err
	}
	st.segments = 2 // condensed segment + fresh active one
	st.compactions.Add(1)
	return nil
}

func syncDir(fsys fault.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("service: job store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("service: job store: %w", err)
	}
	return nil
}

// Counters reports the journal's cumulative activity: records appended,
// fsyncs issued, and successful compactions.
func (st *Store) Counters() (appends, fsyncs, compactions int64) {
	return st.appends.Load(), st.fsyncs.Load(), st.compactions.Load()
}

// Stats reports the journal's on-disk shape for metrics and tests.
func (st *Store) Stats() (segments int, activeBytes int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.segments, st.segBytes
}

// Close syncs and closes the active segment. The store rejects appends
// afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if st.f == nil { // a failed rotation already sealed the last segment
		return nil
	}
	if st.dirty {
		if err := st.f.Sync(); err != nil {
			st.f.Close()
			return fmt.Errorf("service: job store: %w", err)
		}
		st.fsyncs.Add(1)
	}
	if err := st.f.Close(); err != nil {
		return fmt.Errorf("service: job store: %w", err)
	}
	return nil
}

// replaySegments merges the journal into a condensed job table. It also
// returns the highest numeric job ID seen in ANY record — forgotten jobs
// included, because ID assignment must never revisit an ID whose job was
// merely dropped from retention — and the segment index and byte offset of
// a torn tail in the final segment (tornSeg = -1 when the journal ends
// cleanly); a torn record anywhere else is corruption, not a crash
// artifact, and fails the replay.
func replaySegments(fsys fault.FS, dir string, segs []int64) (table map[string]*distcolor.JobRecord, maxID int64, tornSeg int64, tornOff int64, err error) {
	table = make(map[string]*distcolor.JobRecord)
	tornSeg = -1
	for i, seg := range segs {
		data, err := fsys.ReadFile(filepath.Join(dir, segName(seg)))
		if err != nil {
			return nil, 0, -1, 0, fmt.Errorf("service: job store: %w", err)
		}
		off, err := replayBytes(data, table, &maxID)
		if err != nil {
			return nil, 0, -1, 0, fmt.Errorf("service: job store: segment %s: %w", segName(seg), err)
		}
		if off < int64(len(data)) { // torn record
			if i != len(segs)-1 {
				return nil, 0, -1, 0, fmt.Errorf("%w: torn record at offset %d of non-final segment %s", errStoreCorrupt, off, segName(seg))
			}
			tornSeg, tornOff = seg, off
		}
	}
	return table, maxID, tornSeg, tornOff, nil
}

// MaxJobID reports the highest numeric job ID the journal has ever held,
// including jobs later dropped by retention. Recovery resumes ID
// assignment past it; handing out a dropped job's ID to new work would
// silently alias two jobs for any client still holding the old ID.
func (st *Store) MaxJobID() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.maxID
}

// replayBytes merges the intact records of one segment into table (bumping
// maxID for every record, forgotten ones included) and returns the offset
// just past the last intact record (== len(data) when the segment ends
// cleanly). Damaged framing stops the replay at the preceding record; a
// record with an unknown schema is an error, not a crash artifact.
func replayBytes(data []byte, table map[string]*distcolor.JobRecord, maxID *int64) (int64, error) {
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, nil
		}
		if len(rest) < 8 {
			return off, nil // torn header
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if n > storeRecordLimit || 8+n > int64(len(rest)) {
			return off, nil // torn or nonsense payload length
		}
		payload := rest[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			return off, nil // torn payload
		}
		var rec distcolor.JobRecord
		if err := distcolor.CodecJSON.Decode(payload, &rec); err != nil {
			// The CRC held, so the payload is byte-exact what the writer
			// framed — undecodable JSON is a writer bug, not a crash tear.
			return off, fmt.Errorf("crc-intact record does not decode: %w", err)
		}
		if rec.Schema != distcolor.JobRecordSchema {
			return off, fmt.Errorf("job record schema %d, this build reads %d", rec.Schema, distcolor.JobRecordSchema)
		}
		if id := jobIDNum(rec.ID); id > *maxID {
			*maxID = id
		}
		mergeRecord(table, &rec)
		off += 8 + n
	}
}

// mergeRecord folds one journal entry into the condensed table: later
// entries win on state/outcome, the submission entry contributes the
// request, and the "forgotten" retention marker drops the job.
func mergeRecord(table map[string]*distcolor.JobRecord, rec *distcolor.JobRecord) {
	if rec.State == storeStateForgotten {
		delete(table, rec.ID)
		return
	}
	cur := table[rec.ID]
	if cur == nil {
		cp := *rec
		table[rec.ID] = &cp
		return
	}
	cur.State = rec.State
	if rec.Request != nil {
		cur.Request = rec.Request
	}
	if rec.Response != nil {
		cur.Response = rec.Response
	}
	if rec.Error != "" {
		cur.Error = rec.Error
	}
	if rec.WallMS != 0 {
		cur.WallMS = rec.WallMS
	}
	if rec.CacheHit {
		cur.CacheHit = rec.CacheHit
	}
	// Attempts only grows: replay may see the entries out of their logical
	// order after compaction, and a later lower value must never launder a
	// poisoned job back below the quarantine threshold.
	if rec.Attempts > cur.Attempts {
		cur.Attempts = rec.Attempts
	}
}

// jobIDNum extracts the numeric suffix of a job ID ("j17" → 17); recovery
// resumes ID assignment past the maximum so restarted servers never reuse
// an ID.
func jobIDNum(id string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func sortedRecords(table map[string]*distcolor.JobRecord) []distcolor.JobRecord {
	out := make([]distcolor.JobRecord, 0, len(table))
	for _, rec := range table {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return jobIDNum(out[i].ID) < jobIDNum(out[j].ID) })
	return out
}
