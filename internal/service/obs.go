package service

// Prometheus-facing instrumentation of the serving layer. serverObs owns
// the obs.Registry every colord series lives in; the Server mutates the
// counter/gauge instruments only while holding s.mu, so the JSON Metrics()
// snapshot stays coherent (one lock, no torn reads) while `GET /metrics`
// renders the very same instruments as Prometheus text. Derived values that
// already live behind s.mu or the store's lock (queue depth, in-flight
// bytes, WAL shape) are exported as sample-at-scrape functions instead of
// mirrored state: obs.WriteText releases the registry lock before sampling,
// so a gauge function may take s.mu without deadlock.
//
// Naming follows Prometheus conventions: colord_ prefix, _total suffix on
// counters, explicit units in the name (_bytes, _us, _bits). See DESIGN.md
// §9 for the full series catalog.

import (
	"repro/internal/obs"
)

// Span is a job lifecycle span as served by GET /v1/jobs/{id}/trace: name,
// parent index (-1 for the root), and µs offset/duration from the job's
// submission instant. Duration -1 marks a span still open.
type Span = obs.Span

// Lifecycle stage names, used both as span names and as the stage label of
// the colord_stage_duration_us histogram.
const (
	stageAdmit   = "admit"   // Submit work: validate, canonicalize, admission, journal fsync
	stageQueue   = "queue"   // enqueue → worker pickup
	stageExecute = "execute" // simulation: worker pickup → last observed round
	stageVerify  = "verify"  // last observed round → ExecuteOn return (in-run verification)
	stageServe   = "serve"   // result publication: cache store + terminal transition
)

// metricsSeries maps every Metrics JSON field to the Prometheus series that
// exports the same value. The exposition test walks the Metrics struct tags
// against this table, so adding a Metrics field without a series (or the
// reverse) fails the build's tests, not a dashboard at 3am.
var metricsSeries = map[string]string{
	"submitted":          "colord_jobs_submitted_total",
	"completed":          "colord_jobs_completed_total",
	"failed":             "colord_jobs_failed_total",
	"canceled":           "colord_jobs_canceled_total",
	"rejected":           "colord_jobs_rejected_total",
	"shed":               "colord_jobs_shed_total",
	"recovered":          "colord_jobs_recovered_total",
	"panicked":           "colord_jobs_panicked_total",
	"deadline_exceeded":  "colord_jobs_deadline_exceeded_total",
	"degraded":           "colord_degraded",
	"inflight_bytes":     "colord_inflight_bytes",
	"max_inflight_bytes": "colord_max_inflight_bytes",
	"cache_hits":         "colord_cache_hits_total",
	"cache_misses":       "colord_cache_misses_total",
	"cache_bad_hits":     "colord_cache_bad_hits_total",
	"cache_skipped":      "colord_cache_skipped_total",
	"cache_entries":      "colord_cache_entries",
	"queue_depth":        "colord_queue_depth",
	"running":            "colord_jobs_running",
	"workers":            "colord_workers",
	"rounds_total":       "colord_rounds_total",
	"messages_total":     "colord_messages_total",
	"wall_ms_total":      "colord_wall_ms_total",
	"jobs":               "colord_jobs_retained",
	"bytes_in":           "colord_http_request_bytes_total",
	"bytes_out":          "colord_http_response_bytes_total",
	"codec_json":         "colord_codec_json_requests_total",
	"codec_binary":       "colord_codec_binary_requests_total",
	"codec_stream":       "colord_codec_stream_requests_total",
}

// serverObs bundles the registry and the instruments the Server writes.
// Everything here except the histograms is mutated only under s.mu.
type serverObs struct {
	reg *obs.Registry

	submitted, completed, failed, canceled, rejected *obs.Counter // guarded by s.mu
	shed, recovered                                  *obs.Counter // guarded by s.mu
	panicked, deadlineExceeded                       *obs.Counter // guarded by s.mu
	cacheHits, cacheMisses, cacheBadHits             *obs.Counter // guarded by s.mu
	cacheSkipped                                     *obs.Counter // guarded by s.mu
	roundsTotal, messagesTotal, wallMSTotal          *obs.Counter // guarded by s.mu
	running                                          *obs.Gauge   // guarded by s.mu

	// Wire-plane accounting (DESIGN.md §11): request/response body bytes as
	// seen by the HTTP layer, and submissions by codec choice.
	bytesIn, bytesOut                   *obs.Counter // guarded by s.mu
	codecJSON, codecBinary, codecStream *obs.Counter // guarded by s.mu

	// stage is the admit→serve latency histogram family, one histogram per
	// lifecycle stage; observed lock-free at each stage boundary.
	stage map[string]*obs.Histogram
	// roundMaxBits distributes the per-round hottest message size (bits)
	// across every observed simulator round of every job — the serving
	// layer's view of the sim package's CONGEST bandwidth accounting.
	roundMaxBits *obs.Histogram
}

func newServerObs() *serverObs {
	r := obs.NewRegistry()
	o := &serverObs{
		reg:       r,
		submitted: r.NewCounter("colord_jobs_submitted_total", "Accepted submissions (cache hits included)."),
		completed: r.NewCounter("colord_jobs_completed_total", "Jobs finished successfully (cache hits included)."),
		failed:    r.NewCounter("colord_jobs_failed_total", "Jobs that finished in error."),
		canceled:  r.NewCounter("colord_jobs_canceled_total", "Jobs canceled before or during execution."),
		rejected:  r.NewCounter("colord_jobs_rejected_total", "Invalid submissions refused up front (HTTP 400)."),
		shed:      r.NewCounter("colord_jobs_shed_total", "Submissions refused by admission control (HTTP 429)."),
		recovered: r.NewCounter("colord_jobs_recovered_total", "Jobs replayed from the write-ahead store at startup."),
		panicked:  r.NewCounter("colord_jobs_panicked_total", "Jobs whose execution panicked (recovered, failed with a typed error)."),
		deadlineExceeded: r.NewCounter("colord_jobs_deadline_exceeded_total",
			"Jobs terminated by their execution deadline (deadline_ms or -job-timeout)."),
		cacheHits:     r.NewCounter("colord_cache_hits_total", "Submissions served from the canonical result cache."),
		cacheMisses:   r.NewCounter("colord_cache_misses_total", "Cacheable submissions that missed and ran."),
		cacheBadHits:  r.NewCounter("colord_cache_bad_hits_total", "Canonical-hash collisions caught by post-remap verification."),
		cacheSkipped:  r.NewCounter("colord_cache_skipped_total", "Submissions bypassing the cache (graph over canonicalization bounds)."),
		roundsTotal:   r.NewCounter("colord_rounds_total", "Simulator rounds executed across all completed jobs."),
		messagesTotal: r.NewCounter("colord_messages_total", "Simulator messages delivered across all completed jobs."),
		wallMSTotal:   r.NewCounter("colord_wall_ms_total", "Execution wall time of completed jobs, milliseconds."),
		running:       r.NewGauge("colord_jobs_running", "Jobs currently executing on the worker pool."),
		bytesIn:       r.NewCounter("colord_http_request_bytes_total", "HTTP request body bytes read, all endpoints."),
		bytesOut:      r.NewCounter("colord_http_response_bytes_total", "HTTP response body bytes written, all endpoints."),
		codecJSON:     r.NewCounter("colord_codec_json_requests_total", "Submissions decoded from JSON bodies."),
		codecBinary:   r.NewCounter("colord_codec_binary_requests_total", "Submissions decoded from single binary frames."),
		codecStream:   r.NewCounter("colord_codec_stream_requests_total", "Submissions ingested as chunked binary streams."),
		stage:         make(map[string]*obs.Histogram, 5),
		roundMaxBits: r.NewHistogram("colord_round_max_message_bits",
			"Largest single message of each observed simulator round, bits.",
			obs.Pow2Buckets(3, 20)),
	}
	stageBuckets := obs.ExpBuckets(10, 2, 20) // 10µs .. ~5.2s
	for _, st := range []string{stageAdmit, stageQueue, stageExecute, stageVerify, stageServe} {
		o.stage[st] = r.NewHistogram("colord_stage_duration_us",
			"Job lifecycle stage latency, microseconds.",
			stageBuckets, obs.Label{Key: "stage", Value: st})
	}
	return o
}

// observeStage records one stage latency; negative durations mean the stage
// never ran (recovered jobs have no admit, canceled jobs no verify) and are
// dropped rather than polluting the first bucket.
func (o *serverObs) observeStage(stage string, durUS int64) {
	if durUS < 0 {
		return
	}
	o.stage[stage].Observe(durUS)
}

// registerDerived wires the sample-at-scrape series that read live server
// state under s.mu. Called once from NewServer, after the instruments exist
// but before the server is reachable.
func (s *Server) registerDerived() {
	r := s.obs.reg
	r.NewGaugeFunc("colord_queue_depth", "Queued-but-not-running jobs (admission reservations included).", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.queue) + s.queueReserved)
	})
	r.NewGaugeFunc("colord_inflight_bytes", "Estimated resident bytes of accepted-but-unfinished jobs.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.inflightBytes
	})
	r.NewGaugeFunc("colord_max_inflight_bytes", "In-flight byte bound (0 = unbounded).", func() int64 {
		if s.cfg.MaxInflightBytes > 0 {
			return s.cfg.MaxInflightBytes
		}
		return 0
	})
	r.NewGaugeFunc("colord_degraded", "1 while the server is in read-only degraded mode (journal failing), else 0.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.degraded != "" {
			return 1
		}
		return 0
	})
	r.NewGaugeFunc("colord_jobs_retained", "Jobs in the bounded retention table.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.jobs))
	})
	r.NewGaugeFunc("colord_workers", "Worker pool size.", func() int64 {
		return int64(s.cfg.Workers)
	})
	r.NewGaugeFunc("colord_cache_entries", "Entries in the canonical result cache.", func() int64 {
		if s.cache == nil {
			return 0
		}
		return int64(s.cache.len())
	})
	if s.store != nil {
		st := s.store
		r.NewCounterFunc("colord_wal_appends_total", "Records appended to the write-ahead job store.", func() int64 {
			a, _, _ := st.Counters()
			return a
		})
		r.NewCounterFunc("colord_wal_fsyncs_total", "fsync calls issued by the write-ahead job store.", func() int64 {
			_, f, _ := st.Counters()
			return f
		})
		r.NewCounterFunc("colord_wal_compactions_total", "Successful journal compactions.", func() int64 {
			_, _, c := st.Counters()
			return c
		})
		r.NewGaugeFunc("colord_wal_segments", "Journal segment files on disk.", func() int64 {
			segs, _ := st.Stats()
			return int64(segs)
		})
		r.NewGaugeFunc("colord_wal_active_bytes", "Bytes appended to the active journal segment.", func() int64 {
			_, b := st.Stats()
			return b
		})
	}
}

// Registry exposes the server's metric registry; the HTTP layer renders it
// at GET /metrics and tests scrape it directly.
func (s *Server) Registry() *obs.Registry { return s.obs.reg }

// Spans returns a copy of the job's recorded lifecycle span tree, in
// recording order (parents before children). Empty for jobs recovered
// terminal from the journal, which never re-ran under this process.
func (s *Server) Spans(id string) ([]Span, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.spans == nil {
		return nil, nil
	}
	return append([]Span(nil), j.spans.Spans()...), nil
}
