package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	distcolor "repro"
	"repro/internal/gen"
)

// The wire plane (DESIGN.md §11): content negotiation, chunked ingest
// against the admission bound, and the legacy-shorthand deprecation signal.

// TestBinarySubmitAndResult drives a whole job through the binary wire:
// single-frame submit, then a binary result via Accept, and checks it
// matches the JSON result byte-for-value.
func TestBinarySubmitAndResult(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()

	bc := &Client{Base: ts.URL, Codec: "binary"}
	req := gnpRequest(distcolor.AlgoEdgeGreedy, 64, 0.15, 7)
	st, err := bc.Submit(ctx, req)
	if err != nil {
		t.Fatalf("binary submit: %v", err)
	}
	if st, err = bc.Wait(ctx, st.ID, 0, 0); err != nil || st.State != StateDone {
		t.Fatalf("job %s: %v %v", st.ID, st.State, err)
	}
	binResp, err := bc.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("binary result: %v", err)
	}
	jc := &Client{Base: ts.URL, Codec: "json"}
	jsonResp, err := jc.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("json result: %v", err)
	}
	if !reflect.DeepEqual(binResp, jsonResp) {
		t.Fatalf("binary and JSON results differ:\nbin:  %+v\njson: %+v", binResp, jsonResp)
	}
	m := s.Metrics()
	if m.CodecBinary != 1 {
		t.Fatalf("codec_binary = %d, want 1 (metrics: %+v)", m.CodecBinary, m)
	}
	if m.BytesIn == 0 || m.BytesOut == 0 {
		t.Fatalf("byte counters did not move: %+v", m)
	}
}

// TestChunkedIngestBeatsInflightBound is the acceptance scenario: a graph
// whose admission cost exceeds MaxInflightBytes is accepted via chunked
// streaming ingest, while the same graph submitted as a buffered body (JSON
// or a single binary frame) sheds with 429.
func TestChunkedIngestBeatsInflightBound(t *testing.T) {
	g, err := gen.NearRegular(2000, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	req := &distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy, Graph: distcolor.Spec(g)}
	cost := jobCost(req)
	bound := cost / 4 // the whole graph is 4x over the in-flight bound
	s := testServer(t, Config{Workers: 2, CacheEntries: -1, MaxInflightBytes: bound})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()

	// Buffered JSON: shed, retryable, 429.
	jc := &Client{Base: ts.URL, Codec: "json", MaxRetries: -1}
	_, err = jc.Submit(ctx, req)
	var he *HTTPError
	if !errors.As(err, &he) || he.Code != http.StatusTooManyRequests {
		t.Fatalf("buffered JSON submit of an over-bound graph: %v, want HTTP 429", err)
	}
	if he.RetryAfter <= 0 {
		t.Fatalf("429 without Retry-After hint: %+v", he)
	}

	// Chunked binary stream: accepted and runs to completion. Small chunks
	// so the stream admits many times under the bound.
	sc := &Client{Base: ts.URL, ChunkEdges: 256, MaxRetries: -1}
	st, err := sc.SubmitStream(ctx, req)
	if err != nil {
		t.Fatalf("chunked ingest of the same graph: %v", err)
	}
	if st, err = sc.Wait(ctx, st.ID, 0, 0); err != nil || st.State != StateDone {
		t.Fatalf("streamed job %s: %v %v", st.ID, st.State, err)
	}
	if st.M != len(req.Graph.Edges) {
		t.Fatalf("streamed job ran on %d edges, want %d", st.M, len(req.Graph.Edges))
	}
	m := s.Metrics()
	if m.CodecStream != 1 || m.Shed == 0 {
		t.Fatalf("wire accounting after the pair: %+v", m)
	}
	if m.InflightBytes != 0 {
		t.Fatalf("in-flight bytes leaked after terminal: %d", m.InflightBytes)
	}
}

// TestStreamShedsMidIngestWhenContended: a stream only gets past the bound
// by its OWN size — other in-flight work still crowds it out, and the shed
// returns every chunk charge.
func TestStreamShedsMidIngestWhenContended(t *testing.T) {
	filler := cycleRequest(64)
	bound := jobCost(filler) + jobCostBase // room for the filler plus almost nothing
	s := frozenServer(t, Config{QueueDepth: 8, MaxInflightBytes: bound})
	if _, err := s.Submit(filler); err != nil {
		t.Fatalf("filler: %v", err)
	}
	before := s.Metrics().InflightBytes

	g, err := gen.NearRegular(512, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	big := &distcolor.Request{Algorithm: distcolor.AlgoEdgeGreedy, Graph: distcolor.Spec(g)}
	var buf bytes.Buffer
	if err := distcolor.WriteRequestStream(&buf, big, 64); err != nil {
		t.Fatal(err)
	}
	rr := distcolor.NewRequestReader(&buf)
	skel, err := rr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SubmitStream(rr, skel)
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Reason != "inflight-bytes" {
		t.Fatalf("contended stream: %v, want inflight-bytes shed", err)
	}
	if got := s.Metrics().InflightBytes; got != before {
		t.Fatalf("shed stream leaked charge: %d, want %d", got, before)
	}
}

// TestDeprecationHeader: requests using the legacy shorthand fields get the
// Deprecation response header on every submit path; params-only requests do
// not.
func TestDeprecationHeader(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(t *testing.T, body []byte, contentType string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	legacy := gnpRequest(distcolor.AlgoEdgeStar, 24, 0.2, 1)
	legacy.X = 1 // deprecated shorthand
	data, err := distcolor.CodecJSON.Encode(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(t, data, "application/json"); resp.Header.Get("Deprecation") != "true" {
		t.Fatalf("legacy JSON submit: Deprecation header %q, want true", resp.Header.Get("Deprecation"))
	}
	bin, err := distcolor.CodecBinary.Encode(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(t, bin, distcolor.ContentTypeBinary); resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy binary submit missing Deprecation header")
	}

	modern := gnpRequest(distcolor.AlgoEdgeStar, 24, 0.2, 2)
	modern.Params = distcolor.Params{"x": 1}
	data, err = distcolor.CodecJSON.Encode(modern)
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(t, data, "application/json"); resp.Header.Get("Deprecation") != "" {
		t.Fatal("params-only submit flagged as deprecated")
	}
}

// TestSubmitContentTypeRejected: an unknown Content-Type is a 415, not a
// silent JSON parse.
func TestSubmitContentTypeRejected(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/jobs", "text/plain", bytes.NewReader([]byte("hello")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain submit: HTTP %d, want 415", resp.StatusCode)
	}
}

// TestAutoNegotiation pins the client's size thresholds: tiny graphs go as
// JSON, large as a binary frame, huge as a stream — observed through the
// server's codec counters.
func TestAutoNegotiation(t *testing.T) {
	s := testServer(t, Config{Workers: 2, CacheEntries: -1, MaxVertices: -1, MaxEdges: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()
	c := &Client{Base: ts.URL}

	small := cycleRequest(16)
	if _, err := c.Submit(ctx, small); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.CodecJSON != 1 || m.CodecBinary != 0 || m.CodecStream != 0 {
		t.Fatalf("small request codec counters: %+v", m)
	}

	// autoBinaryEdges ≤ edges < autoStreamEdges → one binary frame.
	mid := cycleRequest(autoBinaryEdges) // a cycle has exactly n edges
	if _, err := c.Submit(ctx, mid); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.CodecBinary != 1 || m.CodecStream != 0 {
		t.Fatalf("mid request codec counters: %+v", m)
	}

	big := cycleRequest(autoStreamEdges)
	if _, err := c.Submit(ctx, big); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.CodecStream != 1 {
		t.Fatalf("big request codec counters: %+v", m)
	}
}
