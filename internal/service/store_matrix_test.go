package service

// The torn-write matrix: the WAL's crash-consistency contract checked at
// EVERY byte boundary, not a sampled handful. The journal bytes come from the
// fault layer's write recorder (fault.Inject) rather than re-reading disk, so
// the matrix is exactly what the writer produced; replay is exercised three
// ways — the in-memory replayer at every prefix, full OpenStore at record
// boundaries plus a seeded sample of arbitrary tears, and single-byte
// corruption inside every record (the CRC must stop replay at the damaged
// record, silently serving the intact prefix).

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	distcolor "repro"
	"repro/internal/fault"
)

func TestStoreTornWriteMatrix(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInject(nil)
	st, recs, err := OpenStoreFS(dir, 1<<20, inj)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh store recovered %d records", len(recs))
	}
	req := cycleRequest(6)
	resp := &distcolor.Response{Kind: "edge", Algorithm: "edge/greedy", Palette: 3, Colors: []int64{0, 1, 0, 1, 0, 2}}
	script := []distcolor.JobRecord{
		{ID: "j1", State: "queued", Request: req},
		{ID: "j1", State: "running", Attempts: 1},
		{ID: "j2", State: "queued", Request: req},
		{ID: "j1", State: "done", Response: resp, WallMS: 3},
		{ID: "j2", State: "running", Attempts: 2},
		{ID: "j3", State: "queued", Request: req},
		{ID: "j3", State: "canceled", Error: "service: job canceled"},
		{ID: "j2", State: "deadline_exceeded", Error: "service: job deadline exceeded"},
	}
	for _, rec := range script {
		if err := st.Append(rec, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The recorder's view of the segment must be byte-identical to the disk.
	segPath := filepath.Join(dir, segName(1))
	data := inj.Written(segPath)
	disk, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, disk) {
		t.Fatalf("fault.Inject recorded %d bytes, disk holds %d", len(data), len(disk))
	}

	// Record boundaries from the framing itself.
	var bounds []int64
	off := int64(0)
	for off < int64(len(data)) {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 8 + n
		bounds = append(bounds, off)
	}
	if off != int64(len(data)) || len(bounds) != len(script) {
		t.Fatalf("framing: %d records over %d bytes, want %d over %d", len(bounds), off, len(script), len(data))
	}
	// contained reports how many records fit entirely under cut, and the
	// offset of the last intact record boundary at or below it.
	contained := func(cut int64) (k int, boundary int64) {
		for k < len(bounds) && bounds[k] <= cut {
			boundary = bounds[k]
			k++
		}
		return k, boundary
	}
	expected := func(k int) map[string]condensed {
		table := map[string]*distcolor.JobRecord{}
		for _, rec := range script[:k] {
			cp := rec
			mergeRecord(table, &cp)
		}
		out := map[string]condensed{}
		for id, rec := range table {
			out[id] = condense(*rec)
		}
		return out
	}
	checkTable := func(cut int64, k int, got map[string]*distcolor.JobRecord) {
		t.Helper()
		want := expected(k)
		if len(got) != len(want) {
			t.Fatalf("cut %d (%d records): table has %d jobs, want %d", cut, k, len(got), len(want))
		}
		for id, w := range want {
			g, ok := got[id]
			if !ok || condense(*g) != w {
				t.Fatalf("cut %d: job %s = %+v, want %+v", cut, id, got[id], w)
			}
		}
	}

	// 1. The in-memory replayer at EVERY byte prefix: no error, the table of
	// fully-contained records, and the intact-prefix offset.
	for cut := int64(0); cut <= int64(len(data)); cut++ {
		table := map[string]*distcolor.JobRecord{}
		var maxID int64
		got, err := replayBytes(data[:cut], table, &maxID)
		if err != nil {
			t.Fatalf("prefix %d bytes: replay error: %v", cut, err)
		}
		k, boundary := contained(cut)
		if got != boundary {
			t.Fatalf("prefix %d bytes: intact offset %d, want %d", cut, got, boundary)
		}
		checkTable(cut, k, table)
	}

	// 2. Full OpenStore — which also truncates the torn tail and accepts new
	// appends — at every record boundary plus a seeded sample of tears.
	cuts := append([]int64{0}, bounds...)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 24; i++ {
		cuts = append(cuts, rng.Int63n(int64(len(data))+1))
	}
	for _, cut := range cuts {
		pdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(pdir, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		pst, precs, err := OpenStore(pdir, 1<<20)
		if err != nil {
			t.Fatalf("cut %d bytes: OpenStore: %v", cut, err)
		}
		k, _ := contained(cut)
		table := map[string]*distcolor.JobRecord{}
		for i := range precs {
			table[precs[i].ID] = &precs[i]
		}
		checkTable(cut, k, table)
		if err := pst.Append(distcolor.JobRecord{ID: "j9", State: "queued", Request: req}, true); err != nil {
			t.Fatalf("cut %d bytes: append after heal: %v", cut, err)
		}
		pst.Close()
	}

	// 3. Corruption (a bit flip inside each record's payload, not a tear):
	// the CRC stops replay at the damaged record; the intact prefix serves.
	prev := int64(0)
	for i, b := range bounds {
		corrupt := append([]byte(nil), data...)
		flipAt := prev + 8 + (b-prev-8)/2 // middle of record i's payload
		corrupt[flipAt] ^= 0x40
		table := map[string]*distcolor.JobRecord{}
		var maxID int64
		got, err := replayBytes(corrupt, table, &maxID)
		if err != nil {
			t.Fatalf("record %d corrupted: replay error: %v", i, err)
		}
		if got != prev {
			t.Fatalf("record %d corrupted: replay advanced to %d, want stop at %d", i, got, prev)
		}
		checkTable(prev, i, table)
		prev = b
	}
}
