// Package service is the colord serving layer: a long-running concurrent
// coloring service over the distcolor library. It accepts Requests (the
// stable codec of the root package), schedules them on a bounded work queue
// drained by a configurable worker pool, verifies every produced coloring,
// and memoizes results in a content-addressed cache keyed by the canonical
// graph hash plus the algorithm and its parameters — so an isomorphic
// resubmission of a served workload is answered by remapping the cached
// coloring through the canonical labeling instead of re-simulating.
//
// The service is durable and backpressured. With Config.DataDir set, every
// submission, state transition, and terminal result is journaled to a
// write-ahead job store (store.go) before it becomes externally visible, so
// a crash loses nothing: on restart the journal replays, terminal jobs keep
// serving their verified results, and non-terminal jobs are re-enqueued and
// re-run (exactly-once job identity, at-least-once execution). Admission
// control (admission.go) bounds both queue depth and the estimated bytes of
// in-flight work; submissions over either bound are shed with a typed
// overload error (HTTP 429 + Retry-After) and /v1/healthz turns not-ready,
// instead of the queue growing until the daemon OOMs.
//
// Observability is native: each job records the per-round progress of every
// constituent distributed execution (via sim.Observed round hooks), which
// the HTTP layer exposes as a streaming NDJSON round trace, and the server
// keeps aggregate counters (cache hits, rounds, messages, wall time) behind
// a metrics endpoint. The same hook implements cancellation: a canceled
// job's observer aborts the simulation at the next round boundary.
//
// Lock ordering: s.mu may be taken while holding nothing or before j.mu;
// j.mu is never held while taking s.mu.
//
// See DESIGN.md §6 for the subsystem design and README.md for a quickstart.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	distcolor "repro"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the worker-pool size (default: NumCPU).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; Submit
	// fails with ErrQueueFull beyond it (default 256).
	QueueDepth int
	// CacheEntries bounds the result cache (LRU, default 512; negative
	// disables caching).
	CacheEntries int
	// CacheMaxVertices / CacheMaxEdges bound the graphs the cache will
	// canonicalize (defaults 1024 / 65536; negative disables the bound).
	// Canonical labeling runs synchronously in Submit and costs real CPU on
	// highly symmetric graphs (~1s for a 1024-cycle, the worst case at the
	// default bound; WL-friendly graphs are milliseconds); larger
	// submissions simply bypass the cache (counted in
	// Metrics.CacheSkipped) instead of stalling intake.
	CacheMaxVertices int
	CacheMaxEdges    int
	// MaxVertices / MaxEdges reject oversized submissions (defaults 200k /
	// 2M; negative disables the check).
	MaxVertices int
	MaxEdges    int
	// MaxBodyBytes caps how much of an HTTP request body the JSON decoder
	// will read (default 64 MiB; negative disables), so the graph limits
	// protect memory during decoding rather than after it.
	MaxBodyBytes int64
	// MaxJobs bounds retained finished jobs; the oldest finished jobs are
	// forgotten beyond it (default 4096).
	MaxJobs int
	// TraceDepth bounds the per-job round-trace history (default 4096
	// events; when exceeded, the oldest half is dropped and the gap is
	// visible to readers via the first retained seq).
	TraceDepth int
	// Parallel runs every job on the goroutine-sharded sim.RunParallel
	// engine even when the request did not ask for it. Results are
	// bit-identical either way (the engines are equivalent by
	// construction), so this is purely a wall-clock policy and does not
	// participate in cache keys.
	Parallel bool
	// DataDir enables the write-ahead job store: submissions, state
	// transitions, and terminal results are journaled under this directory
	// and replayed on the next start (terminal jobs keep their results,
	// interrupted jobs re-run). Empty leaves the service memory-only, as
	// before. The store assumes a single server instance per directory.
	DataDir string
	// SegmentBytes caps one journal segment before rotation (default 8 MiB).
	SegmentBytes int64
	// MaxInflightBytes bounds the estimated resident bytes of
	// accepted-but-unfinished jobs (default 256 MiB; negative disables the
	// bound). Submissions beyond it are shed with an *OverloadError. A
	// single request whose own estimate exceeds the bound is rejected
	// outright (not retryable) — it could never be admitted.
	MaxInflightBytes int64
	// Frozen starts the server with no workers, so accepted jobs queue
	// forever. For admission/overload tests and benchmarks only: it turns
	// the service into a pure front door with deterministic occupancy.
	Frozen bool
	// JobTimeout bounds every job's execution wall time, measured from
	// worker pickup; a run over it terminates in the distinct
	// "deadline_exceeded" state. A request's own deadline_ms tightens (never
	// loosens) this server default. Zero or negative leaves executions
	// unbounded.
	JobTimeout time.Duration
	// DegradedProbe is the minimum interval between write probes while the
	// server is degraded (journal unavailable); each probe that succeeds
	// exits degraded mode. Default 1s.
	DegradedProbe time.Duration
	// FS routes the job store's filesystem operations; nil means the real
	// os package (fault.OS). Tests inject a fault.Inject here to script
	// journal failures.
	FS fault.FS
	// Faults arms the server's named fault-injection points (see
	// DESIGN.md §12); nil — the production value — disables them at the
	// cost of one pointer load per site.
	Faults *fault.Points
	// Logger receives structured server events (recovery, sheds, job
	// terminals, journal failures) with job IDs attached. Nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheMaxVertices == 0 {
		c.CacheMaxVertices = 1024
	}
	if c.CacheMaxEdges == 0 {
		c.CacheMaxEdges = 65536
	}
	if c.MaxVertices == 0 {
		c.MaxVertices = 200_000
	}
	if c.MaxEdges == 0 {
		c.MaxEdges = 2_000_000
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.TraceDepth <= 0 {
		c.TraceDepth = 4096
	}
	if c.MaxInflightBytes == 0 {
		c.MaxInflightBytes = 256 << 20
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.DegradedProbe <= 0 {
		c.DegradedProbe = time.Second
	}
	return c
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	// StateDeadline marks a job whose execution exceeded its deadline (the
	// request's deadline_ms or the server's -job-timeout). Distinct from
	// failed so clients can tell "ran out of time" from "the run errored".
	StateDeadline State = "deadline_exceeded"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateDeadline
}

// TraceEvent is one executed simulator round of one of a job's constituent
// executions, in wire form.
type TraceEvent struct {
	// Seq numbers events within the job (monotone, including dropped ones).
	Seq int `json:"seq"`
	// Exec counts the constituent executions of the job so far; composed
	// algorithms run many executions, often on subtopologies.
	Exec int `json:"exec"`
	// Round is the 0-based round within the current execution.
	Round int `json:"round"`
	// N is the vertex count of the current execution's topology; Running is
	// how many of its machines are still running.
	N       int `json:"n"`
	Running int `json:"running"`
	// Messages is the cumulative message count of the current execution.
	Messages int64 `json:"messages"`
}

// JobStatus is the wire form of a job's externally visible state.
type JobStatus struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	CacheHit  bool   `json:"cache_hit"`
	Error     string `json:"error,omitempty"`
	// WallMS is the job's execution wall time (0 until it finished, and for
	// cache hits, which skip execution).
	WallMS int64 `json:"wall_ms"`
	// Rounds/Messages/Palette are filled once the job is done.
	Rounds   int   `json:"rounds,omitempty"`
	Messages int64 `json:"messages,omitempty"`
	Palette  int64 `json:"palette,omitempty"`
}

// Metrics is a snapshot of the server's aggregate counters.
type Metrics struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	// Shed counts submissions refused by admission control (queue depth or
	// in-flight bytes) — the 429s; Rejected counts invalid ones (400s).
	Shed int64 `json:"shed"`
	// Recovered counts jobs replayed from the write-ahead store at startup
	// (both re-enqueued and terminal ones).
	Recovered int64 `json:"recovered"`
	// Panicked counts jobs whose execution panicked (recovered into a typed
	// failure; also counted in Failed). DeadlineExceeded counts jobs
	// terminated by their execution deadline (its own terminal state, not
	// in Failed).
	Panicked         int64 `json:"panicked"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// Degraded is 1 while the journal is failing and the server sheds new
	// submissions (read-only degraded mode), else 0.
	Degraded int64 `json:"degraded"`
	// InflightBytes is the admission charge of accepted-but-unfinished
	// jobs; MaxInflightBytes is its bound (0 = unbounded).
	InflightBytes    int64 `json:"inflight_bytes"`
	MaxInflightBytes int64 `json:"max_inflight_bytes"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	// CacheBadHits counts canonical-hash collisions detected by post-remap
	// verification (served as misses).
	CacheBadHits int64 `json:"cache_bad_hits"`
	// CacheSkipped counts submissions that bypassed the cache because the
	// graph exceeded the canonicalization size bounds.
	CacheSkipped  int64 `json:"cache_skipped"`
	CacheEntries  int   `json:"cache_entries"`
	QueueDepth    int   `json:"queue_depth"`
	Running       int   `json:"running"`
	Workers       int   `json:"workers"`
	RoundsTotal   int64 `json:"rounds_total"`
	MessagesTotal int64 `json:"messages_total"`
	WallMSTotal   int64 `json:"wall_ms_total"`
	Jobs          int   `json:"jobs"`
	// BytesIn/BytesOut count HTTP body traffic; CodecJSON/CodecBinary/
	// CodecStream count submissions by wire encoding (see DESIGN.md §11).
	BytesIn     int64 `json:"bytes_in"`
	BytesOut    int64 `json:"bytes_out"`
	CodecJSON   int64 `json:"codec_json"`
	CodecBinary int64 `json:"codec_binary"`
	CodecStream int64 `json:"codec_stream"`
}

// ErrQueueFull matches (via errors.Is) the queue-depth load shed; retained
// for pre-admission-control callers. New code should match ErrOverloaded
// and inspect *OverloadError for the Retry-After hint.
var ErrQueueFull = errors.New("service: work queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: server closed")

// ErrNotFound is returned for unknown (or already-forgotten) job IDs.
var ErrNotFound = errors.New("service: no such job")

// errJobCanceled is the cancellation cause of a job's context; it surfaces
// from the simulator's ctx-abort error chain, so a canceled run is
// distinguishable from a failed one.
var errJobCanceled = errors.New("service: job canceled")

// errJobDeadline is the cancellation cause of a job whose execution
// deadline elapsed; it distinguishes deadline_exceeded from canceled.
var errJobDeadline = errors.New("service: job deadline exceeded")

// PanicError is the typed terminal error of a job whose execution
// panicked. The worker recovers the panic (quarantining the failure to the
// one job instead of killing the daemon) and fails the job with this error;
// Stack is the goroutine stack captured at the recovery point.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("service: job panicked: %v", e.Value)
}

// poisonAttempts is how many journaled execution starts mark a job as
// poisoned: recovery replay fails such a job instead of re-enqueueing it,
// so a deterministically panicking (or deadline-blowing) job cannot
// crash-loop or wedge the daemon across restarts.
const poisonAttempts = 2

// job is the unit of scheduled work.
type job struct {
	id         string
	req        *distcolor.Request
	g          *distcolor.Graph // built once at submission, reused by the worker
	traceDepth int

	// ctx governs the job's execution; cancel (with errJobCanceled as the
	// cause) aborts a running simulation at its next round boundary. The
	// context is created at submission so Cancel works in every state
	// without racing the worker.
	ctx    context.Context
	cancel context.CancelCauseFunc

	// canon carries the submission-time canonicalization, reused to store
	// the result; nil when caching is disabled.
	canon *canonForm
	key   string

	// cost is the job's admission charge (jobCost at submission), released
	// at the terminal transition; 0 for jobs that were never charged
	// (cache hits, recovered terminal jobs).
	cost int64

	// attempts counts journaled execution starts, seeded from the recovery
	// record and incremented at worker pickup; only the worker goroutine
	// that owns the job touches it after publication.
	attempts int64

	// sobs points at the server's instruments for the hooks that fire off
	// the server lock (the round observer); nil in unit tests that build
	// bare jobs.
	sobs *serverObs

	mu         sync.Mutex
	cond       *sync.Cond          // broadcast on every state/trace change
	done       chan struct{}       // closed exactly once, on the terminal transition
	state      State               // guarded by mu
	err        string              // guarded by mu
	resp       *distcolor.Response // guarded by mu
	cacheHit   bool                // guarded by mu
	cancelReq  bool                // guarded by mu
	wallMS     int64               // guarded by mu
	trace      []TraceEvent        // guarded by mu
	traceStart int                 // guarded by mu; seq of trace[0] (earlier events were dropped)
	traceSeq   int                 // guarded by mu; next seq to assign
	lastExec   int                 // guarded by mu
	lastN      int                 // guarded by mu
	sawRound   bool                // guarded by mu

	// Lifecycle span tree (see DESIGN.md §9): offsets are µs since
	// spanBase. spans is nil for jobs recovered terminal from the journal;
	// mutations after the job is published happen under j.mu. The index
	// fields are -1 until the corresponding span starts.
	spanBase    time.Time
	spans       *obs.Trace
	spanRoot    int
	spanAdmit   int
	spanQueue   int
	spanExec    int
	lastRoundUS int64 // offset of the most recent observed round
}

// initSpans roots the job's span tree at base (the submission or recovery
// instant). Offsets derive from time.Since(base), so they ride the
// monotonic clock.
func (j *job) initSpans(base time.Time) {
	j.spanBase = base
	j.spans = obs.NewTrace(8)
	j.spanAdmit, j.spanQueue, j.spanExec = -1, -1, -1
	j.spanRoot = j.spans.Start("job", -1, 0)
}

func (j *job) sinceUS() int64 { return time.Since(j.spanBase).Microseconds() }

// finishLocked moves the job to a terminal state; j.mu must be held and the
// current state must be non-terminal.
func (j *job) finishLocked(st State, errMsg string) {
	j.state = st
	j.err = errMsg
	if j.cancel != nil {
		j.cancel(nil) // release the job context's resources
	}
	close(j.done)
	j.cond.Broadcast()
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Algorithm: j.req.Algorithm,
		N:         j.req.Graph.N,
		M:         len(j.req.Graph.Edges),
		CacheHit:  j.cacheHit,
		Error:     j.err,
		WallMS:    j.wallMS,
	}
	if j.resp != nil {
		st.Algorithm = j.resp.Algorithm
		st.Rounds = j.resp.Stats.Rounds
		st.Messages = j.resp.Stats.Messages
		st.Palette = j.resp.Palette
	}
	return st
}

// Server is the concurrent coloring service.
type Server struct {
	cfg    Config
	cache  *resultCache
	store  *Store        // write-ahead job store; nil without Config.DataDir
	faults *fault.Points // injection points; nil in production

	mu            sync.Mutex
	queueCond     *sync.Cond      // signaled when queue gains work or the server closes
	closed        bool            // guarded by mu
	degraded      string          // guarded by mu; non-empty reason while the journal is failing
	lastProbe     time.Time       // guarded by mu; last store recovery probe while degraded
	nextID        int64           // guarded by mu
	jobs          map[string]*job // guarded by mu
	order         []string        // guarded by mu; submission order, for bounded retention
	queue         []*job          // guarded by mu; FIFO of not-yet-started jobs; canceled jobs are removed in place
	queueReserved int             // guarded by mu; admitted submissions journaling outside s.mu, not yet in queue
	inflightBytes int64           // guarded by mu; admission charge of accepted-but-unfinished jobs
	wg            sync.WaitGroup

	// obs holds every exported instrument (see obs.go); counters and the
	// running gauge are mutated only under s.mu, so Metrics() snapshots
	// them coherently with the queue/inflight state.
	obs   *serverObs
	log   *slog.Logger
	reqID atomic.Int64 // HTTP request-log ID source

	// deprecatedOnce rate-limits the legacy-shorthand-fields warning to one
	// log line per process; the Deprecation response header fires every time.
	deprecatedOnce sync.Once
}

// NewServer opens the job store (when Config.DataDir is set), replays and
// re-enqueues any work a previous process left non-terminal, and starts the
// worker pool. The only error paths are store ones; a memory-only config
// never fails.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		faults: cfg.Faults,
		jobs:   make(map[string]*job),
		obs:    newServerObs(),
		log:    cfg.Logger,
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	s.queueCond = sync.NewCond(&s.mu)
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries)
	}
	if cfg.DataDir != "" {
		store, recovered, err := OpenStoreFS(cfg.DataDir, cfg.SegmentBytes, cfg.FS)
		if err != nil {
			return nil, err
		}
		s.store = store
		if err := s.recover(recovered); err != nil {
			store.Close()
			return nil, err
		}
		s.log.Info("job store recovered", "dir", cfg.DataDir, "jobs", s.obs.recovered.Value())
	}
	s.registerDerived()
	if !cfg.Frozen {
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	return s, nil
}

// recover rebuilds the job table from the replayed journal: terminal jobs
// are materialized with their persisted outcome (results keep serving
// across restarts), non-terminal jobs — queued or running at the crash —
// are rebuilt and re-enqueued. Recovery bypasses admission (the work was
// admitted before the crash) but charges the in-flight budget, so fresh
// submissions shed until the backlog drains. Job IDs resume past the
// journal's maximum: an ID is never reused, so restarting cannot duplicate
// or alias a job.
func (s *Server) recover(recs []distcolor.JobRecord) error {
	// Recovery runs before the worker pool exists, but it mutates the same
	// guarded state the workers will; holding s.mu keeps the lock invariant
	// uniform (and costs one uncontended acquisition at startup).
	s.mu.Lock()
	defer s.mu.Unlock()
	// Resume ID assignment past everything the journal has EVER seen — not
	// just the recovered table: a job dropped by retention (forgotten
	// marker) is gone from the table but its ID must stay burned, or a
	// client still holding it would silently read a different job.
	s.nextID = s.store.MaxJobID()
	for i := range recs {
		rec := &recs[i]
		if n := jobIDNum(rec.ID); n > s.nextID {
			s.nextID = n
		}
		if rec.Request == nil {
			// A journal prefix can hold transition entries whose submission
			// entry was forgotten by compaction mid-crash; nothing runnable
			// or servable survives without the request.
			continue
		}
		j := &job{
			id:         rec.ID,
			req:        rec.Request,
			traceDepth: s.cfg.TraceDepth,
			done:       make(chan struct{}),
			cacheHit:   rec.CacheHit,
			wallMS:     rec.WallMS,
		}
		j.cond = sync.NewCond(&j.mu)
		//distcolor:ignore ctxfirst recovered jobs outlive any request; Close and /cancel cancel via j.cancel
		j.ctx, j.cancel = context.WithCancelCause(context.Background())
		st := State(rec.State)
		if st.Terminal() {
			j.state = st
			j.err = rec.Error
			j.resp = rec.Response
			j.cancel(nil)
			close(j.done)
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			s.obs.recovered.Inc()
			continue
		}
		// Poison quarantine: a job that already journaled poisonAttempts
		// execution starts without ever reaching a terminal state has taken
		// down (or wedged) as many processes. Replaying it again would
		// crash-loop the daemon, so it turns terminal-failed instead.
		if rec.Attempts >= poisonAttempts {
			j.state = StateFailed
			j.err = fmt.Sprintf("service: job poisoned: %d execution attempts without a terminal state", rec.Attempts)
			j.cancel(nil)
			close(j.done)
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			s.obs.recovered.Inc()
			s.log.Warn("poisoned job quarantined", "job", j.id, "attempts", rec.Attempts)
			if aerr := s.store.Append(distcolor.JobRecord{ID: j.id, State: string(StateFailed), Error: j.err}, true); aerr != nil {
				return aerr
			}
			continue
		}
		// Queued or running at the crash: rebuild and re-enqueue. The graph
		// was validated at original submission; a request that no longer
		// builds (schema drift across versions) turns terminal-failed
		// rather than poisoning the queue.
		g, err := rec.Request.Graph.Build()
		if err == nil {
			err = rec.Request.Validate()
		}
		if err != nil {
			j.state = StateFailed
			j.err = err.Error()
			j.cancel(nil)
			close(j.done)
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			s.obs.recovered.Inc()
			if aerr := s.store.Append(distcolor.JobRecord{ID: j.id, State: string(StateFailed), Error: j.err}, true); aerr != nil {
				return aerr
			}
			continue
		}
		j.g = g
		j.state = StateQueued
		j.cost = jobCost(rec.Request)
		j.attempts = rec.Attempts
		j.sobs = s.obs
		// Recovered jobs re-enter at the queue stage: no admit span (the
		// admission happened in a previous process), offsets re-based at
		// recovery time.
		j.initSpans(time.Now())
		j.spanQueue = j.spans.Start(stageQueue, j.spanRoot, 0)
		if s.cache != nil &&
			(s.cfg.CacheMaxVertices < 0 || g.N() <= s.cfg.CacheMaxVertices) &&
			(s.cfg.CacheMaxEdges < 0 || g.M() <= s.cfg.CacheMaxEdges) {
			canon, err := canonicalize(g, rec.Request)
			if err == nil { // a bad cover was journaled by an older build; run uncached
				j.canon = canon
				j.key = cacheKey(canon, rec.Request)
			}
		}
		s.inflightBytes += j.cost
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.queue = append(s.queue, j)
		s.obs.recovered.Inc()
	}
	return nil
}

// Close stops accepting submissions, lets queued and running jobs finish,
// waits for the workers to exit, and seals the job store.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.queueCond.Broadcast()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.store != nil {
		s.store.Close()
	}
}

// Submit validates, cache-checks, admits, journals, and (on a miss)
// enqueues a request. On a cache hit the returned job is already done and
// carries the remapped, re-verified coloring. A submission over the
// admission bounds is shed with an *OverloadError carrying a Retry-After
// estimate; with a job store configured, an accepted submission is fsync'd
// to the journal before Submit returns, so an ID handed to a client
// survives any crash.
func (s *Server) Submit(req *distcolor.Request) (JobStatus, error) {
	return s.submit(req, -1)
}

// submit is Submit's engine. pre < 0 is the buffered path: the request is
// admitted here, in one decision. pre >= 0 is the chunked-ingest handoff
// from SubmitStream: the request was already admitted incrementally — pre
// bytes are charged against the in-flight budget and one queue reservation
// is held — so admission is skipped and every rejection path must return
// the reservation and charge (releaseStream) before erroring.
func (s *Server) submit(req *distcolor.Request, pre int64) (JobStatus, error) {
	begin := time.Now() // span base: every lifecycle offset is µs since here
	preAdmitted := pre >= 0
	reject := func(err error) (JobStatus, error) {
		if preAdmitted {
			s.releaseStream(pre)
		}
		s.countRejected()
		return JobStatus{}, err
	}
	if err := req.Validate(); err != nil {
		return reject(err)
	}
	if err := s.faults.Hit("service.admit"); err != nil { // injection point; nil Points = 1 pointer load
		return reject(err)
	}
	// Resolve degraded state once, up front: the probe (and its fsync) must
	// not run under s.mu, and the answer decides both branches below — a
	// cache hit is served memory-only, a miss is shed before admission.
	degraded := ""
	if s.store != nil {
		degraded = s.degradedReason()
	}
	if s.cfg.MaxVertices > 0 && req.Graph.N > s.cfg.MaxVertices {
		return reject(fmt.Errorf("service: graph has %d vertices, limit %d", req.Graph.N, s.cfg.MaxVertices))
	}
	if s.cfg.MaxEdges > 0 && len(req.Graph.Edges) > s.cfg.MaxEdges {
		return reject(fmt.Errorf("service: graph has %d edges, limit %d", len(req.Graph.Edges), s.cfg.MaxEdges))
	}
	cost := jobCost(req)
	if !preAdmitted && s.cfg.MaxInflightBytes > 0 && cost > s.cfg.MaxInflightBytes {
		// A buffered request whose own estimate exceeds the whole budget can
		// never be admitted in one decision — but it CAN arrive via chunked
		// binary ingest, which admits per chunk. Shed with a 429 pointing
		// there rather than rejecting outright.
		s.mu.Lock()
		s.obs.shed.Inc()
		ra := s.retryAfterLocked()
		s.mu.Unlock()
		s.log.Warn("submission shed", "reason", "inflight-bytes", "retry_after", ra)
		return JobStatus{}, &OverloadError{Reason: "inflight-bytes", RetryAfter: ra}
	}
	// An out-of-range clique-cover vertex could only fail at execution, and
	// hashing it would alias a valid cover's cache key. Reject it up front —
	// unconditionally, not just on the cacheable path, so the same invalid
	// request is a 400 regardless of the server's cache configuration.
	if err := validateCoverRange(req); err != nil {
		return reject(err)
	}
	g, err := req.Graph.Build()
	if err != nil {
		return reject(err)
	}

	j := &job{req: req, g: g, state: StateQueued, traceDepth: s.cfg.TraceDepth, done: make(chan struct{}), sobs: s.obs}
	j.cond = sync.NewCond(&j.mu)
	//distcolor:ignore ctxfirst a job outlives the submitting request; Close and /cancel cancel via j.cancel
	j.ctx, j.cancel = context.WithCancelCause(context.Background())
	j.initSpans(begin)
	j.spanAdmit = j.spans.Start(stageAdmit, j.spanRoot, 0)

	var hit *distcolor.Response
	cacheable := s.cache != nil &&
		(s.cfg.CacheMaxVertices < 0 || g.N() <= s.cfg.CacheMaxVertices) &&
		(s.cfg.CacheMaxEdges < 0 || g.M() <= s.cfg.CacheMaxEdges)
	if cacheable {
		canon, err := canonicalize(g, req)
		if err != nil {
			return reject(err)
		}
		j.canon = canon
		j.key = cacheKey(j.canon, req)
		var bad bool
		hit, bad = s.cache.load(j.key, g, j.canon)
		if bad {
			s.mu.Lock()
			s.obs.cacheBadHits.Inc()
			s.mu.Unlock()
		}
	}

	s.mu.Lock()
	if s.closed {
		if preAdmitted {
			s.queueReserved--
			s.releaseLocked(pre)
		}
		s.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	if hit != nil {
		if preAdmitted {
			// The stream's incremental charge is no longer needed: the hit
			// serves from cache without ever entering the queue.
			s.queueReserved--
			s.releaseLocked(pre)
		}
		// Served from cache: load re-verified the remapped coloring against
		// this submission's graph.
		j.state = StateDone
		j.resp = hit
		j.cacheHit = true
		j.cancel(nil)
		close(j.done)
		// Close the span tree before the job becomes findable: a cache hit
		// is admit followed by an instantaneous serve, no queue/execute.
		t := j.sinceUS()
		j.spans.End(j.spanAdmit, t)
		sv := j.spans.Start(stageServe, j.spanRoot, t)
		j.spans.End(sv, t)
		j.spans.End(j.spanRoot, t)
		s.obs.cacheHits.Inc()
		s.obs.submitted.Inc()
		s.obs.completed.Inc()
		evicted := s.register(j)
		s.mu.Unlock()
		s.obs.observeStage(stageAdmit, t)
		s.journalForgotten(evicted)
		// One condensed journal entry: submitted and done in the same
		// instant. Fsync'd and checked like the miss path's — the
		// durability contract is that any ID handed to a client survives a
		// crash, cache hit or not. While degraded the entry is skipped and
		// the hit serves memory-only: the result is correct and verified,
		// the caller gets it now, and the one documented durability gap is
		// that this ID will not survive a restart (DESIGN.md §12).
		if s.store != nil && degraded == "" {
			if err := s.journal(distcolor.JobRecord{
				ID: j.id, State: string(StateDone), Request: req, Response: hit, CacheHit: true,
			}, true); err != nil {
				s.log.Error("journal append failed, cache hit withdrawn", "job", j.id, "err", err)
				s.withdrawHit(j)
				return JobStatus{}, err
			}
		}
		s.log.Debug("job served from cache", "job", j.id)
		return j.status(), nil
	}
	if degraded != "" {
		// Read-only shed: new work cannot be made durable, so it is refused
		// with a typed 503 — distinct from overload, because retrying sooner
		// will not help until the journal heals.
		if preAdmitted {
			s.queueReserved--
			s.releaseLocked(pre)
		}
		s.obs.shed.Inc()
		ra := s.retryAfterLocked()
		s.mu.Unlock()
		s.log.Warn("submission shed", "reason", "degraded", "err", degraded)
		return JobStatus{}, &DegradedError{Reason: degraded, RetryAfter: ra}
	}
	if preAdmitted {
		// Chunked ingest admitted this job while reading it; the held charge
		// (and the queue reservation taken with the first chunk) transfer to
		// the job as-is.
		j.cost = pre
	} else {
		if err := s.admitLocked(cost); err != nil {
			s.mu.Unlock()
			var ov *OverloadError
			if errors.As(err, &ov) {
				s.log.Warn("submission shed", "reason", ov.Reason, "retry_after", ov.RetryAfter)
			}
			return JobStatus{}, err
		}
		j.cost = cost
	}
	evicted := s.register(j) // the job is visible (Status finds it) but not yet runnable
	s.mu.Unlock()
	s.journalForgotten(evicted)

	if s.store != nil {
		// Durability point: the submission entry is fsync'd before the job
		// becomes runnable. It happens outside s.mu — an fsync per submit
		// under the server lock would serialize every submission and stall
		// the read endpoints — which is safe because the job is not in the
		// queue yet: no worker can run work whose entry is not durable. On
		// journal failure the job is withdrawn (terminal-failed for anyone
		// who already saw it, then dropped); accepting unjournaled work
		// would silently demote the durability contract.
		if err := s.journal(distcolor.JobRecord{ID: j.id, State: string(StateQueued), Request: req}, true); err != nil {
			s.log.Error("journal append failed, submission withdrawn", "job", j.id, "err", err)
			s.withdraw(j, StateFailed, err.Error())
			// Best-effort neutralizer: if the failure was in the fsync (the
			// bytes may still reach disk), a terminal entry stops a restart
			// from resurrecting work whose submission call failed.
			_ = s.store.Append(distcolor.JobRecord{ID: j.id, State: string(StateFailed), Error: err.Error()}, false)
			return JobStatus{}, err
		}
	}

	s.mu.Lock()
	if s.closed {
		// Close raced the journal write; the workers may already be gone,
		// so the job must not enter the queue. The journaled submission is
		// neutralized with a terminal entry (otherwise a restart would
		// resurrect work whose submission call failed).
		s.mu.Unlock()
		s.withdraw(j, StateCanceled, ErrClosed.Error())
		if s.store != nil {
			_ = s.store.Append(distcolor.JobRecord{ID: j.id, State: string(StateCanceled), Error: ErrClosed.Error()}, true)
		}
		return JobStatus{}, ErrClosed
	}
	s.queueReserved-- // the reservation becomes a real queue entry
	// Admit ends (journal fsync included) and the queue wait begins. The
	// job is already findable, so span mutations happen under j.mu; taking
	// j.mu inside s.mu follows the lock order, and doing it before the
	// queue append means no worker has the job yet.
	j.mu.Lock()
	admitUS := j.sinceUS()
	j.spans.End(j.spanAdmit, admitUS)
	j.spanQueue = j.spans.Start(stageQueue, j.spanRoot, admitUS)
	j.mu.Unlock()
	s.queue = append(s.queue, j)
	s.queueCond.Signal()
	switch {
	case cacheable:
		s.obs.cacheMisses.Inc()
	case s.cache != nil:
		s.obs.cacheSkipped.Inc()
	}
	s.obs.submitted.Inc()
	s.mu.Unlock()
	s.obs.observeStage(stageAdmit, admitUS)
	return j.status(), nil
}

// withdrawHit backs a cache-hit job out after its journal entry could not
// be made durable: the submission errors back to the caller, so the job
// must not remain findable (a restart would 404 an ID the caller was never
// successfully given) and the hit counters roll back. The job object stays
// terminal-done for any concurrent Status/Wait holder.
func (s *Server) withdrawHit(j *job) {
	s.mu.Lock()
	s.obs.cacheHits.Add(-1)
	s.obs.submitted.Add(-1)
	s.obs.completed.Add(-1)
	delete(s.jobs, j.id)
	for i, id := range s.order {
		if id == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// withdraw backs an admitted-but-never-enqueued job out of the server: it
// turns terminal (so Status/Wait callers that saw it resolve) and releases
// its registration, queue reservation, and admission charge.
func (s *Server) withdraw(j *job, st State, errMsg string) {
	j.mu.Lock()
	if !j.state.Terminal() {
		j.finishLocked(st, errMsg)
	}
	j.mu.Unlock()
	s.mu.Lock()
	s.queueReserved--
	s.releaseLocked(j.cost)
	delete(s.jobs, j.id)
	for i, id := range s.order {
		if id == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// register assigns an ID and stores the job; the caller holds s.mu. It
// returns the IDs its bounded retention evicted, which the caller journals
// as forgotten markers AFTER releasing s.mu — an append here can trigger
// segment rotation and full-journal compaction, far too much disk work to
// run under the global lock.
func (s *Server) register(j *job) (evicted []string) {
	s.nextID++
	j.id = "j" + strconv.FormatInt(s.nextID, 10)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	// Bounded retention: forget the oldest *finished* jobs beyond MaxJobs.
	for len(s.jobs) > s.cfg.MaxJobs {
		removed := false
		for i, id := range s.order {
			old, ok := s.jobs[id]
			if !ok {
				s.order = append(s.order[:i], s.order[i+1:]...)
				removed = true
				break
			}
			old.mu.Lock()
			terminal := old.state.Terminal()
			old.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = append(evicted, id)
				removed = true
				break
			}
		}
		if !removed {
			break // everything is in flight; retain over MaxJobs
		}
	}
	return evicted
}

// journalForgotten writes retention markers for evicted jobs: replay must
// not resurrect a job the bounded retention already forgot. Unsynced —
// losing one merely re-retains the job for one more cycle.
func (s *Server) journalForgotten(evicted []string) {
	if s.store == nil {
		return
	}
	for _, id := range evicted {
		_ = s.journal(distcolor.JobRecord{ID: id, State: storeStateForgotten}, false)
	}
}

// journal appends one record to the job store (no-op without one), flipping
// the server into degraded mode when the append fails. Every store write on
// a served path goes through here, so a sick disk is noticed at the first
// failing append, not when an operator reads the log.
func (s *Server) journal(rec distcolor.JobRecord, sync bool) error {
	if s.store == nil {
		return nil
	}
	err := s.store.Append(rec, sync)
	if err != nil {
		s.enterDegraded(err)
	}
	return err
}

// enterDegraded flips the server read-only: Submit sheds cache misses with
// a *DegradedError (503) until a probe succeeds, while Status/Result/Trace/
// Cancel and memory-only cache hits keep serving. The rationale: accepting
// work the journal cannot record would silently demote the durability
// contract, but refusing reads would turn a disk hiccup into a full outage.
func (s *Server) enterDegraded(err error) {
	s.mu.Lock()
	entered := s.degraded == ""
	s.degraded = err.Error()
	s.mu.Unlock()
	if entered {
		s.log.Error("journal failing, entering degraded mode", "err", err)
	}
}

// degradedReason returns the current degraded reason ("" when healthy). At
// most once per Config.DegradedProbe it probes the store with a real synced
// append (Store.Probe) — outside s.mu, fsync under the server lock would
// stall the read endpoints — and a successful probe exits degraded mode:
// the self-heal path after a disk recovers.
func (s *Server) degradedReason() string {
	s.mu.Lock()
	reason := s.degraded
	probe := reason != "" && time.Since(s.lastProbe) >= s.cfg.DegradedProbe
	if probe {
		s.lastProbe = time.Now()
	}
	s.mu.Unlock()
	if !probe {
		return reason
	}
	if err := s.store.Probe(); err != nil {
		s.mu.Lock()
		s.degraded = err.Error()
		reason = s.degraded
		s.mu.Unlock()
		return reason
	}
	s.mu.Lock()
	s.degraded = ""
	s.mu.Unlock()
	s.log.Info("journal recovered, leaving degraded mode")
	return ""
}

func (s *Server) countRejected() {
	s.mu.Lock()
	s.obs.rejected.Inc()
	s.mu.Unlock()
}

// Status returns a job's current status.
func (s *Server) Status(id string) (JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return JobStatus{}, err
	}
	return j.status(), nil
}

func (s *Server) job(id string) (*job, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// Result returns the response of a done job. The response is nil while the
// job has not (or not successfully) finished; the status tells why.
func (s *Server) Result(id string) (*distcolor.Response, JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, JobStatus{}, err
	}
	j.mu.Lock()
	resp := j.resp
	j.mu.Unlock()
	return resp, j.status(), nil
}

// Cancel requests cancellation: a queued job is removed from the queue
// (freeing its slot immediately) and never runs; a running job's context
// is canceled, aborting the simulation at its next round boundary.
func (s *Server) Cancel(id string) (JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return JobStatus{}, err
	}
	// Pull the job out of the queue first (s.mu before j.mu): once removed,
	// no worker can pick it up, so this caller owns the terminal transition.
	s.mu.Lock()
	removed := false
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			removed = true
			break
		}
	}
	s.mu.Unlock()
	j.mu.Lock()
	finished := false
	if !j.state.Terminal() {
		j.cancelReq = true
		j.cancel(errJobCanceled)
		if removed {
			j.finishLocked(StateCanceled, errJobCanceled.Error())
			if j.spans != nil {
				t := j.sinceUS()
				j.spans.End(j.spanQueue, t)
				j.spans.End(j.spanRoot, t)
			}
			finished = true
		}
	}
	j.mu.Unlock()
	if finished {
		s.log.Info("job canceled while queued", "job", j.id)
		s.mu.Lock()
		s.obs.canceled.Inc()
		s.releaseLocked(j.cost)
		s.mu.Unlock()
		_ = s.journal(distcolor.JobRecord{ID: j.id, State: string(StateCanceled), Error: errJobCanceled.Error()}, true)
	}
	return j.status(), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done, and
// returns the job's then-current status; the caller checks ctx.Err() to
// tell a timeout from a terminal state.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return JobStatus{}, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return j.status(), nil
}

// WaitTimeout waits like Wait under a fixed timeout (non-positive blocks
// until the job is terminal).
//
// Deprecated: use Wait with a context. The old form leaked a timer per
// call (time.After keeps its timer live for the full duration even after
// the job finishes) and could not observe caller cancellation.
func (s *Server) WaitTimeout(id string, timeout time.Duration) (JobStatus, error) {
	//distcolor:ignore ctxfirst deprecated pre-context shim; the timeout below bounds the wait
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return s.Wait(ctx, id)
}

// Trace copies the job's recorded round-trace events with seq ≥ afterSeq,
// and reports the job's current state and the seq of the first retained
// event (events before it were dropped by the bounded history).
func (s *Server) Trace(id string, afterSeq int) ([]TraceEvent, State, int, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, "", 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []TraceEvent
	for _, ev := range j.trace {
		if ev.Seq >= afterSeq {
			out = append(out, ev)
		}
	}
	return out, j.state, j.traceStart, nil
}

// WaitTrace blocks until the job has trace events with seq ≥ afterSeq, is
// terminal, or ctx is done, then behaves like Trace (the caller checks
// ctx.Err() to distinguish the last case). The context lets a streaming
// reader whose client disconnected stop waiting on a slow job.
func (s *Server) WaitTrace(ctx context.Context, id string, afterSeq int) ([]TraceEvent, State, int, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, "", 0, err
	}
	// cond.Wait cannot watch a channel; poke the waiters when ctx ends.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	for !j.state.Terminal() && j.traceSeq <= afterSeq && ctx.Err() == nil {
		j.cond.Wait()
	}
	j.mu.Unlock()
	return s.Trace(id, afterSeq)
}

// Metrics snapshots the aggregate counters. Every instrument it reads is
// mutated only under s.mu, so the snapshot is coherent: no field can show a
// state transition another field has not seen yet.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Submitted:        s.obs.submitted.Value(),
		Completed:        s.obs.completed.Value(),
		Failed:           s.obs.failed.Value(),
		Canceled:         s.obs.canceled.Value(),
		Rejected:         s.obs.rejected.Value(),
		Shed:             s.obs.shed.Value(),
		Recovered:        s.obs.recovered.Value(),
		Panicked:         s.obs.panicked.Value(),
		DeadlineExceeded: s.obs.deadlineExceeded.Value(),
		InflightBytes:    s.inflightBytes,
		CacheHits:        s.obs.cacheHits.Value(),
		CacheMisses:      s.obs.cacheMisses.Value(),
		CacheBadHits:     s.obs.cacheBadHits.Value(),
		CacheSkipped:     s.obs.cacheSkipped.Value(),
		QueueDepth:       len(s.queue) + s.queueReserved,
		Running:          int(s.obs.running.Value()),
		Workers:          s.cfg.Workers,
		RoundsTotal:      s.obs.roundsTotal.Value(),
		MessagesTotal:    s.obs.messagesTotal.Value(),
		WallMSTotal:      s.obs.wallMSTotal.Value(),
		Jobs:             len(s.jobs),
		BytesIn:          s.obs.bytesIn.Value(),
		BytesOut:         s.obs.bytesOut.Value(),
		CodecJSON:        s.obs.codecJSON.Value(),
		CodecBinary:      s.obs.codecBinary.Value(),
		CodecStream:      s.obs.codecStream.Value(),
	}
	if s.degraded != "" {
		m.Degraded = 1
	}
	if s.cfg.MaxInflightBytes > 0 {
		m.MaxInflightBytes = s.cfg.MaxInflightBytes
	}
	if s.cache != nil {
		m.CacheEntries = s.cache.len()
	}
	return m
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.queueCond.Wait()
		}
		if len(s.queue) == 0 { // closed and drained
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	queueUS := int64(-1)
	if j.spans != nil {
		t := j.sinceUS()
		j.spans.End(j.spanQueue, t)
		if j.spanQueue >= 0 {
			queueUS = j.spans.Spans()[j.spanQueue].DurUS
		}
		j.spanExec = j.spans.Start(stageExecute, j.spanRoot, t)
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	s.obs.observeStage(stageQueue, queueUS)

	s.mu.Lock()
	s.obs.running.Add(1)
	s.mu.Unlock()
	j.attempts++
	// Unsynced on the first attempt: losing a "running" entry replays the
	// job as queued, which merely re-runs it — the at-least-once side of
	// recovery. The attempt that would poison the job on the NEXT replay is
	// fsync'd: quarantine must survive the very crash it exists to record.
	// (The soft spot is one lost unsynced first attempt, which buys a
	// poisoned job exactly one extra run — never an unbounded loop.)
	_ = s.journal(distcolor.JobRecord{ID: j.id, State: string(StateRunning), Attempts: j.attempts}, j.attempts >= poisonAttempts)

	req := j.req
	if s.cfg.Parallel && !req.Parallel {
		cp := *req
		cp.Parallel = true
		req = &cp
	}
	// The execution context layers the deadline over the job's cancel
	// context: the request's deadline_ms tightens the server's JobTimeout
	// default, and the typed cause tells the terminal switch "out of time"
	// apart from "canceled".
	ctx := j.ctx
	timeout := s.cfg.JobTimeout
	if d := req.DeadlineMS; d > 0 {
		if t := time.Duration(d) * time.Millisecond; timeout <= 0 || t < timeout {
			timeout = t
		}
	}
	var cancelDeadline context.CancelFunc
	if timeout > 0 {
		ctx, cancelDeadline = context.WithTimeoutCause(j.ctx, timeout, errJobDeadline)
	}
	start := time.Now()
	resp, err := s.execute(ctx, j, req)
	if cancelDeadline != nil {
		cancelDeadline()
	}
	wall := time.Since(start).Milliseconds()
	var execRetUS int64
	if j.spans != nil { // spanBase is immutable once the job is published
		execRetUS = j.sinceUS()
	}

	// Store into the cache before the job turns terminal: a waiter that
	// resubmits the identical workload the instant Wait returns must hit.
	if err == nil && s.cache != nil && j.canon != nil {
		s.cache.store(j.key, j.canon, resp)
	}

	j.mu.Lock()
	j.wallMS = wall
	// A canceled job's error chain carries the context cancellation (the
	// simulator wraps context.Cause, i.e. errJobCanceled). An explicit
	// Cancel wins over every other outcome; a panic is a plain failure with
	// a typed error; a deadline gets its own terminal state.
	canceled := err != nil && (errors.Is(err, errJobCanceled) || errors.Is(err, context.Canceled) || j.cancelReq)
	var pe *PanicError
	panicked := !canceled && errors.As(err, &pe)
	deadlined := err != nil && !canceled && !panicked &&
		(errors.Is(err, errJobDeadline) || errors.Is(err, context.DeadlineExceeded))
	rec := distcolor.JobRecord{ID: j.id, WallMS: wall}
	switch {
	case canceled:
		j.finishLocked(StateCanceled, errJobCanceled.Error())
		rec.State, rec.Error = string(StateCanceled), errJobCanceled.Error()
	case panicked:
		j.finishLocked(StateFailed, pe.Error())
		rec.State, rec.Error = string(StateFailed), pe.Error()
	case deadlined:
		j.finishLocked(StateDeadline, errJobDeadline.Error())
		rec.State, rec.Error = string(StateDeadline), errJobDeadline.Error()
	case err != nil:
		j.finishLocked(StateFailed, err.Error())
		rec.State, rec.Error = string(StateFailed), err.Error()
	default:
		j.resp = resp
		j.finishLocked(StateDone, "")
		rec.State, rec.Response = string(StateDone), resp
	}
	// Close the span tree in the same critical section as the terminal
	// transition, so a trace streamer woken by it always reads a finished
	// tree. Execute ends at the last observed round; the tail up to
	// ExecuteOn's return is the in-run verification; serve covers result
	// publication (cache store + terminal bookkeeping). The terminal WAL
	// fsync below is deliberately outside the tree — including it would
	// reopen the race with streaming readers.
	execUS, verifyUS, serveUS := int64(-1), int64(-1), int64(-1)
	if j.spans != nil {
		execEnd := execRetUS
		if j.sawRound && j.lastRoundUS > 0 && j.lastRoundUS < execEnd {
			execEnd = j.lastRoundUS
		}
		j.spans.End(j.spanExec, execEnd)
		if j.spanExec >= 0 {
			execUS = j.spans.Spans()[j.spanExec].DurUS
		}
		if panicked {
			// Zero-length marker at the recovery instant, so a trace reader
			// sees WHERE in the lifecycle the panic surfaced; the stack goes
			// to the structured log below.
			pi := j.spans.Start("panic", j.spanRoot, execRetUS)
			j.spans.End(pi, execRetUS)
		}
		if rec.State == string(StateDone) {
			vi := j.spans.Start(stageVerify, j.spanRoot, execEnd)
			j.spans.End(vi, execRetUS)
			verifyUS = execRetUS - execEnd
		}
		now := j.sinceUS()
		si := j.spans.Start(stageServe, j.spanRoot, execRetUS)
		j.spans.End(si, now)
		serveUS = now - execRetUS
		j.spans.End(j.spanRoot, now)
	}
	j.mu.Unlock()
	s.obs.observeStage(stageExecute, execUS)
	s.obs.observeStage(stageVerify, verifyUS)
	s.obs.observeStage(stageServe, serveUS)
	// The terminal entry is fsync'd: it is what lets a restart serve this
	// result instead of re-running the job. A failure cannot un-finish the
	// job — the in-memory result keeps serving — but it does flip the
	// server degraded (via journal), since outcomes are no longer durable.
	if aerr := s.journal(rec, true); aerr != nil {
		s.log.Error("terminal journal append failed", "job", j.id, "err", aerr)
	}
	if panicked {
		s.log.Error("job panicked, failure quarantined to the job",
			"job", j.id, "panic", fmt.Sprint(pe.Value), "stack", string(pe.Stack))
	}
	s.log.Info("job finished", "job", j.id, "state", rec.State, "wall_ms", wall)

	s.mu.Lock()
	s.obs.running.Add(-1)
	s.releaseLocked(j.cost)
	switch {
	case canceled:
		s.obs.canceled.Inc()
	case panicked:
		s.obs.failed.Inc()
		s.obs.panicked.Inc()
	case deadlined:
		s.obs.deadlineExceeded.Inc()
	case err != nil:
		s.obs.failed.Inc()
	default:
		s.obs.completed.Inc()
		s.obs.roundsTotal.Add(int64(resp.Stats.Rounds))
		s.obs.messagesTotal.Add(resp.Stats.Messages)
		s.obs.wallMSTotal.Add(wall)
	}
	s.mu.Unlock()
}

// execute runs one job's simulation, converting an engine panic into a
// typed *PanicError: the panic fails that one job while the worker — and
// every queued job behind it — survives. Before this recovery existed, a
// panicking request took down the whole daemon.
func (s *Server) execute(ctx context.Context, j *job, req *distcolor.Request) (resp *distcolor.Response, err error) {
	defer func() {
		//distcolor:recover quarantine a panicking job to a typed failure instead of killing the worker pool
		if r := recover(); r != nil {
			resp, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if ferr := s.faults.Hit("worker.execute"); ferr != nil { // injection point (error, panic, or delay)
		return nil, ferr
	}
	return distcolor.ExecuteOn(ctx, req, j.g, distcolor.Options{Observer: j.observe})
}

// observe is the job's sim round hook: it records the bounded trace
// history (cancellation is ctx-native now and no longer flows through the
// observer). A new execution is detected by its round counter restarting
// at 0.
func (j *job) observe(ev distcolor.RoundEvent) {
	if j.sobs != nil {
		j.sobs.roundMaxBits.Observe(ev.RoundMaxBits)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if ev.Round == 0 || !j.sawRound || ev.N != j.lastN {
		j.lastExec++
	}
	j.sawRound = true
	j.lastN = ev.N
	if j.spans != nil {
		j.lastRoundUS = j.sinceUS()
	}
	j.trace = append(j.trace, TraceEvent{
		Seq:      j.traceSeq,
		Exec:     j.lastExec,
		Round:    ev.Round,
		N:        ev.N,
		Running:  ev.Running,
		Messages: ev.Stats.Messages,
	})
	j.traceSeq++
	// Bounded history: drop the oldest half when over depth, so streaming
	// readers that fell behind see a gap, not unbounded memory.
	if len(j.trace) > j.traceDepth {
		keep := j.traceDepth / 2
		if keep < 1 {
			keep = 1
		}
		drop := len(j.trace) - keep
		j.traceStart = j.trace[drop].Seq
		j.trace = append(j.trace[:0], j.trace[drop:]...)
	}
	j.cond.Broadcast()
}

// Algorithms re-exports the registry's algorithm name list.
func Algorithms() []string { return distcolor.Algorithms() }
