// Package service is the colord serving layer: a long-running concurrent
// coloring service over the distcolor library. It accepts Requests (the
// stable codec of the root package), schedules them on a bounded work queue
// drained by a configurable worker pool, verifies every produced coloring,
// and memoizes results in a content-addressed cache keyed by the canonical
// graph hash plus the algorithm and its parameters — so an isomorphic
// resubmission of a served workload is answered by remapping the cached
// coloring through the canonical labeling instead of re-simulating.
//
// Observability is native: each job records the per-round progress of every
// constituent distributed execution (via sim.Observed round hooks), which
// the HTTP layer exposes as a streaming NDJSON round trace, and the server
// keeps aggregate counters (cache hits, rounds, messages, wall time) behind
// a metrics endpoint. The same hook implements cancellation: a canceled
// job's observer aborts the simulation at the next round boundary.
//
// Lock ordering: s.mu may be taken while holding nothing or before j.mu;
// j.mu is never held while taking s.mu.
//
// See DESIGN.md §6 for the subsystem design and README.md for a quickstart.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	distcolor "repro"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the worker-pool size (default: NumCPU).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; Submit
	// fails with ErrQueueFull beyond it (default 256).
	QueueDepth int
	// CacheEntries bounds the result cache (LRU, default 512; negative
	// disables caching).
	CacheEntries int
	// CacheMaxVertices / CacheMaxEdges bound the graphs the cache will
	// canonicalize (defaults 1024 / 65536; negative disables the bound).
	// Canonical labeling runs synchronously in Submit and costs real CPU on
	// highly symmetric graphs (~1s for a 1024-cycle, the worst case at the
	// default bound; WL-friendly graphs are milliseconds); larger
	// submissions simply bypass the cache (counted in
	// Metrics.CacheSkipped) instead of stalling intake.
	CacheMaxVertices int
	CacheMaxEdges    int
	// MaxVertices / MaxEdges reject oversized submissions (defaults 200k /
	// 2M; negative disables the check).
	MaxVertices int
	MaxEdges    int
	// MaxBodyBytes caps how much of an HTTP request body the JSON decoder
	// will read (default 64 MiB; negative disables), so the graph limits
	// protect memory during decoding rather than after it.
	MaxBodyBytes int64
	// MaxJobs bounds retained finished jobs; the oldest finished jobs are
	// forgotten beyond it (default 4096).
	MaxJobs int
	// TraceDepth bounds the per-job round-trace history (default 4096
	// events; when exceeded, the oldest half is dropped and the gap is
	// visible to readers via the first retained seq).
	TraceDepth int
	// Parallel runs every job on the goroutine-sharded sim.RunParallel
	// engine even when the request did not ask for it. Results are
	// bit-identical either way (the engines are equivalent by
	// construction), so this is purely a wall-clock policy and does not
	// participate in cache keys.
	Parallel bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheMaxVertices == 0 {
		c.CacheMaxVertices = 1024
	}
	if c.CacheMaxEdges == 0 {
		c.CacheMaxEdges = 65536
	}
	if c.MaxVertices == 0 {
		c.MaxVertices = 200_000
	}
	if c.MaxEdges == 0 {
		c.MaxEdges = 2_000_000
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.TraceDepth <= 0 {
		c.TraceDepth = 4096
	}
	return c
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// TraceEvent is one executed simulator round of one of a job's constituent
// executions, in wire form.
type TraceEvent struct {
	// Seq numbers events within the job (monotone, including dropped ones).
	Seq int `json:"seq"`
	// Exec counts the constituent executions of the job so far; composed
	// algorithms run many executions, often on subtopologies.
	Exec int `json:"exec"`
	// Round is the 0-based round within the current execution.
	Round int `json:"round"`
	// N is the vertex count of the current execution's topology; Running is
	// how many of its machines are still running.
	N       int `json:"n"`
	Running int `json:"running"`
	// Messages is the cumulative message count of the current execution.
	Messages int64 `json:"messages"`
}

// JobStatus is the wire form of a job's externally visible state.
type JobStatus struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Algorithm string `json:"algorithm"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	CacheHit  bool   `json:"cache_hit"`
	Error     string `json:"error,omitempty"`
	// WallMS is the job's execution wall time (0 until it finished, and for
	// cache hits, which skip execution).
	WallMS int64 `json:"wall_ms"`
	// Rounds/Messages/Palette are filled once the job is done.
	Rounds   int   `json:"rounds,omitempty"`
	Messages int64 `json:"messages,omitempty"`
	Palette  int64 `json:"palette,omitempty"`
}

// Metrics is a snapshot of the server's aggregate counters.
type Metrics struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CacheBadHits counts canonical-hash collisions detected by post-remap
	// verification (served as misses).
	CacheBadHits int64 `json:"cache_bad_hits"`
	// CacheSkipped counts submissions that bypassed the cache because the
	// graph exceeded the canonicalization size bounds.
	CacheSkipped  int64 `json:"cache_skipped"`
	CacheEntries  int   `json:"cache_entries"`
	QueueDepth    int   `json:"queue_depth"`
	Running       int   `json:"running"`
	Workers       int   `json:"workers"`
	RoundsTotal   int64 `json:"rounds_total"`
	MessagesTotal int64 `json:"messages_total"`
	WallMSTotal   int64 `json:"wall_ms_total"`
	Jobs          int   `json:"jobs"`
}

// ErrQueueFull is returned by Submit when the work queue is at capacity.
var ErrQueueFull = errors.New("service: work queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: server closed")

// ErrNotFound is returned for unknown (or already-forgotten) job IDs.
var ErrNotFound = errors.New("service: no such job")

// errJobCanceled is the cancellation cause of a job's context; it surfaces
// from the simulator's ctx-abort error chain, so a canceled run is
// distinguishable from a failed one.
var errJobCanceled = errors.New("service: job canceled")

// job is the unit of scheduled work.
type job struct {
	id         string
	req        *distcolor.Request
	g          *distcolor.Graph // built once at submission, reused by the worker
	traceDepth int

	// ctx governs the job's execution; cancel (with errJobCanceled as the
	// cause) aborts a running simulation at its next round boundary. The
	// context is created at submission so Cancel works in every state
	// without racing the worker.
	ctx    context.Context
	cancel context.CancelCauseFunc

	// canon carries the submission-time canonicalization, reused to store
	// the result; nil when caching is disabled.
	canon *canonForm
	key   string

	mu         sync.Mutex
	cond       *sync.Cond    // broadcast on every state/trace change
	done       chan struct{} // closed exactly once, on the terminal transition
	state      State
	err        string
	resp       *distcolor.Response
	cacheHit   bool
	cancelReq  bool
	wallMS     int64
	trace      []TraceEvent
	traceStart int // seq of trace[0] (earlier events were dropped)
	traceSeq   int // next seq to assign
	lastExec   int
	lastN      int
	sawRound   bool
}

// finishLocked moves the job to a terminal state; j.mu must be held and the
// current state must be non-terminal.
func (j *job) finishLocked(st State, errMsg string) {
	j.state = st
	j.err = errMsg
	if j.cancel != nil {
		j.cancel(nil) // release the job context's resources
	}
	close(j.done)
	j.cond.Broadcast()
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Algorithm: j.req.Algorithm,
		N:         j.req.Graph.N,
		M:         len(j.req.Graph.Edges),
		CacheHit:  j.cacheHit,
		Error:     j.err,
		WallMS:    j.wallMS,
	}
	if j.resp != nil {
		st.Algorithm = j.resp.Algorithm
		st.Rounds = j.resp.Stats.Rounds
		st.Messages = j.resp.Stats.Messages
		st.Palette = j.resp.Palette
	}
	return st
}

// Server is the concurrent coloring service.
type Server struct {
	cfg   Config
	cache *resultCache

	mu        sync.Mutex
	queueCond *sync.Cond // signaled when queue gains work or the server closes
	closed    bool
	nextID    int64
	jobs      map[string]*job
	order     []string // submission order, for bounded retention
	queue     []*job   // FIFO of not-yet-started jobs; canceled jobs are removed in place
	wg        sync.WaitGroup
	metrics   struct {
		submitted, completed, failed, canceled, rejected int64
		cacheHits, cacheMisses, cacheBadHits             int64
		cacheSkipped                                     int64
		running                                          int
		roundsTotal, messagesTotal, wallMSTotal          int64
	}
}

// NewServer starts a server with cfg's worker pool running.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		jobs: make(map[string]*job),
	}
	s.queueCond = sync.NewCond(&s.mu)
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting submissions, lets queued and running jobs finish,
// and waits for the workers to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.queueCond.Broadcast()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Submit validates, cache-checks, and (on a miss) enqueues a request. On a
// cache hit the returned job is already done and carries the remapped,
// re-verified coloring.
func (s *Server) Submit(req *distcolor.Request) (JobStatus, error) {
	if err := req.Validate(); err != nil {
		s.countRejected()
		return JobStatus{}, err
	}
	if s.cfg.MaxVertices > 0 && req.Graph.N > s.cfg.MaxVertices {
		s.countRejected()
		return JobStatus{}, fmt.Errorf("service: graph has %d vertices, limit %d", req.Graph.N, s.cfg.MaxVertices)
	}
	if s.cfg.MaxEdges > 0 && len(req.Graph.Edges) > s.cfg.MaxEdges {
		s.countRejected()
		return JobStatus{}, fmt.Errorf("service: graph has %d edges, limit %d", len(req.Graph.Edges), s.cfg.MaxEdges)
	}
	g, err := req.Graph.Build()
	if err != nil {
		s.countRejected()
		return JobStatus{}, err
	}

	j := &job{req: req, g: g, state: StateQueued, traceDepth: s.cfg.TraceDepth, done: make(chan struct{})}
	j.cond = sync.NewCond(&j.mu)
	j.ctx, j.cancel = context.WithCancelCause(context.Background())

	var hit *distcolor.Response
	cacheable := s.cache != nil &&
		(s.cfg.CacheMaxVertices < 0 || g.N() <= s.cfg.CacheMaxVertices) &&
		(s.cfg.CacheMaxEdges < 0 || g.M() <= s.cfg.CacheMaxEdges)
	if cacheable {
		j.canon = canonicalize(g, req)
		j.key = cacheKey(j.canon, req)
		var bad bool
		hit, bad = s.cache.load(j.key, g, j.canon)
		if bad {
			s.mu.Lock()
			s.metrics.cacheBadHits++
			s.mu.Unlock()
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, ErrClosed
	}
	if hit != nil {
		// Served from cache: load re-verified the remapped coloring against
		// this submission's graph.
		j.state = StateDone
		j.resp = hit
		j.cacheHit = true
		j.cancel(nil)
		close(j.done)
		s.metrics.cacheHits++
		s.metrics.submitted++
		s.metrics.completed++
		s.register(j)
		return j.status(), nil
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.metrics.rejected++
		return JobStatus{}, ErrQueueFull
	}
	s.queue = append(s.queue, j)
	s.queueCond.Signal()
	switch {
	case cacheable:
		s.metrics.cacheMisses++
	case s.cache != nil:
		s.metrics.cacheSkipped++
	}
	s.metrics.submitted++
	s.register(j)
	return j.status(), nil
}

// register assigns an ID and stores the job; the caller holds s.mu.
func (s *Server) register(j *job) {
	s.nextID++
	j.id = "j" + strconv.FormatInt(s.nextID, 10)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	// Bounded retention: forget the oldest *finished* jobs beyond MaxJobs.
	for len(s.jobs) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			old, ok := s.jobs[id]
			if !ok {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			old.mu.Lock()
			terminal := old.state.Terminal()
			old.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything is in flight; retain over MaxJobs
		}
	}
}

func (s *Server) countRejected() {
	s.mu.Lock()
	s.metrics.rejected++
	s.mu.Unlock()
}

// Status returns a job's current status.
func (s *Server) Status(id string) (JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return JobStatus{}, err
	}
	return j.status(), nil
}

func (s *Server) job(id string) (*job, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// Result returns the response of a done job. The response is nil while the
// job has not (or not successfully) finished; the status tells why.
func (s *Server) Result(id string) (*distcolor.Response, JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, JobStatus{}, err
	}
	j.mu.Lock()
	resp := j.resp
	j.mu.Unlock()
	return resp, j.status(), nil
}

// Cancel requests cancellation: a queued job is removed from the queue
// (freeing its slot immediately) and never runs; a running job's context
// is canceled, aborting the simulation at its next round boundary.
func (s *Server) Cancel(id string) (JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return JobStatus{}, err
	}
	// Pull the job out of the queue first (s.mu before j.mu): once removed,
	// no worker can pick it up, so this caller owns the terminal transition.
	s.mu.Lock()
	removed := false
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			removed = true
			break
		}
	}
	s.mu.Unlock()
	j.mu.Lock()
	if !j.state.Terminal() {
		j.cancelReq = true
		j.cancel(errJobCanceled)
		if removed {
			j.finishLocked(StateCanceled, errJobCanceled.Error())
		}
	}
	j.mu.Unlock()
	if removed {
		s.mu.Lock()
		s.metrics.canceled++
		s.mu.Unlock()
	}
	return j.status(), nil
}

// Wait blocks until the job reaches a terminal state (or the timeout, when
// positive) and returns its then-current status.
func (s *Server) Wait(id string, timeout time.Duration) (JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return JobStatus{}, err
	}
	if timeout > 0 {
		select {
		case <-j.done:
		case <-time.After(timeout):
		}
	} else {
		<-j.done
	}
	return j.status(), nil
}

// Trace copies the job's recorded round-trace events with seq ≥ afterSeq,
// and reports the job's current state and the seq of the first retained
// event (events before it were dropped by the bounded history).
func (s *Server) Trace(id string, afterSeq int) ([]TraceEvent, State, int, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, "", 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []TraceEvent
	for _, ev := range j.trace {
		if ev.Seq >= afterSeq {
			out = append(out, ev)
		}
	}
	return out, j.state, j.traceStart, nil
}

// WaitTrace blocks until the job has trace events with seq ≥ afterSeq, is
// terminal, or ctx is done, then behaves like Trace (the caller checks
// ctx.Err() to distinguish the last case). The context lets a streaming
// reader whose client disconnected stop waiting on a slow job.
func (s *Server) WaitTrace(ctx context.Context, id string, afterSeq int) ([]TraceEvent, State, int, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, "", 0, err
	}
	// cond.Wait cannot watch a channel; poke the waiters when ctx ends.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	for !j.state.Terminal() && j.traceSeq <= afterSeq && ctx.Err() == nil {
		j.cond.Wait()
	}
	j.mu.Unlock()
	return s.Trace(id, afterSeq)
}

// Metrics snapshots the aggregate counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Submitted:     s.metrics.submitted,
		Completed:     s.metrics.completed,
		Failed:        s.metrics.failed,
		Canceled:      s.metrics.canceled,
		Rejected:      s.metrics.rejected,
		CacheHits:     s.metrics.cacheHits,
		CacheMisses:   s.metrics.cacheMisses,
		CacheBadHits:  s.metrics.cacheBadHits,
		CacheSkipped:  s.metrics.cacheSkipped,
		QueueDepth:    len(s.queue),
		Running:       s.metrics.running,
		Workers:       s.cfg.Workers,
		RoundsTotal:   s.metrics.roundsTotal,
		MessagesTotal: s.metrics.messagesTotal,
		WallMSTotal:   s.metrics.wallMSTotal,
		Jobs:          len(s.jobs),
	}
	if s.cache != nil {
		m.CacheEntries = s.cache.len()
	}
	return m
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.queueCond.Wait()
		}
		if len(s.queue) == 0 { // closed and drained
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cond.Broadcast()
	j.mu.Unlock()

	s.mu.Lock()
	s.metrics.running++
	s.mu.Unlock()

	req := j.req
	if s.cfg.Parallel && !req.Parallel {
		cp := *req
		cp.Parallel = true
		req = &cp
	}
	start := time.Now()
	resp, err := distcolor.ExecuteOn(j.ctx, req, j.g, distcolor.Options{Observer: j.observe})
	wall := time.Since(start).Milliseconds()

	// Store into the cache before the job turns terminal: a waiter that
	// resubmits the identical workload the instant Wait returns must hit.
	if err == nil && s.cache != nil && j.canon != nil {
		s.cache.store(j.key, j.canon, resp)
	}

	j.mu.Lock()
	j.wallMS = wall
	// A canceled job's error chain carries the context cancellation (the
	// simulator wraps context.Cause, i.e. errJobCanceled).
	canceled := err != nil && (errors.Is(err, errJobCanceled) || errors.Is(err, context.Canceled) || j.cancelReq)
	switch {
	case canceled:
		j.finishLocked(StateCanceled, errJobCanceled.Error())
	case err != nil:
		j.finishLocked(StateFailed, err.Error())
	default:
		j.resp = resp
		j.finishLocked(StateDone, "")
	}
	j.mu.Unlock()

	s.mu.Lock()
	s.metrics.running--
	switch {
	case canceled:
		s.metrics.canceled++
	case err != nil:
		s.metrics.failed++
	default:
		s.metrics.completed++
		s.metrics.roundsTotal += int64(resp.Stats.Rounds)
		s.metrics.messagesTotal += resp.Stats.Messages
		s.metrics.wallMSTotal += wall
	}
	s.mu.Unlock()
}

// observe is the job's sim round hook: it records the bounded trace
// history (cancellation is ctx-native now and no longer flows through the
// observer). A new execution is detected by its round counter restarting
// at 0.
func (j *job) observe(ev distcolor.RoundEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ev.Round == 0 || !j.sawRound || ev.N != j.lastN {
		j.lastExec++
	}
	j.sawRound = true
	j.lastN = ev.N
	j.trace = append(j.trace, TraceEvent{
		Seq:      j.traceSeq,
		Exec:     j.lastExec,
		Round:    ev.Round,
		N:        ev.N,
		Running:  ev.Running,
		Messages: ev.Stats.Messages,
	})
	j.traceSeq++
	// Bounded history: drop the oldest half when over depth, so streaming
	// readers that fell behind see a gap, not unbounded memory.
	if len(j.trace) > j.traceDepth {
		keep := j.traceDepth / 2
		if keep < 1 {
			keep = 1
		}
		drop := len(j.trace) - keep
		j.traceStart = j.trace[drop].Seq
		j.trace = append(j.trace[:0], j.trace[drop:]...)
	}
	j.cond.Broadcast()
}

// Algorithms re-exports the registry's algorithm name list.
func Algorithms() []string { return distcolor.Algorithms() }
