package service

// Feature tests for the hardened failure domains: panic quarantine, per-job
// execution deadlines, poison quarantine on recovery, degraded mode, and the
// ctx-first Wait. Each scenario is driven by the deterministic fault layer
// (internal/fault) rather than by timing races, and each pins the admission
// ledger: every new terminal path must return its queue slot and byte charge.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	distcolor "repro"
	"repro/internal/fault"
)

// TestPanicQuarantineKeepsDaemonAlive is the acceptance test for panic
// containment: the first job's execution panics (injected), the job fails
// with the typed error, and the SAME single worker then runs the next job to
// completion — before the quarantine existed, the panic killed the process.
func TestPanicQuarantineKeepsDaemonAlive(t *testing.T) {
	pts := fault.New(1, fault.Plan{Site: "worker.execute", Action: fault.ActionPanic, On: []int64{1}})
	s := testServer(t, Config{Workers: 1, CacheEntries: -1, Faults: pts})

	st, err := s.Submit(cycleRequest(12))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := s.WaitTimeout(st.ID, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed || !strings.Contains(fin.Error, "panicked") {
		t.Fatalf("panicking job finished %s (%q), want failed with a typed panic error", fin.State, fin.Error)
	}
	if resp, _, _ := s.Result(st.ID); resp != nil {
		t.Fatal("panicked job served a result")
	}

	// The worker that recovered the panic must still be serving.
	waitDone(t, s, mustSubmit(t, s, cycleRequest(14)))

	m := s.Metrics()
	if m.Panicked != 1 || m.Failed != 1 {
		t.Fatalf("panicked=%d failed=%d, want 1/1", m.Panicked, m.Failed)
	}
	waitInflightZero(t, s)
}

// waitInflightZero polls the admission ledger to zero: a job's byte charge
// is returned shortly AFTER its done channel closes (the terminal journal
// fsync sits between), so an instantaneous read after Wait races the release.
// What this asserts is that the charge is returned at all, on every terminal
// path.
func waitInflightZero(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := s.Metrics()
		if m.InflightBytes == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission ledger stuck at %d in-flight bytes with every job terminal", m.InflightBytes)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustSubmit(t *testing.T, s *Server, req *distcolor.Request) string {
	t.Helper()
	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// TestJobDeadlineFromRequest: deadline_ms on the request bounds the
// execution; an injected slow run lands in the distinct deadline_exceeded
// state, not failed.
func TestJobDeadlineFromRequest(t *testing.T) {
	pts := fault.New(1, fault.Plan{Site: "worker.execute", Action: fault.ActionSleep, Delay: 200 * time.Millisecond, On: []int64{1}})
	s := testServer(t, Config{Workers: 1, CacheEntries: -1, Faults: pts})

	req := cycleRequest(12)
	req.DeadlineMS = 5
	fin, err := s.WaitTimeout(mustSubmit(t, s, req), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDeadline || fin.Error == "" {
		t.Fatalf("over-deadline job finished %s (%q), want %s", fin.State, fin.Error, StateDeadline)
	}
	m := s.Metrics()
	if m.DeadlineExceeded != 1 || m.Failed != 0 {
		t.Fatalf("deadline_exceeded=%d failed=%d, want 1/0 (deadline is its own terminal)", m.DeadlineExceeded, m.Failed)
	}
	waitInflightZero(t, s)
}

// TestJobTimeoutServerDefault: -job-timeout bounds every job, and a
// request's deadline_ms can only tighten it, never loosen it.
func TestJobTimeoutServerDefault(t *testing.T) {
	pts := fault.New(1, fault.Plan{Site: "worker.execute", Action: fault.ActionSleep, Delay: 200 * time.Millisecond, On: []int64{1, 2}})
	s := testServer(t, Config{Workers: 1, CacheEntries: -1, JobTimeout: 5 * time.Millisecond, Faults: pts})

	fin, err := s.WaitTimeout(mustSubmit(t, s, cycleRequest(12)), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDeadline {
		t.Fatalf("job under -job-timeout finished %s, want %s", fin.State, StateDeadline)
	}
	// A generous request deadline must not loosen the server bound.
	loose := cycleRequest(14)
	loose.DeadlineMS = 60_000
	fin2, err := s.WaitTimeout(mustSubmit(t, s, loose), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if fin2.State != StateDeadline {
		t.Fatalf("deadline_ms=60000 loosened a 5ms -job-timeout: finished %s", fin2.State)
	}
}

// TestAdmitInjection: a scheduled fault at the admission hook rejects the
// submission without leaking any admission state.
func TestAdmitInjection(t *testing.T) {
	pts := fault.New(1, fault.Plan{Site: "service.admit", Action: fault.ActionErr, On: []int64{1}})
	s := testServer(t, Config{Workers: 1, CacheEntries: -1, Faults: pts})

	if _, err := s.Submit(cycleRequest(12)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected admission fault surfaced as %v", err)
	}
	waitDone(t, s, mustSubmit(t, s, cycleRequest(12)))
	m := s.Metrics()
	if m.Rejected != 1 {
		t.Fatalf("rejected=%d, want 1", m.Rejected)
	}
	waitInflightZero(t, s)
}

// TestPoisonQuarantineOnRecovery: a job whose journal shows poisonAttempts
// execution starts without a terminal state has crashed (or wedged) that
// many processes; replaying it again would crash-loop the daemon, so
// recovery turns it terminal-failed. One journaled attempt is normal
// at-least-once recovery and re-runs.
func TestPoisonQuarantineOnRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _ := openForTest(t, dir, 0)
	for _, rec := range []distcolor.JobRecord{
		{ID: "j1", State: "queued", Request: cycleRequest(8)},
		{ID: "j1", State: "running", Attempts: poisonAttempts},
		{ID: "j2", State: "queued", Request: cycleRequest(10)},
		{ID: "j2", State: "running", Attempts: 1},
	} {
		if err := st.Append(rec, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	s := testServer(t, Config{Workers: 1, CacheEntries: -1, DataDir: dir})
	p, err := s.Status("j1")
	if err != nil {
		t.Fatal(err)
	}
	if p.State != StateFailed || !strings.Contains(p.Error, "poisoned") {
		t.Fatalf("twice-started job recovered as %s (%q), want quarantined failed", p.State, p.Error)
	}
	fin, err := s.WaitTimeout("j2", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("once-started job recovered to %s (%s), want re-run to done", fin.State, fin.Error)
	}
	if m := s.Metrics(); m.Recovered != 2 {
		t.Fatalf("recovered=%d, want 2", m.Recovered)
	}
	s.Close()

	// The quarantine is itself journaled: a second restart must not give the
	// poisoned job another run.
	s2 := testServer(t, Config{Workers: 1, CacheEntries: -1, DataDir: dir})
	p2, err := s2.Status("j1")
	if err != nil {
		t.Fatal(err)
	}
	if p2.State != StateFailed || !strings.Contains(p2.Error, "poisoned") {
		t.Fatalf("poisoned terminal did not survive restart: %s (%q)", p2.State, p2.Error)
	}
}

// TestDegradedModeShedsAndHeals drives the full degraded lifecycle: a
// persistently failing journal flips the server read-only (Submit sheds
// misses with the typed 503, cache hits still serve memory-only, healthz and
// the gauge report the reason), and a healed disk exits degraded through the
// write probe without a restart.
func TestDegradedModeShedsAndHeals(t *testing.T) {
	inj := fault.NewInject(nil)
	s := testServer(t, Config{Workers: 1, DataDir: t.TempDir(), FS: inj, DegradedProbe: time.Millisecond})

	// Seed the cache with a completed workload while the journal is healthy.
	waitDone(t, s, mustSubmit(t, s, cycleRequest(16)))

	// The disk dies: every fsync fails from here on.
	inj.AddRule(fault.Rule{Op: fault.OpSync, Times: -1})
	if _, err := s.Submit(cycleRequest(18)); err == nil {
		t.Fatal("submission journaled through a dead disk")
	}
	var de *DegradedError
	_, err := s.Submit(cycleRequest(20))
	if !errors.Is(err, ErrDegraded) || !errors.As(err, &de) || de.RetryAfter <= 0 {
		t.Fatalf("degraded shed surfaced as %v, want *DegradedError with a retry hint", err)
	}
	h := s.Health()
	if !h.Degraded || h.Ready || h.DegradedReason == "" {
		t.Fatalf("healthz while degraded: %+v", h)
	}
	if m := s.Metrics(); m.Degraded != 1 {
		t.Fatalf("degraded gauge = %d, want 1", m.Degraded)
	}
	// Cache hits keep serving (memory-only — the one documented durability
	// gap, DESIGN.md §12).
	hit, err := s.Submit(cycleRequest(16))
	if err != nil || !hit.CacheHit || hit.State != StateDone {
		t.Fatalf("cache hit while degraded: %+v, %v", hit, err)
	}

	// The disk heals: the next probe (at most DegradedProbe after the last)
	// exits degraded and submissions flow again.
	inj.ClearRules()
	healed := false
	for i := 0; i < 500 && !healed; i++ {
		time.Sleep(2 * time.Millisecond)
		st, err := s.Submit(cycleRequest(22))
		if err == nil {
			if fin, werr := s.WaitTimeout(st.ID, time.Minute); werr != nil || fin.State != StateDone {
				t.Fatalf("post-heal job: %+v, %v", fin, werr)
			}
			healed = true
		} else if !errors.Is(err, ErrDegraded) {
			t.Fatalf("unexpected submit error while healing: %v", err)
		}
	}
	if !healed {
		t.Fatal("server never exited degraded mode after the journal healed")
	}
	h2 := s.Health()
	if h2.Degraded || !h2.Ready {
		t.Fatalf("healthz after healing: %+v", h2)
	}
	m := s.Metrics()
	if m.Degraded != 0 {
		t.Fatalf("degraded gauge = %d after healing, want 0", m.Degraded)
	}
	waitInflightZero(t, s)
}

// TestWaitContext: Wait is ctx-first and non-leaking — a canceled context
// returns the job's current (possibly non-terminal) status instead of
// blocking, and the deprecated WaitTimeout wrapper still bounds the wait.
func TestWaitContext(t *testing.T) {
	s := testServer(t, Config{CacheEntries: -1, Frozen: true}) // no workers: jobs queue forever
	id := mustSubmit(t, s, cycleRequest(12))

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("frozen job reported terminal %s", st.State)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait ignored its context")
	}
	if _, err := s.Wait(context.Background(), "j999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Wait on unknown ID: %v", err)
	}
	if st, err := s.WaitTimeout(id, 10*time.Millisecond); err != nil || st.State.Terminal() {
		t.Fatalf("WaitTimeout wrapper: %+v, %v", st, err)
	}
}

// TestAdmissionReleasedOnNewTerminals pins the admission ledger across the
// terminal paths this package grew: panic, deadline, and an injected
// execution error must each return the job's queue slot and byte charge, and
// the server must remain ready.
func TestAdmissionReleasedOnNewTerminals(t *testing.T) {
	pts := fault.New(1,
		fault.Plan{Site: "worker.execute", Action: fault.ActionPanic, On: []int64{1}},
		fault.Plan{Site: "worker.execute", Action: fault.ActionSleep, Delay: 100 * time.Millisecond, On: []int64{2}},
		fault.Plan{Site: "worker.execute", Action: fault.ActionErr, On: []int64{3}},
	)
	s := testServer(t, Config{Workers: 1, QueueDepth: 8, CacheEntries: -1, Faults: pts})

	deadline := cycleRequest(14)
	deadline.DeadlineMS = 5
	ids := []string{
		mustSubmit(t, s, cycleRequest(12)), // hit 1: panics
		mustSubmit(t, s, deadline),         // hit 2: sleeps past its deadline
		mustSubmit(t, s, cycleRequest(16)), // hit 3: injected execution error
	}
	wantStates := []State{StateFailed, StateDeadline, StateFailed}
	for i, id := range ids {
		fin, err := s.WaitTimeout(id, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != wantStates[i] {
			t.Fatalf("job %s finished %s, want %s", id, fin.State, wantStates[i])
		}
	}
	waitInflightZero(t, s)
	m := s.Metrics()
	if m.QueueDepth != 0 {
		t.Fatalf("queue still holds %d entries", m.QueueDepth)
	}
	if h := s.Health(); !h.Ready {
		t.Fatalf("server not ready after fault terminals: %+v", h)
	}
	// The freed capacity is actually reusable.
	waitDone(t, s, mustSubmit(t, s, cycleRequest(18)))
}
