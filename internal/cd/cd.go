// Package cd implements CD-Coloring (Algorithm 1 of the paper): vertex
// coloring of bounded-diversity graphs by recursive clique decomposition.
//
// At each of x levels the graph's identified cliques are split into groups
// of t by a clique connector; the connector — whose maximum degree is only
// D(t−1) (Lemma 2.1) — is colored with γ = D(t−1)+1 colors by the black-box
// engine, and each color class induces a subgraph whose cliques have shrunk
// by a factor t (Lemma 2.2/2.3). Recursing x times and coloring the final
// classes directly yields a proper coloring with at most D^{x+1}·S colors
// (Theorems 2.5–2.7, 3.2, 3.3(i)) in time driven by √(D·t)-degree
// subproblems rather than Δ.
//
// The §3 refinements are implemented: the parameter choice t = ⌊S^{1/(x+1)}⌋
// (ChooseT) and the identifier-reuse trick — one proper seed coloring
// computed once up front serves as the identifier space of every recursive
// call, so the log* n cost is paid a single time.
package cd

import (
	"context"
	"fmt"

	"repro/internal/cliques"
	"repro/internal/connector"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/reduce"
	"repro/internal/sim"
	"repro/internal/util"
	"repro/internal/vc"
)

// Options configures a CD-Coloring run.
type Options struct {
	// Exec selects the simulator engine.
	Exec sim.Exec
	// VC configures the coloring black box.
	VC vc.Options
	// Seed, when non-nil, is a proper coloring of the input graph with
	// palette SeedPalette, used as the identifier space everywhere (§3).
	// When nil, Color computes one with Linial's algorithm and charges its
	// cost to the run.
	Seed        []int64
	SeedPalette int64
	// SkipTrim disables the final palette trim to D^{x+1}S (ablation A.t).
	SkipTrim bool
}

// Result is a CD coloring with its cost breakdown.
type Result struct {
	Colors []int64
	// Palette is the guaranteed palette after trimming.
	Palette int64
	// Declared is the composed pre-trim palette γ^x · (D(k−1)+1).
	Declared int64
	// Bound is the paper's D^{x+1}·S target.
	Bound int64
	Stats sim.Stats
}

// ChooseT returns the §3 parameter choice t = ⌊S^{1/(x+1)}⌋, clamped to at
// least 2 (connectors need groups of at least two vertices).
func ChooseT(s, x int) int {
	if s < 2 {
		return 2
	}
	return util.Max(2, util.IRoot(s, x+1))
}

// DeclaredPalette composes the palette produced by x recursion levels with
// parameter t on a cover of diversity d and clique size s:
//
//	P(s, 0) = d(s−1)+1          (direct stage)
//	P(s, x) = (d(t−1)+1)·P(⌈s/t⌉, x−1)
func DeclaredPalette(d, s, t, x int) int64 {
	if x == 0 {
		return int64(d*(s-1) + 1)
	}
	gamma := int64(d*(t-1) + 1)
	return gamma * DeclaredPalette(d, util.CeilDiv(s, t), t, x-1)
}

// Color runs CD-Coloring on g with the given clique cover, connector
// parameter t ≥ 2 and recursion depth x ≥ 0. The bound D^{x+1}·S uses the
// cover's diversity D and maximal clique size S.
func Color(ctx context.Context, g *graph.Graph, cover *cliques.Cover, t, x int, opt Options) (*Result, error) {
	if t < 2 {
		return nil, fmt.Errorf("cd: parameter t=%d < 2", t)
	}
	if x < 0 {
		return nil, fmt.Errorf("cd: recursion depth x=%d < 0", x)
	}
	d := cover.Diversity()
	s := cover.MaxCliqueSize()
	if d == 0 || s < 2 {
		// No edges are covered, so the graph has no edges at all.
		if g.M() > 0 {
			return nil, fmt.Errorf("cd: cover has no cliques but graph has %d edges", g.M())
		}
		return &Result{Colors: make([]int64, g.N()), Palette: 1, Declared: 1, Bound: 1}, nil
	}

	var stats sim.Stats
	seed, seedPalette := opt.Seed, opt.SeedPalette
	if seed == nil {
		lin, err := linial.Reduce(ctx, opt.Exec, sim.NewTopology(g), int64(g.N()))
		if err != nil {
			return nil, fmt.Errorf("cd: initial seed coloring: %w", err)
		}
		seed, seedPalette = lin.Colors, lin.Palette
		stats = stats.Seq(lin.Stats)
	} else if len(seed) != g.N() {
		return nil, fmt.Errorf("cd: seed has %d entries for %d vertices", len(seed), g.N())
	}

	ids := make([]int64, g.N())
	for v := range ids {
		ids[v] = int64(v)
	}
	colors, recStats, err := colorRec(ctx, g, ids, seed, seedPalette, cover, d, s, t, x, opt)
	if err != nil {
		return nil, err
	}
	stats = stats.Seq(recStats)

	declared := DeclaredPalette(d, s, t, x)
	bound := int64(s)
	for i := 0; i <= x; i++ {
		bound *= int64(d)
	}
	palette := declared
	if !opt.SkipTrim && declared > bound {
		topo := &sim.Topology{G: g, IDs: ids, Labels: colors}
		red, err := reduce.TrimClasses(ctx, opt.Exec, topo, declared, bound)
		if err != nil {
			return nil, fmt.Errorf("cd: final trim: %w", err)
		}
		colors = red.Colors
		palette = bound
		stats = stats.Seq(red.Stats)
	}
	return &Result{Colors: colors, Palette: palette, Declared: declared, Bound: bound, Stats: stats}, nil
}

// colorRec is one level of Algorithm 1 on the current subgraph. ids and
// seed are indexed by the subgraph's vertices; s is the declared clique-size
// bound at this level (actual sizes are no larger).
func colorRec(ctx context.Context, g *graph.Graph, ids, seed []int64, seedPalette int64, cover *cliques.Cover, d, s, t, x int, opt Options) ([]int64, sim.Stats, error) {
	if g.M() == 0 {
		// Every color is legal; take 0 and pay nothing (the palette the
		// parent reserves for this class is unaffected).
		return make([]int64, g.N()), sim.Stats{}, nil
	}
	topo := &sim.Topology{G: g, IDs: ids, Labels: seed}
	if x == 0 {
		// Direct stage (Algorithm 1, lines 9–13): palette d(s−1)+1 ≥ Δ+1.
		target := int64(d*(s-1) + 1)
		if min := int64(g.MaxDegree()) + 1; target < min {
			// Cannot happen when the cover bound s is valid; guard anyway.
			return nil, sim.Stats{}, fmt.Errorf("cd: direct palette %d below Δ+1=%d (invalid clique bound)", target, min)
		}
		res, err := vc.Target(ctx, topo, seedPalette, target, opt.VC)
		if err != nil {
			return nil, sim.Stats{}, fmt.Errorf("cd: direct stage: %w", err)
		}
		return res.Colors, res.Stats, nil
	}

	// Connector stage (lines 1–3).
	cc, err := connector.Clique(g, cover, t)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	stats := cc.Stats
	gamma := int64(d*(t-1) + 1)
	connTopo := &sim.Topology{G: cc.Sub.G, IDs: ids, Labels: seed}
	phi, err := vc.Target(ctx, connTopo, seedPalette, gamma, opt.VC)
	if err != nil {
		return nil, sim.Stats{}, fmt.Errorf("cd: connector coloring: %w", err)
	}
	stats = stats.Seq(phi.Stats)

	// Class stage (lines 5–8): recurse on induced color classes in parallel.
	k := util.CeilDiv(s, t)
	subPalette := DeclaredPalette(d, k, t, x-1)
	classes := make([][]int, gamma)
	for v := 0; v < g.N(); v++ {
		c := phi.Colors[v]
		classes[c] = append(classes[c], v)
	}
	colors := make([]int64, g.N())
	var classStats []sim.Stats
	for _, members := range classes {
		if len(members) == 0 {
			continue
		}
		sub, err := graph.InducedSubgraph(g, members)
		if err != nil {
			return nil, sim.Stats{}, err
		}
		subIDs := make([]int64, len(members))
		subSeed := make([]int64, len(members))
		for w := range members {
			subIDs[w] = ids[sub.OrigVertex(w)]
			subSeed[w] = seed[sub.OrigVertex(w)]
		}
		subCover := cover.Restrict(sub)
		psi, st, err := colorRec(ctx, sub.G, subIDs, subSeed, seedPalette, subCover, d, k, t, x-1, opt)
		if err != nil {
			return nil, sim.Stats{}, err
		}
		classStats = append(classStats, st)
		for w, v := range members {
			colors[v] = phi.Colors[v]*subPalette + psi[w]
		}
	}
	return colors, stats.Seq(sim.ParAll(classStats)), nil
}
