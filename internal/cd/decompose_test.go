package cd

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/cliques"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/util"
	"repro/internal/verify"
)

func TestDecomposeTheorem24(t *testing.T) {
	g, cov := lineInstance(t, 5, 35, 0.3)
	d, s := cov.Diversity(), cov.MaxCliqueSize()
	for x := 1; x <= 3; x++ {
		dec, err := Decompose(context.Background(), g, cov, 2, x, Options{})
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if err := VerifyDecomposition(cov, dec); err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		// Theorem 2.4 parts bound: (t·D)^x.
		partsBound := int64(1)
		for i := 0; i < x; i++ {
			partsBound *= int64(2 * d)
		}
		if dec.Parts > partsBound {
			t.Fatalf("x=%d: %d parts exceed (tD)^x = %d", x, dec.Parts, partsBound)
		}
		// Theorem 2.4 clique bound: S/tˣ + 2 (our ceil-chain is within it).
		wantQ := s
		den := 1
		for i := 0; i < x; i++ {
			den *= 2
		}
		if dec.CliqueBound > wantQ/den+2 {
			t.Fatalf("x=%d: clique bound %d exceeds S/tˣ+2 = %d", x, dec.CliqueBound, wantQ/den+2)
		}
	}
}

func TestDecomposeLemma22ClassDegree(t *testing.T) {
	// Lemma 2.2: after one level, every color class induces a subgraph of
	// maximum degree ≤ (k−1)·D with k = ⌈S/t⌉.
	g, cov := lineInstance(t, 9, 40, 0.25)
	d, s := cov.Diversity(), cov.MaxCliqueSize()
	tt := 3
	dec, err := Decompose(context.Background(), g, cov, tt, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := util.CeilDiv(s, tt)
	byClass := make(map[int64][]int)
	for v, c := range dec.Class {
		byClass[c] = append(byClass[c], v)
	}
	for c, members := range byClass {
		sub, err := graph.InducedSubgraph(g, members)
		if err != nil {
			t.Fatal(err)
		}
		if sub.G.MaxDegree() > (k-1)*d {
			t.Fatalf("class %d degree %d exceeds (k−1)D = %d", c, sub.G.MaxDegree(), (k-1)*d)
		}
		// Lemma 2.3(ii): restricted cover diversity does not grow.
		rc := cov.Restrict(sub)
		if rc.Diversity() > d {
			t.Fatalf("class %d diversity %d exceeds D=%d", c, rc.Diversity(), d)
		}
		if err := rc.Validate(sub.G); err != nil {
			t.Fatalf("class %d cover invalid: %v", c, err)
		}
		// Lemma 2.3(i)/restriction: clique sizes shrink to ≤ k.
		if rc.MaxCliqueSize() > k {
			t.Fatalf("class %d clique size %d exceeds k=%d", c, rc.MaxCliqueSize(), k)
		}
	}
}

func TestDecomposeValidation(t *testing.T) {
	g, cov := lineInstance(t, 5, 20, 0.3)
	if _, err := Decompose(context.Background(), g, cov, 1, 1, Options{}); err == nil {
		t.Fatal("expected t error")
	}
	if _, err := Decompose(context.Background(), g, cov, 2, 0, Options{}); err == nil {
		t.Fatal("expected x error")
	}
}

func TestDecomposeEdgeless(t *testing.T) {
	g := graph.NewBuilder(4).MustBuild()
	cov, err := cliques.NewCover(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompose(context.Background(), g, cov, 2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parts != 1 {
		t.Fatalf("edgeless decomposition parts %d", dec.Parts)
	}
}

func TestDecomposeQuick(t *testing.T) {
	f := func(seed int64) bool {
		base := gen.GNP(16, 0.35, seed)
		lg := graph.LineGraph(base)
		cov, err := cliques.FromLineGraph(lg)
		if err != nil || cov.MaxCliqueSize() < 2 {
			return err == nil
		}
		dec, err := Decompose(context.Background(), lg.L, cov, 2, 2, Options{})
		if err != nil {
			return false
		}
		return VerifyDecomposition(cov, dec) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeConsistentWithColoring(t *testing.T) {
	// Coloring each decomposition class with D(q−1)+1 colors (q = clique
	// bound) and combining must reproduce CD-Coloring's palette structure:
	// verify the decomposition supports a proper coloring with
	// parts · (D(q−1)+1) colors by running the greedy within classes.
	g, cov := lineInstance(t, 17, 30, 0.3)
	d := cov.Diversity()
	dec, err := Decompose(context.Background(), g, cov, 2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perClass := int64(d*(dec.CliqueBound-1) + 1)
	colors := make([]int64, g.N())
	byClass := make(map[int64][]int)
	for v, c := range dec.Class {
		byClass[c] = append(byClass[c], v)
	}
	for c, members := range byClass {
		sub, err := graph.InducedSubgraph(g, members)
		if err != nil {
			t.Fatal(err)
		}
		if sub.G.MaxDegree() >= int(perClass) {
			t.Fatalf("class %d degree %d not colorable with %d colors", c, sub.G.MaxDegree(), perClass)
		}
		// Greedy within the class (centralized; this is a structural test).
		local := make([]int64, sub.G.N())
		for i := range local {
			local[i] = -1
		}
		for w := 0; w < sub.G.N(); w++ {
			used := map[int64]bool{}
			for _, a := range sub.G.Adj(w) {
				if local[a.To] >= 0 {
					used[local[a.To]] = true
				}
			}
			var pick int64
			for used[pick] {
				pick++
			}
			local[w] = pick
		}
		for w, v := range members {
			colors[v] = c*perClass + local[w]
		}
	}
	if err := verify.VertexColoring(g, colors, dec.Parts*perClass); err != nil {
		t.Fatal(err)
	}
}
