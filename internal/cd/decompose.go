package cd

import (
	"context"
	"fmt"

	"repro/internal/cliques"
	"repro/internal/connector"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/sim"
	"repro/internal/util"
	"repro/internal/vc"
)

// Decomposition is a (p, q)-clique-decomposition per §2: a partition of the
// vertex set into Parts classes such that every clique of the cover,
// restricted to one class, has at most CliqueBound vertices.
type Decomposition struct {
	// Class assigns each vertex its class index in [0, Parts).
	Class []int64
	// Parts is p ≤ (t·D)^x.
	Parts int64
	// CliqueBound is the guaranteed q ≤ S/tˣ + 2 (Theorem 2.4).
	CliqueBound int
	Stats       sim.Stats
}

// Decompose computes the ((t·D)^x, S/tˣ+2)-clique-decomposition of
// Theorem 2.4 by running x levels of clique connectors (the first x levels
// of Algorithm 1, without the final coloring stage).
func Decompose(ctx context.Context, g *graph.Graph, cover *cliques.Cover, t, x int, opt Options) (*Decomposition, error) {
	if t < 2 {
		return nil, fmt.Errorf("cd: parameter t=%d < 2", t)
	}
	if x < 1 {
		return nil, fmt.Errorf("cd: depth x=%d < 1", x)
	}
	d := cover.Diversity()
	s := cover.MaxCliqueSize()
	if d == 0 || s < 2 {
		if g.M() > 0 {
			return nil, fmt.Errorf("cd: cover has no cliques but graph has %d edges", g.M())
		}
		return &Decomposition{Class: make([]int64, g.N()), Parts: 1, CliqueBound: 1}, nil
	}
	var stats sim.Stats
	seed, seedPalette := opt.Seed, opt.SeedPalette
	if seed == nil {
		lin, err := linial.Reduce(ctx, opt.Exec, sim.NewTopology(g), int64(g.N()))
		if err != nil {
			return nil, fmt.Errorf("cd: decompose seed: %w", err)
		}
		seed, seedPalette = lin.Colors, lin.Palette
		stats = stats.Seq(lin.Stats)
	}
	ids := make([]int64, g.N())
	for v := range ids {
		ids[v] = int64(v)
	}
	class, parts, recStats, err := decomposeRec(ctx, g, ids, seed, seedPalette, cover, d, s, t, x, opt)
	if err != nil {
		return nil, err
	}
	// Theorem 2.4's clique bound: the declared shrinkage chain.
	bound := s
	for i := 0; i < x; i++ {
		bound = util.CeilDiv(bound, t)
	}
	return &Decomposition{
		Class:       class,
		Parts:       parts,
		CliqueBound: bound,
		Stats:       stats.Seq(recStats),
	}, nil
}

// decomposeRec returns per-vertex class indices in [0, parts).
func decomposeRec(ctx context.Context, g *graph.Graph, ids, seed []int64, seedPalette int64, cover *cliques.Cover, d, s, t, x int, opt Options) ([]int64, int64, sim.Stats, error) {
	gamma := int64(d*(t-1) + 1)
	if g.M() == 0 {
		// All classes collapse to 0; parts bookkeeping still multiplies so
		// sibling subgraphs agree on the class space.
		parts := int64(1)
		for i := 0; i < x; i++ {
			parts *= gamma
		}
		return make([]int64, g.N()), parts, sim.Stats{}, nil
	}
	cc, err := connector.Clique(g, cover, t)
	if err != nil {
		return nil, 0, sim.Stats{}, err
	}
	stats := cc.Stats
	connTopo := &sim.Topology{G: cc.Sub.G, IDs: ids, Labels: seed}
	phi, err := vc.Target(ctx, connTopo, seedPalette, gamma, opt.VC)
	if err != nil {
		return nil, 0, sim.Stats{}, fmt.Errorf("cd: decompose connector: %w", err)
	}
	stats = stats.Seq(phi.Stats)
	if x == 1 {
		return phi.Colors, gamma, stats, nil
	}

	k := util.CeilDiv(s, t)
	classes := make([][]int, gamma)
	for v := 0; v < g.N(); v++ {
		classes[phi.Colors[v]] = append(classes[phi.Colors[v]], v)
	}
	out := make([]int64, g.N())
	var subParts int64
	var classStats []sim.Stats
	for _, members := range classes {
		if len(members) == 0 {
			continue
		}
		sub, err := graph.InducedSubgraph(g, members)
		if err != nil {
			return nil, 0, sim.Stats{}, err
		}
		subIDs := make([]int64, len(members))
		subSeed := make([]int64, len(members))
		for w := range members {
			subIDs[w] = ids[sub.OrigVertex(w)]
			subSeed[w] = seed[sub.OrigVertex(w)]
		}
		subClass, sp, st, err := decomposeRec(ctx, sub.G, subIDs, subSeed, seedPalette, cover.Restrict(sub), d, k, t, x-1, opt)
		if err != nil {
			return nil, 0, sim.Stats{}, err
		}
		subParts = sp
		classStats = append(classStats, st)
		for w, v := range members {
			out[v] = phi.Colors[v]*sp + subClass[w]
		}
	}
	return out, gamma * subParts, stats.Seq(sim.ParAll(classStats)), nil
}

// VerifyDecomposition checks the defining property against the cover: each
// cover clique restricted to any one class has at most bound vertices.
func VerifyDecomposition(cover *cliques.Cover, dec *Decomposition) error {
	for qi, cl := range cover.Cliques {
		// Check the bound at increment time rather than ranging over the
		// count map afterwards: the first violation in clique order is
		// reported, independent of map iteration order.
		counts := make(map[int64]int)
		for _, v := range cl {
			class := dec.Class[v]
			counts[class]++
			if cnt := counts[class]; cnt > dec.CliqueBound {
				return fmt.Errorf("cd: clique %d has %d vertices in class %d, bound %d", qi, cnt, class, dec.CliqueBound)
			}
		}
	}
	for _, c := range dec.Class {
		if c < 0 || c >= dec.Parts {
			return fmt.Errorf("cd: class %d outside [0,%d)", c, dec.Parts)
		}
	}
	return nil
}
