package cd

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/cliques"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/util"
	"repro/internal/verify"
)

// lineInstance builds the canonical diversity-2 instance: a line graph of a
// random graph with its star cover.
func lineInstance(t *testing.T, seed int64, n int, p float64) (*graph.Graph, *cliques.Cover) {
	t.Helper()
	g := gen.GNP(n, p, seed)
	lg := graph.LineGraph(g)
	cov, err := cliques.FromLineGraph(lg)
	if err != nil {
		t.Fatal(err)
	}
	return lg.L, cov
}

// hyperInstance builds a diversity-c instance from a c-uniform hypergraph.
func hyperInstance(t *testing.T, seed int64, nv, rank, ne int) (*graph.Graph, *cliques.Cover) {
	t.Helper()
	h, err := gen.UniformHypergraph(nv, rank, ne, seed)
	if err != nil {
		t.Fatal(err)
	}
	lg := h.LineGraph()
	var lists [][]int32
	for _, cl := range lg.Cliques {
		if len(cl) >= 2 {
			lists = append(lists, cl)
		}
	}
	cov, err := cliques.NewCover(lg.L, lists)
	if err != nil {
		t.Fatal(err)
	}
	return lg.L, cov
}

func TestColorLineGraphX1(t *testing.T) {
	g, cov := lineInstance(t, 3, 30, 0.25)
	d, s := cov.Diversity(), cov.MaxCliqueSize()
	res, err := Color(context.Background(), g, cov, ChooseT(s, 1), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	// Theorem 3.2: palette ≤ D²·S.
	bound := int64(d) * int64(d) * int64(s)
	if res.Palette > bound {
		t.Fatalf("palette %d exceeds D²S = %d", res.Palette, bound)
	}
	if res.Stats.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestColorDepths(t *testing.T) {
	g, cov := lineInstance(t, 7, 40, 0.2)
	d, s := cov.Diversity(), cov.MaxCliqueSize()
	for x := 0; x <= 3; x++ {
		res, err := Color(context.Background(), g, cov, ChooseT(s, x), x, Options{})
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		bound := int64(s)
		for i := 0; i <= x; i++ {
			bound *= int64(d)
		}
		if res.Palette > bound {
			t.Fatalf("x=%d: palette %d exceeds D^%d·S = %d", x, res.Palette, x+1, bound)
		}
	}
}

func TestColorHypergraphDiversity3(t *testing.T) {
	g, cov := hyperInstance(t, 11, 60, 3, 90)
	d, s := cov.Diversity(), cov.MaxCliqueSize()
	if d > 3 {
		t.Fatalf("hypergraph line cover diversity %d > rank 3", d)
	}
	for x := 1; x <= 2; x++ {
		res, err := Color(context.Background(), g, cov, ChooseT(s, x), x, Options{})
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		bound := int64(s)
		for i := 0; i <= x; i++ {
			bound *= int64(d)
		}
		if res.Palette > bound {
			t.Fatalf("x=%d: palette %d exceeds bound %d", x, res.Palette, bound)
		}
	}
}

func TestColorGeneralCoverGraph(t *testing.T) {
	g, lists, err := gen.BoundedDiversityCliqueGraph(120, 50, 8, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := cliques.NewCover(g, lists)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Color(context.Background(), g, cov, ChooseT(cov.MaxCliqueSize(), 1), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
}

func TestColorWithExternalSeed(t *testing.T) {
	g, cov := lineInstance(t, 5, 30, 0.3)
	// Precompute a seed as the façade would and pass it down: same palette
	// guarantee, fewer rounds than recomputing per level.
	pre, err := Color(context.Background(), g, cov, 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Color(context.Background(), g, cov, 2, 1, Options{Seed: pre.Colors, SeedPalette: pre.Palette})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
}

func TestColorSeedLengthValidated(t *testing.T) {
	g, cov := lineInstance(t, 5, 20, 0.3)
	if _, err := Color(context.Background(), g, cov, 2, 1, Options{Seed: []int64{0}, SeedPalette: 5}); err == nil {
		t.Fatal("expected seed length error")
	}
}

func TestColorParameterValidation(t *testing.T) {
	g, cov := lineInstance(t, 5, 20, 0.3)
	if _, err := Color(context.Background(), g, cov, 1, 1, Options{}); err == nil {
		t.Fatal("expected t<2 error")
	}
	if _, err := Color(context.Background(), g, cov, 2, -1, Options{}); err == nil {
		t.Fatal("expected x<0 error")
	}
}

func TestColorEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(7).MustBuild()
	cov, err := cliques.NewCover(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Color(context.Background(), g, cov, 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Palette != 1 {
		t.Fatalf("edgeless palette %d", res.Palette)
	}
}

func TestChooseT(t *testing.T) {
	if ChooseT(100, 1) != 10 {
		t.Fatalf("ChooseT(100,1) = %d, want 10", ChooseT(100, 1))
	}
	if ChooseT(100, 2) != util.Max(2, util.IRoot(100, 3)) {
		t.Fatal("ChooseT(100,2) wrong")
	}
	if ChooseT(3, 5) != 2 {
		t.Fatal("ChooseT must clamp to 2")
	}
	if ChooseT(1, 1) != 2 {
		t.Fatal("ChooseT must clamp degenerate S")
	}
}

func TestDeclaredPalette(t *testing.T) {
	// x=0: direct formula.
	if DeclaredPalette(2, 10, 3, 0) != 19 {
		t.Fatalf("got %d", DeclaredPalette(2, 10, 3, 0))
	}
	// x=1: γ=2(3−1)+1=5 times P(⌈10/3⌉=4, 0) = 2·3+1 = 7 → 35.
	if DeclaredPalette(2, 10, 3, 1) != 35 {
		t.Fatalf("got %d", DeclaredPalette(2, 10, 3, 1))
	}
}

func TestTrimAblation(t *testing.T) {
	g, cov := lineInstance(t, 13, 35, 0.3)
	s := cov.MaxCliqueSize()
	// Pick parameters that force declared > bound so the trim matters:
	// large t at x=1 gives declared ≈ (D(t−1)+1)(D(⌈s/t⌉−1)+1).
	tt := util.Max(2, s-1)
	with, err := Color(context.Background(), g, cov, tt, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Color(context.Background(), g, cov, tt, 1, Options{SkipTrim: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, without.Colors, without.Declared); err != nil {
		t.Fatal(err)
	}
	if with.Palette > with.Bound {
		t.Fatalf("trimmed palette %d above bound %d", with.Palette, with.Bound)
	}
	if without.Declared > without.Bound && without.Palette <= without.Bound {
		t.Fatal("SkipTrim should leave the declared palette")
	}
}

func TestColorQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.GNP(18, 0.3, seed)
		lg := graph.LineGraph(g)
		cov, err := cliques.FromLineGraph(lg)
		if err != nil {
			return false
		}
		if cov.MaxCliqueSize() < 2 {
			return true
		}
		res, err := Color(context.Background(), lg.L, cov, 2, 1, Options{})
		if err != nil {
			return false
		}
		d, s := cov.Diversity(), cov.MaxCliqueSize()
		bound := int64(d) * int64(d) * int64(s)
		return verify.VertexColoring(lg.L, res.Colors, res.Palette) == nil && res.Palette <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestEnginesAgreeOnCD(t *testing.T) {
	g, cov := lineInstance(t, 21, 25, 0.3)
	r1, err := Color(context.Background(), g, cov, 2, 1, Options{Exec: sim.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Color(context.Background(), g, cov, 2, 1, Options{Exec: sim.Parallel})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Colors {
		if r1.Colors[v] != r2.Colors[v] {
			t.Fatal("engines disagree")
		}
	}
	if r1.Stats != r2.Stats {
		t.Fatal("stats disagree")
	}
}
