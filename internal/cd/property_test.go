package cd

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cliques"
	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/verify"
)

// TestColorArbitraryCoversQuick drives CD-Coloring over randomly drawn
// covers (not just line graphs): random clique unions with random diversity
// and clique-size targets, random t and x. The Theorem 3.2/3.3 bound must
// hold for every draw.
func TestColorArbitraryCoversQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(60)
		nc := 10 + rng.Intn(30)
		cs := 3 + rng.Intn(6) // clique size target
		dv := 2 + rng.Intn(3) // diversity target
		g, lists, err := gen.BoundedDiversityCliqueGraph(n, nc, cs, dv, seed)
		if err != nil || len(lists) == 0 {
			return err == nil
		}
		cov, err := cliques.NewCover(g, lists)
		if err != nil {
			return false
		}
		d, s := cov.Diversity(), cov.MaxCliqueSize()
		if d == 0 || s < 2 {
			return true
		}
		x := 1 + rng.Intn(2)
		tt := 2 + rng.Intn(3)
		res, err := Color(context.Background(), g, cov, tt, x, Options{})
		if err != nil {
			return false
		}
		bound := int64(s)
		for i := 0; i <= x; i++ {
			bound *= int64(d)
		}
		return verify.VertexColoring(g, res.Colors, res.Palette) == nil && res.Palette <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestColorSchedulingIndependence proves CD-Coloring's engine-order
// independence (its recursion shares no cross-machine state, but the proof
// is cheap and binding).
func TestColorSchedulingIndependence(t *testing.T) {
	g, cov := lineInstance(t, 29, 30, 0.3)
	fwd, err := Color(context.Background(), g, cov, 3, 2, Options{Exec: sim.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Color(context.Background(), g, cov, 3, 2, Options{Exec: sim.ReverseSequential})
	if err != nil {
		t.Fatal(err)
	}
	for v := range fwd.Colors {
		if fwd.Colors[v] != rev.Colors[v] {
			t.Fatalf("vertex %d differs under reverse scheduling", v)
		}
	}
	if fwd.Stats != rev.Stats {
		t.Fatal("stats differ under reverse scheduling")
	}
}
