// Package util provides small numeric helpers shared across the distcolor
// modules: integer roots and logarithms, prime search for the finite fields
// used by Linial's coloring, ceiling division, and the iterated logarithm
// that appears in every LOCAL-model running-time bound.
package util

import "fmt"

// CeilDiv returns ⌈a/b⌉ for positive b.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("util.CeilDiv: non-positive divisor %d", b))
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// ISqrt returns ⌊√n⌋ for n ≥ 0, for every n up to MaxInt.
func ISqrt(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("util.ISqrt: negative argument %d", n))
	}
	if n < 2 {
		return n
	}
	// Newton's method on integers converges from above. The first iterate
	// is ⌈n/2⌉ spelled as n/2 + n%2: the textbook (n+1)/2 overflows at
	// n = MaxInt and seeds the descent with a negative value.
	x := n
	y := x/2 + x%2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}

// ICbrt returns ⌊n^(1/3)⌋ for n ≥ 0, for every n up to MaxInt. The
// ascent is guarded by powAtMost: the direct (x+1)³ ≤ n test overflows
// once x+1 passes 2²¹ (so for n within a factor ~8 of MaxInt on 64-bit)
// and terminated the loop with a wrong floor.
func ICbrt(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("util.ICbrt: negative argument %d", n))
	}
	x := 0
	for powAtMost(x+1, 3, n) {
		x++
	}
	return x
}

// IRoot returns ⌊n^(1/k)⌋ for n ≥ 0, k ≥ 1, for every n up to MaxInt.
func IRoot(n, k int) int {
	if n < 0 || k < 1 {
		panic(fmt.Sprintf("util.IRoot: invalid arguments n=%d k=%d", n, k))
	}
	if k == 1 || n < 2 {
		return n
	}
	// Binary search with the overflow-safe power bound; the midpoint is
	// computed as lo + (hi-lo+1)/2 because lo+hi itself can exceed MaxInt
	// when n does not leave headroom.
	lo, hi := 1, n
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if powAtMost(mid, k, n) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// powAtMost reports whether base^exp ≤ limit without overflowing.
func powAtMost(base, exp, limit int) bool {
	result := 1
	for i := 0; i < exp; i++ {
		if result > limit/base {
			return false
		}
		result *= base
	}
	return result <= limit
}

// IPow returns base^exp for exp ≥ 0. It panics on overflow beyond int range.
func IPow(base, exp int) int {
	if exp < 0 {
		panic(fmt.Sprintf("util.IPow: negative exponent %d", exp))
	}
	result := 1
	for i := 0; i < exp; i++ {
		next := result * base
		if base != 0 && next/base != result {
			panic(fmt.Sprintf("util.IPow: overflow computing %d^%d", base, exp))
		}
		result = next
	}
	return result
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (0 for n = 1).
func Log2Ceil(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("util.Log2Ceil: argument %d < 1", n))
	}
	l := 0
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

// Log2Floor returns ⌊log₂ n⌋ for n ≥ 1.
func Log2Floor(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("util.Log2Floor: argument %d < 1", n))
	}
	l := -1
	for v := n; v > 0; v >>= 1 {
		l++
	}
	return l
}

// LogStar returns the iterated logarithm log*₂(n): the number of times log₂
// must be applied before the value drops to at most 1. LogStar(1) = 0,
// LogStar(2) = 1, LogStar(4) = 2, LogStar(16) = 3, LogStar(65536) = 4.
func LogStar(n int64) int {
	count := 0
	v := float64(n)
	for v > 1 {
		v = log2f(v)
		count++
		if count > 64 {
			break // unreachable for int64 inputs; guards float corner cases
		}
	}
	return count
}

func log2f(x float64) float64 {
	// Avoid importing math for a single call site used in bounds reporting:
	// repeated halving is exact enough for LogStar's integer output.
	l := 0.0
	for x >= 2 {
		x /= 2
		l++
	}
	if x > 1 {
		l += x - 1 // linear interpolation below 2; precision is irrelevant here
	}
	return l
}

// IsPrime reports whether n is prime, by trial division (n is always small in
// this codebase: it is a field size Θ(Δ·log m)).
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime ≥ n.
func NextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MinInt64 returns the smaller of a and b.
func MinInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxInt64 returns the larger of a and b.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Clamp restricts v to the inclusive range [lo, hi].
func Clamp(v, lo, hi int) int {
	if lo > hi {
		panic(fmt.Sprintf("util.Clamp: lo %d > hi %d", lo, hi))
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
