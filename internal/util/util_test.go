package util

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 0}, {1, 1, 1}, {1, 2, 1}, {2, 2, 1}, {3, 2, 2},
		{10, 3, 4}, {9, 3, 3}, {100, 7, 15}, {-3, 2, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnZeroDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero divisor")
		}
	}()
	CeilDiv(1, 0)
}

func TestISqrtExact(t *testing.T) {
	for n := 0; n <= 10000; n++ {
		got := ISqrt(n)
		if got*got > n || (got+1)*(got+1) <= n {
			t.Fatalf("ISqrt(%d) = %d is not the floor square root", n, got)
		}
	}
}

func TestISqrtQuick(t *testing.T) {
	f := func(x uint32) bool {
		n := int(x % 1_000_000_000)
		r := ISqrt(n)
		return r*r <= n && (r+1)*(r+1) > n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestICbrt(t *testing.T) {
	for n := 0; n <= 5000; n++ {
		got := ICbrt(n)
		if got*got*got > n || (got+1)*(got+1)*(got+1) <= n {
			t.Fatalf("ICbrt(%d) = %d incorrect", n, got)
		}
	}
}

func TestIRootAgreesWithSpecialCases(t *testing.T) {
	for n := 0; n <= 3000; n++ {
		if IRoot(n, 2) != ISqrt(n) {
			t.Fatalf("IRoot(%d,2)=%d != ISqrt=%d", n, IRoot(n, 2), ISqrt(n))
		}
		if IRoot(n, 3) != ICbrt(n) {
			t.Fatalf("IRoot(%d,3)=%d != ICbrt=%d", n, IRoot(n, 3), ICbrt(n))
		}
		if IRoot(n, 1) != n {
			t.Fatalf("IRoot(%d,1) != n", n)
		}
	}
}

func TestIRootQuick(t *testing.T) {
	f := func(x uint16, kk uint8) bool {
		n := int(x)
		k := int(kk%6) + 1
		r := IRoot(n, k)
		if n < 2 {
			return r == n
		}
		// r^k <= n < (r+1)^k
		return powAtMost(r, k, n) && !powAtMost(r+1, k, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRootsAtIntBoundary pins the MaxInt-adjacent behavior: the direct
// (x+1)^k probes overflowed near the top of the int range (ICbrt looped on
// (x+1)³ ≤ n, IRoot's midpoint on lo+hi+1, ISqrt's seed on n+1) and
// returned wrong floors instead of these exact values.
func TestRootsAtIntBoundary(t *testing.T) {
	if math.MaxInt != math.MaxInt64 {
		t.Skip("boundary constants below assume 64-bit int")
	}
	const maxInt = math.MaxInt64
	// ⌊√MaxInt64⌋ and ⌊MaxInt64^(1/3)⌋ are known constants.
	const sqrtMax = 3037000499
	const cbrtMax = 2097151
	for _, n := range []int{maxInt, maxInt - 1, maxInt - 2} {
		if got := ISqrt(n); got != sqrtMax {
			t.Errorf("ISqrt(%d) = %d, want %d", n, got, sqrtMax)
		}
		if got := ICbrt(n); got != cbrtMax {
			t.Errorf("ICbrt(%d) = %d, want %d", n, got, cbrtMax)
		}
		for k := 2; k <= 8; k++ {
			r := IRoot(n, k)
			if !powAtMost(r, k, n) || powAtMost(r+1, k, n) {
				t.Errorf("IRoot(%d,%d) = %d is not the floor root", n, k, r)
			}
		}
		if got := IRoot(n, 62); got != 2 {
			t.Errorf("IRoot(%d,62) = %d, want 2", n, got)
		}
	}
	// Exact k-th powers just below the boundary must round-trip.
	if got := ICbrt(cbrtMax * cbrtMax * cbrtMax); got != cbrtMax {
		t.Errorf("ICbrt(%d³) = %d, want %d", cbrtMax, got, cbrtMax)
	}
	if got := ISqrt(sqrtMax * sqrtMax); got != sqrtMax {
		t.Errorf("ISqrt(%d²) = %d, want %d", sqrtMax, got, sqrtMax)
	}
	if got := IRoot(1<<62, 62); got != 2 {
		t.Errorf("IRoot(2^62,62) = %d, want 2", got)
	}
	if got := IRoot(1<<62-1, 62); got != 1 {
		t.Errorf("IRoot(2^62-1,62) = %d, want 1", got)
	}
}

func TestIPow(t *testing.T) {
	cases := []struct{ b, e, want int }{
		{2, 0, 1}, {2, 10, 1024}, {3, 4, 81}, {10, 3, 1000}, {0, 0, 1}, {0, 3, 0}, {1, 62, 1},
	}
	for _, c := range cases {
		if got := IPow(c.b, c.e); got != c.want {
			t.Errorf("IPow(%d,%d)=%d want %d", c.b, c.e, got, c.want)
		}
	}
}

func TestIPowOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	IPow(1<<32, 3)
}

// TestIPowAtIntBoundary: the largest representable powers compute exactly;
// one step past them panics rather than wrapping.
func TestIPowAtIntBoundary(t *testing.T) {
	if got := IPow(2, 62); got != 1<<62 {
		t.Fatalf("IPow(2,62) = %d", got)
	}
	if got := IPow(3037000499, 2); got != 3037000499*3037000499 {
		t.Fatalf("IPow(sqrtMax,2) = %d", got)
	}
	for _, c := range []struct{ b, e int }{{2, 63}, {3037000500, 2}, {2097152, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("IPow(%d,%d) did not panic on overflow", c.b, c.e)
				}
			}()
			IPow(c.b, c.e)
		}()
	}
}

func TestLog2(t *testing.T) {
	if Log2Ceil(1) != 0 || Log2Floor(1) != 0 {
		t.Fatal("log2(1) should be 0")
	}
	for n := 2; n < 1<<20; n = n*7/3 + 1 {
		wantF := int(math.Floor(math.Log2(float64(n))))
		wantC := int(math.Ceil(math.Log2(float64(n))))
		if got := Log2Floor(n); got != wantF {
			t.Errorf("Log2Floor(%d)=%d want %d", n, got, wantF)
		}
		if got := Log2Ceil(n); got != wantC {
			t.Errorf("Log2Ceil(%d)=%d want %d", n, got, wantC)
		}
	}
}

func TestLogStar(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 3}, {17, 4}, {65536, 4}, {65537, 5}, {1 << 62, 5},
	}
	for _, c := range cases {
		if got := LogStar(c.n); got != c.want {
			t.Errorf("LogStar(%d)=%d want %d", c.n, got, c.want)
		}
	}
}

func TestPrimes(t *testing.T) {
	known := map[int]bool{
		2: true, 3: true, 4: false, 5: true, 9: false, 97: true, 91: false,
		7919: true, 7917: false, 1: false, 0: false,
	}
	for n, want := range known {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d)=%v want %v", n, got, want)
		}
	}
	if NextPrime(14) != 17 || NextPrime(17) != 17 || NextPrime(0) != 2 || NextPrime(8) != 11 {
		t.Fatal("NextPrime incorrect")
	}
}

func TestNextPrimeQuick(t *testing.T) {
	f := func(x uint16) bool {
		n := int(x)
		p := NextPrime(n)
		if p < n || !IsPrime(p) {
			return false
		}
		for q := Max(n, 2); q < p; q++ {
			if IsPrime(q) {
				return false // skipped a prime
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxClamp(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatal("Min/Max broken")
	}
	if Clamp(7, 0, 5) != 5 || Clamp(-1, 0, 5) != 0 || Clamp(3, 0, 5) != 3 {
		t.Fatal("Clamp broken")
	}
}
