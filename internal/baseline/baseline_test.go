package baseline

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/cd"
	"repro/internal/cliques"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/star"
	"repro/internal/vc"
	"repro/internal/verify"
)

func TestGreedyVertex(t *testing.T) {
	g := gen.GNP(100, 0.1, 3)
	colors := GreedyVertex(g)
	if err := verify.VertexColoring(g, colors, int64(g.MaxDegree())+1); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyEdge(t *testing.T) {
	g := gen.GNP(80, 0.1, 5)
	colors := GreedyEdge(g)
	if err := verify.EdgeColoring(g, colors, int64(2*g.MaxDegree()-1)); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.GNP(40, 0.2, seed)
		if g.M() == 0 {
			return true
		}
		return verify.VertexColoring(g, GreedyVertex(g), int64(g.MaxDegree())+1) == nil &&
			verify.EdgeColoring(g, GreedyEdge(g), int64(2*g.MaxDegree()-1)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoDeltaMinusOne(t *testing.T) {
	g := gen.GNP(60, 0.15, 7)
	res, err := TwoDeltaMinusOne(context.Background(), g, vc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	if res.Palette != int64(2*g.MaxDegree()-1) {
		t.Fatalf("palette %d, want %d", res.Palette, 2*g.MaxDegree()-1)
	}
}

func TestBE11EdgeColor(t *testing.T) {
	g, err := gen.NearRegular(300, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BE11EdgeColor(context.Background(), g, 1, star.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, res.Colors, res.Declared); err != nil {
		t.Fatal(err)
	}
	if res.Declared > BE11Palette(g.MaxDegree(), 1) {
		t.Fatalf("palette %d exceeds (4+ε)Δ", res.Declared)
	}
}

func TestBE11UsesCoarserT(t *testing.T) {
	// [7]'s profile must leave strictly larger final stars than the paper's
	// choice: t smaller, k = Δ/t bigger.
	delta := 4096
	be11T, err := BE11T(delta, 1)
	if err != nil {
		t.Fatal(err)
	}
	oursT, err := star.ChooseT(delta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if be11T >= oursT {
		t.Fatalf("BE11 t=%d should be coarser than ours t=%d", be11T, oursT)
	}
}

func TestBE11VertexColor(t *testing.T) {
	base := gen.GNP(30, 0.25, 3)
	lg := graph.LineGraph(base)
	cov, err := cliques.FromLineGraph(lg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BE11VertexColor(context.Background(), lg.L, cov, 1, cd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(lg.L, res.Colors, res.Declared); err != nil {
		t.Fatal(err)
	}
	d, s := cov.Diversity(), cov.MaxCliqueSize()
	bound := int64((d*d + 1) * s)
	if res.Declared > bound {
		t.Fatalf("palette %d exceeds (D²+ε)S = %d", res.Declared, bound)
	}
}

func TestBE11Errors(t *testing.T) {
	if _, err := BE11T(4, 5); err == nil {
		t.Fatal("expected degenerate t error")
	}
	if _, err := BE11T(1, 1); err == nil {
		t.Fatal("expected small Δ error")
	}
}
