package baseline

import (
	"context"
	"fmt"

	"repro/internal/arbor"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/vc"
)

// BE08Result is the outcome of the [4]-style (2Δ−1)-edge-coloring.
type BE08Result struct {
	Colors  []int64
	Palette int64
	Stats   sim.Stats
	Parts   int
}

// BE08EdgeColor implements the arboricity-aware (2Δ−1)-edge-coloring in the
// spirit of Barenboim–Elkin [4] (cited in §1.4: "for graphs with arboricity
// a, the algorithm of [4] computes (2Δ−1)-edge-coloring within O(a+log n)
// time"): an H-partition orients the work, part-internal edges are colored
// in parallel with the black box, and crossing edges are colored stage by
// stage with the Lemma 5.1 procedure — all within the single palette
// 2Δ−1, which is always feasible because an edge has at most 2Δ−2
// neighbors. Our staged realization costs O(a·log n) rounds (the pipelined
// O(a+log n) schedule of [4] is not reproduced; the palette is exact).
func BE08EdgeColor(ctx context.Context, g *graph.Graph, a int, opt vc.Options) (*BE08Result, error) {
	if g.M() == 0 {
		return &BE08Result{Colors: make([]int64, 0), Palette: 1}, nil
	}
	delta := g.MaxDegree()
	palette := int64(2*delta - 1)
	theta := arbor.Threshold(a, 3)
	hp, err := arbor.HPartition(ctx, opt.Exec, g, theta)
	if err != nil {
		return nil, fmt.Errorf("baseline: be08: %w", err)
	}
	stats := hp.Stats

	colors := make([]int64, g.M())
	for e := range colors {
		colors[e] = -1
	}

	// Part-internal edges: vertex-disjoint subgraphs of degree ≤ θ, colored
	// together inside the low end of the global palette (2θ−1 ≤ 2Δ−1).
	internal, err := graph.SpanningSubgraph(g, func(e int) bool {
		u, v := g.Endpoints(e)
		return hp.Part[u] == hp.Part[v]
	})
	if err != nil {
		return nil, err
	}
	if internal.G.M() > 0 {
		ic, err := vc.EdgeColor(ctx, internal.G, nil, vc.EdgeIDBound(internal.G), opt)
		if err != nil {
			return nil, fmt.Errorf("baseline: be08 internal: %w", err)
		}
		stats = stats.Seq(ic.Stats)
		for e := 0; e < internal.G.M(); e++ {
			colors[internal.OrigEdge(e)] = ic.Colors[e]
		}
	}

	// Crossing stages share the same 2Δ−1 palette: a crossing edge sees at
	// most (θ−1)+(Δ−1) ≤ 2Δ−2 occupied colors, so a slot is always free.
	for i := hp.NumParts - 2; i >= 0; i-- {
		roleA := make([]bool, g.N())
		roleB := make([]bool, g.N())
		active := false
		for v := 0; v < g.N(); v++ {
			switch {
			case hp.Part[v] == i:
				roleA[v] = true
				active = true
			case hp.Part[v] > i:
				roleB[v] = true
			}
		}
		if !active {
			continue
		}
		mr, err := arbor.Merge(ctx, opt.Exec, arbor.MergeSpec{
			G:          g,
			RoleA:      roleA,
			RoleB:      roleB,
			EdgeColors: colors,
			D:          theta,
			Palette:    palette,
		})
		if err != nil {
			return nil, fmt.Errorf("baseline: be08 stage %d: %w", i, err)
		}
		stats = stats.Seq(mr.Stats)
	}
	for e, c := range colors {
		if c < 0 {
			return nil, fmt.Errorf("baseline: be08: edge %d left uncolored", e)
		}
	}
	return &BE08Result{Colors: colors, Palette: palette, Stats: stats, Parts: hp.NumParts}, nil
}
