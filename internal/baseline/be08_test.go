package baseline

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vc"
	"repro/internal/verify"
)

func TestBE08EdgeColor(t *testing.T) {
	g, err := gen.ForestUnionHub(400, 2, 150, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BE08EdgeColor(context.Background(), g, 3, vc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Palette != int64(2*g.MaxDegree()-1) {
		t.Fatalf("palette %d, want 2Δ−1 = %d", res.Palette, 2*g.MaxDegree()-1)
	}
	if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	if res.Parts < 2 {
		t.Fatalf("expected multiple H-parts, got %d", res.Parts)
	}
}

func TestBE08OnConstantArboricity(t *testing.T) {
	for name, tc := range map[string]struct {
		g *graph.Graph
		a int
	}{
		"grid": {gen.Grid(15, 20), 2},
		"tree": {gen.Tree(250, 3), 1},
	} {
		res, err := BE08EdgeColor(context.Background(), tc.g, tc.a, vc.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.EdgeColoring(tc.g, res.Colors, res.Palette); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBE08FasterThanLineGraphBaselineOnSparse(t *testing.T) {
	// The point of [4]: on sparse graphs the rounds should be far below the
	// Θ(Δ log Δ) of the classical line-graph pipeline.
	g, err := gen.ForestUnionHub(600, 2, 250, 9)
	if err != nil {
		t.Fatal(err)
	}
	be08, err := BE08EdgeColor(context.Background(), g, 3, vc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	classic, err := TwoDeltaMinusOne(context.Background(), g, vc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if be08.Stats.Rounds >= classic.Stats.Rounds {
		t.Fatalf("BE08 rounds %d not below classic %d on a sparse graph", be08.Stats.Rounds, classic.Stats.Rounds)
	}
	if be08.Palette != classic.Palette {
		t.Fatalf("both should use 2Δ−1: %d vs %d", be08.Palette, classic.Palette)
	}
}

func TestBE08Empty(t *testing.T) {
	g := graph.NewBuilder(3).MustBuild()
	res, err := BE08EdgeColor(context.Background(), g, 1, vc.Options{})
	if err != nil || res.Palette != 1 {
		t.Fatal("empty graph failed")
	}
}
