// Package baseline implements the comparison algorithms for the paper's
// Tables 1 and 2 and the classical references discussed in §1.4:
//
//   - GreedyVertex / GreedyEdge: centralized sequential greedy colorings.
//     They provide the (Δ+1) / (2Δ−1) palette reference points and a color
//     floor for judging the distributed algorithms' palettes; they execute
//     in zero rounds (they are not distributed algorithms).
//   - TwoDeltaMinusOne: the classical distributed (2Δ−1)-edge-coloring
//     (Linial + reduction on the line graph) — the folklore baseline the
//     paper's edge-coloring results undercut on palette size.
//   - BE11: the previous-best trade-off of Barenboim–Elkin [7] + [17] from
//     the right-hand columns of Tables 1 and 2, emulated with the connector
//     machinery using [7]'s less balanced parameter profile
//     t = Δ^{1/(x+2)}: it spends (2^{x+1}+ε)Δ colors and leaves final
//     stars of size ≈ Δ^{2/(x+2)} for the black box, versus Δ^{1/(x+1)}
//     for the paper's algorithm (see DESIGN.md §1.5 for the substitution
//     rationale).
package baseline

import (
	"context"
	"fmt"

	"repro/internal/cd"
	"repro/internal/cliques"
	"repro/internal/graph"
	"repro/internal/star"
	"repro/internal/util"
	"repro/internal/vc"
)

// GreedyVertex colors vertices sequentially in index order with the
// smallest free color. Palette ≤ Δ+1.
func GreedyVertex(g *graph.Graph) []int64 {
	colors := make([]int64, g.N())
	for i := range colors {
		colors[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		used := make(map[int64]bool, g.Degree(v))
		for _, a := range g.Adj(v) {
			if colors[a.To] >= 0 {
				used[colors[a.To]] = true
			}
		}
		var c int64
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// GreedyEdge colors edges sequentially in identifier order with the
// smallest free color. Palette ≤ 2Δ−1.
func GreedyEdge(g *graph.Graph) []int64 {
	colors := make([]int64, g.M())
	for i := range colors {
		colors[i] = -1
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(e)
		used := make(map[int64]bool, g.Degree(u)+g.Degree(v))
		for _, a := range g.Adj(u) {
			if colors[a.Edge] >= 0 {
				used[colors[a.Edge]] = true
			}
		}
		for _, a := range g.Adj(v) {
			if colors[a.Edge] >= 0 {
				used[colors[a.Edge]] = true
			}
		}
		var c int64
		for used[c] {
			c++
		}
		colors[e] = c
	}
	return colors
}

// TwoDeltaMinusOne is the classical distributed (2Δ−1)-edge-coloring.
func TwoDeltaMinusOne(ctx context.Context, g *graph.Graph, opt vc.Options) (*vc.Result, error) {
	return vc.EdgeColor(ctx, g, nil, vc.EdgeIDBound(g), opt)
}

// BE11Palette is the emulated [7]+[17] color bound (2^{x+1}+ε)Δ with the
// slack the emulation actually needs (ε ≤ 1).
func BE11Palette(delta, x int) int64 {
	return int64(util.IPow(2, x+1)+1) * int64(delta)
}

// BE11T returns [7]'s parameter profile t = ⌊Δ^{1/(x+2)}⌋ (≥ 2).
func BE11T(delta, x int) (int, error) {
	if delta < 2 {
		return 0, fmt.Errorf("baseline: Δ=%d too small", delta)
	}
	t := util.IRoot(delta, x+2)
	if t < 2 {
		return 0, fmt.Errorf("baseline: x=%d too large for Δ=%d", x, delta)
	}
	return t, nil
}

// BE11EdgeColor runs the emulated previous-best (2^{x+1}+ε)Δ-edge-coloring:
// x star-partition levels with the coarser t = Δ^{1/(x+2)}, which leaves
// the black box final stars of size ≈ Δ^{2/(x+2)}.
func BE11EdgeColor(ctx context.Context, g *graph.Graph, x int, opt star.Options) (*star.Result, error) {
	t, err := BE11T(g.MaxDegree(), x)
	if err != nil {
		return nil, err
	}
	opt.SkipTrim = true // the ε-slack palette is the declared one
	res, err := star.EdgeColor(ctx, g, t, x, opt)
	if err != nil {
		return nil, err
	}
	if bound := BE11Palette(g.MaxDegree(), x); res.Declared > bound {
		return nil, fmt.Errorf("baseline: emulation palette %d exceeded (2^{x+1}+1)Δ = %d", res.Declared, bound)
	}
	return res, nil
}

// BE11VertexColor runs the emulated previous-best (D^{x+1}+ε)Δ-vertex-
// coloring on a bounded-diversity graph: CD-Coloring with the coarser
// parameter profile t = S^{1/(x+2)}.
func BE11VertexColor(ctx context.Context, g *graph.Graph, cover *cliques.Cover, x int, opt cd.Options) (*cd.Result, error) {
	s := cover.MaxCliqueSize()
	t := util.Max(2, util.IRoot(s, x+2))
	opt.SkipTrim = true
	return cd.Color(ctx, g, cover, t, x, opt)
}
