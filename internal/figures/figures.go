// Package figures regenerates the paper's three figures as Graphviz DOT
// plus a one-line structural summary. cmd/colorviz is a thin wrapper over
// this package; keeping the rendering here makes the figures testable
// (golden tests assert both the DOT structure and the summarized
// invariants).
package figures

import (
	"bytes"
	"fmt"
	"strconv"

	"repro/internal/cliques"
	"repro/internal/connector"
	"repro/internal/graph"
)

// Result is one rendered figure.
type Result struct {
	// DOT is the Graphviz source reproducing the figure's structure.
	DOT string
	// Summary states the structural invariants with their measured values.
	Summary string
}

// Figure renders figure number 1, 2 or 3.
func Figure(n int) (*Result, error) {
	switch n {
	case 1:
		return figure1()
	case 2:
		return figure2()
	case 3:
		return figure3()
	default:
		return nil, fmt.Errorf("figures: unknown figure %d", n)
	}
}

// figure1 reproduces Figure 1: a connector with t=4 of a pair of 7-cliques
// Q, R sharing a vertex v.
func figure1() (*Result, error) {
	b := graph.NewBuilder(13)
	q := []int32{0, 1, 2, 3, 4, 5, 6}
	r := []int32{0, 7, 8, 9, 10, 11, 12}
	for _, cl := range [][]int32{q, r} {
		for i := 0; i < len(cl); i++ {
			for j := i + 1; j < len(cl); j++ {
				b.AddEdge(int(cl[i]), int(cl[j]))
			}
		}
	}
	g := b.MustBuild()
	cov, err := cliques.NewCover(g, [][]int32{q, r})
	if err != nil {
		return nil, err
	}
	cc, err := connector.Clique(g, cov, 4)
	if err != nil {
		return nil, err
	}
	labels := make([]string, g.N())
	for qi, groups := range cc.Groups {
		for gi, grp := range groups {
			for _, v := range grp {
				tag := fmt.Sprintf("%s%d", []string{"Q", "R"}[qi], gi+1)
				if labels[v] != "" {
					// The shared vertex belongs to a group of each clique.
					labels[v] += "+" + tag
				} else {
					labels[v] = tag
				}
			}
		}
	}
	labels[0] = "v " + labels[0]
	var buf bytes.Buffer
	if err := graph.WriteDOT(&buf, cc.Sub.G, "figure1_clique_connector", labels); err != nil {
		return nil, err
	}
	return &Result{
		DOT: buf.String(),
		Summary: fmt.Sprintf(
			"Figure 1: two 7-cliques sharing v; t=4 ⇒ groups of ≤4; connector degree %d ≤ D(t−1)=%d; edges kept %d of %d",
			cc.Sub.G.MaxDegree(), cov.Diversity()*3, cc.Sub.G.M(), g.M()),
	}, nil
}

// figure2 reproduces Figure 2: the edge connector with t=3 around a vertex
// of degree 7.
func figure2() (*Result, error) {
	g := graph.Star(8)
	vg, err := connector.Edge(g, 3)
	if err != nil {
		return nil, err
	}
	labels := make([]string, vg.G.N())
	for v := 0; v < vg.G.N(); v++ {
		labels[v] = fmt.Sprintf("v%d_%d", vg.Owner[v], vg.Index[v]+1)
	}
	var buf bytes.Buffer
	if err := graph.WriteDOT(&buf, vg.G, "figure2_edge_connector", labels); err != nil {
		return nil, err
	}
	return &Result{
		DOT: buf.String(),
		Summary: fmt.Sprintf(
			"Figure 2: degree-7 vertex splits into ⌈7/3⌉=3 virtual vertices; connector max degree %d ≤ t=3; edges preserved %d=%d",
			vg.G.MaxDegree(), vg.G.M(), g.M()),
	}, nil
}

// figure3 reproduces Figure 3: the orientation connector of a vertex with
// 9 incoming and 4 outgoing edges, in-groups of 3 and out-groups of 2.
func figure3() (*Result, error) {
	b := graph.NewBuilder(14)
	for i := 1; i <= 13; i++ {
		b.AddEdge(0, i)
	}
	g := b.MustBuild()
	heads := make([]int32, g.M())
	for e := 0; e < g.M(); e++ {
		_, v := g.Endpoints(e)
		if v <= 9 {
			heads[e] = 0 // nine in-edges of the center
		} else {
			heads[e] = int32(v) // four out-edges
		}
	}
	o, err := graph.NewOrientation(g, heads)
	if err != nil {
		return nil, err
	}
	vg, err := connector.Orientation(o, 3, 2)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	fmt.Fprintln(&buf, `digraph "figure3_orientation_connector" {`)
	for v := 0; v < vg.G.N(); v++ {
		label := fmt.Sprintf("v%d_%d", vg.Owner[v], vg.Index[v]+1)
		fmt.Fprintf(&buf, "  %d [label=%s];\n", v, strconv.Quote(label))
	}
	for e := 0; e < vg.G.M(); e++ {
		fmt.Fprintf(&buf, "  %d -> %d;\n", vg.Orient.Tail(e), vg.Orient.Head(e))
	}
	fmt.Fprintln(&buf, "}")
	centerVirts := 0
	for _, owner := range vg.Owner {
		if owner == 0 {
			centerVirts++
		}
	}
	return &Result{
		DOT: buf.String(),
		Summary: fmt.Sprintf(
			"Figure 3: center with 9 in / 4 out edges; in-groups of 3, out-groups of 2 ⇒ %d virtuals; acyclic: %v; max out-degree %d ≤ 2",
			centerVirts, vg.Orient.IsAcyclic(), vg.Orient.MaxOutDegree()),
	}, nil
}
