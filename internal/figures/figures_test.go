package figures

import (
	"strings"
	"testing"
)

func TestFigure1Golden(t *testing.T) {
	res, err := Figure(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`graph "figure1_clique_connector"`,
		`label="v Q1+R1"`, // the shared vertex leads a group in each clique
		"0 -- 1",
	} {
		if !strings.Contains(res.DOT, want) {
			t.Errorf("figure 1 DOT missing %q", want)
		}
	}
	// Each 7-clique splits into groups of 4+3, keeping C(4,2)+C(3,2) = 9
	// edges; the shared vertex leads both first groups, so its connector
	// degree meets the Lemma 2.1 bound D(t−1) = 6 with equality.
	for _, want := range []string{"t=4", "degree 6 ≤ D(t−1)=6", "edges kept 18 of 42"} {
		if !strings.Contains(res.Summary, want) {
			t.Errorf("figure 1 summary missing %q in %q", want, res.Summary)
		}
	}
}

func TestFigure2Golden(t *testing.T) {
	res, err := Figure(2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.DOT, `graph "figure2_edge_connector"`) {
		t.Error("figure 2 DOT header missing")
	}
	// The center's three virtuals appear as labels.
	for _, want := range []string{`"v0_1"`, `"v0_2"`, `"v0_3"`} {
		if !strings.Contains(res.DOT, want) {
			t.Errorf("figure 2 DOT missing virtual %q", want)
		}
	}
	if !strings.Contains(res.Summary, "edges preserved 7=7") {
		t.Errorf("figure 2 summary wrong: %q", res.Summary)
	}
}

func TestFigure3Golden(t *testing.T) {
	res, err := Figure(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.DOT, `digraph "figure3_orientation_connector"`) {
		t.Error("figure 3 must be a digraph (orientation)")
	}
	if !strings.Contains(res.DOT, "->") {
		t.Error("figure 3 DOT has no directed edges")
	}
	for _, want := range []string{"3 virtuals", "acyclic: true", "max out-degree 2 ≤ 2"} {
		if !strings.Contains(res.Summary, want) {
			t.Errorf("figure 3 summary missing %q in %q", want, res.Summary)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := Figure(4); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestFiguresAreDeterministic(t *testing.T) {
	for n := 1; n <= 3; n++ {
		a, err := Figure(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure(n)
		if err != nil {
			t.Fatal(err)
		}
		if a.DOT != b.DOT || a.Summary != b.Summary {
			t.Fatalf("figure %d not deterministic", n)
		}
	}
}
