package linial

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/util"
	"repro/internal/verify"
)

func rg(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestScheduleShrinks(t *testing.T) {
	steps := BuildSchedule(1_000_000, 10)
	if len(steps) == 0 {
		t.Fatal("expected at least one step")
	}
	m := int64(1_000_000)
	for i, s := range steps {
		if s.Q <= s.D*10 {
			t.Fatalf("step %d: field size %d too small for dΔ=%d", i, s.Q, s.D*10)
		}
		if s.M >= m {
			t.Fatalf("step %d does not shrink palette: %d >= %d", i, s.M, m)
		}
		if !util.IsPrime(int(s.Q)) {
			t.Fatalf("step %d: q=%d not prime", i, s.Q)
		}
		m = s.M
	}
}

func TestScheduleStepsAreLogStar(t *testing.T) {
	// Number of steps should be small (log*-ish), not logarithmic: even for
	// an enormous starting palette it must stay in single digits.
	steps := BuildSchedule(1<<60, 8)
	if len(steps) > 10 {
		t.Fatalf("schedule unexpectedly long: %d steps", len(steps))
	}
}

func TestScheduleFixpointPalette(t *testing.T) {
	// Final palette must be O(Δ² log² Δ): check a generous concrete bound
	// Δ²·(log₂Δ+4)² for a range of Δ.
	for _, d := range []int{1, 2, 4, 8, 16, 64, 256} {
		final := FinalPalette(1<<40, d)
		lg := int64(util.Log2Ceil(d+1) + 4)
		bound := int64(d) * int64(d) * lg * lg
		if final > bound {
			t.Errorf("Δ=%d: final palette %d exceeds Δ²log²Δ bound %d", d, final, bound)
		}
	}
}

func TestReduceProducesProperColoring(t *testing.T) {
	g := rg(5, 120, 0.08)
	topo := sim.NewTopology(g)
	res, err := Reduce(context.Background(), sim.Sequential, topo, int64(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != len(BuildSchedule(int64(g.N()), g.MaxDegree()))+1 {
		t.Fatalf("rounds %d != schedule+1", res.Stats.Rounds)
	}
}

func TestReduceWithSeedLabels(t *testing.T) {
	g := rg(6, 100, 0.1)
	// Seed: a proper coloring with a huge palette (IDs spread out).
	seed := make([]int64, g.N())
	for v := range seed {
		seed[v] = int64(v) * 1_000_003
	}
	m0 := int64(g.N()) * 1_000_003
	topo := &sim.Topology{G: g, Labels: seed}
	res, err := Reduce(context.Background(), sim.Sequential, topo, m0)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	if res.Palette >= m0 {
		t.Fatal("palette did not shrink")
	}
}

func TestReduceSeedShorterThanIDs(t *testing.T) {
	// §3 trick: starting from a small proper seed coloring takes fewer
	// steps than starting from raw IDs.
	g := rg(8, 300, 0.05)
	d := g.MaxDegree()
	small := FinalPalette(int64(g.N()), d)
	fromIDs := len(BuildSchedule(int64(g.N()), d))
	fromSeed := len(BuildSchedule(small, d))
	if fromSeed > fromIDs {
		t.Fatalf("seeded schedule longer: %d > %d", fromSeed, fromIDs)
	}
}

func TestReduceOnEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	res, err := Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSingleColorSeed(t *testing.T) {
	// Palette of size 1 on an edgeless graph: schedule empty, nothing to do.
	g := graph.NewBuilder(3).MustBuild()
	topo := &sim.Topology{G: g, Labels: []int64{0, 0, 0}}
	res, err := Reduce(context.Background(), sim.Sequential, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Palette != 1 {
		t.Fatalf("palette %d", res.Palette)
	}
}

func TestReduceRejectsBadPalette(t *testing.T) {
	g := graph.Path(3)
	if _, err := Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), 0); err == nil {
		t.Fatal("expected palette error")
	}
}

func TestReduceQuickOverFamilies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		g := rg(seed, n, 0.15)
		res, err := Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), int64(n))
		if err != nil {
			return false
		}
		return verify.VertexColoring(g, res.Colors, res.Palette) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceEnginesAgree(t *testing.T) {
	g := rg(13, 150, 0.06)
	r1, err := Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), int64(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Reduce(context.Background(), sim.Parallel, sim.NewTopology(g), int64(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats || r1.Palette != r2.Palette {
		t.Fatal("engines disagree on stats/palette")
	}
	for v := range r1.Colors {
		if r1.Colors[v] != r2.Colors[v] {
			t.Fatalf("engines disagree at vertex %d", v)
		}
	}
}

// applyStep is the unoptimized reference of one polynomial reduction at a
// single vertex — the pre-word-plane implementation kept as the executable
// specification. The production machine performs the same computation over
// reusable scratch slabs; TestApplyStepMatchesReference pins the
// equivalence.
func applyStep(c int64, nbrColors []int64, st Step) int64 {
	d, q := st.D, st.Q
	mine := decompose(c, q, d+1)
	var nbrs [][]int64
	for _, nc := range nbrColors {
		if nc < 0 || nc == c {
			continue
		}
		nbrs = append(nbrs, decompose(nc, q, d+1))
	}
	for x := int64(0); x < q; x++ {
		val := evalPoly(mine, x, q)
		ok := true
		for _, nb := range nbrs {
			if evalPoly(nb, x, q) == val {
				ok = false
				break
			}
		}
		if ok {
			return x*q + val
		}
	}
	panic("linial_test: no evaluation point")
}

// TestApplyStepMatchesReference drives the production machine's
// scratch-slab applyStep against the allocating reference on randomized
// palettes, degrees, and inbox patterns (including silent NoWord ports and
// improper equal-color slots): the chosen colors must be identical, and
// the steady-state scratch reuse must not leak state between rounds.
func TestApplyStepMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	steps := []Step{
		{D: 1, Q: 11, M: 121},
		{D: 2, Q: 13, M: 169},
		{D: 3, Q: 31, M: 961},
		{D: 5, Q: 67, M: 4489},
	}
	mc := &machine{} // one machine reused across cases, like across rounds
	for i := 0; i < 2000; i++ {
		st := steps[rng.Intn(len(steps))]
		limit := st.Q // inputs to a step are < q^(d+1); keep them small but varied
		for j := int64(1); j <= st.D; j++ {
			limit *= st.Q
		}
		c := rng.Int63n(limit)
		deg := rng.Intn(7)
		in := make([]sim.Word, deg)
		ref := make([]int64, deg)
		for p := 0; p < deg; p++ {
			switch rng.Intn(4) {
			case 0:
				in[p], ref[p] = sim.NoWord, -1 // silent port
			case 1:
				in[p], ref[p] = c, c // improper duplicate, skipped by both
			default:
				nc := rng.Int63n(limit)
				in[p], ref[p] = nc, nc
			}
		}
		mc.color = c
		got := mc.applyStep(in, st)
		want := applyStep(c, ref, st)
		if got != want {
			t.Fatalf("case %d: machine applyStep = %d, reference = %d (c=%d step=%+v in=%v)", i, got, want, c, st, in)
		}
	}
}

func TestApplyStepDeterministicAndProper(t *testing.T) {
	// Direct unit test of the polynomial step on a small clique: all
	// distinct colors must map to distinct new colors when applied with each
	// vertex seeing the others as neighbors.
	st := Step{D: 2, Q: 11, M: 121}
	colors := []int64{5, 17, 100, 1000, 42}
	newColors := make(map[int64]bool)
	for i, c := range colors {
		var nbrs []int64
		for j, o := range colors {
			if j != i {
				nbrs = append(nbrs, o)
			}
		}
		nc := applyStep(c, nbrs, st)
		if nc < 0 || nc >= st.M {
			t.Fatalf("new color %d out of range", nc)
		}
		if newColors[nc] {
			t.Fatalf("collision on new color %d", nc)
		}
		newColors[nc] = true
	}
}

// TestApplyStepSteadyStateAllocFree pins the ported hot path: once a
// machine's coefficient scratch is warm (first application of its widest
// schedule step), applying a reduction step allocates nothing — this is
// what makes whole Linial rounds alloc-free on the word plane.
func TestApplyStepSteadyStateAllocFree(t *testing.T) {
	st := Step{D: 3, Q: 101, M: 101 * 101}
	in := []sim.Word{5, sim.NoWord, 90_000, 12345, 671, sim.NoWord, 404}
	mc := &machine{schedule: []Step{st}}
	allocs := testing.AllocsPerRun(200, func() {
		mc.color = 777_123
		if got := mc.applyStep(in, st); got < 0 || got >= st.M {
			t.Fatalf("applyStep out of range: %d", got)
		}
	})
	if allocs != 0 {
		t.Fatalf("applyStep allocates %.1f per call in steady state, want 0", allocs)
	}
}

func TestPolyHelpers(t *testing.T) {
	// decompose/eval round trip: value of polynomial at x=q is... check
	// decompose base-q digits recompose to c.
	q := int64(13)
	for _, c := range []int64{0, 1, 12, 13, 168, 2196} {
		co := decompose(c, q, 4)
		var back int64
		mult := int64(1)
		for _, d := range co {
			back += d * mult
			mult *= q
		}
		if back != c {
			t.Fatalf("decompose(%d) round trip gave %d", c, back)
		}
	}
	// evalPoly: p(x) = 3 + 2x + x² at x=5 mod 7 = (3+10+25) mod 7 = 38 mod 7 = 3.
	if got := evalPoly([]int64{3, 2, 1}, 5, 7); got != 3 {
		t.Fatalf("evalPoly = %d, want 3", got)
	}
}
