package linial

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/util"
	"repro/internal/verify"
)

func rg(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestScheduleShrinks(t *testing.T) {
	steps := BuildSchedule(1_000_000, 10)
	if len(steps) == 0 {
		t.Fatal("expected at least one step")
	}
	m := int64(1_000_000)
	for i, s := range steps {
		if s.Q <= s.D*10 {
			t.Fatalf("step %d: field size %d too small for dΔ=%d", i, s.Q, s.D*10)
		}
		if s.M >= m {
			t.Fatalf("step %d does not shrink palette: %d >= %d", i, s.M, m)
		}
		if !util.IsPrime(int(s.Q)) {
			t.Fatalf("step %d: q=%d not prime", i, s.Q)
		}
		m = s.M
	}
}

func TestScheduleStepsAreLogStar(t *testing.T) {
	// Number of steps should be small (log*-ish), not logarithmic: even for
	// an enormous starting palette it must stay in single digits.
	steps := BuildSchedule(1<<60, 8)
	if len(steps) > 10 {
		t.Fatalf("schedule unexpectedly long: %d steps", len(steps))
	}
}

func TestScheduleFixpointPalette(t *testing.T) {
	// Final palette must be O(Δ² log² Δ): check a generous concrete bound
	// Δ²·(log₂Δ+4)² for a range of Δ.
	for _, d := range []int{1, 2, 4, 8, 16, 64, 256} {
		final := FinalPalette(1<<40, d)
		lg := int64(util.Log2Ceil(d+1) + 4)
		bound := int64(d) * int64(d) * lg * lg
		if final > bound {
			t.Errorf("Δ=%d: final palette %d exceeds Δ²log²Δ bound %d", d, final, bound)
		}
	}
}

func TestReduceProducesProperColoring(t *testing.T) {
	g := rg(5, 120, 0.08)
	topo := sim.NewTopology(g)
	res, err := Reduce(context.Background(), sim.Sequential, topo, int64(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != len(BuildSchedule(int64(g.N()), g.MaxDegree()))+1 {
		t.Fatalf("rounds %d != schedule+1", res.Stats.Rounds)
	}
}

func TestReduceWithSeedLabels(t *testing.T) {
	g := rg(6, 100, 0.1)
	// Seed: a proper coloring with a huge palette (IDs spread out).
	seed := make([]int64, g.N())
	for v := range seed {
		seed[v] = int64(v) * 1_000_003
	}
	m0 := int64(g.N()) * 1_000_003
	topo := &sim.Topology{G: g, Labels: seed}
	res, err := Reduce(context.Background(), sim.Sequential, topo, m0)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	if res.Palette >= m0 {
		t.Fatal("palette did not shrink")
	}
}

func TestReduceSeedShorterThanIDs(t *testing.T) {
	// §3 trick: starting from a small proper seed coloring takes fewer
	// steps than starting from raw IDs.
	g := rg(8, 300, 0.05)
	d := g.MaxDegree()
	small := FinalPalette(int64(g.N()), d)
	fromIDs := len(BuildSchedule(int64(g.N()), d))
	fromSeed := len(BuildSchedule(small, d))
	if fromSeed > fromIDs {
		t.Fatalf("seeded schedule longer: %d > %d", fromSeed, fromIDs)
	}
}

func TestReduceOnEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	res, err := Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSingleColorSeed(t *testing.T) {
	// Palette of size 1 on an edgeless graph: schedule empty, nothing to do.
	g := graph.NewBuilder(3).MustBuild()
	topo := &sim.Topology{G: g, Labels: []int64{0, 0, 0}}
	res, err := Reduce(context.Background(), sim.Sequential, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Palette != 1 {
		t.Fatalf("palette %d", res.Palette)
	}
}

func TestReduceRejectsBadPalette(t *testing.T) {
	g := graph.Path(3)
	if _, err := Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), 0); err == nil {
		t.Fatal("expected palette error")
	}
}

func TestReduceQuickOverFamilies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		g := rg(seed, n, 0.15)
		res, err := Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), int64(n))
		if err != nil {
			return false
		}
		return verify.VertexColoring(g, res.Colors, res.Palette) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceEnginesAgree(t *testing.T) {
	g := rg(13, 150, 0.06)
	r1, err := Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), int64(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Reduce(context.Background(), sim.Parallel, sim.NewTopology(g), int64(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats || r1.Palette != r2.Palette {
		t.Fatal("engines disagree on stats/palette")
	}
	for v := range r1.Colors {
		if r1.Colors[v] != r2.Colors[v] {
			t.Fatalf("engines disagree at vertex %d", v)
		}
	}
}

func TestApplyStepDeterministicAndProper(t *testing.T) {
	// Direct unit test of the polynomial step on a small clique: all
	// distinct colors must map to distinct new colors when applied with each
	// vertex seeing the others as neighbors.
	st := Step{D: 2, Q: 11, M: 121}
	colors := []int64{5, 17, 100, 1000, 42}
	newColors := make(map[int64]bool)
	for i, c := range colors {
		var nbrs []int64
		for j, o := range colors {
			if j != i {
				nbrs = append(nbrs, o)
			}
		}
		nc := applyStep(c, nbrs, st)
		if nc < 0 || nc >= st.M {
			t.Fatalf("new color %d out of range", nc)
		}
		if newColors[nc] {
			t.Fatalf("collision on new color %d", nc)
		}
		newColors[nc] = true
	}
}

func TestPolyHelpers(t *testing.T) {
	// decompose/eval round trip: value of polynomial at x=q is... check
	// decompose base-q digits recompose to c.
	q := int64(13)
	for _, c := range []int64{0, 1, 12, 13, 168, 2196} {
		co := decompose(c, q, 4)
		var back int64
		mult := int64(1)
		for _, d := range co {
			back += d * mult
			mult *= q
		}
		if back != c {
			t.Fatalf("decompose(%d) round trip gave %d", c, back)
		}
	}
	// evalPoly: p(x) = 3 + 2x + x² at x=5 mod 7 = (3+10+25) mod 7 = 38 mod 7 = 3.
	if got := evalPoly([]int64{3, 2, 1}, 5, 7); got != 3 {
		t.Fatalf("evalPoly = %d, want 3", got)
	}
}
