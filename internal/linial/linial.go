// Package linial implements Linial's deterministic color reduction [30]: a
// proper m₀-coloring (initially, the identifiers) is reduced to an
// O(Δ² log² Δ)-coloring within O(log* m₀) communication rounds.
//
// One reduction step works over a prime field F_q. A color c < q^(d+1) is
// read as the coefficient vector of a polynomial p_c of degree ≤ d over F_q.
// Distinct colors give distinct polynomials, which agree on at most d
// points; with q ≥ dΔ+1, a vertex can always find an evaluation point x such
// that its polynomial differs from every neighbor's polynomial at x. The
// pair (x, p_c(x)) — encoded as x·q + p_c(x) < q² — becomes the new color.
// Iterating until the palette stops shrinking lands at q = O(Δ log Δ), i.e.
// a palette of O(Δ² log² Δ). This is the standard implementable form of
// Linial's bound; the remaining gap to O(Δ²) is absorbed by the reductions
// in package reduce (see DESIGN.md §5, deviation 3).
//
// The paper's §3 trick — computing this coloring once and reusing it as the
// identifier space of every recursive subproblem so that log* n is paid only
// once — is supported through the topology's seed labels: when a seed
// coloring with palette m₀ ≪ n is supplied, the schedule shortens to
// O(log* m₀) steps.
package linial

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/util"
)

// Step is one reduction round: colors in [m] are mapped into [q²] using
// degree-≤ d polynomials over F_q.
type Step struct {
	D int64 // polynomial degree bound
	Q int64 // field size (prime, ≥ dΔ+1, with q^(d+1) ≥ m)
	M int64 // resulting palette size q²
}

// maxQ guards 64-bit overflow: q² and x·q+val must stay within int64.
const maxQ = 3_000_000_000

// BuildSchedule computes the deterministic reduction schedule from an
// initial palette m0 and maximum degree delta. Every vertex derives this
// same schedule locally from global knowledge (m₀ and Δ), so no coordination
// is needed. The schedule is empty when no step shrinks the palette.
func BuildSchedule(m0 int64, delta int) []Step {
	if delta < 1 {
		delta = 1
	}
	var steps []Step
	m := m0
	for {
		best, ok := bestStep(m, delta)
		if !ok || best.M >= m {
			return steps
		}
		steps = append(steps, best)
		m = best.M
	}
}

// bestStep finds the degree d minimizing the resulting palette q².
func bestStep(m int64, delta int) (Step, bool) {
	var best Step
	found := false
	for d := int64(1); d <= 62; d++ {
		lo := d*int64(delta) + 1
		root := ceilRoot(m, d+1)
		if root > lo {
			lo = root
		}
		if lo > maxQ {
			continue
		}
		q := int64(util.NextPrime(int(lo)))
		if q > maxQ {
			continue
		}
		mp := q * q
		if !found || mp < best.M {
			best = Step{D: d, Q: q, M: mp}
			found = true
		}
		// Larger d can no longer help once the field size is dominated by
		// the dΔ term rather than the root term.
		if root <= d*int64(delta)+1 {
			break
		}
	}
	return best, found
}

// ceilRoot returns the smallest r ≥ 1 with r^k ≥ m.
func ceilRoot(m int64, k int64) int64 {
	if m <= 1 {
		return 1
	}
	r := int64(util.IRoot(int(m), int(k)))
	if !powAtLeast(r, k, m) {
		r++
	}
	return r
}

// powAtLeast reports whether r^k ≥ m without overflowing.
func powAtLeast(r, k, m int64) bool {
	acc := int64(1)
	for i := int64(0); i < k; i++ {
		if r != 0 && acc > m/r+1 {
			return true
		}
		acc *= r
		if acc >= m {
			return true
		}
	}
	return acc >= m
}

// Result is the outcome of a Linial reduction run.
type Result struct {
	Colors  []int64 // proper coloring, one entry per vertex
	Palette int64   // all colors are < Palette
	Stats   sim.Stats
}

// Reduce runs the schedule on topology t. The starting coloring is the
// topology's seed labels when present (they must form a proper coloring
// with palette m0), otherwise the identifiers (with m0 > every ID).
func Reduce(ctx context.Context, eng sim.Exec, t *sim.Topology, m0 int64) (*Result, error) {
	eng = sim.OrSequential(eng)
	if m0 < 1 {
		return nil, fmt.Errorf("linial: palette bound %d < 1", m0)
	}
	delta := t.G.MaxDegree()
	schedule := BuildSchedule(m0, delta)
	colors := make([]int64, t.G.N())
	factory := func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		return newMachine(info, schedule, &colors[info.V])
	}
	stats, err := eng.Run(ctx, t, factory, len(schedule)+2)
	if err != nil {
		return nil, fmt.Errorf("linial: %w", err)
	}
	palette := m0
	if len(schedule) > 0 {
		palette = schedule[len(schedule)-1].M
	}
	return &Result{Colors: colors, Palette: palette, Stats: stats}, nil
}

// FinalPalette returns the palette produced by a schedule starting at m0.
func FinalPalette(m0 int64, delta int) int64 {
	s := BuildSchedule(m0, delta)
	if len(s) == 0 {
		return m0
	}
	return s[len(s)-1].M
}

// machine is the per-vertex Linial program on the packed word plane
// (colors are single words, so every payload rides sim.Word). The two
// coefficient buffers are per-machine scratch slabs sized once for the
// widest schedule step and reused every round, so the steady-state rounds
// perform no heap allocation.
type machine struct {
	schedule []Step
	color    int64
	sink     *int64
	// mine holds this vertex's d+1 polynomial coefficients; nbrs holds the
	// concatenated coefficient vectors of the relevant neighbor colors
	// (deg·(d+1) slots at most).
	mine []int64
	nbrs []int64
}

func newMachine(info sim.NodeInfo, schedule []Step, sink *int64) sim.Machine {
	start := info.ID
	if info.Label >= 0 {
		start = info.Label
	}
	return sim.WrapWord(&machine{schedule: schedule, color: start, sink: sink})
}

// StepWord implements sim.WordMachine. Round 0 broadcasts the starting
// color; round r ≥ 1 applies schedule[r-1] to the colors received in round
// r-1 and broadcasts the result, halting after the last step.
//
//distcolor:noalloc
func (mc *machine) StepWord(round int, in, out []sim.Word) bool {
	if round == 0 {
		if len(mc.schedule) == 0 {
			*mc.sink = mc.color
			return true
		}
		sim.SendAllWords(out, mc.color)
		return false
	}
	st := mc.schedule[round-1]
	mc.color = mc.applyStep(in, st)
	if round == len(mc.schedule) {
		*mc.sink = mc.color
		return true
	}
	sim.SendAllWords(out, mc.color)
	return false
}

// applyStep performs one polynomial reduction at a single vertex, writing
// all coefficient vectors into the machine's scratch slabs.
//
//distcolor:noalloc
func (mc *machine) applyStep(in []sim.Word, st Step) int64 {
	d, q := st.D, st.Q
	k := int(d + 1)
	if cap(mc.mine) < k {
		mc.mine = make([]int64, k)
	}
	mine := mc.mine[:k]
	decomposeInto(mine, mc.color, q)
	if need := k * len(in); cap(mc.nbrs) < need {
		mc.nbrs = make([]int64, need)
	}
	// Decompose each relevant neighbor color once, in port order.
	cnt := 0
	for _, w := range in {
		if w == sim.NoWord || w == mc.color {
			// A silent port carries nothing; an equal color would mean an
			// improper input coloring (the caller's validation catches it).
			continue
		}
		decomposeInto(mc.nbrs[cnt*k:cnt*k+k], w, q)
		cnt++
	}
	nbrs := mc.nbrs[:cnt*k]
	for x := int64(0); x < q; x++ {
		val := evalPoly(mine, x, q)
		ok := true
		for off := 0; off < len(nbrs); off += k {
			if evalPoly(nbrs[off:off+k], x, q) == val {
				ok = false
				break
			}
		}
		if ok {
			return x*q + val
		}
	}
	// Unreachable when q > dΔ and the input coloring is proper.
	panicNoEvalPoint(q, d, cnt)
	return 0
}

// panicNoEvalPoint reports the invariant violation out of line: the
// Sprintf boxing lives in this cold unannotated helper, not on the
// noalloc hot path.
func panicNoEvalPoint(q, d int64, cnt int) {
	panic(fmt.Sprintf("linial: no evaluation point in F_%d for degree %d with %d neighbors", q, d, cnt))
}

// decomposeInto writes c in base q as len(coeffs) coefficients
// (little-endian) into the provided buffer.
func decomposeInto(coeffs []int64, c, q int64) {
	for i := range coeffs {
		coeffs[i] = c % q
		c /= q
	}
}

// decompose writes c in base q as k coefficients (little-endian). Kept as
// the allocation-per-call form for the reference path in tests.
func decompose(c, q, k int64) []int64 {
	coeffs := make([]int64, k)
	decomposeInto(coeffs, c, q)
	return coeffs
}

// evalPoly evaluates the polynomial with the given little-endian
// coefficients at x over F_q (Horner).
func evalPoly(coeffs []int64, x, q int64) int64 {
	var acc int64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = (acc*x + coeffs[i]) % q
	}
	return acc
}
