// Package bench is the experiment harness behind EXPERIMENTS.md: it builds
// the workloads, runs the paper's algorithms against their baselines, and
// renders the measured counterparts of the paper's Tables 1 and 2 and the
// Section 5 theorem suite. Both cmd/colorbench and the repository's Go
// benchmarks drive everything through this package, so the printed tables
// and the regression benchmarks can never drift apart.
//
// Every run is verified before it is reported: a row is only produced if
// the coloring is proper and within its declared palette.
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/baseline"
	"repro/internal/cd"
	"repro/internal/cliques"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/star"
	"repro/internal/vc"
	"repro/internal/verify"
)

// Measurement is one verified algorithm execution.
type Measurement struct {
	Algorithm string
	Colors    int64 // palette bound actually guaranteed
	Used      int   // distinct colors actually used
	Rounds    int
	Messages  int64
}

// Table1Row compares the paper's (2^{x+1}Δ)-edge-coloring against the
// emulated previous-best ((2^{x+1}+ε)Δ) and the classical (2Δ−1) baseline
// on one near-regular graph.
type Table1Row struct {
	N, Delta, X int
	Ours        Measurement // star partition, Theorem 4.1
	Previous    Measurement // BE11 emulation ([7]+[17] profile)
	TwoDelta    Measurement // classical 2Δ−1
	Greedy      Measurement // sequential greedy reference (0 rounds)
}

// RunTable1Row builds the workload and produces one verified row.
func RunTable1Row(ctx context.Context, n, delta, x int, seed int64) (*Table1Row, error) {
	g, err := gen.NearRegular(n, delta, seed)
	if err != nil {
		return nil, err
	}
	row := &Table1Row{N: n, Delta: g.MaxDegree(), X: x}

	t, err := star.ChooseT(g.MaxDegree(), x)
	if err != nil {
		return nil, fmt.Errorf("bench: table1 Δ=%d x=%d: %w", delta, x, err)
	}
	ours, err := star.EdgeColor(ctx, g, t, x, star.Options{})
	if err != nil {
		return nil, err
	}
	if err := verify.EdgeColoring(g, ours.Colors, ours.Palette); err != nil {
		return nil, fmt.Errorf("bench: ours improper: %w", err)
	}
	row.Ours = Measurement{
		Algorithm: fmt.Sprintf("star/x=%d", x),
		Colors:    ours.Palette, Used: verify.PaletteUsed(ours.Colors),
		Rounds: ours.Stats.Rounds, Messages: ours.Stats.Messages,
	}

	prev, err := baseline.BE11EdgeColor(ctx, g, x, star.Options{})
	if err != nil {
		return nil, err
	}
	if err := verify.EdgeColoring(g, prev.Colors, prev.Declared); err != nil {
		return nil, fmt.Errorf("bench: baseline improper: %w", err)
	}
	row.Previous = Measurement{
		Algorithm: fmt.Sprintf("BE11/x=%d", x),
		Colors:    prev.Declared, Used: verify.PaletteUsed(prev.Colors),
		Rounds: prev.Stats.Rounds, Messages: prev.Stats.Messages,
	}

	td, err := baseline.TwoDeltaMinusOne(ctx, g, vc.Options{})
	if err != nil {
		return nil, err
	}
	if err := verify.EdgeColoring(g, td.Colors, td.Palette); err != nil {
		return nil, fmt.Errorf("bench: 2Δ−1 improper: %w", err)
	}
	row.TwoDelta = Measurement{
		Algorithm: "2Δ−1",
		Colors:    td.Palette, Used: verify.PaletteUsed(td.Colors),
		Rounds: td.Stats.Rounds, Messages: td.Stats.Messages,
	}

	gr := baseline.GreedyEdge(g)
	row.Greedy = Measurement{Algorithm: "greedy(seq)", Colors: int64(2*g.MaxDegree() - 1), Used: verify.PaletteUsed(gr)}
	return row, nil
}

// Table2Row compares CD-Coloring against the emulated previous best on one
// bounded-diversity instance (the line graph of a 3-uniform hypergraph).
type Table2Row struct {
	N, D, S, X int
	Ours       Measurement
	Previous   Measurement
	Greedy     Measurement
}

// RunTable2Row builds a diversity-D instance with clique size ≈ s and
// produces one verified row.
func RunTable2Row(ctx context.Context, nv, rank, ne, x int, seed int64) (*Table2Row, error) {
	h, err := gen.UniformHypergraph(nv, rank, ne, seed)
	if err != nil {
		return nil, err
	}
	lg := h.LineGraph()
	var lists [][]int32
	for _, cl := range lg.Cliques {
		if len(cl) >= 2 {
			lists = append(lists, cl)
		}
	}
	cov, err := cliques.NewCover(lg.L, lists)
	if err != nil {
		return nil, err
	}
	g := lg.L
	d, s := cov.Diversity(), cov.MaxCliqueSize()
	row := &Table2Row{N: g.N(), D: d, S: s, X: x}

	ours, err := cd.Color(ctx, g, cov, cd.ChooseT(s, x), x, cd.Options{})
	if err != nil {
		return nil, err
	}
	if err := verify.VertexColoring(g, ours.Colors, ours.Palette); err != nil {
		return nil, fmt.Errorf("bench: cd improper: %w", err)
	}
	row.Ours = Measurement{
		Algorithm: fmt.Sprintf("cd/x=%d", x),
		Colors:    ours.Palette, Used: verify.PaletteUsed(ours.Colors),
		Rounds: ours.Stats.Rounds, Messages: ours.Stats.Messages,
	}

	prev, err := baseline.BE11VertexColor(ctx, g, cov, x, cd.Options{})
	if err != nil {
		return nil, err
	}
	if err := verify.VertexColoring(g, prev.Colors, prev.Declared); err != nil {
		return nil, fmt.Errorf("bench: cd baseline improper: %w", err)
	}
	row.Previous = Measurement{
		Algorithm: fmt.Sprintf("BE11v/x=%d", x),
		Colors:    prev.Declared, Used: verify.PaletteUsed(prev.Colors),
		Rounds: prev.Stats.Rounds, Messages: prev.Stats.Messages,
	}

	gr := baseline.GreedyVertex(g)
	row.Greedy = Measurement{Algorithm: "greedy(seq)", Colors: int64(g.MaxDegree() + 1), Used: verify.PaletteUsed(gr)}
	return row, nil
}

// FitSlope returns the least-squares slope of log(y) against log(x) — the
// empirical exponent of a power-law relationship. Used for the shape checks
// of the round columns (who wins and by what polynomial factor).
func FitSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / denom
}

// RenderTable writes an aligned text table.
func RenderTable(w io.Writer, title string, header []string, rows [][]string) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title))); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(header, "\t")); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(tw, strings.Join(r, "\t")); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// SparseRow compares the Section 5 algorithms against the 2Δ−1 baseline on
// an arboricity-bounded workload.
type SparseRow struct {
	N, Delta, Arb int
	Rows          []Measurement
}

// RunSparseRow measures Theorems 5.2/5.3/5.4(x=2) and the adaptive choice.
func RunSparseRow(ctx context.Context, n, a, hub int, seed int64) (*SparseRow, error) {
	g, err := gen.ForestUnionHub(n, a, hub, seed)
	if err != nil {
		return nil, err
	}
	bound := a + 1
	row := &SparseRow{N: g.N(), Delta: g.MaxDegree(), Arb: bound}
	type runner struct {
		name string
		run  func() (colors []int64, palette int64, stats sim.Stats, err error)
	}
	runners := []runner{
		{"thm5.2", func() ([]int64, int64, sim.Stats, error) {
			r, err := arborColorHPartition(ctx, g, bound)
			if err != nil {
				return nil, 0, sim.Stats{}, err
			}
			return r.Colors, r.Palette, r.Stats, nil
		}},
		{"thm5.3", func() ([]int64, int64, sim.Stats, error) {
			r, err := arborColorSqrt(ctx, g, bound)
			if err != nil {
				return nil, 0, sim.Stats{}, err
			}
			return r.Colors, r.Palette, r.Stats, nil
		}},
		{"thm5.4/x=2", func() ([]int64, int64, sim.Stats, error) {
			r, err := arborColorRecursive(ctx, g, bound, 2)
			if err != nil {
				return nil, 0, sim.Stats{}, err
			}
			return r.Colors, r.Palette, r.Stats, nil
		}},
		{"adaptive", func() ([]int64, int64, sim.Stats, error) {
			r, _, err := arborColorAdaptive(ctx, g, bound)
			if err != nil {
				return nil, 0, sim.Stats{}, err
			}
			return r.Colors, r.Palette, r.Stats, nil
		}},
		{"2Δ−1/BE08", func() ([]int64, int64, sim.Stats, error) {
			r, err := baseline.BE08EdgeColor(ctx, g, bound, vc.Options{})
			if err != nil {
				return nil, 0, sim.Stats{}, err
			}
			return r.Colors, r.Palette, r.Stats, nil
		}},
	}
	if g.MaxDegree() <= 300 {
		// The classical line-graph (2Δ−1) baseline is Θ(Δ log Δ) rounds on
		// a Θ(m·Δ)-edge line graph: include it only at sizes where it
		// finishes in reasonable wall-clock time; BE08 provides the same
		// palette at every scale.
		runners = append(runners, runner{"2Δ−1/line", func() ([]int64, int64, sim.Stats, error) {
			r, err := baseline.TwoDeltaMinusOne(ctx, g, vc.Options{})
			if err != nil {
				return nil, 0, sim.Stats{}, err
			}
			return r.Colors, r.Palette, r.Stats, nil
		}})
	}
	for _, r := range runners {
		colors, palette, stats, err := r.run()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", r.name, err)
		}
		if err := verify.EdgeColoring(g, colors, palette); err != nil {
			return nil, fmt.Errorf("bench: %s improper: %w", r.name, err)
		}
		row.Rows = append(row.Rows, Measurement{
			Algorithm: r.name,
			Colors:    palette, Used: verify.PaletteUsed(colors),
			Rounds: stats.Rounds, Messages: stats.Messages,
		})
	}
	return row, nil
}

// Workload returns the standard Table 1 graph for a given Δ (n = 8Δ keeps
// density realistic while letting Δ drive the asymptotics).
func Workload(delta int, seed int64) (*graph.Graph, error) {
	return gen.NearRegular(8*delta, delta, seed)
}
