package bench

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleReport() *SimCoreReport {
	return &SimCoreReport{
		Schema:    SimCoreSchema,
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		NumCPU:    4,
		Results: []SimCoreResult{
			{Name: "plane/a", NsPerOp: 1000, AllocsPerOp: 10, AllocsPerRound: 0, Rounds: 32, Messages: 640},
			{Name: "algo/b", NsPerOp: 5000, AllocsPerOp: 200, AllocsPerRound: -1, Colors: 49, Rounds: 81, Messages: 9000},
		},
	}
}

func TestCompareSimCoreAccepts(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	// Faster and leaner always passes; within-band jitter passes.
	cur.Results[0].NsPerOp = 500
	cur.Results[1].NsPerOp = 5700 // +14% < 15%
	problems, notes := CompareSimCore(base, cur, 0.15)
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	if len(notes) != 0 {
		t.Fatalf("same runner class must not produce notes: %v", notes)
	}
}

// TestCompareSimCoreCrossMachine pins the environment gate: on a different
// runner class the wall-clock bands are skipped (with a note telling the
// operator to regenerate), while deterministic drift and the
// zero-allocs-per-round pin still fail.
func TestCompareSimCoreCrossMachine(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.NumCPU = 16
	cur.Results[0].NsPerOp = 10 * base.Results[0].NsPerOp // would fail in-class
	problems, notes := CompareSimCore(base, cur, 0.15)
	if len(problems) != 0 {
		t.Fatalf("cross-machine ns/op must not be a problem: %v", problems)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "runner class") {
		t.Fatalf("expected a runner-class note, got %v", notes)
	}
	cur.Results[0].AllocsPerRound = 3
	cur.Results[1].Rounds = 99
	problems, _ = CompareSimCore(base, cur, 0.15)
	if len(problems) != 2 {
		t.Fatalf("machine-independent checks must still fire cross-machine, got %v", problems)
	}
}

func TestCompareSimCoreFlagsRegressions(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SimCoreReport)
		want   string
	}{
		{"ns", func(r *SimCoreReport) { r.Results[0].NsPerOp = 1200 }, "ns/op regressed"},
		{"allocs", func(r *SimCoreReport) { r.Results[1].AllocsPerOp = 300 }, "allocs/op regressed"},
		{"per-round", func(r *SimCoreReport) { r.Results[0].AllocsPerRound = 2 }, "steady-state rounds allocate"},
		{"rounds", func(r *SimCoreReport) { r.Results[0].Rounds = 33 }, "deterministic metrics drifted"},
		{"messages", func(r *SimCoreReport) { r.Results[1].Messages = 9001 }, "deterministic metrics drifted"},
		{"colors", func(r *SimCoreReport) { r.Results[1].Colors = 50 }, "deterministic metrics drifted"},
		{"missing", func(r *SimCoreReport) { r.Results = r.Results[:1] }, "workload missing"},
		{"extra", func(r *SimCoreReport) {
			r.Results = append(r.Results, SimCoreResult{Name: "plane/new"})
		}, "not in baseline"},
		{"schema", func(r *SimCoreReport) { r.Schema = 99 }, "schema"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := sampleReport()
			tc.mutate(cur)
			problems, _ := CompareSimCore(sampleReport(), cur, 0.15)
			if len(problems) == 0 {
				t.Fatal("regression not flagged")
			}
			found := false
			for _, p := range problems {
				if strings.Contains(p.String(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("problems %v do not mention %q", problems, tc.want)
			}
		})
	}
}

// TestCompareSimCoreAllocsPerRoundSentinel pins the -1 "unmeasured"
// semantics: both sides unmeasured is silent; a workload that stops
// measuring a pinned metric is a problem; a workload that starts
// measuring one is a note (regenerate to pin); a measured nonzero value
// is banded like the other machine-dependent metrics.
func TestCompareSimCoreAllocsPerRoundSentinel(t *testing.T) {
	t.Run("both-unmeasured", func(t *testing.T) {
		problems, notes := CompareSimCore(sampleReport(), sampleReport(), 0.15)
		if len(problems) != 0 || len(notes) != 0 {
			t.Fatalf("unexpected output: %v %v", problems, notes)
		}
	})
	t.Run("stopped-measuring", func(t *testing.T) {
		cur := sampleReport()
		cur.Results[0].AllocsPerRound = -1 // baseline pins 0
		problems, _ := CompareSimCore(sampleReport(), cur, 0.15)
		if len(problems) != 1 || !strings.Contains(problems[0].String(), "no longer measured") {
			t.Fatalf("dropping a pinned allocs/round must fail, got %v", problems)
		}
	})
	t.Run("started-measuring", func(t *testing.T) {
		cur := sampleReport()
		cur.Results[1].AllocsPerRound = 2 // baseline has the -1 sentinel
		problems, notes := CompareSimCore(sampleReport(), cur, 0.15)
		if len(problems) != 0 {
			t.Fatalf("newly measured allocs/round must not fail, got %v", problems)
		}
		if len(notes) != 1 || !strings.Contains(notes[0], "now measured") {
			t.Fatalf("expected a regenerate note, got %v", notes)
		}
	})
	t.Run("nonzero-banded", func(t *testing.T) {
		base := sampleReport()
		base.Results[0].AllocsPerRound = 10
		cur := sampleReport()
		cur.Results[0].AllocsPerRound = 11 // +10% < 15%
		if problems, _ := CompareSimCore(base, cur, 0.15); len(problems) != 0 {
			t.Fatalf("in-band allocs/round must pass, got %v", problems)
		}
		cur.Results[0].AllocsPerRound = 12 // +20% > 15%
		problems, _ := CompareSimCore(base, cur, 0.15)
		if len(problems) != 1 || !strings.Contains(problems[0].String(), "allocs/round regressed") {
			t.Fatalf("out-of-band allocs/round must fail, got %v", problems)
		}
	})
}

// TestCompareSimCoreParallelGating pins the CPU-count gate: presence
// mismatches of parallel-engine workloads are environment notes (a
// single-CPU runner cannot measure them), never regressions — in both
// directions. Non-parallel workloads keep the strict presence check.
func TestCompareSimCoreParallelGating(t *testing.T) {
	par := SimCoreResult{Name: "plane/x/parallel-10k", NsPerOp: 900, AllocsPerOp: 12, AllocsPerRound: -1, Rounds: 32, Messages: 640}
	t.Run("baseline-has-it-current-does-not", func(t *testing.T) {
		base := sampleReport()
		base.Results = append(base.Results, par)
		cur := sampleReport()
		cur.NumCPU = 1
		problems, notes := CompareSimCore(base, cur, 0.15)
		if len(problems) != 0 {
			t.Fatalf("gated absence must not be a problem: %v", problems)
		}
		found := false
		for _, n := range notes {
			if strings.Contains(n, "parallel workloads need >1 CPU") {
				found = true
			}
		}
		if !found {
			t.Fatalf("expected a gating note, got %v", notes)
		}
	})
	t.Run("current-has-it-baseline-does-not", func(t *testing.T) {
		base := sampleReport()
		base.NumCPU = 1
		cur := sampleReport()
		cur.Results = append(cur.Results, par)
		problems, notes := CompareSimCore(base, cur, 0.15)
		if len(problems) != 0 {
			t.Fatalf("gated extra workload must not be a problem: %v", problems)
		}
		found := false
		for _, n := range notes {
			if strings.Contains(n, "absent from the baseline") {
				found = true
			}
		}
		if !found {
			t.Fatalf("expected a regenerate note, got %v", notes)
		}
	})
	// The leniency is CPU-conditional: on a runner that CAN measure the
	// parallel workloads, losing one (or having an unguarded extra one) is
	// a regression like any other.
	t.Run("lost-on-multi-cpu-runner-is-a-problem", func(t *testing.T) {
		base := sampleReport()
		base.Results = append(base.Results, par)
		cur := sampleReport() // NumCPU = 4: could have measured it
		problems, _ := CompareSimCore(base, cur, 0.15)
		if len(problems) != 1 || !strings.Contains(problems[0].String(), "workload missing") {
			t.Fatalf("losing a parallel workload on a multi-CPU runner must fail, got %v", problems)
		}
	})
	t.Run("extra-vs-multi-cpu-baseline-is-a-problem", func(t *testing.T) {
		base := sampleReport() // NumCPU = 4: would have recorded it
		cur := sampleReport()
		cur.Results = append(cur.Results, par)
		problems, _ := CompareSimCore(base, cur, 0.15)
		if len(problems) != 1 || !strings.Contains(problems[0].String(), "not in baseline") {
			t.Fatalf("an unguarded parallel workload vs a multi-CPU baseline must fail, got %v", problems)
		}
	})
}

// TestCompareSimCoreMissingBaselineEntryDirection: an extra baseline entry
// (current run lost a workload) and an extra current entry (baseline is
// stale) are both problems — the check must fail until the baseline is
// regenerated, never silently skip.
func TestCompareSimCoreSymmetry(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Results[0].Name = "plane/renamed"
	problems, _ := CompareSimCore(base, cur, 0.15)
	if len(problems) != 2 {
		t.Fatalf("want missing+extra problems, got %v", problems)
	}
}

// TestSimCoreDeterministicMetricsStable pins that repeated executions of a
// suite workload agree on the deterministic columns across every engine —
// the property the cross-machine exact comparison relies on. The full
// benchmark suite is too slow for the test tier, so this drives the
// underlying workload directly.
func TestSimCoreDeterministicMetricsStable(t *testing.T) {
	ctx := context.Background()
	g, err := Workload(16, simCoreSeed)
	if err != nil {
		t.Fatal(err)
	}
	topo := sim.NewTopology(g)
	var want sim.Stats
	for i, eng := range []sim.Engine{sim.Sequential, sim.Sequential, sim.Parallel, sim.ReverseSequential} {
		stats, err := eng.Run(ctx, topo, wavefrontFactory(simCoreRounds), simCoreRounds+2)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = stats
			continue
		}
		if stats != want {
			t.Fatalf("engine %v: deterministic metrics differ: %+v vs %+v", eng, stats, want)
		}
	}
	if want.Rounds != simCoreRounds {
		t.Fatalf("wavefront rounds = %d, want %d", want.Rounds, simCoreRounds)
	}
}
