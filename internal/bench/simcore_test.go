package bench

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleReport() *SimCoreReport {
	return &SimCoreReport{
		Schema:    SimCoreSchema,
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		NumCPU:    4,
		Results: []SimCoreResult{
			{Name: "plane/a", NsPerOp: 1000, AllocsPerOp: 10, AllocsPerRound: 0, Rounds: 32, Messages: 640},
			{Name: "algo/b", NsPerOp: 5000, AllocsPerOp: 200, AllocsPerRound: -1, Colors: 49, Rounds: 81, Messages: 9000},
		},
	}
}

func TestCompareSimCoreAccepts(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	// Faster and leaner always passes; within-band jitter passes.
	cur.Results[0].NsPerOp = 500
	cur.Results[1].NsPerOp = 5700 // +14% < 15%
	problems, notes := CompareSimCore(base, cur, 0.15)
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	if len(notes) != 0 {
		t.Fatalf("same runner class must not produce notes: %v", notes)
	}
}

// TestCompareSimCoreCrossMachine pins the environment gate: on a different
// runner class the wall-clock bands are skipped (with a note telling the
// operator to regenerate), while deterministic drift and the
// zero-allocs-per-round pin still fail.
func TestCompareSimCoreCrossMachine(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.NumCPU = 16
	cur.Results[0].NsPerOp = 10 * base.Results[0].NsPerOp // would fail in-class
	problems, notes := CompareSimCore(base, cur, 0.15)
	if len(problems) != 0 {
		t.Fatalf("cross-machine ns/op must not be a problem: %v", problems)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "runner class") {
		t.Fatalf("expected a runner-class note, got %v", notes)
	}
	cur.Results[0].AllocsPerRound = 3
	cur.Results[1].Rounds = 99
	problems, _ = CompareSimCore(base, cur, 0.15)
	if len(problems) != 2 {
		t.Fatalf("machine-independent checks must still fire cross-machine, got %v", problems)
	}
}

func TestCompareSimCoreFlagsRegressions(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SimCoreReport)
		want   string
	}{
		{"ns", func(r *SimCoreReport) { r.Results[0].NsPerOp = 1200 }, "ns/op regressed"},
		{"allocs", func(r *SimCoreReport) { r.Results[1].AllocsPerOp = 300 }, "allocs/op regressed"},
		{"per-round", func(r *SimCoreReport) { r.Results[0].AllocsPerRound = 2 }, "steady-state rounds allocate"},
		{"rounds", func(r *SimCoreReport) { r.Results[0].Rounds = 33 }, "deterministic metrics drifted"},
		{"messages", func(r *SimCoreReport) { r.Results[1].Messages = 9001 }, "deterministic metrics drifted"},
		{"colors", func(r *SimCoreReport) { r.Results[1].Colors = 50 }, "deterministic metrics drifted"},
		{"missing", func(r *SimCoreReport) { r.Results = r.Results[:1] }, "workload missing"},
		{"extra", func(r *SimCoreReport) {
			r.Results = append(r.Results, SimCoreResult{Name: "plane/new"})
		}, "not in baseline"},
		{"schema", func(r *SimCoreReport) { r.Schema = 99 }, "schema"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := sampleReport()
			tc.mutate(cur)
			problems, _ := CompareSimCore(sampleReport(), cur, 0.15)
			if len(problems) == 0 {
				t.Fatal("regression not flagged")
			}
			found := false
			for _, p := range problems {
				if strings.Contains(p.String(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("problems %v do not mention %q", problems, tc.want)
			}
		})
	}
}

// TestCompareSimCoreMissingBaselineEntryDirection: an extra baseline entry
// (current run lost a workload) and an extra current entry (baseline is
// stale) are both problems — the check must fail until the baseline is
// regenerated, never silently skip.
func TestCompareSimCoreSymmetry(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Results[0].Name = "plane/renamed"
	problems, _ := CompareSimCore(base, cur, 0.15)
	if len(problems) != 2 {
		t.Fatalf("want missing+extra problems, got %v", problems)
	}
}

// TestSimCoreDeterministicMetricsStable pins that repeated executions of a
// suite workload agree on the deterministic columns across every engine —
// the property the cross-machine exact comparison relies on. The full
// benchmark suite is too slow for the test tier, so this drives the
// underlying workload directly.
func TestSimCoreDeterministicMetricsStable(t *testing.T) {
	ctx := context.Background()
	g, err := Workload(16, simCoreSeed)
	if err != nil {
		t.Fatal(err)
	}
	topo := sim.NewTopology(g)
	var want sim.Stats
	for i, eng := range []sim.Engine{sim.Sequential, sim.Sequential, sim.Parallel, sim.ReverseSequential} {
		stats, err := eng.Run(ctx, topo, wavefrontFactory(simCoreRounds), simCoreRounds+2)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = stats
			continue
		}
		if stats != want {
			t.Fatalf("engine %v: deterministic metrics differ: %+v vs %+v", eng, stats, want)
		}
	}
	if want.Rounds != simCoreRounds {
		t.Fatalf("wavefront rounds = %d, want %d", want.Rounds, simCoreRounds)
	}
}
