package bench

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

func TestRunTable1Row(t *testing.T) {
	row, err := RunTable1Row(context.Background(), 256, 16, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Color relationships of Table 1: ours ≤ 4Δ < baseline bound; both use
	// more colors than the classical 2Δ−1 but fewer rounds asymptotically.
	if row.Ours.Colors > int64(4*row.Delta) {
		t.Fatalf("ours colors %d > 4Δ", row.Ours.Colors)
	}
	if row.Ours.Rounds <= 0 || row.Previous.Rounds <= 0 {
		t.Fatal("missing rounds")
	}
	if row.Greedy.Rounds != 0 {
		t.Fatal("greedy must report zero rounds")
	}
	if row.Greedy.Used > 2*row.Delta-1 {
		t.Fatal("greedy used too many colors")
	}
}

func TestRunTable2Row(t *testing.T) {
	row, err := RunTable2Row(context.Background(), 50, 3, 90, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if row.D > 3 {
		t.Fatalf("diversity %d > rank", row.D)
	}
	bound := int64(row.D) * int64(row.D) * int64(row.S)
	if row.Ours.Colors > bound {
		t.Fatalf("cd colors %d > D²S = %d", row.Ours.Colors, bound)
	}
}

func TestRunSparseRow(t *testing.T) {
	row, err := RunSparseRow(context.Background(), 400, 2, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Rows) != 6 {
		t.Fatalf("expected 6 measurements (incl. both 2Δ−1 baselines), got %d", len(row.Rows))
	}
	var thm52, twoDelta *Measurement
	for i := range row.Rows {
		switch row.Rows[i].Algorithm {
		case "thm5.2":
			thm52 = &row.Rows[i]
		case "2Δ−1/line":
			twoDelta = &row.Rows[i]
		}
	}
	if thm52 == nil || twoDelta == nil {
		t.Fatal("expected thm5.2 and 2Δ−1/line rows")
	}
	// Theorem 5.2's whole point: fewer colors than 2Δ−1 when a ≪ Δ.
	if thm52.Colors >= twoDelta.Colors {
		t.Fatalf("thm5.2 palette %d not below 2Δ−1 %d", thm52.Colors, twoDelta.Colors)
	}
}

func TestFitSlope(t *testing.T) {
	// y = x² exactly.
	xs := []float64{2, 4, 8, 16}
	ys := []float64{4, 16, 64, 256}
	if s := FitSlope(xs, ys); math.Abs(s-2) > 1e-9 {
		t.Fatalf("slope %f, want 2", s)
	}
	if !math.IsNaN(FitSlope([]float64{1}, []float64{1})) {
		t.Fatal("short input should give NaN")
	}
	if !math.IsNaN(FitSlope([]float64{1, 1}, []float64{2, 3})) {
		t.Fatal("degenerate x should give NaN")
	}
}

func TestRenderTable(t *testing.T) {
	var buf bytes.Buffer
	err := RenderTable(&buf, "Demo", []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "a", "3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWorkload(t *testing.T) {
	g, err := Workload(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 16 || g.N() != 128 {
		t.Fatalf("workload shape wrong: n=%d Δ=%d", g.N(), g.MaxDegree())
	}
}
