package bench

import (
	"repro/internal/arbor"
	"repro/internal/graph"
)

// Thin indirections keep the arbor dependency in one place and give the
// harness a uniform signature set.

func arborColorHPartition(g *graph.Graph, a int) (*arbor.Result, error) {
	return arbor.ColorHPartition(g, a, arbor.Options{})
}

func arborColorSqrt(g *graph.Graph, a int) (*arbor.Result, error) {
	return arbor.ColorSqrt(g, a, arbor.Options{})
}

func arborColorRecursive(g *graph.Graph, a, x int) (*arbor.Result, error) {
	return arbor.ColorRecursive(g, a, x, arbor.Options{})
}

func arborColorAdaptive(g *graph.Graph, a int) (*arbor.Result, arbor.Plan, error) {
	res, plan, err := arbor.ColorAdaptive(g, a, arbor.Options{})
	return res, plan, err
}
