package bench

import (
	"context"
	"repro/internal/arbor"
	"repro/internal/graph"
)

// Thin indirections keep the arbor dependency in one place and give the
// harness a uniform signature set.

func arborColorHPartition(ctx context.Context, g *graph.Graph, a int) (*arbor.Result, error) {
	return arbor.ColorHPartition(ctx, g, a, arbor.Options{})
}

func arborColorSqrt(ctx context.Context, g *graph.Graph, a int) (*arbor.Result, error) {
	return arbor.ColorSqrt(ctx, g, a, arbor.Options{})
}

func arborColorRecursive(ctx context.Context, g *graph.Graph, a, x int) (*arbor.Result, error) {
	return arbor.ColorRecursive(ctx, g, a, x, arbor.Options{})
}

func arborColorAdaptive(ctx context.Context, g *graph.Graph, a int) (*arbor.Result, arbor.Plan, error) {
	res, plan, err := arbor.ColorAdaptive(ctx, g, a, arbor.Options{})
	return res, plan, err
}
