package bench

// End-to-end algorithm benchmarks — the stdlib-benchmark twins of the
// algo/* workloads in the simulator-core suite (simcore.go), so the same
// executions are measurable with benchstat:
//
//	make bench-algos                            # one smoke pass
//	make bench-algos BENCH_COUNT=10 > new.txt   # benchstat-grade samples
//	benchstat old.txt new.txt
//
// CI runs bench-algos on pull requests for both the base and head commits
// and uploads the comparison as a build artifact (.github/workflows/ci.yml).

import (
	"context"
	"testing"

	"repro/internal/cd"
	"repro/internal/cliques"
	"repro/internal/gen"
	"repro/internal/linial"
	"repro/internal/sim"
	"repro/internal/star"
)

func BenchmarkAlgoLinial10k(b *testing.B) {
	g, err := gen.NearRegular(simCoreN, 8, simCoreSeed)
	if err != nil {
		b.Fatal(err)
	}
	g.CSR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linial.Reduce(context.Background(), sim.Sequential, sim.NewTopology(g), int64(g.N())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgoStarD32(b *testing.B) {
	g, err := Workload(32, simCoreSeed)
	if err != nil {
		b.Fatal(err)
	}
	t, err := star.ChooseT(g.MaxDegree(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := star.EdgeColor(context.Background(), g, t, 1, star.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgoCDH3(b *testing.B) {
	h, err := gen.UniformHypergraph(simCoreCDVerts, 3, simCoreCDEdges, simCoreSeed)
	if err != nil {
		b.Fatal(err)
	}
	lg := h.LineGraph()
	cov, err := cliques.FromLineGraph(lg)
	if err != nil {
		b.Fatal(err)
	}
	t := cd.ChooseT(cov.MaxCliqueSize(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cd.Color(context.Background(), lg.L, cov, t, 1, cd.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgoEdgePipe100k(b *testing.B) {
	g, err := gen.NearRegular(simCorePipeN, simCorePipeDeg, simCoreSeed)
	if err != nil {
		b.Fatal(err)
	}
	t, err := star.ChooseT(g.MaxDegree(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := star.EdgeColor(context.Background(), g, t, 1, star.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
