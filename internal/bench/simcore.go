package bench

// The simulator-core perf suite behind BENCH_simcore.json: fixed workloads
// over the flat CSR + arena data plane (internal/sim, DESIGN.md §7),
// measured with the stdlib benchmark machinery and emitted as
// machine-readable results. `colorbench -json` writes the report;
// `colorbench -json -check FILE` re-runs the suite and fails on
// regressions against a committed baseline — `make bench-baseline` /
// `make bench-check` wrap both, and CI runs the check on every push.
//
// Two kinds of numbers live in a report. Deterministic workload metrics
// (rounds, messages, colors) must match a baseline exactly on every
// machine: a drift means the execution changed, not the hardware.
// Machine-dependent metrics (ns/op, allocs) are compared with a tolerance
// band, and allocs-per-round is pinned at exactly zero for the sequential
// engines' steady state — the tentpole contract of the arena data plane.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/linial"
	"repro/internal/sim"
	"repro/internal/star"
	"repro/internal/verify"
)

// SimCoreSchema versions the report layout.
const SimCoreSchema = 1

// SimCoreResult is one measured workload of the simulator-core suite.
type SimCoreResult struct {
	Name string `json:"name"`
	// NsPerOp and the alloc metrics are the fastest observed full
	// execution of the workload (setup + every round); see measureOp.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// AllocsPerRound is the marginal heap allocation cost of one extra
	// round in the steady state, measured by differencing runs of
	// different lengths (setup cost cancels exactly). -1 when not
	// measured for this workload (parallel engine, algorithm workloads).
	AllocsPerRound float64 `json:"allocs_per_round"`
	// Deterministic workload metrics; identical on every machine.
	Colors   int64 `json:"colors,omitempty"`
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
}

// SimCoreReport is the full suite output, annotated with the environment
// that produced it.
type SimCoreReport struct {
	Schema    int             `json:"schema"`
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	NumCPU    int             `json:"num_cpu"`
	Results   []SimCoreResult `json:"results"`
}

const (
	simCoreN      = 10_000 // the 10k-vertex plane workload
	simCoreDeg    = 16
	simCoreRounds = 32
	simCoreSeed   = 2017
)

// wavefrontFactory is the canonical plane workload: vertices exchange
// word-sized payloads and halt in staggered waves (vertex v runs
// 1 + ID mod span rounds), the termination pattern of the repository's
// algorithms.
func wavefrontFactory(span int) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		stop := 1 + int(info.ID)%span
		var acc int64
		return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
			for _, m := range in {
				if m != nil {
					acc += m.(int64)
				}
			}
			sim.SendAll(out, int64(round&0x7f))
			return round >= stop-1
		})
	}
}

// exchangeFactory keeps every vertex live for the whole execution — the
// dense-traffic bound of the plane.
func exchangeFactory(rounds int) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		var acc int64
		return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
			for _, m := range in {
				if m != nil {
					acc += m.(int64)
				}
			}
			sim.SendAll(out, int64(round&0x7f))
			return round >= rounds-1
		})
	}
}

// measureOp times one workload execution repeatedly and returns the
// fastest observed op with its leanest heap-allocation profile. Taking
// the minimum rather than the mean makes the numbers reproducible on
// noisy shared runners (interference only ever slows an op down, never
// speeds it up), which is what lets bench-check hold a 15% band in CI.
func measureOp(fn func() error) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
	if err := fn(); err != nil { // warm-up: caches, lazy inits, first GC growth
		return 0, 0, 0, err
	}
	const (
		minOps = 5
		maxOps = 15
		budget = 2 * time.Second
	)
	nsPerOp = math.MaxInt64
	allocsPerOp = math.MaxInt64
	bytesPerOp = math.MaxInt64
	start := time.Now()
	var m0, m1 runtime.MemStats
	for op := 0; op < maxOps && (op < minOps || time.Since(start) < budget); op++ {
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, 0, 0, err
		}
		d := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&m1)
		if d < nsPerOp {
			nsPerOp = d
		}
		if a := int64(m1.Mallocs - m0.Mallocs); a < allocsPerOp {
			allocsPerOp = a
		}
		if b := int64(m1.TotalAlloc - m0.TotalAlloc); b < bytesPerOp {
			bytesPerOp = b
		}
	}
	return nsPerOp, allocsPerOp, bytesPerOp, nil
}

// measurePlane benchmarks one engine on one plane program and fills the
// deterministic metrics from a verification run.
func measurePlane(ctx context.Context, name string, eng sim.Engine, topo *sim.Topology, prog func(rounds int) sim.Factory, perRound bool) (SimCoreResult, error) {
	stats, err := eng.Run(ctx, topo, prog(simCoreRounds), simCoreRounds+2)
	if err != nil {
		return SimCoreResult{}, fmt.Errorf("bench: simcore %s: %w", name, err)
	}
	ns, allocs, bytes, err := measureOp(func() error {
		_, err := eng.Run(ctx, topo, prog(simCoreRounds), simCoreRounds+2)
		return err
	})
	if err != nil {
		return SimCoreResult{}, fmt.Errorf("bench: simcore %s: %w", name, err)
	}
	out := SimCoreResult{
		Name:           name,
		NsPerOp:        ns,
		AllocsPerOp:    allocs,
		BytesPerOp:     bytes,
		AllocsPerRound: -1,
		Rounds:         stats.Rounds,
		Messages:       stats.Messages,
	}
	if perRound {
		out.AllocsPerRound = allocsPerRound(ctx, eng, topo, prog)
	}
	return out, nil
}

// allocsPerRound measures the marginal allocation cost of one steady-state
// round of the workload's own program by differencing executions of
// different lengths: instance setup allocates identically in both, so the
// remainder is purely the round loop's. (testing.AllocsPerRun pins
// GOMAXPROCS to 1, so this is only meaningful for the sequential engines.)
func allocsPerRound(ctx context.Context, eng sim.Engine, topo *sim.Topology, prog func(rounds int) sim.Factory) float64 {
	const shortRounds, longRounds = 8, 72
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(3, func() {
			// Errors are impossible here: the same workload was just
			// validated by the measurement run.
			_, _ = eng.Run(ctx, topo, prog(rounds), rounds+2)
		})
	}
	per := (measure(longRounds) - measure(shortRounds)) / float64(longRounds-shortRounds)
	// The marginal cost is a whole number of allocations; fractional
	// residue (either sign) is runtime noise leaking into one of the two
	// measurements, not a per-round allocation.
	if math.Abs(per) < 0.5 {
		return 0
	}
	return per
}

// RunSimCore executes the full simulator-core suite.
func RunSimCore(ctx context.Context) (*SimCoreReport, error) {
	plane, err := gen.NearRegular(simCoreN, simCoreDeg, simCoreSeed)
	if err != nil {
		return nil, err
	}
	planeTopo := sim.NewTopology(plane)
	plane.CSR() // build the cached view once, outside every measurement

	rep := &SimCoreReport{
		Schema:    SimCoreSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	planeRuns := []struct {
		name     string
		eng      sim.Engine
		prog     func(rounds int) sim.Factory
		perRound bool
	}{
		{"plane/wavefront/sequential-10k", sim.Sequential, wavefrontFactory, true},
		{"plane/wavefront/parallel-10k", sim.Parallel, wavefrontFactory, false},
		{"plane/exchange/sequential-10k", sim.Sequential, exchangeFactory, true},
		{"plane/exchange/reverse-10k", sim.ReverseSequential, exchangeFactory, true},
	}
	for _, pr := range planeRuns {
		r, err := measurePlane(ctx, pr.name, pr.eng, planeTopo, pr.prog, pr.perRound)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, r)
	}

	// A real algorithm end-to-end on the 10k workload: the O(log* n)
	// Linial substrate, verified, with its deterministic cost recorded.
	lg, err := gen.NearRegular(simCoreN, 8, simCoreSeed)
	if err != nil {
		return nil, err
	}
	lg.CSR()
	lin, err := linial.Reduce(ctx, sim.Sequential, sim.NewTopology(lg), int64(lg.N()))
	if err != nil {
		return nil, err
	}
	if err := verify.VertexColoring(lg, lin.Colors, lin.Palette); err != nil {
		return nil, fmt.Errorf("bench: simcore linial improper: %w", err)
	}
	linNs, linAllocs, linBytes, err := measureOp(func() error {
		_, err := linial.Reduce(ctx, sim.Sequential, sim.NewTopology(lg), int64(lg.N()))
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, SimCoreResult{
		Name:           "algo/linial/sequential-10k",
		NsPerOp:        linNs,
		AllocsPerOp:    linAllocs,
		BytesPerOp:     linBytes,
		AllocsPerRound: -1,
		Colors:         lin.Palette,
		Rounds:         lin.Stats.Rounds,
		Messages:       lin.Stats.Messages,
	})

	// The paper's §4 star-partition pipeline on the standard Table 1
	// workload — a deep composition, so it covers instance setup and
	// subtopology churn rather than a single long execution.
	sg, err := Workload(32, simCoreSeed)
	if err != nil {
		return nil, err
	}
	st, err := star.ChooseT(sg.MaxDegree(), 1)
	if err != nil {
		return nil, err
	}
	starRun, err := star.EdgeColor(ctx, sg, st, 1, star.Options{})
	if err != nil {
		return nil, err
	}
	if err := verify.EdgeColoring(sg, starRun.Colors, starRun.Palette); err != nil {
		return nil, fmt.Errorf("bench: simcore star improper: %w", err)
	}
	starNs, starAllocs, starBytes, err := measureOp(func() error {
		_, err := star.EdgeColor(ctx, sg, st, 1, star.Options{})
		return err
	})
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, SimCoreResult{
		Name:           "algo/star-x1/sequential-d32",
		NsPerOp:        starNs,
		AllocsPerOp:    starAllocs,
		BytesPerOp:     starBytes,
		AllocsPerRound: -1,
		Colors:         starRun.Palette,
		Rounds:         starRun.Stats.Rounds,
		Messages:       starRun.Stats.Messages,
	})
	return rep, nil
}

// SimCoreProblem is one violated expectation from a baseline comparison.
type SimCoreProblem struct {
	Workload string
	Detail   string
}

func (p SimCoreProblem) String() string { return p.Workload + ": " + p.Detail }

// EnvMatches reports whether two reports were produced on the same
// runner class: same Go toolchain, OS, architecture, and CPU count.
// Wall-clock numbers are only comparable within a class.
func EnvMatches(a, b *SimCoreReport) bool {
	return a.GoVersion == b.GoVersion && a.GOOS == b.GOOS && a.GOARCH == b.GOARCH && a.NumCPU == b.NumCPU
}

// CompareSimCore diffs a fresh report against a committed baseline.
// Deterministic metrics must match exactly on every machine, and a
// workload whose baseline pins allocs-per-round at zero must stay at
// zero. The machine-dependent bands — ns/op and allocs/op may not regress
// by more than the tolerance fraction (improvements always pass) — are
// enforced only when the two reports come from the same runner class
// (EnvMatches): an absolute wall-clock number from different hardware is
// noise, not a baseline. When the environments differ the skipped bands
// are reported in notes, so the caller can tell the operator to
// regenerate the baseline on the current runner class. Missing or renamed
// workloads are always problems.
func CompareSimCore(baseline, current *SimCoreReport, tolerance float64) (problems []SimCoreProblem, notes []string) {
	add := func(w, format string, args ...any) {
		problems = append(problems, SimCoreProblem{Workload: w, Detail: fmt.Sprintf(format, args...)})
	}
	if baseline.Schema != current.Schema {
		add("report", "schema %d vs baseline %d", current.Schema, baseline.Schema)
	}
	wallClock := EnvMatches(baseline, current)
	if !wallClock {
		notes = append(notes, fmt.Sprintf(
			"baseline runner class (%s %s/%s, %d CPUs) differs from this one (%s %s/%s, %d CPUs): ns/op and allocs/op bands skipped — regenerate the baseline on this class with `make bench-baseline` to arm them",
			baseline.GoVersion, baseline.GOOS, baseline.GOARCH, baseline.NumCPU,
			current.GoVersion, current.GOOS, current.GOARCH, current.NumCPU))
	}
	cur := make(map[string]SimCoreResult, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, b := range baseline.Results {
		c, ok := cur[b.Name]
		if !ok {
			add(b.Name, "workload missing from current run")
			continue
		}
		delete(cur, b.Name)
		if c.Rounds != b.Rounds || c.Messages != b.Messages || c.Colors != b.Colors {
			add(b.Name, "deterministic metrics drifted: rounds/messages/colors %d/%d/%d, baseline %d/%d/%d",
				c.Rounds, c.Messages, c.Colors, b.Rounds, b.Messages, b.Colors)
		}
		if wallClock {
			if limit := float64(b.NsPerOp) * (1 + tolerance); float64(c.NsPerOp) > limit {
				add(b.Name, "ns/op regressed beyond %.0f%%: %d vs baseline %d", tolerance*100, c.NsPerOp, b.NsPerOp)
			}
			if limit := float64(b.AllocsPerOp) * (1 + tolerance); float64(c.AllocsPerOp) > limit {
				add(b.Name, "allocs/op regressed beyond %.0f%%: %d vs baseline %d", tolerance*100, c.AllocsPerOp, b.AllocsPerOp)
			}
		}
		if b.AllocsPerRound == 0 && c.AllocsPerRound != 0 {
			add(b.Name, "steady-state rounds allocate: %.2f allocs/round, pinned at 0", c.AllocsPerRound)
		}
	}
	for name := range cur {
		add(name, "workload not in baseline (regenerate with make bench-baseline)")
	}
	return problems, notes
}
