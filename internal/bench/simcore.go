package bench

// The simulator-core perf suite behind BENCH_simcore.json: fixed workloads
// over the flat CSR + arena data plane (internal/sim, DESIGN.md §7) and
// end-to-end runs of the paper's algorithms over the packed word plane and
// the de-allocated hot paths (DESIGN.md §8), measured with the stdlib
// benchmark machinery and emitted as machine-readable results.
// `colorbench -json` writes the report; `colorbench -json -check FILE`
// re-runs the suite and fails on regressions against a committed baseline —
// `make bench-baseline` / `make bench-check` wrap both, and CI runs the
// check on every push.
//
// Two kinds of numbers live in a report. Deterministic workload metrics
// (rounds, messages, colors) must match a baseline exactly on every
// machine: a drift means the execution changed, not the hardware.
// Machine-dependent metrics (ns/op, allocs) are compared with a tolerance
// band, and allocs-per-round is pinned at exactly zero for the sequential
// engines' steady state — the tentpole contract of the arena data plane.
// An allocs_per_round of -1 is the explicit "unmeasured" sentinel (the
// differencing methodology needs a single program run at two lengths, so
// composed algorithm pipelines and the parallel engine report -1); the
// comparison treats the sentinel as its own state rather than as a value.
//
// Parallel-engine workloads are environment-gated: they are only measured
// when runtime.NumCPU() > 1, because on a single-CPU runner the "parallel"
// engine degenerates to the sequential loop plus scheduling overhead and a
// recorded parallel-vs-sequential delta would be meaningless.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cd"
	"repro/internal/cliques"
	"repro/internal/gen"
	"repro/internal/linial"
	"repro/internal/sim"
	"repro/internal/star"
	"repro/internal/verify"
)

// SimCoreSchema versions the report layout.
const SimCoreSchema = 1

// SimCoreResult is one measured workload of the simulator-core suite.
type SimCoreResult struct {
	Name string `json:"name"`
	// NsPerOp and the alloc metrics are the fastest observed full
	// execution of the workload (setup + every round); see measureOp.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// AllocsPerRound is the marginal heap allocation cost of one extra
	// round in the steady state, measured by differencing runs of
	// different lengths (setup cost cancels exactly). -1 is the explicit
	// "unmeasured" sentinel: the methodology needs one program run at two
	// lengths, which composed algorithm pipelines and the parallel engine
	// do not offer. CompareSimCore treats the sentinel as a distinct
	// state, never as a comparable value.
	AllocsPerRound float64 `json:"allocs_per_round"`
	// Deterministic workload metrics; identical on every machine.
	Colors   int64 `json:"colors,omitempty"`
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
	// MaxWordBits is the largest single message of the run in bits — the
	// bandwidth of the hottest edge, as accounted by each machine's
	// WordSizer (64 for unsized words/messages). Deterministic: a drift
	// means some program changed what it puts on the wire.
	MaxWordBits int64 `json:"max_word_bits"`
	// CongestViolations counts executed rounds whose hottest edge exceeded
	// the CONGEST cap of the bandwidth accountant attached to the workload
	// (sim.CongestCapBits); always 0 for workloads run without a capped
	// accountant. Deterministic: a program that silently fattens its
	// messages past the cap fails the baseline comparison here.
	CongestViolations int64 `json:"congest_violations"`
}

// SimCoreReport is the full suite output, annotated with the environment
// that produced it.
type SimCoreReport struct {
	Schema    int             `json:"schema"`
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	NumCPU    int             `json:"num_cpu"`
	Results   []SimCoreResult `json:"results"`
}

const (
	simCoreN      = 10_000 // the 10k-vertex plane workload
	simCoreDeg    = 16
	simCoreRounds = 32
	simCoreSeed   = 2017

	// The end-to-end edge-coloring pipeline workload: the §4 star
	// partition on a 100k-vertex near-regular graph, seeded by Linial on
	// its ~400k-vertex line graph — the "production scale" checkpoint of
	// the ROADMAP.
	simCorePipeN   = 100_000
	simCorePipeDeg = 8

	// The CD vertex-coloring workload: the line graph of a 3-uniform
	// hypergraph (diversity ≤ 3), the paper's canonical bounded-diversity
	// family.
	simCoreCDVerts = 2_000
	simCoreCDEdges = 6_000
)

// wavefrontFactory is the canonical any-plane workload: vertices exchange
// word-sized payloads boxed through the general Message slot and halt in
// staggered waves (vertex v runs 1 + ID mod span rounds), the termination
// pattern of the repository's algorithms.
func wavefrontFactory(span int) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		stop := 1 + int(info.ID)%span
		var acc int64
		return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
			for _, m := range in {
				if m != nil {
					acc += m.(int64)
				}
			}
			sim.SendAll(out, int64(round&0x7f))
			return round >= stop-1
		})
	}
}

// exchangeFactory keeps every vertex live for the whole execution — the
// dense-traffic bound of the any plane.
func exchangeFactory(rounds int) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		var acc int64
		return sim.FuncMachine(func(round int, in, out []sim.Message) bool {
			for _, m := range in {
				if m != nil {
					acc += m.(int64)
				}
			}
			sim.SendAll(out, int64(round&0x7f))
			return round >= rounds-1
		})
	}
}

// exchangeWordsFactory is exchangeFactory on the packed word plane: the
// same traffic pattern with zero boxing, measuring the fast path the
// algorithm programs ride.
func exchangeWordsFactory(rounds int) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		var acc int64
		return sim.WrapWord(sim.WordFunc(func(round int, in, out []sim.Word) bool {
			for _, w := range in {
				if w != sim.NoWord {
					acc += w
				}
			}
			sim.SendAllWords(out, int64(round&0x7f))
			return round >= rounds-1
		}))
	}
}

// sizedExchangeMachine is the exchange traffic pattern with honest wire
// accounting: the payload fits 7 bits (round&0x7f) and the machine says so
// via WordSizer, so the CONGEST audit sees true message sizes instead of
// the 64-bit default. Its workload must stay violation-free under the
// sim.CongestCapBits cap — and allocation-free with the accountant riding.
type sizedExchangeMachine struct {
	rounds int
	acc    int64
}

func (m *sizedExchangeMachine) StepWord(round int, in, out []sim.Word) bool {
	for _, w := range in {
		if w != sim.NoWord {
			m.acc += w
		}
	}
	sim.SendAllWords(out, sim.Word(round&0x7f))
	return round >= m.rounds-1
}

func (m *sizedExchangeMachine) WordBits(w sim.Word) int64 { return 7 }

func exchangeSizedFactory(rounds int) sim.Factory {
	return func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		return sim.WrapWord(&sizedExchangeMachine{rounds: rounds})
	}
}

// MeasureOp times one workload execution repeatedly and returns the
// fastest observed op with its leanest heap-allocation profile. Taking
// the minimum rather than the mean makes the numbers reproducible on
// noisy shared runners (interference only ever slows an op down, never
// speeds it up), which is what lets bench-check hold a 15% band in CI.
// Exported for the suite extensions that cannot live in this package
// (internal/svcbench measures the colord admission path; importing the
// service layer here would cycle through the root package's tests).
func MeasureOp(fn func() error) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
	if err := fn(); err != nil { // warm-up: caches, lazy inits, first GC growth
		return 0, 0, 0, err
	}
	const (
		minOps = 5
		maxOps = 15
		budget = 2 * time.Second
	)
	nsPerOp = math.MaxInt64
	allocsPerOp = math.MaxInt64
	bytesPerOp = math.MaxInt64
	start := time.Now()
	var m0, m1 runtime.MemStats
	for op := 0; op < maxOps && (op < minOps || time.Since(start) < budget); op++ {
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, 0, 0, err
		}
		d := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&m1)
		if d < nsPerOp {
			nsPerOp = d
		}
		if a := int64(m1.Mallocs - m0.Mallocs); a < allocsPerOp {
			allocsPerOp = a
		}
		if b := int64(m1.TotalAlloc - m0.TotalAlloc); b < bytesPerOp {
			bytesPerOp = b
		}
	}
	return nsPerOp, allocsPerOp, bytesPerOp, nil
}

// measurePlane benchmarks one engine on one plane program and fills the
// deterministic metrics from a verification run.
func measurePlane(ctx context.Context, name string, eng sim.Exec, topo *sim.Topology, prog func(rounds int) sim.Factory, perRound bool) (SimCoreResult, error) {
	stats, err := eng.Run(ctx, topo, prog(simCoreRounds), simCoreRounds+2)
	if err != nil {
		return SimCoreResult{}, fmt.Errorf("bench: simcore %s: %w", name, err)
	}
	ns, allocs, bytes, err := MeasureOp(func() error {
		_, runErr := eng.Run(ctx, topo, prog(simCoreRounds), simCoreRounds+2)
		return runErr
	})
	if err != nil {
		return SimCoreResult{}, fmt.Errorf("bench: simcore %s: %w", name, err)
	}
	out := SimCoreResult{
		Name:              name,
		NsPerOp:           ns,
		AllocsPerOp:       allocs,
		BytesPerOp:        bytes,
		AllocsPerRound:    -1,
		Rounds:            stats.Rounds,
		Messages:          stats.Messages,
		MaxWordBits:       stats.MaxMessageBits,
		CongestViolations: stats.CongestViolations,
	}
	if perRound {
		out.AllocsPerRound = allocsPerRound(ctx, eng, topo, prog)
	}
	return out, nil
}

// allocsPerRound measures the marginal allocation cost of one steady-state
// round of the workload's own program by differencing executions of
// different lengths: instance setup allocates identically in both, so the
// remainder is purely the round loop's. (testing.AllocsPerRun pins
// GOMAXPROCS to 1, so this is only meaningful for the sequential engines.)
func allocsPerRound(ctx context.Context, eng sim.Exec, topo *sim.Topology, prog func(rounds int) sim.Factory) float64 {
	const shortRounds, longRounds = 8, 72
	measure := func(rounds int) float64 {
		return testing.AllocsPerRun(3, func() {
			// Errors are impossible here: the same workload was just
			// validated by the measurement run.
			_, _ = eng.Run(ctx, topo, prog(rounds), rounds+2)
		})
	}
	per := (measure(longRounds) - measure(shortRounds)) / float64(longRounds-shortRounds)
	// The marginal cost is a whole number of allocations; fractional
	// residue (either sign) is runtime noise leaking into one of the two
	// measurements, not a per-round allocation.
	if math.Abs(per) < 0.5 {
		return 0
	}
	return per
}

// measureAlgo runs one end-to-end algorithm workload: a first run with
// verification enabled supplies the deterministic metrics and proves the
// coloring proper, then measureOp times bare repetitions (verification is
// hoisted out of the measured op so the gated numbers track the coloring
// pipeline, not internal/verify — and so they stay comparable with the
// algos_test.go benchmark twins, which time the bare run). Algorithm
// pipelines compose many executions of varying length, so their
// allocs_per_round carries the -1 "unmeasured" sentinel.
func measureAlgo(name string, run func(verify bool) (colors int64, stats sim.Stats, err error)) (SimCoreResult, error) {
	colors, stats, err := run(true)
	if err != nil {
		return SimCoreResult{}, fmt.Errorf("bench: simcore %s: %w", name, err)
	}
	ns, allocs, bytes, err := MeasureOp(func() error {
		_, _, runErr := run(false)
		return runErr
	})
	if err != nil {
		return SimCoreResult{}, fmt.Errorf("bench: simcore %s: %w", name, err)
	}
	return SimCoreResult{
		Name:              name,
		NsPerOp:           ns,
		AllocsPerOp:       allocs,
		BytesPerOp:        bytes,
		AllocsPerRound:    -1,
		Colors:            colors,
		Rounds:            stats.Rounds,
		Messages:          stats.Messages,
		MaxWordBits:       stats.MaxMessageBits,
		CongestViolations: stats.CongestViolations,
	}, nil
}

// RunSimCore executes the full simulator-core suite.
func RunSimCore(ctx context.Context) (*SimCoreReport, error) {
	plane, err := gen.NearRegular(simCoreN, simCoreDeg, simCoreSeed)
	if err != nil {
		return nil, err
	}
	planeTopo := sim.NewTopology(plane)
	plane.CSR() // build the cached view once, outside every measurement

	rep := &SimCoreReport{
		Schema:    SimCoreSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	// The CONGEST-audited word-plane workloads run with a capped bandwidth
	// accountant attached (DESIGN.md §9). The unsized variant is accounted
	// at the 64-bit default and deterministically violates the cap every
	// messaging round — pinning the violation count itself; the sized
	// variant declares its true 7-bit payloads and must stay violation-free.
	// Both keep allocs/round pinned at 0: accounting may not cost the round
	// loop a single allocation.
	congestCap := sim.CongestCapBits(simCoreN)
	planeRuns := []struct {
		name     string
		eng      sim.Exec
		prog     func(rounds int) sim.Factory
		perRound bool
	}{
		{"plane/wavefront/sequential-10k", sim.Sequential, wavefrontFactory, true},
		{"plane/wavefront/parallel-10k", sim.Parallel, wavefrontFactory, false},
		{"plane/exchange/sequential-10k", sim.Sequential, exchangeFactory, true},
		{"plane/exchange-words/sequential-10k", sim.Sequential, exchangeWordsFactory, true},
		{"plane/exchange-words-congest/sequential-10k",
			sim.Instrumented(sim.Sequential, nil, &sim.Bandwidth{CapBits: congestCap}), exchangeWordsFactory, true},
		{"plane/exchange-words-sized/sequential-10k",
			sim.Instrumented(sim.Sequential, nil, &sim.Bandwidth{CapBits: congestCap}), exchangeSizedFactory, true},
		{"plane/exchange/reverse-10k", sim.ReverseSequential, exchangeFactory, true},
	}
	for _, pr := range planeRuns {
		if ParallelGated(pr.name) && runtime.NumCPU() <= 1 {
			// A single-CPU runner cannot produce a meaningful
			// parallel-engine measurement; the comparison treats these
			// workloads as environment-gated on both sides.
			continue
		}
		r, runErr := measurePlane(ctx, pr.name, pr.eng, planeTopo, pr.prog, pr.perRound)
		if runErr != nil {
			return nil, runErr
		}
		rep.Results = append(rep.Results, r)
	}

	// End-to-end algorithm workloads. Each graph is generated (and its CSR
	// view built) once, outside the measurement; every run is verified
	// before its numbers are reported.

	// The O(log* n) Linial substrate on the 10k workload.
	lg, err := gen.NearRegular(simCoreN, 8, simCoreSeed)
	if err != nil {
		return nil, err
	}
	lg.CSR()
	linialRun, err := measureAlgo("algo/linial/sequential-10k", func(check bool) (int64, sim.Stats, error) {
		lin, runErr := linial.Reduce(ctx, sim.Sequential, sim.NewTopology(lg), int64(lg.N()))
		if runErr != nil {
			return 0, sim.Stats{}, runErr
		}
		if check {
			if err := verify.VertexColoring(lg, lin.Colors, lin.Palette); err != nil {
				return 0, sim.Stats{}, fmt.Errorf("improper: %w", err)
			}
		}
		return lin.Palette, lin.Stats, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, linialRun)

	// The paper's §4 star-partition pipeline on the standard Table 1
	// workload — a deep composition, so it covers instance setup and
	// subtopology churn rather than a single long execution.
	sg, err := Workload(32, simCoreSeed)
	if err != nil {
		return nil, err
	}
	st, err := star.ChooseT(sg.MaxDegree(), 1)
	if err != nil {
		return nil, err
	}
	starRun, err := measureAlgo("algo/star-x1/sequential-d32", func(check bool) (int64, sim.Stats, error) {
		res, runErr := star.EdgeColor(ctx, sg, st, 1, star.Options{})
		if runErr != nil {
			return 0, sim.Stats{}, runErr
		}
		if check {
			if err := verify.EdgeColoring(sg, res.Colors, res.Palette); err != nil {
				return 0, sim.Stats{}, fmt.Errorf("improper: %w", err)
			}
		}
		return res.Palette, res.Stats, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, starRun)

	// CD vertex-coloring on a bounded-diversity instance (the line graph
	// of a 3-uniform hypergraph, D ≤ 3).
	h, err := gen.UniformHypergraph(simCoreCDVerts, 3, simCoreCDEdges, simCoreSeed)
	if err != nil {
		return nil, err
	}
	hlg := h.LineGraph()
	cov, err := cliques.FromLineGraph(hlg)
	if err != nil {
		return nil, err
	}
	ct := cd.ChooseT(cov.MaxCliqueSize(), 1)
	cdRun, err := measureAlgo("algo/cd-x1/sequential-h3", func(check bool) (int64, sim.Stats, error) {
		res, runErr := cd.Color(ctx, hlg.L, cov, ct, 1, cd.Options{})
		if runErr != nil {
			return 0, sim.Stats{}, runErr
		}
		if check {
			if err := verify.VertexColoring(hlg.L, res.Colors, res.Palette); err != nil {
				return 0, sim.Stats{}, fmt.Errorf("improper: %w", err)
			}
		}
		return res.Palette, res.Stats, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, cdRun)

	// The full edge-coloring pipeline at production scale: 100k vertices
	// through the §4 star partition (Linial seed on the ~400k-vertex line
	// graph, connector coloring, recursive classes, final trim).
	pg, err := gen.NearRegular(simCorePipeN, simCorePipeDeg, simCoreSeed)
	if err != nil {
		return nil, err
	}
	pt, err := star.ChooseT(pg.MaxDegree(), 1)
	if err != nil {
		return nil, err
	}
	pipeRun, err := measureAlgo("algo/edgepipe-x1/sequential-100k", func(check bool) (int64, sim.Stats, error) {
		res, runErr := star.EdgeColor(ctx, pg, pt, 1, star.Options{})
		if runErr != nil {
			return 0, sim.Stats{}, runErr
		}
		if check {
			if err := verify.EdgeColoring(pg, res.Colors, res.Palette); err != nil {
				return 0, sim.Stats{}, fmt.Errorf("improper: %w", err)
			}
		}
		return res.Palette, res.Stats, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Results = append(rep.Results, pipeRun)
	return rep, nil
}

// SimCoreProblem is one violated expectation from a baseline comparison.
type SimCoreProblem struct {
	Workload string
	Detail   string
}

func (p SimCoreProblem) String() string { return p.Workload + ": " + p.Detail }

// EnvMatches reports whether two reports were produced on the same
// runner class: same Go toolchain, OS, architecture, and CPU count.
// Wall-clock numbers are only comparable within a class.
func EnvMatches(a, b *SimCoreReport) bool {
	return a.GoVersion == b.GoVersion && a.GOOS == b.GOOS && a.GOARCH == b.GOARCH && a.NumCPU == b.NumCPU
}

// ParallelGated reports whether a workload is only measured on multi-CPU
// runners (see RunSimCore): presence mismatches for these workloads are
// environment differences, not regressions.
func ParallelGated(name string) bool { return strings.Contains(name, "/parallel") }

// CompareSimCore diffs a fresh report against a committed baseline.
// Deterministic metrics must match exactly on every machine, and a
// workload whose baseline pins allocs-per-round at zero must stay at
// zero; the -1 sentinel means "unmeasured" and is matched as a state (a
// workload whose baseline measured allocs/round may not silently stop
// measuring it). The machine-dependent bands — ns/op and allocs/op may
// not regress by more than the tolerance fraction (improvements always
// pass) — are enforced only when the two reports come from the same
// runner class (EnvMatches): an absolute wall-clock number from different
// hardware is noise, not a baseline. When the environments differ the
// skipped bands are reported in notes, so the caller can tell the
// operator to regenerate the baseline on the current runner class.
// Missing or renamed workloads are problems, except for the
// ParallelGated ones, whose presence legitimately varies with the
// runner's CPU count and is reported as a note instead.
func CompareSimCore(baseline, current *SimCoreReport, tolerance float64) (problems []SimCoreProblem, notes []string) {
	add := func(w, format string, args ...any) {
		problems = append(problems, SimCoreProblem{Workload: w, Detail: fmt.Sprintf(format, args...)})
	}
	note := func(format string, args ...any) {
		notes = append(notes, fmt.Sprintf(format, args...))
	}
	if baseline.Schema != current.Schema {
		add("report", "schema %d vs baseline %d", current.Schema, baseline.Schema)
	}
	wallClock := EnvMatches(baseline, current)
	if !wallClock {
		note("baseline runner class (%s %s/%s, %d CPUs) differs from this one (%s %s/%s, %d CPUs): ns/op and allocs/op bands skipped — regenerate the baseline on this class with `make bench-baseline` to arm them",
			baseline.GoVersion, baseline.GOOS, baseline.GOARCH, baseline.NumCPU,
			current.GoVersion, current.GOOS, current.GOARCH, current.NumCPU)
	}
	cur := make(map[string]SimCoreResult, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, b := range baseline.Results {
		c, ok := cur[b.Name]
		if !ok {
			// The gate only excuses a missing parallel workload when this
			// runner genuinely cannot measure it; on a multi-CPU runner a
			// lost parallel workload is a regression like any other.
			if ParallelGated(b.Name) && current.NumCPU <= 1 {
				note("%s: baseline workload not measured on this runner (parallel workloads need >1 CPU, this one has %d)", b.Name, current.NumCPU)
			} else {
				add(b.Name, "workload missing from current run")
			}
			continue
		}
		delete(cur, b.Name)
		if c.Rounds != b.Rounds || c.Messages != b.Messages || c.Colors != b.Colors {
			add(b.Name, "deterministic metrics drifted: rounds/messages/colors %d/%d/%d, baseline %d/%d/%d",
				c.Rounds, c.Messages, c.Colors, b.Rounds, b.Messages, b.Colors)
		}
		if c.MaxWordBits != b.MaxWordBits || c.CongestViolations != b.CongestViolations {
			add(b.Name, "bandwidth accounting drifted: max_word_bits/congest_violations %d/%d, baseline %d/%d — some program changed what it puts on the wire",
				c.MaxWordBits, c.CongestViolations, b.MaxWordBits, b.CongestViolations)
		}
		if wallClock {
			if limit := float64(b.NsPerOp) * (1 + tolerance); float64(c.NsPerOp) > limit {
				add(b.Name, "ns/op regressed beyond %.0f%%: %d vs baseline %d", tolerance*100, c.NsPerOp, b.NsPerOp)
			}
			if limit := float64(b.AllocsPerOp) * (1 + tolerance); float64(c.AllocsPerOp) > limit {
				add(b.Name, "allocs/op regressed beyond %.0f%%: %d vs baseline %d", tolerance*100, c.AllocsPerOp, b.AllocsPerOp)
			}
		}
		// allocs_per_round: -1 is the "unmeasured" sentinel, matched as a
		// state of its own — never compared as a value.
		switch {
		case b.AllocsPerRound < 0 && c.AllocsPerRound < 0:
			// Unmeasured on both sides: nothing to compare.
		case b.AllocsPerRound < 0:
			note("%s: allocs/round is now measured (%.2f) but unmeasured (-1) in the baseline — regenerate with `make bench-baseline` to pin it", b.Name, c.AllocsPerRound)
		case c.AllocsPerRound < 0:
			add(b.Name, "allocs/round no longer measured (-1); baseline pins %.2f", b.AllocsPerRound)
		case b.AllocsPerRound == 0 && c.AllocsPerRound != 0:
			add(b.Name, "steady-state rounds allocate: %.2f allocs/round, pinned at 0", c.AllocsPerRound)
		case b.AllocsPerRound > 0 && c.AllocsPerRound > b.AllocsPerRound*(1+tolerance):
			add(b.Name, "allocs/round regressed beyond %.0f%%: %.2f vs baseline %.2f", tolerance*100, c.AllocsPerRound, b.AllocsPerRound)
		}
	}
	for name := range cur {
		// Symmetric leniency: an unguarded parallel workload is only
		// expected when the baseline came from a runner that could not
		// measure it.
		if ParallelGated(name) && baseline.NumCPU <= 1 {
			note("%s: parallel workload measured here but absent from the baseline (recorded on a single-CPU runner) — regenerate with `make bench-baseline` on this class to guard it", name)
		} else {
			add(name, "workload not in baseline (regenerate with make bench-baseline)")
		}
	}
	return problems, notes
}
