// Package reduce implements distributed palette-reduction subroutines: the
// "basic reduction" the paper invokes for trimming a handful of excess
// colors (iterating over color classes, one round per dropped color), and
// the Kuhn–Wattenhofer halving reduction that brings a palette of size m
// down to T within O(T·log(m/T)) rounds. Together with package linial these
// form the repository's substitute for the black box [17]: same palettes,
// deterministic, with round complexity O(Δ log Δ + log* n) (see DESIGN.md
// §1.3 for the substitution rationale).
//
// Both programs run on any topology; callers use them for edge colorings by
// running them on the line-graph topology.
package reduce

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/util"
)

// Result is a reduced coloring plus its execution cost.
type Result struct {
	Colors  []int64
	Palette int64
	Stats   sim.Stats
}

// TrimClasses reduces the proper coloring given by the topology's labels
// from palette m to palette target, one color class per round: for
// c = m-1 … target, every vertex colored c simultaneously recolors to the
// smallest color in [0, target) unused by its neighbors. Requires
// target ≥ Δ+1. Cost: m − target + 1 rounds.
func TrimClasses(ctx context.Context, eng sim.Exec, t *sim.Topology, m, target int64) (*Result, error) {
	eng = sim.OrSequential(eng)
	if err := checkArgs(t, m, target); err != nil {
		return nil, err
	}
	if m <= target {
		return passThrough(t, m)
	}
	colors := make([]int64, t.G.N())
	factory := func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		return sim.WrapWord(&trimMachine{color: info.Label, m: m, target: target, sink: &colors[info.V]})
	}
	stats, err := eng.Run(ctx, t, factory, int(m-target)+3)
	if err != nil {
		return nil, fmt.Errorf("reduce: trim: %w", err)
	}
	return &Result{Colors: colors, Palette: target, Stats: stats}, nil
}

type trimMachine struct {
	color  int64
	m      int64
	target int64
	sink   *int64
	// scratch marks occupied offsets during a recoloring step; it is
	// stamped with the round number so it never needs clearing. Only the
	// first deg+1 offsets can matter, keeping it small even for big
	// palettes.
	scratch []int32
}

// StepWord implements sim.WordMachine: colors are single words, so the
// program runs on the packed plane.
func (tm *trimMachine) StepWord(round int, in, out []sim.Word) bool {
	// Round r processes class m-r (r ≥ 1); round 0 only broadcasts.
	if round > 0 {
		class := tm.m - int64(round)
		if tm.color == class {
			tm.color = smallestFree(in, tm.target, &tm.scratch, int32(round))
		}
		if class == tm.target {
			*tm.sink = tm.color
			return true
		}
	}
	sim.SendAllWords(out, tm.color)
	return false
}

// smallestFree returns the least value in [0, limit) that no inbox word
// carries. Since at most len(in) values can be occupied, only offsets up to
// len(in) are tracked; the scratch array is stamped rather than cleared.
func smallestFree(in []sim.Word, limit int64, scratch *[]int32, stamp int32) int64 {
	span := int64(len(in)) + 1
	if span > limit {
		span = limit
	}
	if int64(len(*scratch)) < span {
		*scratch = make([]int32, span)
		for i := range *scratch {
			(*scratch)[i] = -1
		}
	}
	s := *scratch
	for _, c := range in {
		if c == sim.NoWord {
			continue
		}
		if c >= 0 && c < span {
			s[c] = stamp
		}
	}
	for c := int64(0); c < span; c++ {
		if s[c] != stamp {
			return c
		}
	}
	// Unreachable when limit ≥ deg+1.
	panic(fmt.Sprintf("reduce: no free color below %d among %d neighbors", limit, len(in)))
}

// KuhnWattenhofer reduces the proper coloring given by the topology's
// labels from palette m to palette target within O(target·log(m/target))
// rounds, by repeatedly splitting the palette into blocks of 2·target and
// reducing each block to target in parallel [Kuhn & Wattenhofer, PODC'06].
// Requires target ≥ Δ+1.
func KuhnWattenhofer(ctx context.Context, eng sim.Exec, t *sim.Topology, m, target int64) (*Result, error) {
	eng = sim.OrSequential(eng)
	if err := checkArgs(t, m, target); err != nil {
		return nil, err
	}
	if m <= target {
		return passThrough(t, m)
	}
	schedule := kwSchedule(m, target)
	colors := make([]int64, t.G.N())
	factory := func(info sim.NodeInfo, nbrIDs, nbrLabels []int64) sim.Machine {
		return sim.WrapWord(&kwMachine{color: info.Label, schedule: schedule, sink: &colors[info.V]})
	}
	stats, err := eng.Run(ctx, t, factory, len(schedule)+3)
	if err != nil {
		return nil, fmt.Errorf("reduce: kw: %w", err)
	}
	return &Result{Colors: colors, Palette: target, Stats: stats}, nil
}

// kwRound is one round of the KW program: process class s (mod B) and, when
// the phase ends, renumber blocks of size B down to T.
type kwRound struct {
	b             int64 // block size of the current phase
	s             int64 // class processed this round (T ≤ s < B)
	t             int64 // target slots per block
	renumberAfter bool  // phase complete: apply c → (c/B)·T + (c mod B)
}

// kwSchedule derives the full deterministic round plan for reducing m → T.
func kwSchedule(m, t int64) []kwRound {
	var plan []kwRound
	for m > t {
		b := 2 * t
		if b > m {
			b = m // single partial block; plain class iteration within it
		}
		for s := b - 1; s >= t; s-- {
			plan = append(plan, kwRound{b: b, s: s, t: t})
		}
		plan[len(plan)-1].renumberAfter = true
		// New palette: full blocks contribute T each; a trailing partial
		// block of size ≤ T survives unchanged (its colors are < T within
		// the block).
		nb := m / b
		rem := m - nb*b
		if rem > t {
			rem = t
		}
		m = nb*t + rem
	}
	return plan
}

type kwMachine struct {
	color    int64
	schedule []kwRound
	sink     *int64
	scratch  []int32 // stamped occupancy buffer, see smallestFree
}

// StepWord implements sim.WordMachine.
func (km *kwMachine) StepWord(round int, in, out []sim.Word) bool {
	if round > 0 {
		r := km.schedule[round-1]
		if km.color%r.b == r.s {
			// Recolor into my block's first t slots, avoiding all neighbor
			// colors (which are fresh as of last round; concurrent
			// recolorers share my color class and are non-adjacent).
			base := (km.color / r.b) * r.b
			km.color = base + smallestFreeInBlock(in, base, r.t, &km.scratch, int32(round))
		}
		if r.renumberAfter {
			// Globally synchronized local renumbering; applied by everyone
			// to their own color. Neighbor colors received next round are
			// post-renumber, keeping views consistent.
			km.color = (km.color/r.b)*r.t + km.color%r.b
		}
		if round == len(km.schedule) {
			*km.sink = km.color
			return true
		}
	}
	sim.SendAllWords(out, km.color)
	return false
}

// smallestFreeInBlock returns base + the least offset in [0, t) such that
// base+offset appears in no inbox word. The scratch array is stamped
// rather than cleared between rounds.
func smallestFreeInBlock(in []sim.Word, base, t int64, scratch *[]int32, stamp int32) int64 {
	span := int64(len(in)) + 1
	if span > t {
		span = t
	}
	if int64(len(*scratch)) < span {
		*scratch = make([]int32, span)
		for i := range *scratch {
			(*scratch)[i] = -1
		}
	}
	s := *scratch
	for _, c := range in {
		if c == sim.NoWord {
			continue
		}
		if c >= base && c < base+span {
			s[c-base] = stamp
		}
	}
	for off := int64(0); off < span; off++ {
		if s[off] != stamp {
			return off
		}
	}
	panic(fmt.Sprintf("reduce: block full: no offset below %d free among %d neighbors", t, len(in)))
}

// Auto reduces m → target choosing the cheaper of TrimClasses
// (m−target rounds) and KuhnWattenhofer (≈ target·log₂(m/target) rounds).
func Auto(ctx context.Context, eng sim.Exec, t *sim.Topology, m, target int64) (*Result, error) {
	if m <= target {
		return passThrough(t, m)
	}
	trimCost := m - target
	kwCost := int64(len(kwSchedule(m, target)))
	if kwCost < trimCost {
		return KuhnWattenhofer(ctx, eng, t, m, target)
	}
	return TrimClasses(ctx, eng, t, m, target)
}

func checkArgs(t *sim.Topology, m, target int64) error {
	if t.Labels == nil {
		return fmt.Errorf("reduce: topology has no seed coloring")
	}
	if target < int64(t.G.MaxDegree())+1 {
		return fmt.Errorf("reduce: target %d < Δ+1 = %d", target, t.G.MaxDegree()+1)
	}
	if target < 1 || m < 1 {
		return fmt.Errorf("reduce: invalid palettes m=%d target=%d", m, target)
	}
	for v := 0; v < t.G.N(); v++ {
		if t.Labels[v] < 0 || t.Labels[v] >= m {
			return fmt.Errorf("reduce: label %d of vertex %d outside palette [0,%d)", t.Labels[v], v, m)
		}
	}
	return nil
}

// passThrough returns the input coloring unchanged at zero cost.
func passThrough(t *sim.Topology, m int64) (*Result, error) {
	if t.Labels == nil {
		return nil, fmt.Errorf("reduce: topology has no seed coloring")
	}
	colors := make([]int64, t.G.N())
	copy(colors, t.Labels)
	return &Result{Colors: colors, Palette: m, Stats: sim.Stats{}}, nil
}

// EstimateAutoRounds predicts the round cost Auto will incur, used by
// planning code and documented bounds checks in tests.
func EstimateAutoRounds(m, target int64) int64 {
	if m <= target {
		return 0
	}
	trim := m - target + 1
	kw := int64(len(kwSchedule(m, target))) + 1
	return util.MinInt64(trim, kw)
}
