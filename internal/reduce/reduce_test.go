package reduce

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/verify"
)

func rg(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// greedySeed builds a proper coloring with a deliberately wasteful palette m
// by offsetting a greedy coloring into spread-out classes.
func greedySeed(g *graph.Graph, spread int64) ([]int64, int64) {
	colors := make([]int64, g.N())
	for i := range colors {
		colors[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		used := map[int64]bool{}
		for _, a := range g.Adj(v) {
			if colors[a.To] >= 0 {
				used[colors[a.To]] = true
			}
		}
		var c int64
		for used[c] {
			c++
		}
		colors[v] = c
	}
	for v := range colors {
		colors[v] *= spread
	}
	return colors, (int64(g.MaxDegree()) + 1) * spread
}

func TestTrimClasses(t *testing.T) {
	g := rg(2, 80, 0.1)
	seed, m := greedySeed(g, 7)
	target := int64(g.MaxDegree()) + 1
	topo := &sim.Topology{G: g, Labels: seed}
	res, err := TrimClasses(context.Background(), sim.Sequential, topo, m, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, target); err != nil {
		t.Fatal(err)
	}
	wantRounds := int(m-target) + 1
	if res.Stats.Rounds != wantRounds {
		t.Fatalf("rounds %d, want %d", res.Stats.Rounds, wantRounds)
	}
}

func TestTrimNoopWhenAlreadyBelowTarget(t *testing.T) {
	g := graph.Path(5)
	topo := &sim.Topology{G: g, Labels: []int64{0, 1, 0, 1, 0}}
	res, err := TrimClasses(context.Background(), sim.Sequential, topo, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 0 || res.Palette != 2 {
		t.Fatalf("expected zero-cost passthrough, got %+v", res)
	}
}

func TestTrimRejectsLowTarget(t *testing.T) {
	g := graph.Star(5)
	seed, m := greedySeed(g, 1)
	topo := &sim.Topology{G: g, Labels: seed}
	if _, err := TrimClasses(context.Background(), sim.Sequential, topo, m, int64(g.MaxDegree())); err == nil {
		t.Fatal("expected target<Δ+1 error")
	}
}

func TestTrimRejectsMissingLabels(t *testing.T) {
	g := graph.Path(3)
	if _, err := TrimClasses(context.Background(), sim.Sequential, sim.NewTopology(g), 5, 3); err == nil {
		t.Fatal("expected missing-labels error")
	}
}

func TestTrimRejectsOutOfRangeLabels(t *testing.T) {
	g := graph.Path(3)
	topo := &sim.Topology{G: g, Labels: []int64{0, 9, 0}}
	if _, err := TrimClasses(context.Background(), sim.Sequential, topo, 5, 3); err == nil {
		t.Fatal("expected label range error")
	}
}

func TestKuhnWattenhofer(t *testing.T) {
	g := rg(4, 100, 0.08)
	seed, m := greedySeed(g, 97) // large, wasteful palette
	target := int64(g.MaxDegree()) + 1
	topo := &sim.Topology{G: g, Labels: seed}
	res, err := KuhnWattenhofer(context.Background(), sim.Sequential, topo, m, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, res.Colors, target); err != nil {
		t.Fatal(err)
	}
	// Round bound: |schedule| + 1 ≈ target·log₂(m/target) + 1; assert the
	// measured rounds match the derived schedule exactly and beat trimming.
	if int64(res.Stats.Rounds) >= m-target+1 {
		t.Fatalf("KW (%d rounds) not faster than trim (%d)", res.Stats.Rounds, m-target+1)
	}
}

func TestKWScheduleProperties(t *testing.T) {
	for _, tc := range []struct{ m, target int64 }{
		{100, 5}, {1000, 11}, {17, 8}, {64, 32}, {33, 16}, {4096, 7},
	} {
		plan := kwSchedule(tc.m, tc.target)
		if len(plan) == 0 {
			t.Fatalf("m=%d T=%d: empty plan", tc.m, tc.target)
		}
		// Phases end with renumber steps; last round must renumber.
		if !plan[len(plan)-1].renumberAfter {
			t.Fatalf("m=%d T=%d: plan does not end a phase", tc.m, tc.target)
		}
		// Round cost must be O(T·log(m/T)): generous constant-4 check.
		logRatio := 1
		for x := tc.m; x > tc.target; x /= 2 {
			logRatio++
		}
		if int64(len(plan)) > 4*tc.target*int64(logRatio) {
			t.Fatalf("m=%d T=%d: plan length %d exceeds O(T log(m/T))", tc.m, tc.target, len(plan))
		}
	}
}

func TestKWQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		g := rg(seed, n, 0.15)
		sd, m := greedySeed(g, 13)
		target := int64(g.MaxDegree()) + 1
		topo := &sim.Topology{G: g, Labels: sd}
		res, err := KuhnWattenhofer(context.Background(), sim.Sequential, topo, m, target)
		if err != nil {
			return false
		}
		return verify.VertexColoring(g, res.Colors, target) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTrimQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(30)
		g := rg(seed, n, 0.2)
		sd, m := greedySeed(g, 3)
		target := int64(g.MaxDegree()) + 1
		topo := &sim.Topology{G: g, Labels: sd}
		res, err := TrimClasses(context.Background(), sim.Sequential, topo, m, target)
		if err != nil {
			return false
		}
		return verify.VertexColoring(g, res.Colors, target) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoPicksFaster(t *testing.T) {
	g := rg(9, 60, 0.15)
	target := int64(g.MaxDegree()) + 1

	// Small palette gap: trim should win.
	seedSmall, _ := greedySeed(g, 1)
	topo := &sim.Topology{G: g, Labels: seedSmall}
	resSmall, err := Auto(context.Background(), sim.Sequential, topo, target+3, target)
	if err != nil {
		t.Fatal(err)
	}
	if resSmall.Stats.Rounds > 4 {
		t.Fatalf("small-gap Auto used %d rounds", resSmall.Stats.Rounds)
	}

	// Huge palette: KW should win; verify the result is still proper.
	seedBig, m := greedySeed(g, 1009)
	topo = &sim.Topology{G: g, Labels: seedBig}
	resBig, err := Auto(context.Background(), sim.Sequential, topo, m, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.VertexColoring(g, resBig.Colors, target); err != nil {
		t.Fatal(err)
	}
	if int64(resBig.Stats.Rounds) >= m-target {
		t.Fatal("Auto failed to pick KW for a large palette")
	}
}

func TestEstimateAutoRounds(t *testing.T) {
	if EstimateAutoRounds(10, 20) != 0 {
		t.Fatal("no reduction needed should cost 0")
	}
	if EstimateAutoRounds(25, 20) != 6 {
		t.Fatalf("small gap should use trim: got %d", EstimateAutoRounds(25, 20))
	}
	big := EstimateAutoRounds(1<<20, 8)
	if big <= 0 || big > 8*2*25 {
		t.Fatalf("big gap estimate out of range: %d", big)
	}
}

func TestKWEnginesAgree(t *testing.T) {
	g := rg(14, 90, 0.1)
	sd, m := greedySeed(g, 31)
	target := int64(g.MaxDegree()) + 1
	t1 := &sim.Topology{G: g, Labels: sd}
	t2 := &sim.Topology{G: g, Labels: sd}
	r1, err := KuhnWattenhofer(context.Background(), sim.Sequential, t1, m, target)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KuhnWattenhofer(context.Background(), sim.Parallel, t2, m, target)
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Colors {
		if r1.Colors[v] != r2.Colors[v] {
			t.Fatal("engine mismatch")
		}
	}
}

// TestTrimSteadyStateAllocFree pins the ported trim program's contract on
// the sequential engine: the marginal cost of extra rounds is zero heap
// allocations. Differencing two runs that differ only in the declared
// palette m (the extra classes are empty, so the added rounds are pure
// steady state over identical machines) cancels the setup cost exactly.
func TestTrimSteadyStateAllocFree(t *testing.T) {
	g := rg(21, 300, 0.04)
	sd, m := greedySeed(g, 64)
	target := int64(g.MaxDegree()) + 1
	run := func(palette int64) {
		topo := &sim.Topology{G: g, Labels: sd}
		if _, err := TrimClasses(context.Background(), sim.Sequential, topo, palette, target); err != nil {
			t.Fatal(err)
		}
	}
	g.CSR() // build the cached view outside the measurement
	short := testing.AllocsPerRun(5, func() { run(m) })
	long := testing.AllocsPerRun(5, func() { run(m + 192) })
	// The marginal cost is a whole number of allocations per round;
	// sub-0.5 residue of either sign is runtime noise (GC, pools) leaking
	// into one of the two measurements.
	if per := (long - short) / 192; per >= 0.5 || per <= -0.5 {
		t.Fatalf("trim allocates per round: %.2f (%.1f vs %.1f over 192 extra rounds)", per, long, short)
	}
}

// TestKWSteadyStateAllocFree pins the same contract for the
// Kuhn–Wattenhofer program: a larger starting palette adds phases (more
// rounds over the same machines and stamped scratch) without adding
// steady-state allocations. The schedule itself grows with m, so the
// tolerated difference is the handful of setup allocations of the longer
// plan, bounded well below one allocation per extra round.
func TestKWSteadyStateAllocFree(t *testing.T) {
	g := rg(22, 300, 0.04)
	sd, m := greedySeed(g, 64)
	target := int64(g.MaxDegree()) + 1
	run := func(palette int64) {
		topo := &sim.Topology{G: g, Labels: sd}
		if _, err := KuhnWattenhofer(context.Background(), sim.Sequential, topo, palette, target); err != nil {
			t.Fatal(err)
		}
	}
	g.CSR()
	shortRounds := len(kwSchedule(m, target))
	longRounds := len(kwSchedule(4*m, target))
	short := testing.AllocsPerRun(5, func() { run(m) })
	long := testing.AllocsPerRun(5, func() { run(4 * m) })
	extraRounds := float64(longRounds - shortRounds)
	if long-short >= extraRounds {
		t.Fatalf("kw allocates per round: %.1f extra allocs over %.0f extra rounds (%.1f vs %.1f)",
			long-short, extraRounds, long, short)
	}
}
