// Package fault is colord's deterministic fault-injection layer: named
// hook sites with seeded schedules (Points) and an injectable filesystem
// with scriptable failures (FS/Inject, fs.go). It exists so the service's
// failure branches — worker panics, WAL fsync errors, disk-full, torn
// writes, slow executions against a deadline — are driven by tests instead
// of waiting for production to drive them.
//
// Determinism is the design center. A Points schedule is a pure function
// of (seed, site, hit index): the set of hit indexes that fire at a site
// never depends on goroutine interleaving, so a failing chaos run is
// replayable from its seed alone. The package has zero dependencies
// outside the standard library and is safe for concurrent use.
//
// Disabled cost: every hook site in the service guards on a nil *Points
// (Hit is nil-receiver safe), so production pays one pointer compare and
// zero allocations per site. See DESIGN.md §12 for the injection-point
// catalog.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by a firing ActionErr plan;
// every injected error matches it via errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// InjectedError is the concrete error a firing plan returns: the site and
// hit index identify exactly which scheduled fault produced it.
type InjectedError struct {
	Site string
	Hit  int64
	Err  error // the plan's Err (ErrInjected when unset)
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("%v (site %s, hit %d)", e.Err, e.Site, e.Hit)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// PanicValue is what an injected ActionPanic panics with, so a recovering
// worker (and its test) can tell a scheduled panic from a genuine bug.
type PanicValue struct {
	Site string
	Hit  int64
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("fault: injected panic (site %s, hit %d)", p.Site, p.Hit)
}

// Action is what a firing plan does to the hook site.
type Action uint8

const (
	// ActionErr makes Hit return an error (the plan's Err, or ErrInjected).
	ActionErr Action = iota
	// ActionPanic makes Hit panic with a *PanicValue.
	ActionPanic
	// ActionSleep makes Hit sleep the plan's Delay, then return nil — the
	// deterministic way to drive executions past a deadline.
	ActionSleep
)

func (a Action) String() string {
	switch a {
	case ActionErr:
		return "err"
	case ActionPanic:
		return "panic"
	case ActionSleep:
		return "sleep"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Plan schedules one fault at one site. A site's hits are numbered from 1
// in arrival order; a plan fires on hit k when k is listed in On, or when
// the seeded coin for (seed, site, k) lands under Rate — so the firing
// set is reproducible from the seed regardless of goroutine interleaving.
type Plan struct {
	// Site names the hook site this plan targets.
	Site string
	// Rate is the per-hit firing probability in [0,1], decided by a seeded
	// hash of the hit index (not a live RNG): the same seed always selects
	// the same hit indexes.
	Rate float64
	// On lists explicit 1-based hit indexes that always fire, independent
	// of Rate — the way a test guarantees "the 3rd append fails" while the
	// Rate term adds reproducible background chaos.
	On []int64
	// After suppresses firing on the first After hits.
	After int64
	// Count caps the total fires of this plan (0 = unlimited). Which
	// candidates consume the cap can depend on interleaving; the candidate
	// set itself never does.
	Count int64
	// Action selects error/panic/sleep; Err and Delay parameterize it.
	Action Action
	Err    error
	Delay  time.Duration
}

type planState struct {
	Plan
	on    map[int64]struct{}
	fired atomic.Int64
}

type siteState struct {
	hits  atomic.Int64 // hit indexes handed out (1-based)
	fires atomic.Int64 // hits on which some plan fired
	hash  uint64       // seeded site hash, mixed per hit
	plans []*planState
}

// Points is a set of named hook sites with seeded fault schedules. The
// zero of *Points (nil) is a valid, permanently-disabled instance: Hit on
// it returns nil after one pointer compare and no allocation, which is
// the production configuration.
type Points struct {
	seed  int64
	sites map[string]*siteState
}

// New builds a Points from a seed and its plans. Sites not named by any
// plan are unknown to the instance: Hit on them is a no-op (and is not
// counted).
func New(seed int64, plans ...Plan) *Points {
	p := &Points{seed: seed, sites: make(map[string]*siteState)}
	for _, pl := range plans {
		st := p.sites[pl.Site]
		if st == nil {
			st = &siteState{hash: splitmix64(uint64(seed) ^ strhash(pl.Site))}
			p.sites[pl.Site] = st
		}
		ps := &planState{Plan: pl}
		if len(pl.On) > 0 {
			ps.on = make(map[int64]struct{}, len(pl.On))
			for _, k := range pl.On {
				ps.on[k] = struct{}{}
			}
		}
		st.plans = append(st.plans, ps)
	}
	return p
}

// Hit reports one arrival at a hook site and applies the first plan whose
// schedule fires on it: ActionErr returns an *InjectedError, ActionPanic
// panics with a *PanicValue, ActionSleep sleeps and returns nil. On a nil
// receiver or an unplanned site it returns nil immediately.
func (p *Points) Hit(site string) error {
	if p == nil {
		return nil
	}
	st := p.sites[site]
	if st == nil {
		return nil
	}
	k := st.hits.Add(1)
	for _, pl := range st.plans {
		if !pl.firesOn(st, k) {
			continue
		}
		if pl.Count > 0 && pl.fired.Add(1) > pl.Count {
			continue
		}
		if pl.Count <= 0 {
			pl.fired.Add(1)
		}
		st.fires.Add(1)
		switch pl.Action {
		case ActionPanic:
			panic(&PanicValue{Site: site, Hit: k})
		case ActionSleep:
			time.Sleep(pl.Delay)
			return nil
		default:
			err := pl.Err
			if err == nil {
				err = ErrInjected
			}
			return &InjectedError{Site: site, Hit: k, Err: err}
		}
	}
	return nil
}

// firesOn reports whether the plan's schedule selects hit k — a pure
// function of (seed, site, k, plan), never of timing.
func (pl *planState) firesOn(st *siteState, k int64) bool {
	if k <= pl.After {
		return false
	}
	if _, ok := pl.on[k]; ok {
		return true
	}
	if pl.Rate <= 0 {
		return false
	}
	h := splitmix64(st.hash ^ uint64(k))
	return float64(h>>11)/(1<<53) < pl.Rate
}

// Hits reports how many times a site has been reached; Fires how many of
// those hits had a plan fire. Both are 0 for unplanned sites.
func (p *Points) Hits(site string) int64 {
	if p == nil || p.sites[site] == nil {
		return 0
	}
	return p.sites[site].hits.Load()
}

// Fires reports the number of hits on which some plan fired at site.
func (p *Points) Fires(site string) int64 {
	if p == nil || p.sites[site] == nil {
		return 0
	}
	return p.sites[site].fires.Load()
}

// Schedule lists the hit indexes in [1, upto] on which site's plans would
// fire (Count caps ignored) — the replayable description of a seed's
// fault schedule, rendered into chaos-failure artifacts.
func (p *Points) Schedule(site string, upto int64) []int64 {
	if p == nil || p.sites[site] == nil {
		return nil
	}
	st := p.sites[site]
	var out []int64
	for k := int64(1); k <= upto; k++ {
		for _, pl := range st.plans {
			if pl.firesOn(st, k) {
				out = append(out, k)
				break
			}
		}
	}
	return out
}

// String renders the seed and per-site plan summaries, for logs and the
// chaos suite's failure artifact.
func (p *Points) String() string {
	if p == nil {
		return "fault.Points(nil)"
	}
	names := make([]string, 0, len(p.sites))
	for name := range p.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "fault.Points(seed=%d)", p.seed)
	for _, name := range names {
		st := p.sites[name]
		for _, pl := range st.plans {
			fmt.Fprintf(&b, "\n  %s: %s rate=%g on=%v after=%d count=%d hits=%d fires=%d",
				name, pl.Action, pl.Rate, pl.On, pl.After, pl.Count, st.hits.Load(), st.fires.Load())
		}
	}
	return b.String()
}

// splitmix64 is the SplitMix64 finalizer: a full-avalanche 64-bit mix,
// the standard cheap way to turn (seed, index) into an independent coin.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// strhash is FNV-1a, inlined to keep the package dependency-free of even
// hash/fnv's allocation.
func strhash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
