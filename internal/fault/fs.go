package fault

// FS is the injectable filesystem seam: the slice of the os package the
// colord WAL store actually uses, behind an interface so tests can script
// failures (fail-Nth-op, short write, torn tail, ENOSPC, sync-then-lie)
// and record the exact bytes a journal writer produced. OS is the
// passthrough production implementation; Inject wraps any FS with rules.

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the writable-file surface the WAL needs from an open handle.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations of the write-ahead job store.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(path string) ([]os.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	// OpenFile opens for writing with os.OpenFile semantics; Open opens
	// read-only (the store uses it to fsync directories).
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	Open(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Truncate(path string, size int64) error
}

// OS is the passthrough FS over the real os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error)   { return os.ReadDir(path) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error       { return os.Truncate(path, size) }
func (osFS) Open(path string) (File, error)               { return os.Open(path) }
func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// Op names one filesystem operation class for rule matching.
type Op uint8

const (
	OpMkdirAll Op = iota
	OpReadDir
	OpReadFile
	OpOpen
	OpOpenFile
	OpRename
	OpRemove
	OpTruncate
	OpWrite
	OpSync
	OpClose
)

func (o Op) String() string {
	switch o {
	case OpMkdirAll:
		return "mkdirall"
	case OpReadDir:
		return "readdir"
	case OpReadFile:
		return "readfile"
	case OpOpen:
		return "open"
	case OpOpenFile:
		return "openfile"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Mode selects what a firing FS rule does.
type Mode uint8

const (
	// ModeFail fails the operation outright with the rule's Err (default
	// ErrInjected); nothing reaches the underlying FS.
	ModeFail Mode = iota
	// ModeTorn applies to OpWrite: a prefix of the buffer reaches the
	// underlying file, then the write reports the rule's Err — the
	// mid-record crash artifact the WAL replayer must heal.
	ModeTorn
	// ModeSyncLie applies to OpSync: the sync reports success without
	// syncing, so bytes written since the last real sync are lost by
	// CrashBytes — the firmware-lies failure model.
	ModeSyncLie
)

// Rule scripts one failure family inside an Inject FS. Matching is by
// operation class and path substring; Nth/Times select which occurrences
// among the matches fire.
type Rule struct {
	// Op is the operation class the rule applies to.
	Op Op
	// Path, when non-empty, restricts the rule to operations whose path
	// contains it as a substring.
	Path string
	// Nth is the 1-based first matching occurrence that fires (0 = 1).
	Nth int64
	// Times is how many consecutive matching occurrences fire from Nth on
	// (0 = 1; negative = forever).
	Times int64
	// Mode selects fail / torn write / sync-then-lie.
	Mode Mode
	// Err is the reported error; ErrInjected when nil. Use syscall.ENOSPC
	// to script disk-full.
	Err error
	// TornBytes is how many bytes of the buffer a ModeTorn write lands
	// before failing (clamped to len-1; 0 = half the buffer).
	TornBytes int
}

type fsRule struct {
	Rule
	seen int64 // matching occurrences so far, guarded by Inject.mu
}

// fires counts one matching occurrence and reports whether it fires.
// Only match calls it; the caller must hold Inject.mu.
func (r *fsRule) fires() bool {
	r.seen++
	first := r.Nth
	if first <= 0 {
		first = 1
	}
	if r.seen < first {
		return false
	}
	if r.Times < 0 {
		return true
	}
	times := r.Times
	if times == 0 {
		times = 1
	}
	return r.seen < first+times
}

func (r *fsRule) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// Inject wraps a base FS with scripted failures and write recording. The
// recording side keeps, per path, the bytes successfully written through
// this FS and the prefix length covered by the last real sync — so a test
// can reconstruct any crash artifact (CrashBytes) or replay the journal's
// byte stream at every prefix (Written) without re-reading the disk.
type Inject struct {
	base FS

	mu     sync.Mutex
	rules  []*fsRule
	record map[string][]byte // bytes written per path, post-open-truncate
	synced map[string]int    // len(record) at the last real sync
}

// NewInject wraps base (OS when nil) with the given rules.
func NewInject(base FS, rules ...Rule) *Inject {
	if base == nil {
		base = OS
	}
	f := &Inject{base: base, record: make(map[string][]byte), synced: make(map[string]int)}
	for _, r := range rules {
		f.rules = append(f.rules, &fsRule{Rule: r})
	}
	return f
}

// AddRule appends a rule; occurrence counting starts at the call.
func (f *Inject) AddRule(r Rule) {
	f.mu.Lock()
	f.rules = append(f.rules, &fsRule{Rule: r})
	f.mu.Unlock()
}

// ClearRules drops every rule; recorded bytes are kept.
func (f *Inject) ClearRules() {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
}

// match consumes one occurrence of (op, path) and returns the firing
// rule, nil when none fires.
func (f *Inject) match(op Op, path string) *fsRule {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !contains(path, r.Path) {
			continue
		}
		if r.fires() {
			return r
		}
	}
	return nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Written returns a copy of the bytes successfully written to path
// through this FS (reset by an O_TRUNC open, moved by Rename).
func (f *Inject) Written(path string) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.record[path]...)
}

// CrashBytes returns what path would hold after a machine crash: the
// prefix covered by the last real (non-lied) sync.
func (f *Inject) CrashBytes(path string) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.record[path][:f.synced[path]]...)
}

func (f *Inject) MkdirAll(path string, perm os.FileMode) error {
	if r := f.match(OpMkdirAll, path); r != nil {
		return r.err()
	}
	return f.base.MkdirAll(path, perm)
}

func (f *Inject) ReadDir(path string) ([]os.DirEntry, error) {
	if r := f.match(OpReadDir, path); r != nil {
		return nil, r.err()
	}
	return f.base.ReadDir(path)
}

func (f *Inject) ReadFile(path string) ([]byte, error) {
	if r := f.match(OpReadFile, path); r != nil {
		return nil, r.err()
	}
	return f.base.ReadFile(path)
}

func (f *Inject) Rename(oldpath, newpath string) error {
	if r := f.match(OpRename, oldpath); r != nil {
		return r.err()
	}
	if err := f.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if rec, ok := f.record[oldpath]; ok {
		f.record[newpath] = rec
		f.synced[newpath] = f.synced[oldpath]
		delete(f.record, oldpath)
		delete(f.synced, oldpath)
	}
	f.mu.Unlock()
	return nil
}

func (f *Inject) Remove(path string) error {
	if r := f.match(OpRemove, path); r != nil {
		return r.err()
	}
	if err := f.base.Remove(path); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.record, path)
	delete(f.synced, path)
	f.mu.Unlock()
	return nil
}

func (f *Inject) Truncate(path string, size int64) error {
	if r := f.match(OpTruncate, path); r != nil {
		return r.err()
	}
	if err := f.base.Truncate(path, size); err != nil {
		return err
	}
	f.mu.Lock()
	if rec, ok := f.record[path]; ok && int64(len(rec)) > size {
		f.record[path] = rec[:size]
		if f.synced[path] > int(size) {
			f.synced[path] = int(size)
		}
	}
	f.mu.Unlock()
	return nil
}

func (f *Inject) Open(path string) (File, error) {
	if r := f.match(OpOpen, path); r != nil {
		return nil, r.err()
	}
	fl, err := f.base.Open(path)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: f, f: fl, path: path, record: false}, nil
}

func (f *Inject) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if r := f.match(OpOpenFile, path); r != nil {
		return nil, r.err()
	}
	fl, err := f.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if flag&os.O_TRUNC != 0 {
		f.record[path] = nil
		f.synced[path] = 0
	} else if _, ok := f.record[path]; !ok {
		f.record[path] = nil
	}
	f.mu.Unlock()
	return &injectFile{fs: f, f: fl, path: path, record: true}, nil
}

// injectFile routes a handle's Write/Sync/Close through the rules and the
// byte recorder. Recording assumes append-mode writes (the WAL's only
// write pattern), so record[path] is exactly the file's byte stream.
type injectFile struct {
	fs     *Inject
	f      File
	path   string
	record bool
}

func (w *injectFile) Write(p []byte) (int, error) {
	if r := w.fs.match(OpWrite, w.path); r != nil {
		if r.Mode == ModeTorn && len(p) > 0 {
			n := r.TornBytes
			if n <= 0 {
				n = len(p) / 2
			}
			if n >= len(p) {
				n = len(p) - 1
			}
			wrote, _ := w.f.Write(p[:n])
			w.recordWrite(p[:wrote])
			return wrote, r.err()
		}
		return 0, r.err()
	}
	n, err := w.f.Write(p)
	w.recordWrite(p[:n])
	return n, err
}

func (w *injectFile) recordWrite(p []byte) {
	if !w.record || len(p) == 0 {
		return
	}
	w.fs.mu.Lock()
	w.fs.record[w.path] = append(w.fs.record[w.path], p...)
	w.fs.mu.Unlock()
}

func (w *injectFile) Sync() error {
	if r := w.fs.match(OpSync, w.path); r != nil {
		if r.Mode == ModeSyncLie {
			return nil // report success; synced watermark does not advance
		}
		return r.err()
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.record {
		w.fs.mu.Lock()
		w.fs.synced[w.path] = len(w.fs.record[w.path])
		w.fs.mu.Unlock()
	}
	return nil
}

func (w *injectFile) Close() error {
	if r := w.fs.match(OpClose, w.path); r != nil {
		return r.err()
	}
	return w.f.Close()
}
