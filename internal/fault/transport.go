package fault

import "net/http"

// Transport is the client-side injection point: an http.RoundTripper that
// consults a Points site before delegating, so a seeded schedule can fail
// outbound requests without touching the network. GETOnly restricts
// injection to idempotent reads — the chaos suite uses it so a failed
// poll never un-accounts a submission the server already accepted.
type Transport struct {
	// Base performs the real round trip (http.DefaultTransport when nil).
	Base http.RoundTripper
	// Points supplies the schedule; a nil Points injects nothing.
	Points *Points
	// Site is the hook-site name consulted per request.
	Site string
	// GETOnly limits injection to GET/HEAD requests.
	GETOnly bool
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !t.GETOnly || req.Method == http.MethodGet || req.Method == http.MethodHead {
		if err := t.Points.Hit(t.Site); err != nil {
			return nil, err
		}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
