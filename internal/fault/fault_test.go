package fault

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestNilPointsIsDisabled(t *testing.T) {
	var p *Points
	if err := p.Hit("anything"); err != nil {
		t.Fatalf("nil Points.Hit = %v, want nil", err)
	}
	if p.Hits("anything") != 0 || p.Fires("anything") != 0 {
		t.Fatal("nil Points should report zero activity")
	}
	if p.Schedule("anything", 10) != nil {
		t.Fatal("nil Points should have no schedule")
	}
}

// The disabled path (nil Points, unplanned site) must be allocation-free:
// it runs on the service's submit and worker hot paths.
func TestDisabledHitAllocsZero(t *testing.T) {
	var nilPts *Points
	if n := testing.AllocsPerRun(100, func() { _ = nilPts.Hit("site") }); n != 0 {
		t.Fatalf("nil Hit allocates %v times/op, want 0", n)
	}
	p := New(1, Plan{Site: "planned", Rate: 0})
	if n := testing.AllocsPerRun(100, func() { _ = p.Hit("unplanned") }); n != 0 {
		t.Fatalf("unplanned Hit allocates %v times/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = p.Hit("planned") }); n != 0 {
		t.Fatalf("non-firing planned Hit allocates %v times/op, want 0", n)
	}
}

func TestExplicitOnSchedule(t *testing.T) {
	p := New(7, Plan{Site: "s", On: []int64{2, 5}})
	var fired []int64
	for k := int64(1); k <= 6; k++ {
		if err := p.Hit("s"); err != nil {
			var inj *InjectedError
			if !errors.As(err, &inj) || !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v is not an *InjectedError matching ErrInjected", k, err)
			}
			if inj.Site != "s" || inj.Hit != k {
				t.Fatalf("hit %d: injected error identifies (%s, %d)", k, inj.Site, inj.Hit)
			}
			fired = append(fired, k)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired on %v, want [2 5]", fired)
	}
	if p.Hits("s") != 6 || p.Fires("s") != 2 {
		t.Fatalf("hits=%d fires=%d, want 6/2", p.Hits("s"), p.Fires("s"))
	}
}

// The rate schedule is a pure function of the seed: two instances agree
// hit by hit, and the set of firing hits is invariant under concurrency.
func TestRateScheduleDeterministic(t *testing.T) {
	const n = 2000
	sched := New(42, Plan{Site: "s", Rate: 0.1}).Schedule("s", n)
	if len(sched) == 0 || len(sched) > n/5 {
		t.Fatalf("rate 0.1 over %d hits fired %d times — schedule looks broken", n, len(sched))
	}
	again := New(42, Plan{Site: "s", Rate: 0.1}).Schedule("s", n)
	if len(again) != len(sched) {
		t.Fatalf("same seed, different schedules: %d vs %d fires", len(sched), len(again))
	}
	for i := range sched {
		if sched[i] != again[i] {
			t.Fatalf("schedule diverged at %d: %d vs %d", i, sched[i], again[i])
		}
	}
	// Live hits must land exactly on the precomputed schedule, even when
	// hammered from many goroutines (each hit index is taken atomically).
	p := New(42, Plan{Site: "s", Rate: 0.1})
	var mu sync.Mutex
	fired := make(map[int64]bool)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				err := p.Hit("s")
				if err != nil {
					var inj *InjectedError
					errors.As(err, &inj)
					mu.Lock()
					fired[inj.Hit] = true
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(fired) != len(sched) {
		t.Fatalf("live run fired %d times, schedule says %d", len(fired), len(sched))
	}
	for _, k := range sched {
		if !fired[k] {
			t.Fatalf("schedule says hit %d fires, live run did not", k)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1, Plan{Site: "s", Rate: 0.2}).Schedule("s", 500)
	b := New(2, Plan{Site: "s", Rate: 0.2}).Schedule("s", 500)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestPanicAndSleepActions(t *testing.T) {
	p := New(1, Plan{Site: "boom", On: []int64{1}, Action: ActionPanic})
	func() {
		defer func() {
			//distcolor:recover asserting the injected panic value in a test
			r := recover()
			pv, ok := r.(*PanicValue)
			if !ok || pv.Site != "boom" || pv.Hit != 1 {
				t.Fatalf("recovered %v, want *PanicValue{boom,1}", r)
			}
		}()
		_ = p.Hit("boom")
		t.Fatal("ActionPanic did not panic")
	}()

	p = New(1, Plan{Site: "slow", On: []int64{1}, Action: ActionSleep, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := p.Hit("slow"); err != nil {
		t.Fatalf("ActionSleep returned error %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("ActionSleep slept %v, want ≥20ms", d)
	}
}

func TestCountAndAfter(t *testing.T) {
	p := New(1, Plan{Site: "s", Rate: 1, After: 3, Count: 2})
	var fired []int64
	for k := int64(1); k <= 10; k++ {
		if p.Hit("s") != nil {
			fired = append(fired, k)
		}
	}
	if len(fired) != 2 || fired[0] != 4 || fired[1] != 5 {
		t.Fatalf("fired on %v, want [4 5] (After=3, Count=2)", fired)
	}
}

func TestInjectFSFailNthAndENOSPC(t *testing.T) {
	dir := t.TempDir()
	ifs := NewInject(OS,
		Rule{Op: OpWrite, Nth: 2, Err: syscall.ENOSPC},
	)
	f, err := ifs.OpenFile(filepath.Join(dir, "a.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2 = %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "a.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "onethree" {
		t.Fatalf("file holds %q, want %q (failed write must not land)", got, "onethree")
	}
	if string(ifs.Written(filepath.Join(dir, "a.log"))) != "onethree" {
		t.Fatalf("recorder holds %q, want %q", ifs.Written(filepath.Join(dir, "a.log")), "onethree")
	}
}

func TestInjectFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	ifs := NewInject(OS, Rule{Op: OpWrite, Nth: 1, Mode: ModeTorn, TornBytes: 4})
	f, err := ifs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if n != 4 {
		t.Fatalf("torn write landed %d bytes, want 4", n)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "abcd" {
		t.Fatalf("file holds %q, want torn prefix %q", got, "abcd")
	}
}

func TestInjectFSSyncLieAndCrashBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	ifs := NewInject(OS, Rule{Op: OpSync, Nth: 2, Mode: ModeSyncLie})
	f, err := ifs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil { // real sync
		t.Fatal(err)
	}
	f.Write([]byte("+lost"))
	if err := f.Sync(); err != nil { // the lie: reports success
		t.Fatalf("sync-lie leaked error %v", err)
	}
	f.Close()
	if got := string(ifs.CrashBytes(path)); got != "durable" {
		t.Fatalf("crash bytes %q, want %q (lied sync must not advance the watermark)", got, "durable")
	}
	if got := string(ifs.Written(path)); got != "durable+lost" {
		t.Fatalf("written bytes %q, want %q", got, "durable+lost")
	}
}

func TestInjectFSTruncResetsRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	ifs := NewInject(nil)
	f, _ := ifs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("old"))
	f.Close()
	f, _ = ifs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	f.Write([]byte("new"))
	f.Close()
	if got := string(ifs.Written(path)); got != "new" {
		t.Fatalf("record after O_TRUNC reopen = %q, want %q", got, "new")
	}
}

func TestInjectFSRenameMovesRecord(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	ifs := NewInject(nil)
	f, _ := ifs.OpenFile(a, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("payload"))
	f.Sync()
	f.Close()
	if err := ifs.Rename(a, b); err != nil {
		t.Fatal(err)
	}
	if got := string(ifs.Written(b)); got != "payload" {
		t.Fatalf("record did not follow rename: %q", got)
	}
	if got := string(ifs.CrashBytes(b)); got != "payload" {
		t.Fatalf("sync watermark did not follow rename: %q", got)
	}
}
