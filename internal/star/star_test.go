package star

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/verify"
)

func TestEdgeColor4Delta(t *testing.T) {
	g, err := gen.NearRegular(200, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := ChooseT(g.MaxDegree(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EdgeColor(context.Background(), g, tt, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
	// Theorem 4.1 at x=1: palette ≤ 4Δ.
	if want := int64(4 * g.MaxDegree()); res.Palette > want {
		t.Fatalf("palette %d exceeds 4Δ = %d", res.Palette, want)
	}
}

func TestEdgeColorDepths(t *testing.T) {
	g, err := gen.NearRegular(150, 27, 9)
	if err != nil {
		t.Fatal(err)
	}
	delta := g.MaxDegree()
	for x := 0; x <= 2; x++ {
		tt := 2
		if x > 0 {
			var errT error
			tt, errT = ChooseT(delta, x)
			if errT != nil {
				t.Skip("degenerate t for this Δ")
			}
		}
		res, err := EdgeColor(context.Background(), g, tt, x, Options{})
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if res.Palette > Bound(delta, x) {
			t.Fatalf("x=%d: palette %d exceeds 2^%d·Δ = %d", x, res.Palette, x+1, Bound(delta, x))
		}
	}
}

func TestEdgeColorX0IsTwoDeltaMinus1(t *testing.T) {
	g := gen.GNP(60, 0.15, 4)
	res, err := EdgeColor(context.Background(), g, 2, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2*g.MaxDegree() - 1); res.Palette > want {
		t.Fatalf("x=0 palette %d exceeds 2Δ−1 = %d", res.Palette, want)
	}
	if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeColorStructuredGraphs(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"complete":  graph.Complete(20),
		"bipartite": graph.CompleteBipartite(12, 12),
		"star":      graph.Star(50),
		"cycle":     graph.Cycle(30),
	} {
		tt, err := ChooseT(g.MaxDegree(), 1)
		if err != nil {
			// Tiny Δ (cycle): fall back to x=0.
			res, err := EdgeColor(context.Background(), g, 2, 0, Options{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			continue
		}
		res, err := EdgeColor(context.Background(), g, tt, 1, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := verify.EdgeColoring(g, res.Colors, res.Palette); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Palette > Bound(g.MaxDegree(), 1) {
			t.Fatalf("%s: palette %d exceeds 4Δ", name, res.Palette)
		}
	}
}

func TestChooseTValues(t *testing.T) {
	if tt, err := ChooseT(100, 1); err != nil || tt != 10 {
		t.Fatalf("ChooseT(100,1) = %d, %v", tt, err)
	}
	if tt, err := ChooseT(64, 2); err != nil || tt != 4 {
		t.Fatalf("ChooseT(64,2) = %d, %v", tt, err)
	}
	if _, err := ChooseT(3, 3); err == nil {
		t.Fatal("expected degenerate-t error")
	}
	if _, err := ChooseT(1, 1); err == nil {
		t.Fatal("expected small-Δ error")
	}
}

func TestDeclaredPaletteFormula(t *testing.T) {
	// x=0: 2d−1.
	if DeclaredPalette(10, 3, 0) != 19 {
		t.Fatal("P(10,·,0) wrong")
	}
	// x=1, t=3: (2·3−1)·P(⌈10/3⌉=4, 0) = 5·7 = 35.
	if DeclaredPalette(10, 3, 1) != 35 {
		t.Fatal("P(10,3,1) wrong")
	}
	// Declared never exceeds bound by much for the canonical t; sanity on a
	// sweep.
	for _, delta := range []int{16, 64, 256} {
		for x := 1; x <= 3; x++ {
			tt, err := ChooseT(delta, x)
			if err != nil {
				continue
			}
			if DeclaredPalette(delta, tt, x) > 3*Bound(delta, x) {
				t.Fatalf("Δ=%d x=%d: declared %d far above bound %d", delta, x, DeclaredPalette(delta, tt, x), Bound(delta, x))
			}
		}
	}
}

func TestSeedReuse(t *testing.T) {
	g := gen.GNP(80, 0.12, 5)
	first, err := EdgeColor(context.Background(), g, 2, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tt, err := ChooseT(g.MaxDegree(), 1)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := EdgeColor(context.Background(), g, tt, 1, Options{Seed: first.Colors, SeedPalette: first.Palette})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, seeded.Colors, seeded.Palette); err != nil {
		t.Fatal(err)
	}
	unseeded, err := EdgeColor(context.Background(), g, tt, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Stats.Rounds > unseeded.Stats.Rounds {
		t.Fatalf("seeded run slower: %d > %d rounds", seeded.Stats.Rounds, unseeded.Stats.Rounds)
	}
}

func TestParameterValidation(t *testing.T) {
	g := gen.GNP(20, 0.3, 1)
	if _, err := EdgeColor(context.Background(), g, 1, 1, Options{}); err == nil {
		t.Fatal("expected t<2 error")
	}
	if _, err := EdgeColor(context.Background(), g, 2, -1, Options{}); err == nil {
		t.Fatal("expected x<0 error")
	}
	if _, err := EdgeColor(context.Background(), g, 2, 1, Options{Seed: []int64{1}, SeedPalette: 4}); err == nil {
		t.Fatal("expected seed length error")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	res, err := EdgeColor(context.Background(), g, 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Colors) != 0 || res.Palette != 1 {
		t.Fatal("empty graph result wrong")
	}
}

func TestEdgeColorQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.GNP(40, 0.2, seed)
		if g.MaxDegree() < 4 {
			return true
		}
		tt, err := ChooseT(g.MaxDegree(), 1)
		if err != nil {
			return true
		}
		res, err := EdgeColor(context.Background(), g, tt, 1, Options{})
		if err != nil {
			return false
		}
		return verify.EdgeColoring(g, res.Colors, res.Palette) == nil &&
			res.Palette <= Bound(g.MaxDegree(), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestEnginesAgree(t *testing.T) {
	g := gen.GNP(50, 0.15, 17)
	tt, err := ChooseT(g.MaxDegree(), 1)
	if err != nil {
		t.Skip("degenerate")
	}
	r1, err := EdgeColor(context.Background(), g, tt, 1, Options{Exec: sim.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EdgeColor(context.Background(), g, tt, 1, Options{Exec: sim.Parallel})
	if err != nil {
		t.Fatal(err)
	}
	for e := range r1.Colors {
		if r1.Colors[e] != r2.Colors[e] {
			t.Fatal("engines disagree")
		}
	}
}
