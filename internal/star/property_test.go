package star

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/verify"
)

// TestEdgeColorParameterSpaceQuick drives the star partition over random
// graphs, depths and legal t values — not just the canonical ⌊Δ^{1/(x+1)}⌋.
// Properness and the declared palette must hold for every legal draw.
func TestEdgeColorParameterSpaceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(50)
		g := gen.GNP(n, 0.1+rng.Float64()*0.2, seed)
		if g.MaxDegree() < 4 {
			return true
		}
		x := rng.Intn(3) // 0..2
		tt := 2 + rng.Intn(4)
		res, err := EdgeColor(context.Background(), g, tt, x, Options{})
		if err != nil {
			return false
		}
		if verify.EdgeColoring(g, res.Colors, res.Palette) != nil {
			return false
		}
		// The guarantee is the smaller of the declared product and (after
		// the trim) the 2^{x+1}Δ bound.
		return res.Palette <= res.Declared || res.Palette <= res.Bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeColorSchedulingIndependence: the star recursion composes pure
// phases; reverse-order execution must be bit-identical.
func TestEdgeColorSchedulingIndependence(t *testing.T) {
	g := gen.GNP(60, 0.15, 47)
	tt, err := ChooseT(g.MaxDegree(), 1)
	if err != nil {
		t.Skip("degenerate Δ")
	}
	fwd, err := EdgeColor(context.Background(), g, tt, 1, Options{Exec: sim.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := EdgeColor(context.Background(), g, tt, 1, Options{Exec: sim.ReverseSequential})
	if err != nil {
		t.Fatal(err)
	}
	for e := range fwd.Colors {
		if fwd.Colors[e] != rev.Colors[e] {
			t.Fatalf("edge %d differs under reverse scheduling", e)
		}
	}
}

// TestDeclaredDominatesMeasured: the declared palette formula must always
// dominate the maximum color actually emitted (pre-trim), across a sweep.
func TestDeclaredDominatesMeasured(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		g, err := gen.NearRegular(150, 18, seed)
		if err != nil {
			t.Fatal(err)
		}
		tt, err := ChooseT(g.MaxDegree(), 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EdgeColor(context.Background(), g, tt, 1, Options{SkipTrim: true})
		if err != nil {
			t.Fatal(err)
		}
		if got := verify.MaxColor(res.Colors); got >= res.Declared {
			t.Fatalf("seed %d: max color %d ≥ declared %d", seed, got, res.Declared)
		}
	}
}
