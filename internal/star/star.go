// Package star implements the §4 star-partition edge-coloring: the
// (2^{x+1}Δ)-edge-coloring of Theorem 4.1, built on edge connectors instead
// of a simulated line graph.
//
// One level with parameter t: every vertex splits into ⌈deg/t⌉ virtual
// vertices each owning ≤ t incident edges, giving a connector of maximum
// degree t whose edges are exactly the graph's edges. The connector is
// (2t−1)-edge-colored by the black box; grouping the real edges by that
// color φ yields a (2t−1, ⌈Δ/t⌉)-star-partition — inside one class, a vertex
// has at most one edge per virtual vertex, so stars shrink to ⌈Δ/t⌉.
// Recursing x times with t = ⌊Δ^{1/(x+1)}⌋ and coloring the final classes
// directly yields (2t−1)^x·(2⌈Δ/tˣ⌉−1) ≤ 2^{x+1}Δ colors after the final
// one-class-per-round trim.
package star

import (
	"context"
	"fmt"

	"repro/internal/connector"
	"repro/internal/graph"
	"repro/internal/linial"
	"repro/internal/reduce"
	"repro/internal/sim"
	"repro/internal/util"
	"repro/internal/vc"
)

// Options configures a star-partition run.
type Options struct {
	// Exec selects the simulator engine.
	Exec sim.Exec
	// VC configures the coloring black box.
	VC vc.Options
	// Seed, when non-nil, is a proper edge coloring of the input graph with
	// palette SeedPalette, reused as the identifier space at every level
	// (§3). When nil, EdgeColor computes one with Linial's algorithm on the
	// line graph and charges its cost.
	Seed        []int64
	SeedPalette int64
	// SkipTrim disables the final trim to 2^{x+1}Δ (ablation).
	SkipTrim bool
}

// Result is a star-partition edge coloring with its cost breakdown.
type Result struct {
	// Colors is indexed by the graph's edge identifiers.
	Colors []int64
	// Palette is the guaranteed palette after trimming.
	Palette int64
	// Declared is the composed pre-trim palette.
	Declared int64
	// Bound is the paper's 2^{x+1}·Δ target.
	Bound int64
	Stats sim.Stats
}

// ChooseT returns the §4 parameter t = ⌊Δ^{1/(x+1)}⌋. It fails when the
// choice degenerates below 2, i.e. when x exceeds log₂Δ − 1 (the paper
// assumes x ∈ o(log Δ)).
func ChooseT(delta, x int) (int, error) {
	if delta < 2 {
		return 0, fmt.Errorf("star: maximum degree %d too small", delta)
	}
	t := util.IRoot(delta, x+1)
	if t < 2 {
		return 0, fmt.Errorf("star: x=%d too large for Δ=%d (t would be %d)", x, delta, t)
	}
	return t, nil
}

// DeclaredPalette composes the palette of x levels with parameter t
// starting from degree bound d:
//
//	P(d, 0) = 2d−1
//	P(d, x) = (2t−1)·P(⌈d/t⌉, x−1)
func DeclaredPalette(d, t, x int) int64 {
	if x == 0 {
		return int64(util.Max(1, 2*d-1))
	}
	return int64(2*t-1) * DeclaredPalette(util.CeilDiv(d, t), t, x-1)
}

// Bound returns the paper's palette target 2^{x+1}·Δ.
func Bound(delta, x int) int64 {
	return int64(util.IPow(2, x+1)) * int64(delta)
}

// EdgeColor runs the star-partition algorithm with x ≥ 0 recursion levels
// and parameter t ≥ 2 (use ChooseT for the paper's choice). x = 0 degrades
// to the direct (2Δ−1)-edge-coloring.
func EdgeColor(ctx context.Context, g *graph.Graph, t, x int, opt Options) (*Result, error) {
	if x < 0 {
		return nil, fmt.Errorf("star: recursion depth x=%d < 0", x)
	}
	if t < 2 && x > 0 {
		return nil, fmt.Errorf("star: parameter t=%d < 2", t)
	}
	delta := g.MaxDegree()
	if g.M() == 0 {
		return &Result{Colors: nil, Palette: 1, Declared: 1, Bound: 1}, nil
	}

	var stats sim.Stats
	seed, seedPalette := opt.Seed, opt.SeedPalette
	if seed == nil {
		topo, _ := vc.LineTopology(g, nil)
		lin, err := linial.Reduce(ctx, opt.Exec, topo, vc.EdgeIDBound(g))
		if err != nil {
			return nil, fmt.Errorf("star: initial edge seed: %w", err)
		}
		seed, seedPalette = lin.Colors, lin.Palette
		stats = stats.Seq(lin.Stats)
	} else if len(seed) != g.M() {
		return nil, fmt.Errorf("star: seed has %d entries for %d edges", len(seed), g.M())
	}

	colors, recStats, err := colorRec(ctx, g, seed, seedPalette, delta, t, x, opt)
	if err != nil {
		return nil, err
	}
	stats = stats.Seq(recStats)

	declared := DeclaredPalette(delta, t, x)
	bound := Bound(delta, x)
	palette := declared
	if !opt.SkipTrim && declared > bound {
		topo, _ := vc.LineTopology(g, colors)
		red, err := reduce.TrimClasses(ctx, opt.Exec, topo, declared, bound)
		if err != nil {
			return nil, fmt.Errorf("star: final trim: %w", err)
		}
		colors = red.Colors
		palette = bound
		stats = stats.Seq(red.Stats)
	}
	return &Result{Colors: colors, Palette: palette, Declared: declared, Bound: bound, Stats: stats}, nil
}

// colorRec colors the edges of the current (spanning-subgraph) level. seed
// is indexed by the current graph's edge identifiers; declaredDeg is the
// level's degree bound (actual Δ is never larger).
func colorRec(ctx context.Context, g *graph.Graph, seed []int64, seedPalette int64, declaredDeg, t, x int, opt Options) ([]int64, sim.Stats, error) {
	if g.M() == 0 {
		return nil, sim.Stats{}, nil
	}
	if x == 0 {
		res, err := vc.EdgeColor(ctx, g, seed, seedPalette, opt.VC)
		if err != nil {
			return nil, sim.Stats{}, fmt.Errorf("star: direct stage: %w", err)
		}
		return res.Colors, res.Stats, nil
	}

	// Connector stage: Δ(connector) ≤ t, so 2t−1 colors suffice.
	vg, err := connector.Edge(g, t)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	stats := vg.Stats
	// The connector's edges are the graph's edges; a proper edge seed of g
	// is a proper edge seed of the connector (adjacent connector edges
	// share an owner).
	connSeed := make([]int64, vg.G.M())
	for ce := 0; ce < vg.G.M(); ce++ {
		connSeed[ce] = seed[vg.EOrig[ce]]
	}
	phiRes, err := vc.EdgeColor(ctx, vg.G, connSeed, seedPalette, opt.VC)
	if err != nil {
		return nil, sim.Stats{}, fmt.Errorf("star: connector coloring: %w", err)
	}
	stats = stats.Seq(phiRes.Stats)
	numClasses := phiRes.Palette // 2t−1
	phi := make([]int64, g.M())
	for ce := 0; ce < vg.G.M(); ce++ {
		phi[vg.EOrig[ce]] = phiRes.Colors[ce]
	}

	// Class stage: stars shrink to k = ⌈declaredDeg/t⌉; recurse in parallel.
	k := util.CeilDiv(declaredDeg, t)
	subPalette := DeclaredPalette(k, t, x-1)
	colors := make([]int64, g.M())
	var classStats []sim.Stats
	for c := int64(0); c < numClasses; c++ {
		sub, err := graph.SpanningSubgraph(g, func(e int) bool { return phi[e] == c })
		if err != nil {
			return nil, sim.Stats{}, err
		}
		if sub.G.M() == 0 {
			continue
		}
		if sub.G.MaxDegree() > k {
			return nil, sim.Stats{}, fmt.Errorf("star: internal: class star size %d exceeds ⌈Δ/t⌉=%d", sub.G.MaxDegree(), k)
		}
		subSeed := make([]int64, sub.G.M())
		for e := 0; e < sub.G.M(); e++ {
			subSeed[e] = seed[sub.OrigEdge(e)]
		}
		psi, st, err := colorRec(ctx, sub.G, subSeed, seedPalette, k, t, x-1, opt)
		if err != nil {
			return nil, sim.Stats{}, err
		}
		classStats = append(classStats, st)
		for e := 0; e < sub.G.M(); e++ {
			orig := sub.OrigEdge(e)
			colors[orig] = phi[orig]*subPalette + psi[e]
		}
	}
	return colors, stats.Seq(sim.ParAll(classStats)), nil
}
